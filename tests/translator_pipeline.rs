//! Integration of the state-translation pipeline across crates: capture on
//! a simulated Xen host, move through the wire codec, restore on a
//! simulated KVM host — the exact path a HERE checkpoint takes.

use here::hypervisor::arch::{ArchRegs, Gpr};
use here::hypervisor::cpuid::CpuidPolicy;
use here::hypervisor::devices::RingState;
use here::hypervisor::host::Hypervisor;
use here::hypervisor::kind::HypervisorKind;
use here::hypervisor::vm::VmConfig;
use here::hypervisor::{KvmHypervisor, PageId, VcpuId, XenHypervisor};
use here::sim::rate::ByteSize;
use here::vmstate::cir::CpuStateCir;
use here::vmstate::wire::{Record, StreamDecoder, StreamEncoder};
use here::vmstate::{check_resumable, reconcile, MemoryDelta, StateTranslator};

fn hosts() -> (XenHypervisor, KvmHypervisor) {
    (
        XenHypervisor::new(ByteSize::from_gib(16)),
        KvmHypervisor::new(ByteSize::from_gib(16)),
    )
}

#[test]
fn full_checkpoint_pipeline_xen_to_kvm() {
    let (mut xen, mut kvm) = hosts();
    let contract = reconcile(&xen.default_cpuid(), &kvm.default_cpuid());
    let cfg = VmConfig::new("pipeline", ByteSize::from_mib(16), 2)
        .unwrap()
        .with_cpuid(contract.cpuid.clone());
    let primary = xen.create_vm(cfg.clone()).unwrap();
    let replica = kvm.create_shell(cfg).unwrap();

    // The guest runs: registers move, memory is written.
    {
        let vm = xen.vm_mut(primary).unwrap();
        vm.dirty_mut().enable_logging();
        for f in [3u64, 99, 1000] {
            vm.guest_write(PageId::new(f), VcpuId::new(1)).unwrap();
        }
        let vcpu = vm.vcpu_mut(VcpuId::new(0)).unwrap();
        vcpu.regs.set_gpr(Gpr::Rbx, 0xfeed_f00d);
        vcpu.regs.tsc = 123_456_789;
        vcpu.regs.pending_interrupt = Some(0x41);
    }

    // Capture: dirty pages + vCPU state in Xen's native format.
    let dirty = xen.shadow_op_clean(primary).unwrap();
    assert_eq!(dirty.len(), 3);
    let translator = StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Kvm).unwrap();
    let mut enc = StreamEncoder::new();
    let mut delta = MemoryDelta::new();
    {
        let vm = xen.vm(primary).unwrap();
        for &p in &dirty {
            delta.push(p, vm.memory().page(p).unwrap());
        }
    }
    enc.push(&Record::PageBatch(delta));
    for i in 0..2 {
        let blob = xen.get_vcpu_state(primary, VcpuId::new(i)).unwrap();
        let cir = translator.decode_to_cir(&blob).unwrap();
        enc.push(&Record::VcpuState { index: i, cir });
    }

    // Restore on the KVM side from the decoded stream.
    let mut dec = StreamDecoder::new(enc.finish()).unwrap();
    while let Some(record) = dec.next_record().unwrap() {
        match record {
            Record::PageBatch(batch) => {
                let vm = kvm.vm_mut(replica).unwrap();
                for &(p, rec) in batch.entries() {
                    vm.memory_mut().install_page(p, rec).unwrap();
                }
            }
            Record::VcpuState { index, cir } => {
                let blob = translator.encode_from_cir(&cir);
                kvm.set_vcpu_state(replica, VcpuId::new(index), blob)
                    .unwrap();
            }
            other => panic!("unexpected record {other:?}"),
        }
    }

    // The replica is architecturally and memory-wise identical.
    let p = xen.vm(primary).unwrap();
    let r = kvm.vm(replica).unwrap();
    assert!(p.memory().content_equals(r.memory()));
    for (pv, rv) in p.vcpus().iter().zip(r.vcpus()) {
        assert_eq!(pv.regs, rv.regs);
    }
    // Byte-level check through materialisation: the replica's pages expand
    // to the same 4 KiB images.
    for f in [3u64, 99, 1000] {
        assert_eq!(
            p.memory().materialize(PageId::new(f)).unwrap(),
            r.memory().materialize(PageId::new(f)).unwrap()
        );
    }
}

#[test]
fn reconciled_policy_is_required_for_cross_hypervisor_resume() {
    let (xen, kvm) = hosts();
    // Without reconciliation: a Xen-default guest cannot resume on KVM.
    assert!(check_resumable(&xen.default_cpuid(), &kvm.default_cpuid()).is_err());
    // With reconciliation it can resume on either host.
    let contract = reconcile(&xen.default_cpuid(), &kvm.default_cpuid());
    assert!(check_resumable(&contract.cpuid, &xen.default_cpuid()).is_ok());
    assert!(check_resumable(&contract.cpuid, &kvm.default_cpuid()).is_ok());
}

#[test]
fn unreconciled_vm_is_rejected_at_replica_creation() {
    let (_, mut kvm) = hosts();
    let cfg = VmConfig::new("bad", ByteSize::from_mib(4), 1)
        .unwrap()
        .with_cpuid(CpuidPolicy::xen_default());
    assert!(kvm.create_shell(cfg).is_err());
}

#[test]
fn device_switch_produces_quiescent_native_devices() {
    let (mut xen, _) = hosts();
    let cfg = VmConfig::new("dev", ByteSize::from_mib(4), 1).unwrap();
    let vm_id = xen.create_vm(cfg).unwrap();
    let translator = StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Kvm).unwrap();
    let vm = xen.vm_mut(vm_id).unwrap();
    vm.devices_mut()[0].complete_io(41);
    let switched = translator.translate_devices(vm.devices());
    for (old, new) in vm.devices().iter().zip(&switched) {
        assert_eq!(new.identity, old.identity);
        assert_eq!(new.model.family(), HypervisorKind::Kvm);
        assert!(matches!(new.ring, RingState::Vring { .. }));
        assert!(new.ring.is_quiescent());
    }
}

#[test]
fn cir_is_hypervisor_neutral() {
    // The same architectural truth encoded by either side decodes to the
    // same CIR.
    let mut regs = ArchRegs::reset_state();
    regs.set_gpr(Gpr::R9, 7777);
    regs.system.lstar = 0xffff_8000_0000_0000;
    let xen_blob = here::hypervisor::vcpu::VcpuStateBlob::Xen(
        here::hypervisor::vcpu::XenVcpuState::from_arch(&regs, true),
    );
    let kvm_blob = here::hypervisor::vcpu::VcpuStateBlob::Kvm(
        here::hypervisor::vcpu::KvmVcpuState::from_arch(&regs, true),
    );
    let xk = StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Kvm).unwrap();
    let kx = xk.reversed();
    let cir_from_xen: CpuStateCir = xk.decode_to_cir(&xen_blob).unwrap();
    let cir_from_kvm: CpuStateCir = kx.decode_to_cir(&kvm_blob).unwrap();
    assert_eq!(cir_from_xen, cir_from_kvm);
}
