//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;

use here::hypervisor::arch::{ArchRegs, Segment, SystemRegs, GPR_COUNT};
use here::hypervisor::dirty::DirtyBitmap;
use here::hypervisor::kind::HypervisorKind;
use here::hypervisor::memory::{materialize_content, GuestMemory, PageId, PageVersion};
use here::hypervisor::vcpu::{KvmVcpuState, VcpuId, VcpuStateBlob, XenVcpuState};
use here::hypervisor::PAGE_SIZE;
use here::replication::{degradation, DynamicPeriodManager};
use here::sim::rate::ByteSize;
use here::sim::time::SimDuration;
use here::vmstate::wire::{Record, StreamDecoder, StreamEncoder};
use here::vmstate::{MemoryDelta, StateTranslator};

fn arb_segment() -> impl Strategy<Value = Segment> {
    (any::<u16>(), any::<u64>(), any::<u32>(), any::<u16>()).prop_map(
        |(selector, base, limit, attributes)| Segment {
            selector,
            base,
            limit,
            attributes,
        },
    )
}

fn arb_regs() -> impl Strategy<Value = ArchRegs> {
    (
        proptest::array::uniform32(any::<u64>()),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(arb_segment(), 7),
        proptest::array::uniform4(any::<u64>()),
        any::<u64>(),
        proptest::option::of(any::<u8>()),
    )
        .prop_map(|(words, rip, rflags, segs, sys4, tsc, pending)| {
            let mut regs = ArchRegs::default();
            regs.gprs.copy_from_slice(&words[..GPR_COUNT]);
            regs.rip = rip;
            regs.rflags = rflags;
            regs.cs = segs[0];
            regs.ds = segs[1];
            regs.es = segs[2];
            regs.fs = segs[3];
            regs.gs = segs[4];
            regs.ss = segs[5];
            regs.tr = segs[6];
            regs.system = SystemRegs {
                cr0: sys4[0],
                cr2: sys4[1],
                cr3: sys4[2],
                cr4: sys4[3],
                efer: words[16],
                apic_base: words[17],
                star: words[18],
                lstar: words[19],
                kernel_gs_base: words[20],
            };
            regs.tsc = tsc;
            regs.pending_interrupt = pending;
            regs
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Translating any register file Xen -> KVM -> Xen is the identity.
    #[test]
    fn translator_round_trip_is_identity(regs in arb_regs(), online in any::<bool>()) {
        let fwd = StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Kvm).unwrap();
        let back = fwd.reversed();
        let blob = here::hypervisor::vcpu::VcpuStateBlob::Xen(XenVcpuState::from_arch(&regs, online));
        let there = fwd.translate_vcpu(&blob).unwrap();
        let again = back.translate_vcpu(&there).unwrap();
        prop_assert_eq!(again.to_arch(), regs);
        prop_assert_eq!(again.is_online(), online);
    }

    /// Both native formats preserve every architectural field.
    #[test]
    fn native_formats_are_lossless(regs in arb_regs()) {
        prop_assert_eq!(XenVcpuState::from_arch(&regs, true).to_arch(), regs.clone());
        prop_assert_eq!(KvmVcpuState::from_arch(&regs, true).to_arch(), regs);
    }

    /// Any record sequence survives the wire codec unchanged.
    #[test]
    fn wire_round_trip(
        seqs in proptest::collection::vec(any::<u64>(), 0..8),
        frames in proptest::collection::vec((0u64..100_000, 1u32..u32::MAX, any::<u16>()), 0..64),
    ) {
        let mut enc = StreamEncoder::new();
        let mut records = Vec::new();
        for &s in &seqs {
            records.push(Record::CheckpointBegin { seq: s });
        }
        let delta: MemoryDelta = frames
            .iter()
            .map(|&(f, v, w)| (PageId::new(f), PageVersion { version: v, last_writer: w }))
            .collect();
        records.push(Record::PageBatch(delta));
        for r in &records {
            enc.push(r);
        }
        let decoded = StreamDecoder::new(enc.finish()).unwrap().collect_records().unwrap();
        prop_assert_eq!(decoded, records);
    }

    /// Corrupting any single payload byte of a record never yields a wrong
    /// record silently: decoding fails (checksums) or, for preamble bytes,
    /// construction fails.
    #[test]
    fn wire_detects_single_byte_corruption(
        seq in any::<u64>(),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut enc = StreamEncoder::new();
        enc.push(&Record::CheckpointEnd { seq, pages_total: 3 });
        let mut bytes = enc.finish().to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        let outcome = StreamDecoder::new(bytes::Bytes::from(bytes))
            .and_then(|mut d| {
                let first = d.next_record()?;
                Ok(first)
            });
        match outcome {
            // Detected: good.
            Err(_) => {}
            // Decoded: must be the original record (flip in trailing slack
            // is impossible here, so it must equal the original).
            Ok(Some(Record::CheckpointEnd { seq: s, pages_total })) => {
                prop_assert!(s == seq && pages_total == 3,
                    "corruption slipped through: seq {s} pages {pages_total}");
                // A flip that still decodes identically cannot happen: the
                // byte is part of magic/version/header/payload, all covered.
                prop_assert!(false, "single-byte flip went undetected");
            }
            Ok(other) => prop_assert!(false, "unexpected decode: {other:?}"),
        }
    }

    /// The dirty bitmap's drain returns exactly the marked set, sorted and
    /// deduplicated.
    #[test]
    fn bitmap_drain_is_sorted_set(frames in proptest::collection::vec(0u64..4096, 0..256)) {
        let mut bm = DirtyBitmap::new(4096);
        for &f in &frames {
            bm.mark(PageId::new(f));
        }
        let drained = bm.drain();
        let mut expect: Vec<u64> = frames.clone();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(
            drained.iter().map(|p| p.frame()).collect::<Vec<_>>(),
            expect
        );
        prop_assert!(bm.is_empty());
    }

    /// Range queries partition the bitmap: concatenating disjoint ranges
    /// equals the full peek.
    #[test]
    fn bitmap_ranges_partition(
        frames in proptest::collection::vec(0u64..4096, 0..256),
        cut in 1u64..4095,
    ) {
        let mut bm = DirtyBitmap::new(4096);
        for &f in &frames {
            bm.mark(PageId::new(f));
        }
        let mut joined = bm.pages_in_range(0, cut);
        joined.extend(bm.pages_in_range(cut, 4096));
        prop_assert_eq!(joined, bm.peek());
    }

    /// Page materialisation is a pure function of (frame, version): two
    /// memories that agree on versions agree on bytes.
    #[test]
    fn materialisation_is_deterministic(frame in 0u64..1024, version in 0u32..50, writer in any::<u16>()) {
        let rec = PageVersion { version, last_writer: writer };
        let a = materialize_content(PageId::new(frame), rec);
        let b = materialize_content(PageId::new(frame), rec);
        prop_assert_eq!(&a[..], &b[..]);
        prop_assert_eq!(a.len() as u64, PAGE_SIZE);
        if version == 0 {
            prop_assert!(a.iter().all(|&x| x == 0));
        }
    }

    /// Installing an arbitrary sequence of writes then replaying its final
    /// versions reproduces the memory exactly.
    #[test]
    fn install_replay_reaches_equality(writes in proptest::collection::vec((0u64..512, 0u32..4), 0..512)) {
        let mut primary = GuestMemory::new(ByteSize::from_mib(2)).unwrap();
        for &(f, v) in &writes {
            primary.write_page(PageId::new(f), VcpuId::new(v)).unwrap();
        }
        let mut replica = GuestMemory::new(ByteSize::from_mib(2)).unwrap();
        for (p, rec) in primary.touched_iter().collect::<Vec<_>>() {
            replica.install_page(p, rec).unwrap();
        }
        prop_assert!(primary.content_equals(&replica));
    }

    /// Algorithm 1 never violates its hard constraints: sigma <= T <= T_max
    /// after every step, for any pause sequence.
    #[test]
    fn period_manager_respects_hard_bounds(
        pauses in proptest::collection::vec(0u64..20_000, 1..200),
        d in 1u32..99,
        t_max_ms in 1_000u64..30_000,
        sigma_ms in 50u64..1_000,
    ) {
        let sigma = SimDuration::from_millis(sigma_ms);
        let t_max = SimDuration::from_millis(t_max_ms.max(sigma_ms));
        let mut m = DynamicPeriodManager::new(d as f64 / 100.0, t_max, sigma);
        for &p in &pauses {
            let t = m.on_checkpoint(SimDuration::from_millis(p)).chosen_period;
            prop_assert!(t >= sigma, "T {t} under sigma {sigma}");
            prop_assert!(t <= t_max, "T {t} over T_max {t_max}");
        }
    }

    /// Degradation is always a proper fraction.
    #[test]
    fn degradation_is_a_fraction(pause_ms in 0u64..100_000, period_ms in 0u64..100_000) {
        let d = degradation(
            SimDuration::from_millis(pause_ms),
            SimDuration::from_millis(period_ms),
        );
        prop_assert!((0.0..=1.0).contains(&d));
    }

    /// The full heterogeneous checkpoint path — a random dirty state on
    /// the Xen primary, harvested into a [`MemoryDelta`], pushed through
    /// the wire codec, the vCPU translated Xen -> CIR -> KVM, and the
    /// pages restored on the KVM-side replica — reproduces guest memory
    /// byte-exactly on every materialised page.
    #[test]
    fn heterogeneous_checkpoint_restores_bytes_exactly(
        writes in proptest::collection::vec((0u64..512, 0u32..4), 1..512),
        regs in arb_regs(),
        seq in 1u64..1_000,
    ) {
        // Primary side: apply guest writes, then harvest the delta.
        let mut primary = GuestMemory::new(ByteSize::from_mib(2)).unwrap();
        for &(f, v) in &writes {
            primary.write_page(PageId::new(f), VcpuId::new(v)).unwrap();
        }
        let delta: MemoryDelta = primary.touched_iter().collect();

        // Encode the stream exactly like the send side does: page batch
        // plus the vCPU state lowered to the common format.
        let translator = StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Kvm).unwrap();
        let xen_blob = VcpuStateBlob::Xen(XenVcpuState::from_arch(&regs, true));
        let cir = translator.decode_to_cir(&xen_blob).unwrap();
        let mut enc = StreamEncoder::new();
        enc.push(&Record::CheckpointBegin { seq });
        enc.push(&Record::PageBatch(delta.clone()));
        enc.push(&Record::VcpuState { index: 0, cir });
        enc.push(&Record::CheckpointEnd { seq, pages_total: delta.len() as u64 });

        // Receive side: decode, install pages, raise the vCPU into the
        // KVM native format.
        let mut replica = GuestMemory::new(ByteSize::from_mib(2)).unwrap();
        let mut restored_vcpu = None;
        let mut pages_seen = 0u64;
        let mut declared = None;
        let mut dec = StreamDecoder::new(enc.finish()).unwrap();
        while let Some(record) = dec.next_record().unwrap() {
            match record {
                Record::PageBatch(d) => {
                    for &(p, rec) in d.entries() {
                        replica.install_page(p, rec).unwrap();
                        pages_seen += 1;
                    }
                }
                Record::VcpuState { cir, .. } => {
                    restored_vcpu = Some(translator.encode_from_cir(&cir));
                }
                Record::CheckpointEnd { pages_total, .. } => declared = Some(pages_total),
                _ => {}
            }
        }
        prop_assert_eq!(declared, Some(pages_seen));

        // Whole-memory equality (untouched pages are all-zero on both
        // sides), plus an explicit byte comparison of every page the
        // delta carried.
        prop_assert!(primary.content_equals(&replica));
        let replicated: std::collections::BTreeMap<_, _> = replica.touched_iter().collect();
        for &(p, rec) in delta.entries() {
            let got = replicated.get(&p).copied();
            prop_assert_eq!(got, Some(rec));
            prop_assert_eq!(
                &materialize_content(p, rec)[..],
                &materialize_content(p, got.unwrap())[..]
            );
        }

        // The vCPU survived the format change with every field intact.
        let vcpu = restored_vcpu.unwrap();
        prop_assert!(matches!(vcpu, VcpuStateBlob::Kvm(_)));
        prop_assert_eq!(vcpu.to_arch(), regs);
        prop_assert!(vcpu.is_online());
    }

    /// MemoryDelta::merge keeps the newest version for every frame.
    #[test]
    fn delta_merge_keeps_newest(
        a in proptest::collection::vec((0u64..64, 1u32..100), 0..64),
        b in proptest::collection::vec((0u64..64, 1u32..100), 0..64),
    ) {
        let mk = |v: &Vec<(u64, u32)>| -> MemoryDelta {
            v.iter()
                .map(|&(f, ver)| (PageId::new(f), PageVersion { version: ver, last_writer: 0 }))
                .collect()
        };
        let mut merged = mk(&a);
        merged.merge(mk(&b));
        // Expected: max version per frame across both inputs.
        let mut expect = std::collections::BTreeMap::new();
        for &(f, v) in a.iter().chain(b.iter()) {
            let e = expect.entry(f).or_insert(0u32);
            *e = (*e).max(v);
        }
        prop_assert_eq!(merged.len(), expect.len());
        for &(p, rec) in merged.entries() {
            prop_assert_eq!(rec.version, expect[&p.frame()]);
        }
    }
}
