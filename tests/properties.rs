//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;

use here::hypervisor::arch::{ArchRegs, Segment, SystemRegs, GPR_COUNT};
use here::hypervisor::dirty::DirtyBitmap;
use here::hypervisor::fault::DosOutcome;
use here::hypervisor::kind::HypervisorKind;
use here::hypervisor::memory::{materialize_content, GuestMemory, PageId, PageVersion};
use here::hypervisor::vcpu::{KvmVcpuState, VcpuId, VcpuStateBlob, XenVcpuState};
use here::hypervisor::PAGE_SIZE;
use here::replication::{
    degradation, CommitLedger, DynamicPeriodManager, FanoutMode, FaultKind, FaultPlan,
    ReplicationConfig, Scenario, Stage, TopologyConfig,
};
use here::sim::rate::ByteSize;
use here::sim::time::{SimDuration, SimTime};
use here::vmstate::wire::{Record, StreamDecoder, StreamEncoder};
use here::vmstate::{MemoryDelta, StateTranslator};
use here::workloads::memstress::MemStress;

fn arb_segment() -> impl Strategy<Value = Segment> {
    (any::<u16>(), any::<u64>(), any::<u32>(), any::<u16>()).prop_map(
        |(selector, base, limit, attributes)| Segment {
            selector,
            base,
            limit,
            attributes,
        },
    )
}

fn arb_regs() -> impl Strategy<Value = ArchRegs> {
    (
        proptest::array::uniform32(any::<u64>()),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(arb_segment(), 7),
        proptest::array::uniform4(any::<u64>()),
        any::<u64>(),
        proptest::option::of(any::<u8>()),
    )
        .prop_map(|(words, rip, rflags, segs, sys4, tsc, pending)| {
            let mut regs = ArchRegs::default();
            regs.gprs.copy_from_slice(&words[..GPR_COUNT]);
            regs.rip = rip;
            regs.rflags = rflags;
            regs.cs = segs[0];
            regs.ds = segs[1];
            regs.es = segs[2];
            regs.fs = segs[3];
            regs.gs = segs[4];
            regs.ss = segs[5];
            regs.tr = segs[6];
            regs.system = SystemRegs {
                cr0: sys4[0],
                cr2: sys4[1],
                cr3: sys4[2],
                cr4: sys4[3],
                efer: words[16],
                apic_base: words[17],
                star: words[18],
                lstar: words[19],
                kernel_gs_base: words[20],
            };
            regs.tsc = tsc;
            regs.pending_interrupt = pending;
            regs
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Translating any register file Xen -> KVM -> Xen is the identity.
    #[test]
    fn translator_round_trip_is_identity(regs in arb_regs(), online in any::<bool>()) {
        let fwd = StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Kvm).unwrap();
        let back = fwd.reversed();
        let blob = here::hypervisor::vcpu::VcpuStateBlob::Xen(XenVcpuState::from_arch(&regs, online));
        let there = fwd.translate_vcpu(&blob).unwrap();
        let again = back.translate_vcpu(&there).unwrap();
        prop_assert_eq!(again.to_arch(), regs);
        prop_assert_eq!(again.is_online(), online);
    }

    /// Both native formats preserve every architectural field.
    #[test]
    fn native_formats_are_lossless(regs in arb_regs()) {
        prop_assert_eq!(XenVcpuState::from_arch(&regs, true).to_arch(), regs.clone());
        prop_assert_eq!(KvmVcpuState::from_arch(&regs, true).to_arch(), regs);
    }

    /// Any record sequence survives the wire codec unchanged.
    #[test]
    fn wire_round_trip(
        seqs in proptest::collection::vec(any::<u64>(), 0..8),
        frames in proptest::collection::vec((0u64..100_000, 1u32..u32::MAX, any::<u16>()), 0..64),
    ) {
        let mut enc = StreamEncoder::new();
        let mut records = Vec::new();
        for &s in &seqs {
            records.push(Record::CheckpointBegin { seq: s });
        }
        let delta: MemoryDelta = frames
            .iter()
            .map(|&(f, v, w)| (PageId::new(f), PageVersion { version: v, last_writer: w }))
            .collect();
        records.push(Record::PageBatch(delta));
        for r in &records {
            enc.push(r);
        }
        let decoded = StreamDecoder::new(enc.finish()).unwrap().collect_records().unwrap();
        prop_assert_eq!(decoded, records);
    }

    /// Corrupting any single payload byte of a record never yields a wrong
    /// record silently: decoding fails (checksums) or, for preamble bytes,
    /// construction fails.
    #[test]
    fn wire_detects_single_byte_corruption(
        seq in any::<u64>(),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut enc = StreamEncoder::new();
        enc.push(&Record::CheckpointEnd { seq, pages_total: 3 });
        let mut bytes = enc.finish().to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        let outcome = StreamDecoder::new(bytes::Bytes::from(bytes))
            .and_then(|mut d| {
                let first = d.next_record()?;
                Ok(first)
            });
        match outcome {
            // Detected: good.
            Err(_) => {}
            // Decoded: must be the original record (flip in trailing slack
            // is impossible here, so it must equal the original).
            Ok(Some(Record::CheckpointEnd { seq: s, pages_total })) => {
                prop_assert!(s == seq && pages_total == 3,
                    "corruption slipped through: seq {s} pages {pages_total}");
                // A flip that still decodes identically cannot happen: the
                // byte is part of magic/version/header/payload, all covered.
                prop_assert!(false, "single-byte flip went undetected");
            }
            Ok(other) => prop_assert!(false, "unexpected decode: {other:?}"),
        }
    }

    /// The dirty bitmap's drain returns exactly the marked set, sorted and
    /// deduplicated.
    #[test]
    fn bitmap_drain_is_sorted_set(frames in proptest::collection::vec(0u64..4096, 0..256)) {
        let mut bm = DirtyBitmap::new(4096);
        for &f in &frames {
            bm.mark(PageId::new(f));
        }
        let drained = bm.drain();
        let mut expect: Vec<u64> = frames.clone();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(
            drained.iter().map(|p| p.frame()).collect::<Vec<_>>(),
            expect
        );
        prop_assert!(bm.is_empty());
    }

    /// Range queries partition the bitmap: concatenating disjoint ranges
    /// equals the full peek.
    #[test]
    fn bitmap_ranges_partition(
        frames in proptest::collection::vec(0u64..4096, 0..256),
        cut in 1u64..4095,
    ) {
        let mut bm = DirtyBitmap::new(4096);
        for &f in &frames {
            bm.mark(PageId::new(f));
        }
        let mut joined = bm.pages_in_range(0, cut);
        joined.extend(bm.pages_in_range(cut, 4096));
        prop_assert_eq!(joined, bm.peek());
    }

    /// Page materialisation is a pure function of (frame, version): two
    /// memories that agree on versions agree on bytes.
    #[test]
    fn materialisation_is_deterministic(frame in 0u64..1024, version in 0u32..50, writer in any::<u16>()) {
        let rec = PageVersion { version, last_writer: writer };
        let a = materialize_content(PageId::new(frame), rec);
        let b = materialize_content(PageId::new(frame), rec);
        prop_assert_eq!(&a[..], &b[..]);
        prop_assert_eq!(a.len() as u64, PAGE_SIZE);
        if version == 0 {
            prop_assert!(a.iter().all(|&x| x == 0));
        }
    }

    /// Installing an arbitrary sequence of writes then replaying its final
    /// versions reproduces the memory exactly.
    #[test]
    fn install_replay_reaches_equality(writes in proptest::collection::vec((0u64..512, 0u32..4), 0..512)) {
        let mut primary = GuestMemory::new(ByteSize::from_mib(2)).unwrap();
        for &(f, v) in &writes {
            primary.write_page(PageId::new(f), VcpuId::new(v)).unwrap();
        }
        let mut replica = GuestMemory::new(ByteSize::from_mib(2)).unwrap();
        for (p, rec) in primary.touched_iter().collect::<Vec<_>>() {
            replica.install_page(p, rec).unwrap();
        }
        prop_assert!(primary.content_equals(&replica));
    }

    /// Algorithm 1 never violates its hard constraints: sigma <= T <= T_max
    /// after every step, for any pause sequence.
    #[test]
    fn period_manager_respects_hard_bounds(
        pauses in proptest::collection::vec(0u64..20_000, 1..200),
        d in 1u32..99,
        t_max_ms in 1_000u64..30_000,
        sigma_ms in 50u64..1_000,
    ) {
        let sigma = SimDuration::from_millis(sigma_ms);
        let t_max = SimDuration::from_millis(t_max_ms.max(sigma_ms));
        let mut m = DynamicPeriodManager::new(d as f64 / 100.0, t_max, sigma);
        for &p in &pauses {
            let t = m.on_checkpoint(SimDuration::from_millis(p)).chosen_period;
            prop_assert!(t >= sigma, "T {t} under sigma {sigma}");
            prop_assert!(t <= t_max, "T {t} over T_max {t_max}");
        }
    }

    /// Degradation is always a proper fraction.
    #[test]
    fn degradation_is_a_fraction(pause_ms in 0u64..100_000, period_ms in 0u64..100_000) {
        let d = degradation(
            SimDuration::from_millis(pause_ms),
            SimDuration::from_millis(period_ms),
        );
        prop_assert!((0.0..=1.0).contains(&d));
    }

    /// The full heterogeneous checkpoint path — a random dirty state on
    /// the Xen primary, harvested into a [`MemoryDelta`], pushed through
    /// the wire codec, the vCPU translated Xen -> CIR -> KVM, and the
    /// pages restored on the KVM-side replica — reproduces guest memory
    /// byte-exactly on every materialised page.
    #[test]
    fn heterogeneous_checkpoint_restores_bytes_exactly(
        writes in proptest::collection::vec((0u64..512, 0u32..4), 1..512),
        regs in arb_regs(),
        seq in 1u64..1_000,
    ) {
        // Primary side: apply guest writes, then harvest the delta.
        let mut primary = GuestMemory::new(ByteSize::from_mib(2)).unwrap();
        for &(f, v) in &writes {
            primary.write_page(PageId::new(f), VcpuId::new(v)).unwrap();
        }
        let delta: MemoryDelta = primary.touched_iter().collect();

        // Encode the stream exactly like the send side does: page batch
        // plus the vCPU state lowered to the common format.
        let translator = StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Kvm).unwrap();
        let xen_blob = VcpuStateBlob::Xen(XenVcpuState::from_arch(&regs, true));
        let cir = translator.decode_to_cir(&xen_blob).unwrap();
        let mut enc = StreamEncoder::new();
        enc.push(&Record::CheckpointBegin { seq });
        enc.push(&Record::PageBatch(delta.clone()));
        enc.push(&Record::VcpuState { index: 0, cir });
        enc.push(&Record::CheckpointEnd { seq, pages_total: delta.len() as u64 });

        // Receive side: decode, install pages, raise the vCPU into the
        // KVM native format.
        let mut replica = GuestMemory::new(ByteSize::from_mib(2)).unwrap();
        let mut restored_vcpu = None;
        let mut pages_seen = 0u64;
        let mut declared = None;
        let mut dec = StreamDecoder::new(enc.finish()).unwrap();
        while let Some(record) = dec.next_record().unwrap() {
            match record {
                Record::PageBatch(d) => {
                    for &(p, rec) in d.entries() {
                        replica.install_page(p, rec).unwrap();
                        pages_seen += 1;
                    }
                }
                Record::VcpuState { cir, .. } => {
                    restored_vcpu = Some(translator.encode_from_cir(&cir));
                }
                Record::CheckpointEnd { pages_total, .. } => declared = Some(pages_total),
                _ => {}
            }
        }
        prop_assert_eq!(declared, Some(pages_seen));

        // Whole-memory equality (untouched pages are all-zero on both
        // sides), plus an explicit byte comparison of every page the
        // delta carried.
        prop_assert!(primary.content_equals(&replica));
        let replicated: std::collections::BTreeMap<_, _> = replica.touched_iter().collect();
        for &(p, rec) in delta.entries() {
            let got = replicated.get(&p).copied();
            prop_assert_eq!(got, Some(rec));
            prop_assert_eq!(
                &materialize_content(p, rec)[..],
                &materialize_content(p, got.unwrap())[..]
            );
        }

        // The vCPU survived the format change with every field intact.
        let vcpu = restored_vcpu.unwrap();
        prop_assert!(matches!(vcpu, VcpuStateBlob::Kvm(_)));
        prop_assert_eq!(vcpu.to_arch(), regs);
        prop_assert!(vcpu.is_online());
    }

    /// MemoryDelta::merge keeps the newest version for every frame.
    #[test]
    fn delta_merge_keeps_newest(
        a in proptest::collection::vec((0u64..64, 1u32..100), 0..64),
        b in proptest::collection::vec((0u64..64, 1u32..100), 0..64),
    ) {
        let mk = |v: &Vec<(u64, u32)>| -> MemoryDelta {
            v.iter()
                .map(|&(f, ver)| (PageId::new(f), PageVersion { version: ver, last_writer: 0 }))
                .collect()
        };
        let mut merged = mk(&a);
        merged.merge(mk(&b));
        // Expected: max version per frame across both inputs.
        let mut expect = std::collections::BTreeMap::new();
        for &(f, v) in a.iter().chain(b.iter()) {
            let e = expect.entry(f).or_insert(0u32);
            *e = (*e).max(v);
        }
        prop_assert_eq!(merged.len(), expect.len());
        for &(p, rec) in merged.entries() {
            prop_assert_eq!(rec.version, expect[&p.frame()]);
        }
    }

    /// Quorum commits stay strictly monotone under arbitrary per-replica
    /// ack interleavings, every committed epoch is supported by at least
    /// `quorum` replicas, and the failover candidate is never staler than
    /// the commit watermark.
    #[test]
    fn quorum_commits_are_monotone_under_any_interleaving(
        n in 1u32..6,
        q_seed in any::<u32>(),
        acks in proptest::collection::vec((any::<u32>(), 1u64..40), 0..200),
    ) {
        let quorum = q_seed % n + 1;
        let mut ledger = CommitLedger::with_quorum(n, quorum);
        let mut at = 0u64;
        let mut committed = Vec::new();
        for &(r_seed, seq) in &acks {
            let replica = r_seed % n;
            at += 1;
            if ledger.ack(replica, seq, SimTime::from_secs(at)) {
                let s = ledger.last_committed().expect("ack returned true");
                // The commit is supported by a full quorum of ack marks.
                let support = (0..n)
                    .filter(|&r| ledger.last_acked(r).is_some_and(|a| a >= s))
                    .count();
                prop_assert!(
                    support >= quorum as usize,
                    "epoch {s} committed with {support}/{quorum} supporters"
                );
                committed.push(s);
            }
            // Safety: the replica failover would activate holds state at
            // least as fresh as everything already committed.
            if let Some(watermark) = ledger.last_committed() {
                let best = ledger.best_replica();
                prop_assert!(
                    ledger.last_acked(best).is_some_and(|a| a >= watermark),
                    "best replica {best} is behind the watermark {watermark}"
                );
            }
        }
        prop_assert!(committed.windows(2).all(|w| w[0] < w[1]));
        let entries = ledger.entries();
        prop_assert_eq!(entries.len(), committed.len());
        prop_assert!(entries.windows(2).all(|w| w[0].seq < w[1].seq && w[0].at <= w[1].at));
    }

    /// A replica's ack trail never decreases and never runs ahead of the
    /// epochs it was fed, whatever the interleaving.
    #[test]
    fn ack_trails_are_per_replica_high_water_marks(
        acks in proptest::collection::vec((0u32..3, 1u64..40), 0..120),
    ) {
        let mut ledger = CommitLedger::with_quorum(3, 2);
        let mut fed: Vec<Vec<u64>> = vec![Vec::new(); 3];
        for (i, &(replica, seq)) in acks.iter().enumerate() {
            ledger.ack(replica, seq, SimTime::from_secs(i as u64 + 1));
            fed[replica as usize].push(seq);
        }
        let (_, trails) = ledger.into_parts();
        for trail in trails {
            let marks: Vec<u64> = trail.acks.iter().map(|e| e.seq).collect();
            prop_assert!(marks.windows(2).all(|w| w[0] < w[1]), "trail not increasing");
            let max_fed = fed[trail.replica as usize].iter().copied().max();
            prop_assert_eq!(marks.last().copied(), max_fed);
        }
    }
}

/// A partitioned minority must never be the replica failover activates:
/// replica 2's link is cut for the whole retry budget of epoch 4, so its
/// last ack trails the quorum when the primary crashes mid-transfer of
/// epoch 5 — the engine must activate one of the up-to-date majority
/// replicas, and the split-brain latch in `ReplicaSet::activate` would
/// panic the run if a second activation were ever attempted.
#[test]
fn partitioned_minority_never_activates() {
    let plan = FaultPlan::new(7).with_partition(4, &[2], 4).with_event(
        5,
        FaultKind::PrimaryFault {
            outcome: DosOutcome::Crash,
            stage: Stage::Transfer,
        },
    );
    let report = Scenario::builder()
        .name("partitioned-minority")
        .vm_memory_mib(64)
        .vcpus(4)
        .workload(Box::new(MemStress::with_percent(30).with_rate(20_000)))
        .config(
            ReplicationConfig::fixed_period(SimDuration::from_secs(2)).with_topology(
                TopologyConfig {
                    replicas: 3,
                    quorum: 2,
                    fanout: FanoutMode::Star,
                    stale_epoch_lag: 8,
                },
            ),
        )
        .duration(SimDuration::from_secs(30))
        .seed(42)
        .verify_consistency()
        .chaos(plan)
        .build()
        .expect("partition scenario is valid")
        .run();

    let fo = report.failover.expect("the injected crash must fail over");
    assert!(
        fo.activated_replica < 2,
        "partitioned minority replica 2 activated (got replica {})",
        fo.activated_replica
    );
    // The activated replica resumed from the last committed epoch.
    let last_committed = report.commits.last().expect("epochs committed").seq;
    assert_eq!(fo.resumed_from_checkpoint, last_committed);
    // The partition really did leave replica 2 behind the majority.
    let high_mark = |replica: u32| {
        report
            .replica_acks
            .iter()
            .find(|t| t.replica == replica)
            .and_then(|t| t.acks.last())
            .map(|e| e.seq)
            .unwrap_or(0)
    };
    assert!(
        high_mark(2) < high_mark(fo.activated_replica),
        "the minority caught up before the crash: r2 at {} vs r{} at {}",
        high_mark(2),
        fo.activated_replica,
        high_mark(fo.activated_replica)
    );
}
