//! End-to-end integration tests across the whole workspace: the replication
//! engine driving simulated hypervisors, workloads, the translator, the
//! wire codec and the network substrate together.

use here::hypervisor::fault::DosOutcome;
use here::replication::{FailureCause, FailurePlan, ReplicationConfig, Scenario, Strategy};
use here::sim::{SimDuration, SimTime};
use here::workloads::sockperf::SockperfLoad;
use here::workloads::{MemStress, Sockperf, Ycsb, YcsbMix, YcsbSpec};

fn memstress_scenario(cfg: ReplicationConfig) -> Scenario {
    Scenario::builder()
        .vm_memory_mib(128)
        .vcpus(4)
        .workload(Box::new(MemStress::with_percent(30).with_rate(30_000)))
        .config(cfg)
        .duration(SimDuration::from_secs(30))
        .verify_consistency()
        .build()
        .expect("valid scenario")
}

#[test]
fn replica_is_byte_identical_at_every_checkpoint_heterogeneous() {
    let report =
        memstress_scenario(ReplicationConfig::fixed_period(SimDuration::from_secs(2))).run();
    assert!(report.checkpoints.len() >= 10);
    assert_eq!(report.consistency_checks, report.checkpoints.len() as u64);
}

#[test]
fn replica_is_byte_identical_at_every_checkpoint_homogeneous() {
    let report = memstress_scenario(ReplicationConfig::remus(SimDuration::from_secs(2))).run();
    assert!(report.checkpoints.len() >= 10);
    assert_eq!(report.consistency_checks, report.checkpoints.len() as u64);
}

#[test]
fn consistency_holds_under_dynamic_period_control() {
    let report =
        memstress_scenario(ReplicationConfig::dynamic(0.3, SimDuration::from_secs(5))).run();
    assert!(report.consistency_checks > 0);
    assert_eq!(report.consistency_checks, report.checkpoints.len() as u64);
}

#[test]
fn here_outperforms_remus_at_equal_period_on_ycsb() {
    let run = |cfg: ReplicationConfig| {
        let driver = Ycsb::new(YcsbSpec {
            mix: YcsbMix::A,
            records: 50_000,
            operations: 400_000,
        })
        .expect("valid spec");
        let mem_mib =
            (driver.required_pages() * here::hypervisor::PAGE_SIZE).div_ceil(1024 * 1024) + 16;
        Scenario::builder()
            .vm_memory_mib(mem_mib)
            .vcpus(4)
            .workload(Box::new(driver))
            .config(cfg)
            .duration(SimDuration::from_secs(300))
            .build()
            .expect("valid scenario")
            .run()
    };
    let here = run(ReplicationConfig::fixed_period(SimDuration::from_secs(3)));
    let remus = run(ReplicationConfig::remus(SimDuration::from_secs(3)));
    assert!(
        here.throughput_ops_per_sec > remus.throughput_ops_per_sec,
        "HERE {} ops/s must beat Remus {} ops/s",
        here.throughput_ops_per_sec,
        remus.throughput_ops_per_sec
    );
}

#[test]
fn failover_resumes_from_the_last_committed_checkpoint() {
    let scenario = Scenario::builder()
        .vm_memory_mib(128)
        .vcpus(2)
        .workload(Box::new(MemStress::with_percent(20).with_rate(10_000)))
        .config(ReplicationConfig::fixed_period(SimDuration::from_secs(2)))
        .duration(SimDuration::from_secs(40))
        .failure(FailurePlan {
            at: SimTime::from_secs(15),
            cause: FailureCause::Accident(DosOutcome::Crash),
            reattack_secondary: false,
        })
        .build()
        .expect("valid scenario");
    let report = scenario.run();
    let fo = report.failover.expect("failover must run");
    // The failure landed mid-epoch: the work of the open epoch is lost.
    assert!(fo.ops_lost > 0.0);
    // Resumed from the checkpoint preceding the failure (~7 epochs of 2 s).
    assert!(fo.resumed_from_checkpoint >= 5);
    // Service continued on the replica: total ops exceed what was possible
    // before the failure alone at the workload's rate.
    assert!(report.ops_completed > 10_000.0 * 16.0);
    // The interruption is dominated by detection, not activation.
    assert!(fo.outage() < SimDuration::from_millis(100));
}

#[test]
fn hang_and_starvation_failures_also_fail_over() {
    for (outcome, max_outage) in [
        (DosOutcome::Hang, SimDuration::from_millis(100)),
        // Starved hosts are detected ~10x slower.
        (DosOutcome::Starvation, SimDuration::from_millis(600)),
    ] {
        let report = Scenario::builder()
            .vm_memory_mib(64)
            .vcpus(2)
            .config(ReplicationConfig::fixed_period(SimDuration::from_secs(2)))
            .duration(SimDuration::from_secs(30))
            .failure(FailurePlan {
                at: SimTime::from_secs(10),
                cause: FailureCause::Accident(outcome),
                reattack_secondary: false,
            })
            .build()
            .expect("valid scenario")
            .run();
        let fo = report
            .failover
            .unwrap_or_else(|| panic!("{outcome:?} must fail over"));
        assert!(
            fo.outage() < max_outage,
            "{outcome:?} outage {} exceeds {max_outage}",
            fo.outage()
        );
    }
}

#[test]
fn failover_detection_matrix_scales_with_heartbeat_config_and_outcome() {
    use here::replication::{HeartbeatConfig, STARVATION_DETECTION_FACTOR};
    let heartbeats = [
        (
            "tight",
            HeartbeatConfig {
                period: SimDuration::from_millis(2),
                missed_threshold: 1,
            },
        ),
        ("default", HeartbeatConfig::default()),
        (
            "lossy",
            HeartbeatConfig {
                period: SimDuration::from_millis(25),
                missed_threshold: 7,
            },
        ),
    ];
    let mut default_detection = Vec::new();
    for outcome in DosOutcome::ALL {
        let mut outages = Vec::new();
        for (label, hb) in heartbeats {
            let report = Scenario::builder()
                .vm_memory_mib(64)
                .vcpus(2)
                .workload(Box::new(MemStress::with_percent(20).with_rate(5_000)))
                .config(
                    ReplicationConfig::fixed_period(SimDuration::from_secs(2)).with_heartbeat(hb),
                )
                .duration(SimDuration::from_secs(30))
                .failure(FailurePlan {
                    at: SimTime::from_secs(10),
                    cause: FailureCause::Accident(outcome),
                    reattack_secondary: false,
                })
                .build()
                .expect("valid scenario")
                .run();
            let fo = report
                .failover
                .unwrap_or_else(|| panic!("{outcome:?}/{label} must fail over"));
            // Detection takes exactly the heartbeat budget — silenced
            // heartbeats (crash/hang) at the base budget, a starved host's
            // erratic ones a factor STARVATION_DETECTION_FACTOR slower.
            let factor = if outcome == DosOutcome::Starvation {
                STARVATION_DETECTION_FACTOR
            } else {
                1
            };
            let detection = fo.detected_at.saturating_duration_since(fo.failed_at);
            assert_eq!(
                detection,
                SimDuration::from_nanos(hb.detection_latency().as_nanos() * factor),
                "{outcome:?}/{label}"
            );
            if label == "default" {
                default_detection.push(detection);
            }
            // Activation provably uses the last fully-acked epoch.
            assert_eq!(
                fo.resumed_from_checkpoint,
                report
                    .commits
                    .last()
                    .expect("epochs committed before the failure")
                    .seq,
                "{outcome:?}/{label}"
            );
            assert!(report.ops_completed > 0.0);
            outages.push(fo.outage());
        }
        assert!(
            outages[0] < outages[1] && outages[1] < outages[2],
            "{outcome:?}: outage must order tight < default < lossy, got {outages:?}"
        );
    }
    // Across outcomes under the default config: hangs are indistinguishable
    // from crashes, starvation is exactly 10x slower to detect.
    assert_eq!(default_detection[0], default_detection[1]);
    assert_eq!(
        default_detection[2].as_nanos(),
        default_detection[0].as_nanos() * STARVATION_DETECTION_FACTOR
    );
}

#[test]
fn buffered_network_output_is_released_only_at_commits() {
    let report = Scenario::builder()
        .vm_memory_mib(64)
        .vcpus(2)
        .workload(Box::new(Sockperf::new(SockperfLoad::A).with_rate(200.0)))
        .config(ReplicationConfig::fixed_period(SimDuration::from_secs(2)))
        .duration(SimDuration::from_secs(20))
        .build()
        .expect("valid scenario")
        .run();
    let lat = &report.packet_latencies;
    assert!(lat.count() > 1000);
    // Mean buffering is about half the period; nothing beats the epoch
    // commit out of the buffer.
    let mean = lat.mean().expect("packets released");
    assert!(
        (0.5..1.6).contains(&mean),
        "mean latency {mean}s should be near T/2 = 1s"
    );
    let max = lat.max().expect("packets released");
    assert!(max < 2.5, "no packet should wait much longer than T");
}

#[test]
fn unprotected_baseline_latency_is_microseconds() {
    let report = Scenario::builder()
        .vm_memory_mib(64)
        .vcpus(2)
        .workload(Box::new(Sockperf::new(SockperfLoad::A)))
        .unprotected()
        .duration(SimDuration::from_secs(10))
        .build()
        .expect("valid scenario")
        .run();
    let mean = report.packet_latencies.mean().expect("packets flowed");
    assert!(mean < 0.001, "bare-metal latency {mean}s should be sub-ms");
}

#[test]
fn remus_strategy_pairs_xen_with_xen_and_here_with_kvm() {
    // Indirect but end-to-end: resumption after failover uses the
    // secondary's activation path; kvmtool's is several times faster.
    let run = |cfg: ReplicationConfig| {
        Scenario::builder()
            .vm_memory_mib(64)
            .vcpus(2)
            .config(cfg)
            .duration(SimDuration::from_secs(20))
            .failure(FailurePlan {
                at: SimTime::from_secs(8),
                cause: FailureCause::Accident(DosOutcome::Crash),
                reattack_secondary: false,
            })
            .build()
            .expect("valid scenario")
            .run()
            .failover
            .expect("failover runs")
            .resumption_time()
    };
    let here = run(ReplicationConfig::fixed_period(SimDuration::from_secs(2)));
    let remus = run(ReplicationConfig::remus(SimDuration::from_secs(2)));
    assert!(
        remus > here * 3,
        "xen activation ({remus}) should dwarf kvmtool's ({here})"
    );
    assert_eq!(
        ReplicationConfig::remus(SimDuration::from_secs(2)).strategy,
        Strategy::Remus
    );
}
