//! # HERE — Fast VM Replication on Heterogeneous Hypervisors
//!
//! Facade crate for the reproduction of *"Fast VM Replication on
//! Heterogeneous Hypervisors for Robust Fault Tolerance"* (Middleware '23).
//! It re-exports every sub-crate of the workspace so that examples and
//! integration tests can use one coherent namespace:
//!
//! - [`sim`] — deterministic virtual-time simulation kernel;
//! - [`hypervisor`] — simulated Xen and KVM hypervisors;
//! - [`vmstate`] — common intermediate state format and translators;
//! - [`simnet`] — virtual network links and I/O buffering;
//! - [`workloads`] — guest workloads (memstress, YCSB, SPEC-like, sockperf);
//! - [`vulndb`] — hypervisor CVE dataset and exploit injection;
//! - [`replication`] — the paper's contribution: the HERE replication engine.
//!
//! ## Quickstart
//!
//! ```
//! use here::replication::{ReplicationConfig, Scenario};
//! use here::sim::SimDuration;
//!
//! // Replicate a small idle VM from Xen to KVM for 30 virtual seconds.
//! let report = Scenario::builder()
//!     .vm_memory_gib(1)
//!     .vcpus(2)
//!     .config(ReplicationConfig::fixed_period(SimDuration::from_secs(3)))
//!     .duration(SimDuration::from_secs(30))
//!     .build()
//!     .expect("valid scenario")
//!     .run();
//! assert!(report.checkpoints.len() > 5);
//! ```

pub use here_core as replication;
pub use here_hypervisor as hypervisor;
pub use here_sim_core as sim;
pub use here_simnet as simnet;
pub use here_vmstate as vmstate;
pub use here_vulndb as vulndb;
pub use here_workloads as workloads;
