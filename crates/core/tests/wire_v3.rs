//! Differential v2↔v3 wire test plane.
//!
//! Three layers of evidence that the v3 epoch-delta + columnar format is
//! safe to negotiate:
//!
//! * **Round-trip differential** — arbitrary dirty-page sequences encoded
//!   v2 and v3 restore byte-identical replica images at every lane count
//!   × chunk framing, including the abort → re-dirty → re-encode rebase.
//! * **Corruption rejection** — a flipped bit, truncation, wrong delta
//!   base or stale-version frame each raise a distinct [`WireError`] and
//!   never half-apply a page.
//! * **Session negotiation** — every {v2,v3} offer × replica-cap mix over
//!   star and chain fan-out agrees on `min(offer, cap)` per replica, a
//!   v2-capped session stays fingerprint-identical to the default path,
//!   and v3 sessions survive aborted epochs and parked-backlog catch-up
//!   with the same commit ledger as v2.

use bytes::{Bytes, BytesMut};
use here_core::dataplane::{
    encode_pages_round, BufferPool, EncodePlan, LanePool, PayloadMode, SegmentRestorer,
};
use here_core::{
    CoreError, FanoutMode, FaultKind, FaultPlan, ReplicationConfig, RunReport, Scenario,
    TopologyConfig,
};
use here_hypervisor::dirty::DirtyBitmap;
use here_hypervisor::memory::{GuestMemory, PageVersion};
use here_hypervisor::{PageId, VcpuId, PAGE_SIZE};
use here_sim_core::rate::ByteSize;
use here_sim_core::time::SimDuration;
use here_vmstate::wire::{
    classify_page, encode_page_batch_into, encode_page_columns_into, write_preamble,
    write_preamble_versioned, PageColumnsBatch, PagePayload, Record, ScatterStream, StreamDecoder,
    WireError, COLUMNS_HEADER_BYTES, PAGE_CONTENT_BYTES, PREAMBLE_BYTES, VERSION, VERSION_V3,
};
use here_vmstate::MemoryDelta;
use here_workloads::memstress::MemStress;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Round-trip differential: v2 and v3 land the same replica image.
// ---------------------------------------------------------------------------

/// Builds a guest whose dirty set is the (deduplicated) write list.
fn guest_with_writes(num_pages: u64, writes: &[(u64, u32)]) -> (GuestMemory, DirtyBitmap) {
    let mut memory = GuestMemory::new(ByteSize::from_bytes(num_pages * PAGE_SIZE))
        .expect("page-aligned size is valid");
    let mut dirty = DirtyBitmap::new(num_pages);
    for &(frame, vcpu) in writes {
        let page = PageId::new(frame % num_pages);
        memory
            .write_page(page, VcpuId::new(vcpu % 4))
            .expect("frame is in range");
        dirty.mark(page);
    }
    (memory, dirty)
}

/// Single-threaded reference: ascending bitmap walk, no chunking.
fn serial_reference(memory: &GuestMemory, dirty: &DirtyBitmap) -> MemoryDelta {
    let mut delta = MemoryDelta::new();
    for page in dirty.iter() {
        delta.push(page, memory.page(page).expect("dirty page exists"));
    }
    delta
}

/// Encodes `delta` per `plan` and decodes it into a fresh replica through
/// a restorer negotiated at `version`; returns the restored replica.
fn restore_with(
    memory: &GuestMemory,
    delta: &MemoryDelta,
    plan: &EncodePlan,
    pool: &mut BufferPool,
    lane_pool: &LanePool,
    version: u16,
) -> GuestMemory {
    let mut segments = Vec::new();
    encode_pages_round(delta, plan, pool, lane_pool, |_, seg| segments.push(seg));
    let mut replica = GuestMemory::new(memory.size()).expect("replica size is valid");
    let mut restorer = SegmentRestorer::new_versioned(&mut replica, true, version);
    for seg in &segments {
        restorer.accept(seg).expect("clean segment must decode");
    }
    assert_eq!(restorer.installed(), delta.len() as u64);
    for seg in segments {
        pool.recycle(seg);
    }
    replica
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The differential: for arbitrary dirty sets, the v2 materialized
    /// stream and the v3 columnar stream restore byte-identical replica
    /// images at every lane count × chunk framing.
    #[test]
    fn v2_and_v3_restore_identical_images_at_every_lane_and_chunk(
        num_pages in 64u64..2048,
        writes in proptest::collection::vec((0u64..4096, 0u32..8), 1..200),
    ) {
        let (memory, dirty) = guest_with_writes(num_pages, &writes);
        let delta = serial_reference(&memory, &dirty);
        let mut pool = BufferPool::new();
        let lane_pool = LanePool::new();
        for lanes in [1u32, 2, 4] {
            for chunk_pages in [None, Some(64)] {
                let v2_plan = EncodePlan {
                    lanes,
                    mode: PayloadMode::Materialized,
                    chunk_pages,
                    window: Some(4),
                };
                let v3_plan = EncodePlan {
                    lanes,
                    mode: PayloadMode::Columnar { base_epoch: 0 },
                    chunk_pages,
                    window: Some(4),
                };
                let via_v2 =
                    restore_with(&memory, &delta, &v2_plan, &mut pool, &lane_pool, VERSION);
                let via_v3 =
                    restore_with(&memory, &delta, &v3_plan, &mut pool, &lane_pool, VERSION_V3);
                prop_assert!(
                    memory.content_equals(&via_v2),
                    "v2 replica diverged at lanes={} chunk={:?}", lanes, chunk_pages
                );
                prop_assert!(
                    memory.content_equals(&via_v3),
                    "v3 replica diverged at lanes={} chunk={:?}", lanes, chunk_pages
                );
                prop_assert!(via_v2.content_equals(&via_v3));
            }
        }
    }

    /// Abort → re-dirty → re-encode: an epoch that never committed leaves
    /// the base unchanged, so the merged re-encode (old pages + new
    /// writes, bumped versions) must still restore both formats to the
    /// same image as the primary.
    #[test]
    fn reencode_after_abort_rebases_identically(
        num_pages in 64u64..1024,
        first in proptest::collection::vec((0u64..2048, 0u32..8), 1..100),
        redirty in proptest::collection::vec((0u64..2048, 0u32..8), 1..100),
    ) {
        let (mut memory, mut dirty) = guest_with_writes(num_pages, &first);
        // The first encode is aborted: nothing applies, nothing commits.
        let aborted = serial_reference(&memory, &dirty);
        drop(aborted);
        // Re-dirty (overlapping pages bump their versions) and re-encode
        // against the *same* base the replica still holds.
        for &(frame, vcpu) in &redirty {
            let page = PageId::new(frame % num_pages);
            memory.write_page(page, VcpuId::new(vcpu % 4)).expect("in range");
            dirty.mark(page);
        }
        let merged = serial_reference(&memory, &dirty);
        let mut pool = BufferPool::new();
        let lane_pool = LanePool::new();
        for lanes in [1u32, 4] {
            let v2_plan = EncodePlan {
                lanes,
                mode: PayloadMode::Materialized,
                chunk_pages: Some(64),
                window: None,
            };
            let v3_plan = EncodePlan {
                lanes,
                mode: PayloadMode::Columnar { base_epoch: 0 },
                chunk_pages: Some(64),
                window: None,
            };
            let via_v2 = restore_with(&memory, &merged, &v2_plan, &mut pool, &lane_pool, VERSION);
            let via_v3 =
                restore_with(&memory, &merged, &v3_plan, &mut pool, &lane_pool, VERSION_V3);
            prop_assert!(memory.content_equals(&via_v2));
            prop_assert!(via_v2.content_equals(&via_v3));
        }
    }
}

/// Content-level delta lifecycle: full pages seed epoch 1, sparse XOR
/// deltas ride epoch 2 against the committed copy, and an aborted epoch 2
/// re-encodes against the *same* base and still lands the final bytes.
#[test]
fn columnar_delta_payloads_apply_against_the_committed_base() {
    let mut base_page = vec![0u8; PAGE_CONTENT_BYTES];
    for (i, b) in base_page.iter_mut().enumerate() {
        *b = (i % 251) as u8;
    }
    // Epoch 1: first touch travels whole.
    let e1 = classify_page(&base_page, None);
    assert!(matches!(e1, PagePayload::Full(_)));
    let committed = e1
        .materialize(None)
        .expect("full page applies")
        .expect("full page has content");
    assert_eq!(committed, base_page);

    // Epoch 2: a sparse rewrite becomes XOR runs against epoch 1.
    let mut next = base_page.clone();
    next[100..116].copy_from_slice(&[0xEE; 16]);
    next[3000] ^= 0x55;
    let e2 = classify_page(&next, Some(&committed));
    assert!(
        matches!(e2, PagePayload::Delta(_)),
        "sparse rewrite must delta-encode"
    );

    // The abort: epoch 2 never commits, the guest keeps writing, and the
    // re-encode must target the *same* base (epoch 1), not the aborted
    // intermediate.
    let mut redirtied = next.clone();
    redirtied[200..208].copy_from_slice(&[0x11; 8]);
    let e2_retry = classify_page(&redirtied, Some(&committed));
    let restored = e2_retry
        .materialize(Some(&committed))
        .expect("delta applies against its base")
        .expect("delta has content");
    assert_eq!(
        restored, redirtied,
        "rebased re-encode must land the final bytes"
    );

    // Applying the aborted delta against the wrong base (the re-dirtied
    // image) demonstrates why the base check exists: bytes diverge.
    let misapplied = e2
        .materialize(Some(&redirtied))
        .expect("shape-valid")
        .expect("content");
    assert_ne!(
        misapplied, next,
        "a wrong base silently corrupts — hence DeltaBaseMismatch"
    );

    // Zero pages are suppressed entirely.
    assert_eq!(
        classify_page(&vec![0u8; PAGE_CONTENT_BYTES], None),
        PagePayload::Zero
    );
}

// ---------------------------------------------------------------------------
// Corruption rejection: distinct errors, never a half-applied page.
// ---------------------------------------------------------------------------

/// A small batch with every payload mode, encoded against base epoch 7.
fn sample_batch() -> PageColumnsBatch {
    let mut batch = PageColumnsBatch::new(7);
    let rec = |v: u32, w: u16| PageVersion {
        version: v,
        last_writer: w,
    };
    batch.push(PageId::new(1), rec(3, 0), PagePayload::Meta);
    batch.push(PageId::new(2), rec(1, 1), PagePayload::Zero);
    batch.push(
        PageId::new(5),
        rec(4, 2),
        PagePayload::Full(Bytes::from(vec![0xAB; PAGE_CONTENT_BYTES])),
    );
    batch.push(
        PageId::new(9),
        rec(2, 3),
        PagePayload::Delta(vec![(64, Bytes::from(vec![0x5A; 16]))]),
    );
    batch
}

/// A complete v3 stream: preamble + one page-columns frame.
fn sample_v3_stream() -> Vec<u8> {
    let mut out = BytesMut::new();
    write_preamble_versioned(&mut out, VERSION_V3);
    encode_page_columns_into(&sample_batch(), &mut out);
    out.to_vec()
}

fn decode_all(buf: Vec<u8>) -> Result<Vec<Record>, WireError> {
    StreamDecoder::new(Bytes::from(buf))?.collect_records()
}

/// Byte offsets within [`sample_v3_stream`]: preamble, then the 9-byte
/// frame header, then the 28-byte columns header, then the meta column.
const FRAME_AT: usize = PREAMBLE_BYTES;
const HEADER_AT: usize = FRAME_AT + 9;
const META_AT: usize = HEADER_AT + COLUMNS_HEADER_BYTES;

#[test]
fn clean_columns_frame_round_trips() {
    let records = decode_all(sample_v3_stream()).expect("clean stream decodes");
    assert_eq!(records.len(), 1);
    match &records[0] {
        Record::PageColumns(batch) => {
            assert_eq!(batch.base_epoch(), 7);
            assert_eq!(batch.entries(), sample_batch().entries());
            batch.check_base(7).expect("matching base passes");
        }
        other => panic!("expected a page-columns record, got {other:?}"),
    }
}

#[test]
fn truncation_at_any_layer_reports_truncated() {
    let buf = sample_v3_stream();
    // Mid-preamble, mid-frame-header, mid-columns-header, mid-column.
    for cut in [3, PREAMBLE_BYTES + 4, HEADER_AT + 10, buf.len() - 5] {
        let err = decode_all(buf[..cut].to_vec()).expect_err("truncated stream must fail");
        assert!(
            matches!(err, WireError::Truncated),
            "cut at {cut}: expected Truncated, got {err:?}"
        );
    }
}

#[test]
fn header_corruption_fails_the_outer_frame_checksum() {
    // The outer frame checksum covers exactly the 28-byte columns header,
    // so a flipped base-epoch or count byte is caught there.
    for at in [HEADER_AT + 2, HEADER_AT + 10] {
        let mut buf = sample_v3_stream();
        buf[at] ^= 0x01;
        let err = decode_all(buf).expect_err("corrupt header must fail");
        assert!(
            matches!(err, WireError::ChecksumMismatch { .. }),
            "flip at {at}: expected ChecksumMismatch, got {err:?}"
        );
    }
}

#[test]
fn meta_and_payload_column_corruption_are_distinct_errors() {
    let mut buf = sample_v3_stream();
    buf[META_AT] ^= 0x01; // first frame-gap varint
    let err = decode_all(buf).expect_err("corrupt meta column must fail");
    assert!(
        matches!(err, WireError::MetaColumnCorrupt { .. }),
        "expected MetaColumnCorrupt, got {err:?}"
    );

    let mut buf = sample_v3_stream();
    let last = buf.len() - 1; // inside the delta payload at the column's end
    buf[last] ^= 0x01;
    let err = decode_all(buf).expect_err("corrupt payload column must fail");
    assert!(
        matches!(err, WireError::PayloadColumnCorrupt { .. }),
        "expected PayloadColumnCorrupt, got {err:?}"
    );
}

#[test]
fn wrong_delta_base_is_rejected_before_any_apply() {
    let records = decode_all(sample_v3_stream()).expect("clean stream decodes");
    let Record::PageColumns(batch) = &records[0] else {
        panic!("expected a page-columns record");
    };
    match batch.check_base(6) {
        Err(WireError::DeltaBaseMismatch {
            stream_base,
            replica_base,
        }) => {
            assert_eq!(stream_base, 7);
            assert_eq!(replica_base, 6);
        }
        other => panic!("expected DeltaBaseMismatch, got {other:?}"),
    }
}

#[test]
fn stale_version_frames_are_rejected_after_negotiation() {
    // A v2 frame arriving on a session that negotiated v3…
    let mut v2 = BytesMut::new();
    write_preamble(&mut v2);
    encode_page_batch_into(
        &[(
            PageId::new(1),
            PageVersion {
                version: 1,
                last_writer: 0,
            },
        )],
        &mut v2,
    );
    let err = StreamDecoder::new_negotiated(ScatterStream::from(v2.freeze()), VERSION_V3)
        .expect_err("v2 stream on a v3 session is stale");
    assert_eq!(
        err,
        WireError::StaleVersion {
            negotiated: VERSION_V3,
            actual: VERSION,
        }
    );

    // …and the mirror image: a v3 frame on a v2-negotiated session.
    let err = StreamDecoder::new_negotiated(
        ScatterStream::from(Bytes::from(sample_v3_stream())),
        VERSION,
    )
    .expect_err("v3 stream on a v2 session is stale");
    assert_eq!(
        err,
        WireError::StaleVersion {
            negotiated: VERSION,
            actual: VERSION_V3,
        }
    );
}

#[test]
fn a_v2_decoder_treats_columns_frames_as_foreign() {
    // Columnar records only exist from v3 on: behind a v2 preamble the
    // tag must read as an unknown record, exactly as a pre-v3 build
    // would report it.
    let mut out = BytesMut::new();
    write_preamble(&mut out);
    encode_page_columns_into(&sample_batch(), &mut out);
    let err = decode_all(out.to_vec()).expect_err("v2 decoder must reject columns");
    assert_eq!(err, WireError::UnknownRecord(0x09));
}

#[test]
fn corrupt_segments_never_half_apply_a_page() {
    // A frame-only segment (the lane hand-off unit) carrying two full
    // pages; corruption in either column must install zero pages.
    let mut batch = PageColumnsBatch::new(0);
    for frame in [1u64, 2] {
        batch.push(
            PageId::new(frame),
            PageVersion {
                version: 1,
                last_writer: 0,
            },
            PagePayload::Full(Bytes::from(vec![frame as u8; PAGE_CONTENT_BYTES])),
        );
    }
    let mut seg = BytesMut::new();
    encode_page_columns_into(&batch, &mut seg);
    let clean = seg.freeze();
    let pristine = GuestMemory::new(ByteSize::from_bytes(64 * PAGE_SIZE)).expect("valid size");

    // Meta-column flip and payload-column flip, both mid-record.
    let meta_at = 9 + COLUMNS_HEADER_BYTES;
    let payload_at = clean.len() - 1;
    for at in [meta_at, payload_at] {
        let mut corrupt = clean.to_vec();
        corrupt[at] ^= 0x01;
        let mut replica = GuestMemory::new(pristine.size()).expect("valid size");
        let mut restorer = SegmentRestorer::new_versioned(&mut replica, false, VERSION_V3);
        let err = restorer
            .accept(&Bytes::from(corrupt))
            .expect_err("corrupt segment must be rejected");
        assert!(matches!(
            err,
            CoreError::Wire(
                WireError::MetaColumnCorrupt { .. } | WireError::PayloadColumnCorrupt { .. }
            )
        ));
        assert_eq!(
            restorer.installed(),
            0,
            "no page may install from a bad frame"
        );
        drop(restorer);
        assert!(
            replica.content_equals(&pristine),
            "flip at {at}: replica must stay pristine"
        );
    }
}

// ---------------------------------------------------------------------------
// Session negotiation: offers × caps × fan-out.
// ---------------------------------------------------------------------------

/// A small replicated VM under memory pressure, consistency-verified at
/// every commit.
fn session_run(
    name: &str,
    cfg: ReplicationConfig,
    secs: u64,
    plan: Option<FaultPlan>,
) -> RunReport {
    let mut builder = Scenario::builder()
        .name(name)
        .vm_memory_mib(64)
        .vcpus(4)
        .workload(Box::new(MemStress::with_percent(30).with_rate(20_000)))
        .config(cfg)
        .duration(SimDuration::from_secs(secs))
        .seed(7)
        .verify_consistency();
    if let Some(plan) = plan {
        builder = builder.chaos(plan);
    }
    builder.build().expect("scenario is valid").run()
}

fn three_replicas(fanout: FanoutMode) -> TopologyConfig {
    TopologyConfig {
        replicas: 3,
        quorum: 2,
        fanout,
        stale_epoch_lag: 8,
    }
}

/// The negotiation matrix: each replica lands on `min(offer, cap)`, on
/// both fan-out shapes, and every combination still commits and passes
/// per-commit consistency verification.
#[test]
fn negotiation_matrix_agrees_min_of_offer_and_cap() {
    let cap_mixes: [(Option<Vec<u16>>, &str); 3] = [
        (None, "all"),
        (Some(vec![VERSION, VERSION, VERSION]), "v2v2v2"),
        (Some(vec![VERSION_V3, VERSION, VERSION_V3]), "v3v2v3"),
    ];
    for offer in [VERSION, VERSION_V3] {
        for (caps, cap_label) in &cap_mixes {
            for fanout in [FanoutMode::Star, FanoutMode::Chain] {
                let mut cfg = ReplicationConfig::fixed_period(SimDuration::from_secs(2))
                    .with_topology(three_replicas(fanout))
                    .with_wire_version(offer);
                if let Some(caps) = caps {
                    cfg = cfg.with_replica_wire_caps(caps.clone());
                }
                let expected: Vec<u16> = (0..3)
                    .map(|i| {
                        offer.min(
                            caps.as_ref()
                                .and_then(|c| c.get(i))
                                .copied()
                                .unwrap_or(VERSION_V3),
                        )
                    })
                    .collect();
                let name = format!("wirev3-nego-v{offer}-{cap_label}-{fanout:?}");
                let report = session_run(&name, cfg, 12, None);
                assert_eq!(
                    report.wire_versions, expected,
                    "{name}: negotiated versions must be min(offer, cap)"
                );
                assert!(!report.commits.is_empty(), "{name}: epochs must commit");
                assert!(report.consistency_checks > 0, "{name}: verification ran");
            }
        }
    }
}

/// The compatibility keystone: a session that *offers* v3 but meets a
/// v2-only replica set must fall back onto the byte-identical default
/// path — same fingerprint as a run that never heard of v3.
#[test]
fn v2_capped_session_is_fingerprint_identical_to_the_default_path() {
    let default = session_run(
        "wirev3-bitcompat",
        ReplicationConfig::fixed_period(SimDuration::from_secs(2)),
        12,
        None,
    );
    let capped = session_run(
        "wirev3-bitcompat",
        ReplicationConfig::fixed_period(SimDuration::from_secs(2))
            .with_wire_v3()
            .with_replica_wire_caps(vec![VERSION]),
        12,
        None,
    );
    assert_eq!(default.wire_versions, vec![VERSION]);
    assert_eq!(capped.wire_versions, vec![VERSION]);
    assert_eq!(
        default.fingerprint(),
        capped.fingerprint(),
        "a v2-negotiated session must be bit-identical to the pre-v3 path"
    );
}

/// An aborted epoch under v3: the retry budget exhausts, the epoch rolls
/// its pages forward, and the re-encode against the unchanged base
/// commits — with the exact commit ledger the v2 session produces, and
/// replica/primary equality verified at every commit.
#[test]
fn v3_session_survives_an_aborted_epoch_with_the_v2_ledger() {
    let plan = || FaultPlan::new(5).with_event(3, FaultKind::Drop { attempts: 10 });
    let v2 = session_run(
        "wirev3-abort",
        ReplicationConfig::fixed_period(SimDuration::from_secs(2)),
        30,
        Some(plan()),
    );
    let v3 = session_run(
        "wirev3-abort",
        ReplicationConfig::fixed_period(SimDuration::from_secs(2)).with_wire_v3(),
        30,
        Some(plan()),
    );
    for report in [&v2, &v3] {
        let stats = report.chaos.as_ref().expect("plan armed");
        assert_eq!(stats.epochs_aborted, 1);
        assert!(
            report.commits.iter().all(|c| c.seq != 3),
            "aborted epoch never commits"
        );
        assert!(
            report.commits.iter().any(|c| c.seq == 4),
            "the rebased retry commits"
        );
        assert!(report.consistency_checks > 0);
    }
    let seqs = |r: &RunReport| r.commits.iter().map(|c| c.seq).collect::<Vec<_>>();
    assert_eq!(
        seqs(&v2),
        seqs(&v3),
        "v3 must keep v2's commit ledger across an abort"
    );
}

/// The parked-backlog regression: a replica partitioned for six epochs
/// misses those bases entirely; when it heals, its catch-up apply must
/// fold the backlog in and rebase — never apply a delta against the wrong
/// base. `verify_consistency` makes the engine assert replica/primary
/// equality at every commit, so a mis-based apply fails the run.
#[test]
fn v3_backlog_catchup_never_applies_against_the_wrong_base() {
    let plan = || FaultPlan::new(7).with_partition_span(4..=9, &[2], 10);
    let cfg = |wire_v3: bool| {
        let cfg = ReplicationConfig::fixed_period(SimDuration::from_secs(2))
            .with_topology(three_replicas(FanoutMode::Star));
        if wire_v3 {
            cfg.with_wire_v3()
        } else {
            cfg
        }
    };
    let v3 = session_run("wirev3-backlog", cfg(true), 30, Some(plan()));
    assert_eq!(v3.wire_versions, vec![VERSION_V3; 3]);
    assert!(v3.failover.is_none());
    // The quorum (replicas 0 and 1) kept committing through the outage.
    for seq in 4..=9 {
        assert!(
            v3.commits.iter().any(|c| c.seq == seq),
            "epoch {seq} must commit on the surviving quorum"
        );
    }
    // Replica 2 missed the partitioned epochs, then resumed acking after
    // the heal — which on v3 means its first post-heal apply rebased the
    // parked backlog onto a base older than the stream's.
    let trail = &v3.replica_acks[2];
    assert_eq!(trail.replica, 2);
    let acked: Vec<u64> = trail.acks.iter().map(|a| a.seq).collect();
    assert!(
        acked.iter().all(|&seq| !(4..=9).contains(&seq)),
        "partitioned epochs must never be acked: {acked:?}"
    );
    assert!(
        acked.iter().any(|&seq| seq >= 10),
        "replica 2 must catch up after the heal: {acked:?}"
    );
    assert!(v3.consistency_checks > 0);
    // And the whole arc is wire-version invariant: the v2 session's
    // ledger is identical.
    let v2 = session_run("wirev3-backlog", cfg(false), 30, Some(plan()));
    let seqs = |r: &RunReport| r.commits.iter().map(|c| c.seq).collect::<Vec<_>>();
    assert_eq!(seqs(&v2), seqs(&v3));
}
