//! Seeded chaos suite: random fault plans must never violate the
//! failover invariants.
//!
//! Every run executes with `verify_consistency`, so the engine itself
//! asserts after each committed checkpoint that the replica's memory and
//! vCPU state are byte-identical to the paused primary's — a torn or
//! partially-applied epoch panics the run and fails the test. On top of
//! that the tests check the commit ledger stays strictly monotone, that a
//! failover provably resumes from the last fully-acked epoch, and that
//! the same seed replays byte-identically.

use here_core::{FaultKind, FaultPlan, ReplicationConfig, RunReport, Scenario, Stage};
use here_hypervisor::fault::DosOutcome;
use here_sim_core::time::SimDuration;
use here_workloads::memstress::MemStress;
use proptest::prelude::*;

/// A small replicated VM under memory pressure, with the given fault plan
/// armed and replica/primary equality verified at every commit.
fn chaos_run(run_seed: u64, plan: FaultPlan) -> RunReport {
    Scenario::builder()
        .name("chaos")
        .vm_memory_mib(64)
        .vcpus(4)
        .workload(Box::new(MemStress::with_percent(30).with_rate(20_000)))
        .config(ReplicationConfig::fixed_period(SimDuration::from_secs(2)))
        .duration(SimDuration::from_secs(30))
        .seed(run_seed)
        .verify_consistency()
        .chaos(plan)
        .build()
        .expect("chaos scenario is valid")
        .run()
}

#[test]
fn mid_transfer_primary_crash_resumes_from_last_acked_epoch() {
    // Epochs 1–3 commit; the crash fires at the entry of epoch 4's
    // Transfer stage, while checkpoint 4 is in flight and unacked.
    let plan = FaultPlan::new(99).with_event(
        4,
        FaultKind::PrimaryFault {
            outcome: DosOutcome::Crash,
            stage: Stage::Transfer,
        },
    );
    let report = chaos_run(7, plan);
    let fo = report.failover.expect("an injected crash must fail over");
    assert_eq!(report.commits.last().expect("epochs 1-3 committed").seq, 3);
    assert_eq!(
        fo.resumed_from_checkpoint, 3,
        "the replica must activate from the last fully-acked epoch, not the in-flight one"
    );
    assert!(
        report.checkpoints.iter().all(|c| c.seq <= 3),
        "the interrupted epoch must not produce a checkpoint record"
    );
    assert_eq!(report.chaos.expect("plan armed").faults_injected, 1);
    assert!(
        report.ops_completed > 0.0,
        "service continues on the activated replica"
    );
}

#[test]
fn corruption_and_link_flap_are_retried_to_recovery() {
    let plan = FaultPlan::new(5)
        .with_event(2, FaultKind::Corrupt { attempts: 2 })
        .with_event(3, FaultKind::LinkFlap { attempts_down: 1 });
    let report = chaos_run(11, plan);
    let stats = report.chaos.expect("plan armed");
    assert_eq!(
        stats.transfer_retries, 3,
        "2 corrupt + 1 link-down attempts"
    );
    assert_eq!(
        stats.transfer_recoveries, 2,
        "both epochs deliver in the end"
    );
    assert_eq!(stats.epochs_aborted, 0);
    assert!(report.failover.is_none());
    // Every started epoch still committed, in order.
    assert_eq!(report.commits.len(), report.checkpoints.len());
    let retry_spans = report
        .spans
        .iter()
        .filter(|s| s.name == "transfer_retry")
        .count();
    assert_eq!(retry_spans, 3, "each retry lands in the span trace");
}

#[test]
fn exhausted_retry_budget_aborts_the_epoch_and_replication_continues() {
    // 10 scheduled drops exceed the default 4-attempt budget: epoch 3 is
    // aborted, its pages roll into epoch 4, and the run keeps going.
    let plan = FaultPlan::new(5).with_event(3, FaultKind::Drop { attempts: 10 });
    let report = chaos_run(11, plan);
    let stats = report.chaos.expect("plan armed");
    assert_eq!(stats.epochs_aborted, 1);
    assert_eq!(
        stats.transfer_retries, 3,
        "attempts 1-3 retry, the 4th aborts"
    );
    assert!(report.failover.is_none());
    assert!(
        report.commits.iter().all(|c| c.seq != 3),
        "the aborted epoch must never enter the commit ledger"
    );
    assert!(
        report.commits.iter().any(|c| c.seq == 4),
        "the epoch after the abort must commit (and carries the re-dirtied pages)"
    );
    // The abort widens the worst commit-to-commit staleness window past
    // two epochs.
    assert!(report.worst_staleness().expect("commits exist") >= SimDuration::from_secs(4));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary generated fault plans: the replica never restores a torn
    /// epoch (engine-asserted via `verify_consistency`), commit sequence
    /// numbers stay strictly monotone, aborted epochs never commit, and
    /// any failover resumes exactly from the last fully-acked epoch.
    #[test]
    fn random_fault_plans_preserve_failover_invariants(
        plan_seed in 0u64..(1u64 << 48),
        run_seed in 0u64..(1u64 << 48),
    ) {
        let plan = FaultPlan::generate(plan_seed, 12);
        let report = chaos_run(run_seed, plan.clone());
        for w in report.commits.windows(2) {
            prop_assert!(w[1].seq > w[0].seq, "ledger must be strictly monotone");
            prop_assert!(w[1].at >= w[0].at);
        }
        let scheduled_primary_fault = plan
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::PrimaryFault { .. }));
        if let Some(fo) = &report.failover {
            prop_assert!(scheduled_primary_fault, "only the plan can down the primary");
            prop_assert_eq!(
                fo.resumed_from_checkpoint,
                report.commits.last().map_or(0, |c| c.seq),
                "failover must activate the last fully-acked epoch"
            );
        }
        // A checkpoint record exists exactly for the committed epochs.
        let committed: Vec<u64> = report.commits.iter().map(|c| c.seq).collect();
        let recorded: Vec<u64> = report.checkpoints.iter().map(|c| c.seq).collect();
        prop_assert_eq!(committed, recorded);
    }

    /// Determinism: the same (plan seed, run seed) pair replays to an
    /// identical report fingerprint — faults, retries, commits, spans and
    /// all — which is what makes any chaos failure a one-line reproducer.
    #[test]
    fn same_seed_replays_byte_identically(
        plan_seed in 0u64..(1u64 << 48),
        run_seed in 0u64..(1u64 << 48),
    ) {
        let a = chaos_run(run_seed, FaultPlan::generate(plan_seed, 12));
        let b = chaos_run(run_seed, FaultPlan::generate(plan_seed, 12));
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a.commits, b.commits);
        prop_assert_eq!(a.chaos, b.chaos);
    }
}
