//! Scenario-level equivalence of the pipelined encode path: streaming
//! chunk segments to the consumer through a bounded window must be
//! invisible to everything the engine observes.
//!
//! Every run executes with `verify_consistency`, so the engine itself
//! asserts after each committed checkpoint that the replica's memory and
//! vCPU state are byte-identical to the paused primary's — the replica
//! image cannot silently diverge. On top of that the tests demand the
//! whole `RunReport::fingerprint()` (stage events with their byte
//! counts, commits, spans, consistency checks) match the barrier path
//! bit-for-bit at every lane count × chunk size × window depth.

use here_core::{ReplicationConfig, RunReport, Scenario};
use here_sim_core::time::SimDuration;
use here_workloads::memstress::MemStress;
use proptest::prelude::*;

/// A small replicated VM under memory pressure with the given encode
/// configuration, replica/primary equality verified at every commit.
fn run_with(cfg: ReplicationConfig) -> RunReport {
    Scenario::builder()
        .name("pipelined")
        .vm_memory_mib(64)
        .vcpus(4)
        .workload(Box::new(MemStress::with_percent(30).with_rate(20_000)))
        .config(cfg)
        .duration(SimDuration::from_secs(10))
        .seed(42)
        .verify_consistency()
        .build()
        .expect("pipelined scenario is valid")
        .run()
}

fn chunked(lanes: u32, chunk_pages: u32) -> ReplicationConfig {
    ReplicationConfig::fixed_period(SimDuration::from_secs(2))
        .with_encode_lanes(lanes)
        .with_encode_chunk_pages(chunk_pages)
}

/// The windowed (streamed) encode must replay the barrier encode exactly:
/// same commits, same per-epoch byte counts, same report fingerprint —
/// for every lane count the data plane shards across and chunk sizes
/// that divide the delta evenly, raggedly, or not at all.
#[test]
fn streamed_encode_matches_barrier_at_every_lane_and_chunk_size() {
    for lanes in [1u32, 2, 4, 8] {
        for chunk_pages in [64u32, 512] {
            let barrier = run_with(chunked(lanes, chunk_pages));
            assert!(
                !barrier.commits.is_empty(),
                "the barrier run must commit epochs"
            );
            for depth in [1u32, 4] {
                let streamed =
                    run_with(chunked(lanes, chunk_pages).with_overlap_channel_depth(depth));
                assert_eq!(
                    barrier.fingerprint(),
                    streamed.fingerprint(),
                    "window depth {depth} changed the report at lanes={lanes} chunk={chunk_pages}"
                );
                assert_eq!(barrier.commits, streamed.commits);
                let bytes = |r: &RunReport| -> Vec<(u64, u64)> {
                    r.stage_events.iter().map(|e| (e.seq, e.bytes)).collect()
                };
                assert_eq!(
                    bytes(&barrier),
                    bytes(&streamed),
                    "streamed framing must ship the identical byte count per stage"
                );
            }
        }
    }
}

/// The pure window knob (no chunk framing) also reuses the legacy
/// per-lane shard layout, so it must match the fully default session.
#[test]
fn window_without_chunk_framing_matches_the_legacy_shard_path() {
    let legacy = run_with(ReplicationConfig::fixed_period(SimDuration::from_secs(2)));
    let windowed = run_with(
        ReplicationConfig::fixed_period(SimDuration::from_secs(2)).with_overlap_channel_depth(2),
    );
    assert_eq!(legacy.fingerprint(), windowed.fingerprint());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary (chunk size, window depth) pairs: the streamed pipeline
    /// never changes what the barrier path would have reported.
    #[test]
    fn arbitrary_chunk_and_depth_replay_the_barrier_run(
        chunk_pages in 16u32..2048,
        depth in 1u32..8,
    ) {
        let barrier = run_with(chunked(4, chunk_pages));
        let streamed = run_with(chunked(4, chunk_pages).with_overlap_channel_depth(depth));
        prop_assert_eq!(barrier.fingerprint(), streamed.fingerprint());
    }
}
