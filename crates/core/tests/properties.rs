//! Property tests for the parallel checkpoint data plane: worker count
//! must never change what a checkpoint observes or ships.

use here_core::dataplane::{
    decode_and_restore, encode_pages_parallel, BufferPool, LanePool, PayloadMode,
};
use here_core::transfer::{collect_chunked, collect_chunked_into, CollectScratch};
use here_hypervisor::dirty::DirtyBitmap;
use here_hypervisor::memory::GuestMemory;
use here_hypervisor::{PageId, VcpuId, PAGE_SIZE};
use here_sim_core::rate::ByteSize;
use here_vmstate::wire::{ScatterStream, StreamEncoder};
use here_vmstate::MemoryDelta;
use proptest::prelude::*;

/// Builds a guest whose dirty set is the (deduplicated) write list.
fn guest_with_writes(num_pages: u64, writes: &[(u64, u32)]) -> (GuestMemory, DirtyBitmap) {
    let mut memory = GuestMemory::new(ByteSize::from_bytes(num_pages * PAGE_SIZE))
        .expect("page-aligned size is valid");
    let mut dirty = DirtyBitmap::new(num_pages);
    for &(frame, vcpu) in writes {
        let page = PageId::new(frame % num_pages);
        memory
            .write_page(page, VcpuId::new(vcpu % 4))
            .expect("frame is in range");
        dirty.mark(page);
    }
    (memory, dirty)
}

/// Single-threaded reference: ascending bitmap walk, no chunking.
fn serial_reference(memory: &GuestMemory, dirty: &DirtyBitmap) -> MemoryDelta {
    let mut delta = MemoryDelta::new();
    for page in dirty.iter() {
        delta.push(page, memory.page(page).expect("dirty page exists"));
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `collect_chunked` at 2/4/8 workers is byte-identical to the
    /// single-threaded reference, for arbitrary bitmaps and memory sizes
    /// (including sizes that are not multiples of the 512-page chunk).
    #[test]
    fn collect_chunked_is_worker_invariant(
        num_pages in 1u64..6000,
        writes in proptest::collection::vec((0u64..8192, 0u32..8), 0..600),
    ) {
        let (memory, dirty) = guest_with_writes(num_pages, &writes);
        let reference = serial_reference(&memory, &dirty);
        for workers in [1u32, 2, 4, 8] {
            let got = collect_chunked(&memory, &dirty, workers);
            prop_assert_eq!(
                got.entries(),
                reference.entries(),
                "workers={} diverged from the serial reference",
                workers
            );
        }
    }

    /// The pooled variant reusing scratch across rounds matches too, and
    /// the full encode→decode→restore datapath lands the same replica
    /// state at every lane count.
    #[test]
    fn pooled_datapath_is_lane_invariant(
        num_pages in 64u64..3000,
        writes in proptest::collection::vec((0u64..4096, 0u32..8), 1..300),
    ) {
        let (memory, dirty) = guest_with_writes(num_pages, &writes);
        let reference = serial_reference(&memory, &dirty);
        let mut scratch = CollectScratch::new();
        let mut delta = MemoryDelta::new();
        let mut pool = BufferPool::new();
        let lane_pool = LanePool::new();
        for lanes in [2u32, 4, 8] {
            delta.clear();
            collect_chunked_into(&memory, &dirty, lanes, &mut scratch, &mut delta);
            prop_assert_eq!(delta.entries(), reference.entries());

            let mut stream = ScatterStream::from(StreamEncoder::new().finish());
            for seg in encode_pages_parallel(
                &delta,
                lanes,
                PayloadMode::Materialized,
                &mut pool,
                &lane_pool,
            ) {
                stream.push(seg);
            }
            let mut replica = GuestMemory::new(memory.size()).expect("replica size is valid");
            let installed = decode_and_restore(stream.clone(), &mut replica, true)
                .expect("stream must decode");
            prop_assert_eq!(installed, delta.len() as u64);
            prop_assert!(memory.content_equals(&replica), "replica diverged at lanes={}", lanes);
            for seg in stream.into_segments() {
                pool.recycle(seg);
            }
        }
    }
}
