//! The device manager: I/O buffering and the failover device switch (§5.2,
//! §7.3).
//!
//! While replication runs, every outgoing packet of the protected VM is
//! buffered and only released once the covering checkpoint commits. On
//! failover, the manager instructs the guest (through its agent module) to
//! unplug the primary hypervisor's PV devices and plug the secondary's
//! equivalents — identities preserved, rings reset.

use here_hypervisor::devices::AgentEvent;
use here_hypervisor::kind::HypervisorKind;
use here_hypervisor::vm::Vm;
use here_sim_core::rate::ByteSize;
use here_sim_core::time::SimTime;
use here_simnet::buffer::{IoBuffer, ReleasedPacket};
use here_vmstate::translate::StateTranslator;

/// The device manager of one replication session.
#[derive(Debug, Default)]
pub struct DeviceManager {
    io: IoBuffer,
    switches_performed: u32,
    packets_buffered: u64,
    packets_released: u64,
    packets_discarded: u64,
}

/// Summary of one failover device switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSwitchReport {
    /// Devices unplugged and replaced.
    pub devices_switched: usize,
    /// The family of the new device models.
    pub new_family: HypervisorKind,
    /// Outgoing packets discarded together with the rolled-back execution.
    pub packets_discarded: usize,
}

impl DeviceManager {
    /// Creates an idle device manager.
    pub fn new() -> Self {
        DeviceManager::default()
    }

    /// Buffers one outgoing packet emitted at `now`.
    pub fn buffer_outgoing(&mut self, size: ByteSize, now: SimTime) -> u64 {
        self.packets_buffered += 1;
        self.io.enqueue(size, now)
    }

    /// Checkpoint commit: releases everything buffered.
    pub fn on_commit(&mut self, now: SimTime) -> Vec<ReleasedPacket> {
        let released = self.io.release_all(now);
        self.packets_released += released.len() as u64;
        released
    }

    /// The underlying buffer (observability).
    pub fn io(&self) -> &IoBuffer {
        &self.io
    }

    /// Number of device switches performed over the session.
    pub fn switches_performed(&self) -> u32 {
        self.switches_performed
    }

    /// Cumulative packets buffered over the session.
    pub fn packets_buffered(&self) -> u64 {
        self.packets_buffered
    }

    /// Cumulative packets released at commits.
    pub fn packets_released(&self) -> u64 {
        self.packets_released
    }

    /// Cumulative packets discarded by failover rollbacks.
    pub fn packets_discarded(&self) -> u64 {
        self.packets_discarded
    }

    /// Failover: discard uncommitted output, then run the agent protocol on
    /// the replica — unplug all primary-family devices, plug the
    /// secondary-family equivalents, and signal completion.
    pub fn switch_devices(
        &mut self,
        replica: &mut Vm,
        translator: Option<&StateTranslator>,
    ) -> DeviceSwitchReport {
        let packets_discarded = self.io.discard_all();
        self.packets_discarded += packets_discarded as u64;
        let new_family = translator.map(|t| t.target()).unwrap_or_else(|| {
            replica
                .devices()
                .first()
                .map(|d| d.model.family())
                .unwrap_or(HypervisorKind::Xen)
        });
        let new_devices = match translator {
            Some(t) => t.translate_devices(replica.devices()),
            // Homogeneous (Remus) failover: same models, fresh rings.
            None => replica
                .devices()
                .iter()
                .map(|d| d.rehosted_for(new_family))
                .collect(),
        };
        replica.agent_mut().handle(AgentEvent::UnplugAll);
        for dev in &new_devices {
            replica.agent_mut().handle(AgentEvent::Plug(dev.clone()));
        }
        replica
            .agent_mut()
            .handle(AgentEvent::MigrationComplete { now_on: new_family });
        let devices_switched = new_devices.len();
        *replica.devices_mut() = new_devices;
        self.switches_performed += 1;
        DeviceSwitchReport {
            devices_switched,
            new_family,
            packets_discarded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_hypervisor::cpuid::CpuidPolicy;
    use here_hypervisor::host::Hypervisor;
    use here_hypervisor::vm::{RunState, VmConfig};
    use here_hypervisor::KvmHypervisor;
    use here_vmstate::reconcile;

    fn replica_on_kvm() -> (KvmHypervisor, here_hypervisor::VmId) {
        let mut kvm = KvmHypervisor::new(ByteSize::from_gib(16));
        let contract = reconcile(&CpuidPolicy::xen_default(), &CpuidPolicy::kvm_default());
        let cfg = VmConfig::new("replica", ByteSize::from_mib(16), 2)
            .unwrap()
            .with_cpuid(contract.cpuid);
        let id = kvm.create_shell(cfg).unwrap();
        (kvm, id)
    }

    #[test]
    fn commit_releases_buffered_packets_in_order() {
        let mut dm = DeviceManager::new();
        dm.buffer_outgoing(ByteSize::from_bytes(64), SimTime::from_secs(1));
        dm.buffer_outgoing(ByteSize::from_bytes(64), SimTime::from_secs(2));
        let out = dm.on_commit(SimTime::from_secs(3));
        assert_eq!(out.len(), 2);
        assert!(out[0].packet.created_at < out[1].packet.created_at);
        assert!(dm.io().is_empty());
        assert_eq!(dm.packets_buffered(), 2);
        assert_eq!(dm.packets_released(), 2);
        assert_eq!(dm.packets_discarded(), 0);
    }

    #[test]
    fn heterogeneous_switch_moves_devices_to_virtio() {
        let (mut kvm, id) = replica_on_kvm();
        let mut dm = DeviceManager::new();
        dm.buffer_outgoing(ByteSize::from_bytes(100), SimTime::ZERO);
        let translator = StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Kvm).unwrap();
        // Replica shell was created on KVM, but in a real session its
        // device *description* came from the Xen side; emulate that.
        let vm = kvm.vm_mut(id).unwrap();
        *vm.devices_mut() = here_hypervisor::devices::standard_device_set(HypervisorKind::Xen);
        let report = dm.switch_devices(vm, Some(&translator));
        assert_eq!(report.devices_switched, 3);
        assert_eq!(report.new_family, HypervisorKind::Kvm);
        assert_eq!(report.packets_discarded, 1);
        assert!(vm
            .devices()
            .iter()
            .all(|d| d.model.family() == HypervisorKind::Kvm));
        // Agent saw unplug-then-plug protocol.
        let log = vm.agent().event_log();
        assert!(matches!(log[0], AgentEvent::UnplugAll));
        assert!(matches!(
            log.last(),
            Some(AgentEvent::MigrationComplete { .. })
        ));
    }

    #[test]
    fn homogeneous_switch_keeps_family_and_resets_rings() {
        let mut kvm = KvmHypervisor::new(ByteSize::from_gib(16));
        let cfg = VmConfig::new("r", ByteSize::from_mib(16), 2).unwrap();
        let id = kvm.create_shell(cfg).unwrap();
        let vm = kvm.vm_mut(id).unwrap();
        assert_eq!(vm.run_state(), RunState::Shell);
        let mut dm = DeviceManager::new();
        let report = dm.switch_devices(vm, None);
        assert_eq!(report.new_family, HypervisorKind::Kvm);
        assert!(vm.devices().iter().all(|d| d.ring.is_quiescent()));
        assert_eq!(dm.switches_performed(), 1);
    }
}
