//! Structured stage-event tracing for the checkpoint pipeline.
//!
//! Every checkpoint flows through the six pipeline stages of §3.2 —
//! pause, harvest, translate, transfer, ack, resume — and each stage
//! boundary emits one [`StageEvent`] carrying the virtual timestamp, the
//! page and byte counts, and the stage's contribution to the pause. The
//! per-checkpoint records in [`crate::report`] and the figure harness in
//! `here-bench` are derived from these events, so the breakdown of the
//! paper's pause model `t = αN/P + C` (Eq. 4) falls out of the trace
//! instead of ad-hoc field plumbing.

use serde::{Deserialize, Serialize};
use std::fmt;

use here_sim_core::time::{SimDuration, SimTime};

/// One stage of the checkpoint pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// The VM is paused; Remus additionally re-enters its toolstack here.
    Pause,
    /// Dirty pages are scanned and copied out of guest memory
    /// (the `αN/P` term of Eq. 4).
    Harvest,
    /// vCPU/device state is captured, translated to the common format and
    /// the checkpoint stream is encoded (the constant `C` term).
    Translate,
    /// The stream crosses the replication link and is installed on the
    /// replica (the wire term).
    Transfer,
    /// The replica's acknowledgement travels back (one RTT); the primary
    /// commits buffered output on receipt.
    Ack,
    /// The VM resumes execution.
    Resume,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Pause,
        Stage::Harvest,
        Stage::Translate,
        Stage::Transfer,
        Stage::Ack,
        Stage::Resume,
    ];

    /// Whether this stage's duration counts toward the VM-visible pause
    /// `t` (everything except the ack, which overlaps the resume path in
    /// the paper's asynchronous protocol accounting).
    pub fn counts_toward_pause(self) -> bool {
        self != Stage::Ack
    }

    /// Short lower-case label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Pause => "pause",
            Stage::Harvest => "harvest",
            Stage::Translate => "translate",
            Stage::Transfer => "transfer",
            Stage::Ack => "ack",
            Stage::Resume => "resume",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One stage boundary of one checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageEvent {
    /// Checkpoint sequence number the stage belongs to (1-based; 0 is the
    /// seeding stop-and-copy).
    pub seq: u64,
    /// The stage.
    pub stage: Stage,
    /// Virtual time at which the stage began, relative to measurement
    /// start.
    pub at: SimTime,
    /// How long the stage took.
    pub duration: SimDuration,
    /// Wall-clock time the stage's *real* work took, where the stage does
    /// real work (the harvest copy, the translate encode, the transfer
    /// apply); `None` for purely simulated stages. This lets the
    /// real-time datapath bench and the simulator share one trace schema:
    /// `duration` is always the virtual cost model, `wall_nanos` the
    /// measured host time.
    pub wall_nanos: Option<u64>,
    /// Pages the stage handled (0 where not meaningful).
    pub pages: u64,
    /// Bytes the stage handled: raw page payload for harvest, encoded
    /// stream size for translate/transfer, 0 elsewhere.
    pub bytes: u64,
}

/// An append-only collector of [`StageEvent`]s for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTrace {
    events: Vec<StageEvent>,
}

impl StageTrace {
    /// Empty trace.
    pub fn new() -> Self {
        StageTrace::default()
    }

    /// Appends one event.
    pub fn record(&mut self, event: StageEvent) {
        self.events.push(event);
    }

    /// All events in emission order.
    pub fn events(&self) -> &[StageEvent] {
        &self.events
    }

    /// Discards everything collected so far (used when a warmup window
    /// closes and measurement restarts).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Consumes the trace, yielding the raw event list.
    pub fn into_events(self) -> Vec<StageEvent> {
        self.events
    }

    /// Events belonging to checkpoint `seq`, in stage order.
    pub fn for_seq(&self, seq: u64) -> Vec<StageEvent> {
        self.events
            .iter()
            .filter(|e| e.seq == seq)
            .copied()
            .collect()
    }

    /// The VM-visible pause of checkpoint `seq`: the sum of its
    /// pause-counting stage durations (see
    /// [`Stage::counts_toward_pause`]).
    pub fn pause_of(&self, seq: u64) -> SimDuration {
        self.events
            .iter()
            .filter(|e| e.seq == seq && e.stage.counts_toward_pause())
            .map(|e| e.duration)
            .sum()
    }

    /// Total time spent in `stage` across the whole run.
    pub fn stage_total(&self, stage: Stage) -> SimDuration {
        self.events
            .iter()
            .filter(|e| e.stage == stage)
            .map(|e| e.duration)
            .sum()
    }

    /// Distinct checkpoint sequence numbers present, in first-seen order.
    pub fn seqs(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for e in &self.events {
            if out.last() != Some(&e.seq) && !out.contains(&e.seq) {
                out.push(e.seq);
            }
        }
        out
    }
}

/// Summarises a flat event list per stage: `(stage, total duration)` in
/// pipeline order. Used by `here-bench` for the per-stage breakdown table.
pub fn stage_totals(events: &[StageEvent]) -> Vec<(Stage, SimDuration)> {
    Stage::ALL
        .iter()
        .map(|&s| {
            (
                s,
                events
                    .iter()
                    .filter(|e| e.stage == s)
                    .map(|e| e.duration)
                    .sum(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, stage: Stage, at_ms: u64, dur_ms: u64, pages: u64) -> StageEvent {
        StageEvent {
            seq,
            stage,
            at: SimTime::ZERO + SimDuration::from_millis(at_ms),
            duration: SimDuration::from_millis(dur_ms),
            wall_nanos: None,
            pages,
            bytes: pages * 4096,
        }
    }

    fn sample() -> StageTrace {
        let mut t = StageTrace::new();
        t.record(ev(1, Stage::Pause, 0, 8, 0));
        t.record(ev(1, Stage::Harvest, 8, 20, 100));
        t.record(ev(1, Stage::Translate, 28, 4, 100));
        t.record(ev(1, Stage::Transfer, 32, 10, 100));
        t.record(ev(1, Stage::Ack, 42, 1, 0));
        t.record(ev(1, Stage::Resume, 43, 0, 0));
        t.record(ev(2, Stage::Pause, 100, 8, 0));
        t.record(ev(2, Stage::Harvest, 108, 30, 200));
        t.record(ev(2, Stage::Translate, 138, 4, 200));
        t.record(ev(2, Stage::Transfer, 142, 20, 200));
        t.record(ev(2, Stage::Ack, 162, 1, 0));
        t.record(ev(2, Stage::Resume, 163, 0, 0));
        t
    }

    #[test]
    fn pause_excludes_only_the_ack() {
        let t = sample();
        assert_eq!(t.pause_of(1), SimDuration::from_millis(8 + 20 + 4 + 10));
        assert_eq!(t.pause_of(2), SimDuration::from_millis(8 + 30 + 4 + 20));
    }

    #[test]
    fn per_stage_totals_cover_all_stages_in_order() {
        let t = sample();
        let totals = stage_totals(t.events());
        assert_eq!(totals.len(), 6);
        assert_eq!(totals[0], (Stage::Pause, SimDuration::from_millis(16)));
        assert_eq!(totals[1], (Stage::Harvest, SimDuration::from_millis(50)));
        assert_eq!(totals[4], (Stage::Ack, SimDuration::from_millis(2)));
    }

    #[test]
    fn seq_queries_group_events() {
        let t = sample();
        assert_eq!(t.seqs(), vec![1, 2]);
        let one = t.for_seq(1);
        assert_eq!(one.len(), 6);
        assert_eq!(one[0].stage, Stage::Pause);
        assert_eq!(one[5].stage, Stage::Resume);
    }

    #[test]
    fn clear_resets_the_trace() {
        let mut t = sample();
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.pause_of(1), SimDuration::ZERO);
    }
}
