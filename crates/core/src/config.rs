//! Replication configuration and the calibrated cost model.
//!
//! Every duration the simulation reports flows through [`CostModel`], which
//! holds the constants calibrated against the paper's testbed (two Xeon
//! Gold 6130 servers, Omni-Path replication link — §8.1). Centralising them
//! keeps all experiments priced identically and makes the calibration
//! auditable in one place.

use serde::{Deserialize, Serialize};

use here_sim_core::time::SimDuration;

/// How the checkpoint period is controlled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PeriodPolicy {
    /// A fixed period `T`, as in Remus and in HERE's `D = 0 %`
    /// configurations (`T` is then forced to `T_max`).
    Fixed(SimDuration),
    /// HERE's dynamic control (§5.4, Algorithm 1): keep measured
    /// degradation near `d_target` (soft) without ever exceeding `t_max`
    /// (hard), stepping the period by `sigma`.
    Dynamic {
        /// Desired degradation `D` in `(0, 1)`; soft limit.
        d_target: f64,
        /// Maximum tolerable period `T_max`; hard limit.
        /// [`SimDuration::MAX`] means unbounded (`T_max = ∞` in Table 6).
        t_max: SimDuration,
        /// Adjustment step `σ`.
        sigma: SimDuration,
    },
}

/// Default adjustment step σ (250 ms).
pub const DEFAULT_SIGMA: SimDuration = SimDuration::from_millis(250);

/// Which replication strategy runs the data plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// The Remus baseline: single-threaded tracking and transfer,
    /// homogeneous pair (Xen → Xen).
    Remus,
    /// HERE: per-vCPU seeding threads, round-robin chunked checkpoint
    /// workers, heterogeneous pair (Xen → KVM/kvmtool) with state
    /// translation.
    Here,
}

/// How an encoded epoch fans out across the replica set during the
/// *Transfer* stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FanoutMode {
    /// The primary ships the epoch to every replica directly; the stage
    /// lasts as long as the slowest per-replica transfer (they overlap
    /// on independent links).
    #[default]
    Star,
    /// Chained replication: the epoch hops replica 0 → 1 → … → N−1, so
    /// the stage lasts the *sum* of the per-hop transfers but the
    /// primary's own egress stays a single stream.
    Chain,
}

/// Shape of the replica set a session protects the primary with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Number of replicas (at least 1). Replica 0 is always the
    /// strategy's canonical secondary, so `replicas = 1` reproduces the
    /// paper's 1→1 pair exactly.
    pub replicas: u32,
    /// Acks required before an epoch commits; clamped to
    /// `[1, replicas]` by [`TopologyConfig::effective_quorum`].
    pub quorum: u32,
    /// Star or chained fan-out of the Transfer stage.
    pub fanout: FanoutMode,
    /// Epoch lag past which a trailing replica is declared stale.
    pub stale_epoch_lag: u64,
}

impl TopologyConfig {
    /// The classic single-replica pair: `N = 1`, `quorum = 1`, star
    /// fan-out (degenerate), staleness bound of 8 epochs.
    pub fn single() -> Self {
        TopologyConfig {
            replicas: 1,
            quorum: 1,
            fanout: FanoutMode::Star,
            stale_epoch_lag: 8,
        }
    }

    /// The quorum the ledger actually enforces: `quorum` clamped to
    /// `[1, replicas]`.
    pub fn effective_quorum(&self) -> u32 {
        self.quorum.clamp(1, self.replicas.max(1))
    }
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig::single()
    }
}

/// Heartbeat parameters for failure detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatConfig {
    /// Interval between heartbeats.
    pub period: SimDuration,
    /// Consecutive misses before the secondary declares the primary dead.
    pub missed_threshold: u32,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            period: SimDuration::from_millis(10),
            missed_threshold: 3,
        }
    }
}

impl HeartbeatConfig {
    /// Worst-case time from a primary failure to its detection.
    /// Saturates at [`SimDuration::MAX`] for extreme configurations
    /// (e.g. a `SimDuration::MAX` period) instead of overflowing.
    pub fn detection_latency(&self) -> SimDuration {
        SimDuration::from_nanos(
            self.period
                .as_nanos()
                .saturating_mul(self.missed_threshold as u64 + 1),
        )
    }
}

/// Bounded-retry policy for the checkpoint *Transfer* stage: a failed
/// attempt (dropped, corrupted, refused, or sent into a downed link) is
/// retried after exponential backoff; exhausting the budget aborts the
/// epoch and the previous committed checkpoint stays authoritative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total transfer attempts per checkpoint (at least 1).
    pub max_attempts: u32,
    /// Backoff charged after the first failed attempt; doubles per retry.
    pub backoff_base: SimDuration,
    /// Upper bound on a single backoff.
    pub backoff_cap: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: SimDuration::from_micros(500),
            backoff_cap: SimDuration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// The backoff charged after failed attempt `attempt` (0-based):
    /// `backoff_base · 2^attempt`, saturating, capped at `backoff_cap`.
    pub fn backoff_after(&self, attempt: u32) -> SimDuration {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        let nanos = self.backoff_base.as_nanos().saturating_mul(factor);
        SimDuration::from_nanos(nanos.min(self.backoff_cap.as_nanos()))
    }
}

/// The calibrated timing model (see DESIGN.md, *Calibration constants*).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// CPU cost to scan, copy and serialise one dirty page on a single
    /// stream during *bulk migration*.
    pub migrate_scan_per_page: SimDuration,
    /// Effective wire cost per page during bulk migration (shared by all
    /// streams; includes protocol overhead beyond raw Omni-Path rate).
    pub migrate_wire_per_page: SimDuration,
    /// Total CPU work per dirty page during a *checkpoint* round (bitmap
    /// read-and-clear, page copy into the staging buffer, batching,
    /// syscalls). Worker threads split this, so the pause-latency
    /// contribution is this divided by the effective parallelism, while
    /// §8.7's CPU accounting charges the full amount.
    pub checkpoint_cpu_per_page: SimDuration,
    /// Wire cost per page during a checkpoint round.
    pub checkpoint_wire_per_page: SimDuration,
    /// Per-thread fixed CPU cost of participating in one checkpoint
    /// (wakeup, chunk plan walk, result merge).
    pub checkpoint_thread_overhead: SimDuration,
    /// Constant per-checkpoint cost: pause/resume, vCPU and device state
    /// capture/transfer/ack.
    pub checkpoint_const: SimDuration,
    /// Extra constant cost Remus pays per checkpoint (its toolstack path
    /// re-enters xl/libxl; HERE keeps a persistent session).
    pub remus_extra_const: SimDuration,
    /// One-time setup cost of HERE's multithreaded migration (thread pool
    /// and per-vCPU PML ring setup) — why HERE is slightly *slower* than
    /// Xen for 1–2 GiB VMs in Fig. 6.
    pub here_migration_setup: SimDuration,
    /// Marginal efficiency of each additional transfer thread during
    /// checkpoints (1.0 would be perfect scaling; the paper's observed
    /// gains imply ~0.55).
    pub parallel_efficiency: f64,
    /// Marginal efficiency of each additional migrator thread during
    /// seeding — lower than the checkpoint path because per-vCPU rings
    /// need cross-thread reconciliation (Fig. 6's ~25 % idle gain).
    pub migration_parallel_efficiency: f64,
    /// Guest-side disturbance per pause (cache/TLB refill, scheduler churn)
    /// — the paper's explanation for why high degradation targets slightly
    /// overshoot (§8.6).
    pub pause_disturbance: SimDuration,
    /// Time to switch the replica's device set on failover (agent unplug +
    /// replug of the secondary's PV devices).
    pub device_switch: SimDuration,
    /// Time to translate and load vCPU/platform state on failover.
    pub state_load: SimDuration,
    /// Baseline resident set of the replication engine (thread stacks,
    /// session state, chunk plan).
    pub rss_base_mib: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            migrate_scan_per_page: SimDuration::from_nanos(3300),
            migrate_wire_per_page: SimDuration::from_nanos(1700),
            checkpoint_cpu_per_page: SimDuration::from_nanos(2000),
            checkpoint_wire_per_page: SimDuration::from_nanos(550),
            checkpoint_thread_overhead: SimDuration::from_millis(2),
            checkpoint_const: SimDuration::from_millis(4),
            remus_extra_const: SimDuration::from_millis(8),
            here_migration_setup: SimDuration::from_millis(1800),
            parallel_efficiency: 0.55,
            migration_parallel_efficiency: 0.30,
            pause_disturbance: SimDuration::from_millis(9),
            device_switch: SimDuration::from_millis(3),
            state_load: SimDuration::from_micros(600),
            rss_base_mib: 64,
        }
    }
}

impl CostModel {
    /// Effective parallelism of `threads` transfer threads:
    /// `1 + (threads − 1) · efficiency`.
    pub fn effective_parallelism(&self, threads: u32) -> f64 {
        assert!(threads >= 1, "at least one transfer thread is required");
        1.0 + (threads as f64 - 1.0) * self.parallel_efficiency
    }

    /// Duration of one bulk-migration copy round of `pages` pages using
    /// `threads` streams: scan parallelises, the wire is shared.
    pub fn migration_round(&self, pages: u64, threads: u32) -> SimDuration {
        assert!(threads >= 1, "at least one transfer thread is required");
        let p = 1.0 + (threads as f64 - 1.0) * self.migration_parallel_efficiency;
        let scan = self.migrate_scan_per_page.mul_f64(pages as f64 / p);
        let wire = self.migrate_wire_per_page * pages;
        scan + wire
    }

    /// The scan/copy component of a checkpoint pause: `αN/P` of Eq. 4 —
    /// what the pipeline's *Harvest* stage costs.
    pub fn checkpoint_scan(&self, pages: u64, threads: u32) -> SimDuration {
        let p = self.effective_parallelism(threads);
        self.checkpoint_cpu_per_page.mul_f64(pages as f64 / p)
    }

    /// The wire component of a checkpoint pause — what the pipeline's
    /// *Transfer* stage costs.
    pub fn checkpoint_wire(&self, pages: u64) -> SimDuration {
        self.checkpoint_wire_per_page * pages
    }

    /// Pause duration `t` of a checkpoint copying `pages` dirty pages with
    /// `threads` workers — the paper's Equation 4, `t = αN/P + C`.
    ///
    /// Computed as the sum of the per-stage components
    /// ([`CostModel::checkpoint_scan`], [`CostModel::checkpoint_wire`],
    /// [`CostModel::checkpoint_const`](CostModel), and the strategy's extra
    /// constant), so the pipeline's stage attribution can never drift from
    /// this total.
    pub fn checkpoint_pause(&self, pages: u64, threads: u32, strategy: Strategy) -> SimDuration {
        self.checkpoint_scan(pages, threads)
            + self.checkpoint_wire(pages)
            + self.checkpoint_const
            + crate::pipeline::runtime(strategy).pause_extra(self)
    }

    /// Total CPU time the replication engine burns for one checkpoint of
    /// `pages` pages with `threads` workers (the §8.7 accounting: work is
    /// split across threads but its *sum* is what the host pays).
    pub fn checkpoint_cpu_work(&self, pages: u64, threads: u32) -> SimDuration {
        self.checkpoint_cpu_per_page * pages + self.checkpoint_thread_overhead * threads as u64
    }
}

/// Full configuration of a replication session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicationConfig {
    /// Data-plane strategy (Remus baseline or HERE).
    pub strategy: Strategy,
    /// Checkpoint period control.
    pub period: PeriodPolicy,
    /// Number of transfer threads (HERE defaults to one per vCPU; Remus is
    /// fixed at 1 regardless of this field).
    pub transfer_threads: Option<u32>,
    /// Number of encode lanes the checkpoint data plane shards each delta
    /// across (`None` reuses the transfer thread count). Lane count never
    /// changes the encoded bytes, only how many workers produce them.
    pub encode_lanes: Option<u32>,
    /// Heartbeat configuration.
    pub heartbeat: HeartbeatConfig,
    /// Retry/backoff policy of the checkpoint transfer stage.
    pub retry: RetryPolicy,
    /// The calibrated cost model.
    pub costs: CostModel,
    /// Maximum pre-copy iterations before the seeding migration forces its
    /// stop-and-copy (Xen's default of 5, §3.2).
    pub max_migration_iterations: u32,
    /// Dirty-page count at or below which the seeding migration converges
    /// to its stop-and-copy.
    pub migration_dirty_threshold: u64,
    /// Replica-set shape: how many replicas, the commit quorum, and the
    /// Transfer fan-out mode.
    pub topology: TopologyConfig,
    /// Chunk-framed encode: `None` keeps the legacy one-record-per-lane
    /// shard framing (byte-identical streams to prior releases); `Some(p)`
    /// frames one page-batch record per `p`-page chunk, giving the
    /// work-stealing lane pool enough tasks to balance.
    pub encode_chunk_pages: Option<u32>,
    /// Bounded hand-off window (in chunks) between the encode lanes and
    /// the stream consumer: `None` keeps the barrier (segments delivered
    /// after the whole encode); `Some(d)` streams each chunk as soon as it
    /// and its predecessors finish, with lanes blocking `d` chunks ahead.
    /// Produces identical bytes at every depth — only wall-clock overlap
    /// changes.
    pub overlap_channel_depth: Option<u32>,
    /// Overlap the Transfer stage's wire time with the encode scan in
    /// *virtual* time: once the first chunk is framed the wire starts
    /// draining, so the epoch costs `max(scan, wire)` plus a one-chunk
    /// residue instead of `scan + wire`. Off by default (fingerprints of
    /// existing experiments stay byte-identical).
    pub overlap_transfer: bool,
    /// Arms the replication health plane: per-epoch windowed series,
    /// per-replica health state machines, and the deterministic alert
    /// engine, with replica-labelled metric families and alert spans in
    /// the trace. Off by default (fingerprints and metric schemas of
    /// existing experiments stay byte-identical).
    pub health_plane: bool,
    /// Arms postmortem incident capture: the first armed trigger (alert
    /// raised, failover, epoch abort, or explicit request) snapshots a
    /// replayable [`IncidentBundle`](crate::postmortem::IncidentBundle)
    /// into the run report. Off by default.
    pub postmortem_capture: bool,
    /// Flight-recorder ring capacity in events: `None` keeps the default
    /// ([`FLIGHT_RECORDER_CAPACITY`](crate::telemetry::FLIGHT_RECORDER_CAPACITY),
    /// 1024) so existing expositions stay byte-identical; `Some(n)` sizes
    /// the trailing incident-capture window per run.
    pub flight_recorder_capacity: Option<usize>,
    /// Wire format version the primary *offers* each replica: 2 (default,
    /// byte-identical to prior releases) or 3 (epoch-delta columnar
    /// records). Each replica negotiates `min(offer, its capability)`, so
    /// a v3 offer still speaks v2 to v2-capped replicas.
    pub wire_version: u16,
    /// Per-replica wire capability ceilings, indexed like the replica set:
    /// `None` means every replica is fully capable (negotiates the offer);
    /// a missing entry defaults to fully capable.
    pub replica_wire_caps: Option<Vec<u16>>,
}

/// Default for [`ReplicationConfig::max_migration_iterations`].
pub const DEFAULT_MAX_MIGRATION_ITERATIONS: u32 = 5;

/// Default for [`ReplicationConfig::migration_dirty_threshold`].
pub const DEFAULT_MIGRATION_DIRTY_THRESHOLD: u64 = 256;

impl ReplicationConfig {
    /// HERE with a fixed checkpoint period (the paper's
    /// `HERE(T, 0 %)` configurations).
    pub fn fixed_period(t: SimDuration) -> Self {
        ReplicationConfig {
            strategy: Strategy::Here,
            period: PeriodPolicy::Fixed(t),
            transfer_threads: None,
            encode_lanes: None,
            heartbeat: HeartbeatConfig::default(),
            retry: RetryPolicy::default(),
            costs: CostModel::default(),
            max_migration_iterations: DEFAULT_MAX_MIGRATION_ITERATIONS,
            migration_dirty_threshold: DEFAULT_MIGRATION_DIRTY_THRESHOLD,
            topology: TopologyConfig::single(),
            encode_chunk_pages: None,
            overlap_channel_depth: None,
            overlap_transfer: false,
            health_plane: false,
            postmortem_capture: false,
            flight_recorder_capacity: None,
            wire_version: here_vmstate::wire::VERSION,
            replica_wire_caps: None,
        }
    }

    /// HERE with dynamic period control: degradation target `d_target`
    /// and hard period cap `t_max` (`SimDuration::MAX` for ∞).
    ///
    /// # Panics
    ///
    /// Panics if `d_target` is outside `(0, 1)`.
    pub fn dynamic(d_target: f64, t_max: SimDuration) -> Self {
        assert!(
            d_target > 0.0 && d_target < 1.0,
            "degradation target must be in (0,1), got {d_target}"
        );
        ReplicationConfig {
            strategy: Strategy::Here,
            period: PeriodPolicy::Dynamic {
                d_target,
                t_max,
                sigma: DEFAULT_SIGMA,
            },
            transfer_threads: None,
            encode_lanes: None,
            heartbeat: HeartbeatConfig::default(),
            retry: RetryPolicy::default(),
            costs: CostModel::default(),
            max_migration_iterations: DEFAULT_MAX_MIGRATION_ITERATIONS,
            migration_dirty_threshold: DEFAULT_MIGRATION_DIRTY_THRESHOLD,
            topology: TopologyConfig::single(),
            encode_chunk_pages: None,
            overlap_channel_depth: None,
            overlap_transfer: false,
            health_plane: false,
            postmortem_capture: false,
            flight_recorder_capacity: None,
            wire_version: here_vmstate::wire::VERSION,
            replica_wire_caps: None,
        }
    }

    /// The Remus baseline with its fixed period.
    pub fn remus(t: SimDuration) -> Self {
        ReplicationConfig {
            strategy: Strategy::Remus,
            period: PeriodPolicy::Fixed(t),
            transfer_threads: Some(1),
            encode_lanes: None,
            heartbeat: HeartbeatConfig::default(),
            retry: RetryPolicy::default(),
            costs: CostModel::default(),
            max_migration_iterations: DEFAULT_MAX_MIGRATION_ITERATIONS,
            migration_dirty_threshold: DEFAULT_MIGRATION_DIRTY_THRESHOLD,
            topology: TopologyConfig::single(),
            encode_chunk_pages: None,
            overlap_channel_depth: None,
            overlap_transfer: false,
            health_plane: false,
            postmortem_capture: false,
            flight_recorder_capacity: None,
            wire_version: here_vmstate::wire::VERSION,
            replica_wire_caps: None,
        }
    }

    /// Overrides the number of transfer threads.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.transfer_threads = Some(threads);
        self
    }

    /// Overrides the heartbeat configuration used for failure detection.
    pub fn with_heartbeat(mut self, heartbeat: HeartbeatConfig) -> Self {
        self.heartbeat = heartbeat;
        self
    }

    /// Overrides the transfer retry/backoff policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the replication topology (replica count, quorum size,
    /// fan-out mode and staleness bound).
    pub fn with_topology(mut self, topology: TopologyConfig) -> Self {
        self.topology = topology;
        self
    }

    /// Overrides the adjustment step σ (dynamic policies only; ignored for
    /// fixed periods).
    pub fn with_sigma(mut self, new_sigma: SimDuration) -> Self {
        if let PeriodPolicy::Dynamic { sigma, .. } = &mut self.period {
            *sigma = new_sigma;
        }
        self
    }

    /// Overrides the seeding-migration convergence bounds (pre-copy
    /// iteration cap and dirty-page threshold).
    pub fn with_migration_limits(mut self, max_iterations: u32, dirty_threshold: u64) -> Self {
        self.max_migration_iterations = max_iterations;
        self.migration_dirty_threshold = dirty_threshold;
        self
    }

    /// The thread count the data plane will actually use for a VM with
    /// `vcpus` vCPUs: Remus is single-threaded by construction; HERE
    /// defaults to one thread per vCPU. Delegates to the strategy's
    /// [`ReplicationStrategy`](crate::pipeline::ReplicationStrategy) impl.
    pub fn effective_threads(&self, vcpus: u32) -> u32 {
        crate::pipeline::runtime(self.strategy).effective_threads(self.transfer_threads, vcpus)
    }

    /// Overrides the encode-lane count of the checkpoint data plane.
    pub fn with_encode_lanes(mut self, lanes: u32) -> Self {
        self.encode_lanes = Some(lanes);
        self
    }

    /// Encode lanes the data plane shards each delta across: the override
    /// if set, otherwise the effective transfer thread count.
    pub fn effective_encode_lanes(&self, threads: u32) -> u32 {
        self.encode_lanes.unwrap_or(threads).max(1)
    }

    /// Switches the encode path to chunk framing: one page-batch record
    /// per `pages`-page chunk.
    pub fn with_encode_chunk_pages(mut self, pages: u32) -> Self {
        self.encode_chunk_pages = Some(pages.max(1));
        self
    }

    /// Streams encoded chunks to the consumer through a bounded window of
    /// `depth` chunks instead of barriering on the whole encode.
    pub fn with_overlap_channel_depth(mut self, depth: u32) -> Self {
        self.overlap_channel_depth = Some(depth.max(1));
        self
    }

    /// Enables virtual-time encode/wire overlap accounting for the
    /// Transfer stage.
    pub fn with_overlap_transfer(mut self) -> Self {
        self.overlap_transfer = true;
        self
    }

    /// Arms the replication health plane (windowed series, per-replica
    /// health state machines, deterministic alerts).
    pub fn with_health_plane(mut self) -> Self {
        self.health_plane = true;
        self
    }

    /// Arms postmortem incident capture: the first armed trigger (alert
    /// raised, failover, epoch abort, or explicit end-of-run request)
    /// freezes an [`IncidentSnapshot`](crate::postmortem::IncidentSnapshot)
    /// into the run report.
    pub fn with_postmortem_capture(mut self) -> Self {
        self.postmortem_capture = true;
        self
    }

    /// Sizes the flight-recorder ring to `capacity` events for this run
    /// (clamped to at least 1). Without this, the ring keeps its default
    /// capacity and all expositions stay byte-identical.
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        self.flight_recorder_capacity = Some(capacity.max(1));
        self
    }

    /// Offers wire format v3 (epoch-delta columnar records) to the
    /// replica set; each replica negotiates `min(3, its capability)`.
    pub fn with_wire_v3(self) -> Self {
        self.with_wire_version(here_vmstate::wire::VERSION_V3)
    }

    /// Offers an explicit wire format version, clamped to the supported
    /// range (v2..=v3).
    pub fn with_wire_version(mut self, version: u16) -> Self {
        self.wire_version =
            version.clamp(here_vmstate::wire::VERSION, here_vmstate::wire::VERSION_V3);
        self
    }

    /// Caps each replica's wire capability (indexed like the replica set;
    /// missing entries stay fully capable) — how a mixed v2/v3 replica
    /// pool is modelled.
    pub fn with_replica_wire_caps(mut self, caps: Vec<u16>) -> Self {
        self.replica_wire_caps = Some(caps);
        self
    }

    /// The wire version replica `index` negotiates under this config:
    /// `min(offer, capability)`, clamped to the supported range.
    pub fn negotiated_wire_version(&self, index: usize) -> u16 {
        let cap = self
            .replica_wire_caps
            .as_ref()
            .and_then(|caps| caps.get(index))
            .copied()
            .unwrap_or(here_vmstate::wire::VERSION_V3);
        self.wire_version
            .min(cap)
            .clamp(here_vmstate::wire::VERSION, here_vmstate::wire::VERSION_V3)
    }

    /// Chunks a `pages`-page epoch will be framed into: one per chunk when
    /// chunk framing is on, otherwise one per encode lane shard.
    pub fn epoch_chunks(&self, pages: u64, threads: u32) -> u64 {
        match self.encode_chunk_pages {
            Some(p) => pages.div_ceil(u64::from(p.max(1))).max(1),
            None => u64::from(self.effective_encode_lanes(threads)).min(pages.max(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_parallelism_scales_with_efficiency() {
        let m = CostModel::default();
        assert_eq!(m.effective_parallelism(1), 1.0);
        let p4 = m.effective_parallelism(4);
        assert!((p4 - 2.65).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_pause_is_linear_in_pages() {
        let m = CostModel::default();
        let t1 = m.checkpoint_pause(100_000, 1, Strategy::Here);
        let t2 = m.checkpoint_pause(200_000, 1, Strategy::Here);
        let slope1 = (t1 - m.checkpoint_const).as_nanos();
        let slope2 = (t2 - m.checkpoint_const).as_nanos();
        assert_eq!(slope2, slope1 * 2);
    }

    #[test]
    fn here_checkpoints_beat_remus_at_equal_pages() {
        let m = CostModel::default();
        let remus = m.checkpoint_pause(480_000, 1, Strategy::Remus);
        let here = m.checkpoint_pause(480_000, 4, Strategy::Here);
        let gain = 1.0 - here.as_secs_f64() / remus.as_secs_f64();
        // The loaded-VM improvement the paper reports is ~49 %.
        assert!((0.40..0.75).contains(&gain), "gain {gain}");
    }

    #[test]
    fn remus_is_always_single_threaded() {
        let cfg = ReplicationConfig::remus(SimDuration::from_secs(3)).with_threads(8);
        assert_eq!(cfg.effective_threads(4), 1);
        let here = ReplicationConfig::fixed_period(SimDuration::from_secs(3));
        assert_eq!(here.effective_threads(4), 4);
        assert_eq!(here.with_threads(2).effective_threads(4), 2);
    }

    #[test]
    #[should_panic(expected = "degradation target")]
    fn dynamic_rejects_bad_target() {
        ReplicationConfig::dynamic(1.5, SimDuration::from_secs(10));
    }

    #[test]
    fn migration_limits_default_to_xen_values_and_override() {
        let cfg = ReplicationConfig::fixed_period(SimDuration::from_secs(5));
        assert_eq!(cfg.max_migration_iterations, 5);
        assert_eq!(cfg.migration_dirty_threshold, 256);
        let cfg = cfg.with_migration_limits(3, 1024);
        assert_eq!(cfg.max_migration_iterations, 3);
        assert_eq!(cfg.migration_dirty_threshold, 1024);
    }

    #[test]
    fn pause_components_sum_to_the_total() {
        let m = CostModel::default();
        for &(pages, threads) in &[(1_000u64, 1u32), (480_000, 4), (7, 2)] {
            let here = m.checkpoint_pause(pages, threads, Strategy::Here);
            assert_eq!(
                here,
                m.checkpoint_scan(pages, threads) + m.checkpoint_wire(pages) + m.checkpoint_const
            );
            let remus = m.checkpoint_pause(pages, 1, Strategy::Remus);
            assert_eq!(
                remus,
                m.checkpoint_scan(pages, 1)
                    + m.checkpoint_wire(pages)
                    + m.checkpoint_const
                    + m.remus_extra_const
            );
        }
    }

    #[test]
    fn heartbeat_detection_latency() {
        let hb = HeartbeatConfig::default();
        assert_eq!(hb.detection_latency(), SimDuration::from_millis(40));
    }

    #[test]
    fn heartbeat_detection_latency_saturates() {
        let hb = HeartbeatConfig {
            period: SimDuration::MAX,
            missed_threshold: 3,
        };
        assert_eq!(hb.detection_latency(), SimDuration::MAX);
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let retry = RetryPolicy::default();
        assert_eq!(retry.backoff_after(0), SimDuration::from_micros(500));
        assert_eq!(retry.backoff_after(1), SimDuration::from_millis(1));
        assert_eq!(retry.backoff_after(2), SimDuration::from_millis(2));
        // 500 µs · 2^7 = 64 ms > the 50 ms cap.
        assert_eq!(retry.backoff_after(7), SimDuration::from_millis(50));
        // Huge attempt counts saturate instead of overflowing the shift.
        assert_eq!(retry.backoff_after(200), SimDuration::from_millis(50));
    }

    #[test]
    fn heartbeat_and_retry_builders_override() {
        let hb = HeartbeatConfig {
            period: SimDuration::from_millis(2),
            missed_threshold: 1,
        };
        let retry = RetryPolicy {
            max_attempts: 9,
            backoff_base: SimDuration::from_micros(10),
            backoff_cap: SimDuration::from_millis(1),
        };
        let cfg = ReplicationConfig::fixed_period(SimDuration::from_secs(1))
            .with_heartbeat(hb)
            .with_retry(retry);
        assert_eq!(cfg.heartbeat, hb);
        assert_eq!(cfg.retry, retry);
    }

    #[test]
    fn wire_version_negotiation_clamps_and_caps() {
        let cfg = ReplicationConfig::fixed_period(SimDuration::from_secs(1));
        assert_eq!(cfg.wire_version, 2);
        assert_eq!(cfg.negotiated_wire_version(0), 2);
        let v3 = cfg
            .clone()
            .with_wire_v3()
            .with_replica_wire_caps(vec![3, 2]);
        assert_eq!(v3.wire_version, 3);
        assert_eq!(v3.negotiated_wire_version(0), 3);
        assert_eq!(v3.negotiated_wire_version(1), 2);
        // Missing cap entries stay fully capable.
        assert_eq!(v3.negotiated_wire_version(2), 3);
        // Offers outside the supported range are clamped.
        assert_eq!(cfg.with_wire_version(99).wire_version, 3);
    }

    #[test]
    fn migration_rounds_prefer_threads_for_big_counts() {
        let m = CostModel::default();
        let single = m.migration_round(5_000_000, 1);
        let multi = m.migration_round(5_000_000, 4);
        assert!(multi < single);
        // But the wire term bounds the benefit.
        assert!(multi > m.migrate_wire_per_page * 5_000_000);
    }
}
