//! Run records — what the experiment harness consumes to regenerate the
//! paper's tables and figures.
//!
//! Per-checkpoint records are not plumbed field-by-field out of the
//! engine: they are *derived* from the [`StageEvent`]s the pipeline emits
//! ([`CheckpointRecord::from_events`]), so the report can never disagree
//! with the trace.

use serde::{Deserialize, Serialize};

use here_sim_core::metrics::{Histogram, TimeSeries};
use here_sim_core::rate::ByteSize;
use here_sim_core::time::{SimDuration, SimTime};

use crate::chaos::ChaosStats;
use crate::failover::{CommitEntry, FailoverRecord, ReplicaAcks};
use crate::period::{degradation, PeriodDecision};
use crate::postmortem::IncidentSnapshot;
use crate::telemetry::TelemetrySnapshot;
use crate::trace::{Stage, StageEvent};
use here_telemetry::span::Span;

/// One checkpoint round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointRecord {
    /// Sequence number (1-based).
    pub seq: u64,
    /// When the pause began.
    pub paused_at: SimTime,
    /// The epoch length `T` that preceded this checkpoint.
    pub period: SimDuration,
    /// The measured pause `t`.
    pub pause: SimDuration,
    /// Dirty pages copied.
    pub dirty_pages: u64,
    /// Measured degradation `D_T = t / (t + T)`.
    pub degradation: f64,
    /// Wall-clock time of the checkpoint's real work: the sum of the
    /// stage events' `wall_nanos` where measured, `None` when the run was
    /// purely simulated.
    pub wall_nanos: Option<u64>,
}

impl CheckpointRecord {
    /// Derives the record for one checkpoint from its stage events:
    /// `paused_at` is the *Pause* event's timestamp, `pause` is the sum of
    /// the pause-counting stage durations, `dirty_pages` comes from the
    /// *Harvest* event, and the degradation follows from `pause` and the
    /// epoch length `T` that preceded the checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty or lacks the *Pause*/*Harvest* stages —
    /// the pipeline always emits the full six-stage sequence.
    pub fn from_events(period: SimDuration, events: &[StageEvent]) -> CheckpointRecord {
        let seq = events
            .first()
            .expect("a checkpoint emits at least one stage event")
            .seq;
        debug_assert!(events.iter().all(|e| e.seq == seq));
        let paused = events
            .iter()
            .find(|e| e.stage == Stage::Pause)
            .expect("every checkpoint begins with a Pause event");
        let harvested = events
            .iter()
            .find(|e| e.stage == Stage::Harvest)
            .expect("every checkpoint harvests dirty pages");
        let pause: SimDuration = events
            .iter()
            .filter(|e| e.stage.counts_toward_pause())
            .map(|e| e.duration)
            .sum();
        let wall_nanos = events
            .iter()
            .filter_map(|e| e.wall_nanos)
            .fold(None, |acc: Option<u64>, w| Some(acc.unwrap_or(0) + w));
        CheckpointRecord {
            seq,
            paused_at: paused.at,
            period,
            pause,
            dirty_pages: harvested.pages,
            degradation: degradation(pause, period),
            wall_nanos,
        }
    }
}

/// One pre-copy migration iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration index (0 = full-memory pass).
    pub index: u32,
    /// Pages transferred.
    pub pages: u64,
    /// Wall time of the copy round.
    pub duration: SimDuration,
    /// Pages newly flagged problematic during this round (HERE seeding).
    pub problematic_new: u64,
}

/// Outcome of the seeding migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationOutcome {
    /// Per-iteration statistics.
    pub iterations: Vec<IterationStats>,
    /// Total wall time including the final stop-and-copy.
    pub total: SimDuration,
    /// VM downtime during the final stop-and-copy.
    pub downtime: SimDuration,
    /// Total pages moved.
    pub pages_sent: u64,
    /// Problematic pages resent in the final pass.
    pub problematic_resent: u64,
}

/// Replication engine resource usage (§8.7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// CPU consumption as a percentage of one fully loaded core.
    pub cpu_core_pct: f64,
    /// Peak resident set of the replication engine.
    pub rss: ByteSize,
}

/// Everything measured over one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Scenario name.
    pub name: String,
    /// Virtual time the run covered.
    pub elapsed: SimDuration,
    /// Application operations completed (committed work only; work rolled
    /// back by a failover is excluded).
    pub ops_completed: f64,
    /// `ops_completed / elapsed` in operations per second.
    pub throughput_ops_per_sec: f64,
    /// The seeding migration, if replication was active.
    pub migration: Option<MigrationOutcome>,
    /// Every checkpoint round, in order (each derived from the stage
    /// events via [`CheckpointRecord::from_events`]).
    pub checkpoints: Vec<CheckpointRecord>,
    /// The raw stage trace: one [`StageEvent`] per pipeline stage of every
    /// checkpoint, in emission order. Empty for unprotected runs.
    pub stage_events: Vec<StageEvent>,
    /// The period controller's structured decision after every
    /// checkpoint: measured degradation, chosen `T`, which branch of
    /// Algorithm 1 ran and what clamped it. Parallel to `checkpoints`.
    pub period_decisions: Vec<PeriodDecision>,
    /// Checkpoint period over time (Fig. 9/10 top panes).
    pub period_series: TimeSeries,
    /// Measured degradation over time (Fig. 9/10 bottom panes).
    pub degradation_series: TimeSeries,
    /// Client-observed latency of every released packet, in seconds
    /// (Fig. 17).
    pub packet_latencies: Histogram,
    /// The failover, if a failure was injected and handled.
    pub failover: Option<FailoverRecord>,
    /// Replication engine resource usage.
    pub resources: ResourceUsage,
    /// Number of checkpoints at which replica/primary equality was
    /// verified (non-zero only when the scenario enables verification).
    pub consistency_checks: u64,
    /// The commit ledger: every fully-acked epoch in commit order. A
    /// failover's `resumed_from_checkpoint` always equals the last entry's
    /// sequence number at the time of failure. Empty for unprotected runs.
    pub commits: Vec<CommitEntry>,
    /// Per-replica ack trails: every epoch each replica acknowledged, in
    /// ack order, one entry per replica in index order. The quorum view
    /// in `commits` is derived from these; the per-replica staleness
    /// accessors read them directly. Empty for unprotected runs.
    pub replica_acks: Vec<ReplicaAcks>,
    /// Fault-plane statistics: injections, transfer retries, recoveries
    /// and epoch aborts. `None` when no fault plan was armed.
    pub chaos: Option<ChaosStats>,
    /// The always-on telemetry captured during the run: metrics registry
    /// snapshot, flight-recorder dump and SLO summary. `None` for
    /// unprotected runs (nothing to observe).
    pub telemetry: Option<TelemetrySnapshot>,
    /// The causal trace: every span recorded during the measured window —
    /// epoch roots, stage and lane children, replica-side applies, and
    /// the failover tree. Empty for unprotected runs.
    pub spans: Vec<Span>,
    /// The postmortem capture the first armed trigger froze, when
    /// [`ReplicationConfig::postmortem_capture`](crate::config::ReplicationConfig::postmortem_capture)
    /// was on. Excluded from [`RunReport::fingerprint`] (like telemetry),
    /// so arming capture never changes a run's identity.
    pub incident: Option<IncidentSnapshot>,
    /// The wire format version each replica negotiated with the primary,
    /// in index order (empty for unprotected runs). Excluded from
    /// [`RunReport::fingerprint`] — like `replica_acks`, it is derived
    /// bookkeeping, so a default v2 session stays bit-compatible with
    /// pre-v3 baselines.
    #[serde(default)]
    pub wire_versions: Vec<u16>,
}

impl RunReport {
    /// Mean checkpoint pause `t` across the run.
    pub fn mean_pause(&self) -> Option<SimDuration> {
        if self.checkpoints.is_empty() {
            return None;
        }
        let total: SimDuration = self.checkpoints.iter().map(|c| c.pause).sum();
        Some(total / self.checkpoints.len() as u64)
    }

    /// Mean measured degradation across the run.
    pub fn mean_degradation(&self) -> Option<f64> {
        if self.checkpoints.is_empty() {
            return None;
        }
        Some(
            self.checkpoints.iter().map(|c| c.degradation).sum::<f64>()
                / self.checkpoints.len() as f64,
        )
    }

    /// Mean dirty pages per checkpoint.
    pub fn mean_dirty_pages(&self) -> Option<f64> {
        if self.checkpoints.is_empty() {
            return None;
        }
        Some(
            self.checkpoints
                .iter()
                .map(|c| c.dirty_pages as f64)
                .sum::<f64>()
                / self.checkpoints.len() as f64,
        )
    }

    /// Total time spent in each pipeline stage across the run, in stage
    /// order — the per-stage breakdown of the pause model `t = αN/P + C`.
    pub fn stage_breakdown(&self) -> Vec<(Stage, SimDuration)> {
        crate::trace::stage_totals(&self.stage_events)
    }

    /// The worst client-visible staleness window a *quorum-committed*
    /// failover could have served: the largest gap between consecutive
    /// ledger commits (including run start → first commit and last commit
    /// → run end). `None` when no epoch committed. For the window a
    /// specific replica would have served, use
    /// [`RunReport::replica_staleness`]; the set-wide worst case is
    /// [`RunReport::stalest_replica`].
    pub fn worst_staleness(&self) -> Option<SimDuration> {
        Self::worst_gap(self.commits.iter().map(|c| c.at), self.elapsed)
    }

    /// Largest gap between consecutive instants of `series` (including
    /// run start → first and last → run end). `None` for an empty series.
    fn worst_gap(
        series: impl Iterator<Item = SimTime>,
        elapsed: SimDuration,
    ) -> Option<SimDuration> {
        let mut worst = SimDuration::ZERO;
        let mut prev = SimTime::ZERO;
        let mut any = false;
        for at in series {
            worst = worst.max(at.saturating_duration_since(prev));
            prev = at;
            any = true;
        }
        if !any {
            return None;
        }
        let end = SimTime::ZERO + elapsed;
        Some(worst.max(end.saturating_duration_since(prev)))
    }

    /// The worst staleness window replica `replica` itself could have
    /// served after a failover: the largest gap between its consecutive
    /// acks (including run start → first ack and last ack → run end).
    /// A replica that never acked anything was stale for the whole run.
    /// `None` when the run recorded no trail for `replica`.
    pub fn replica_staleness(&self, replica: u32) -> Option<SimDuration> {
        let trail = self.replica_acks.iter().find(|t| t.replica == replica)?;
        if trail.acks.is_empty() {
            return Some(self.elapsed);
        }
        Self::worst_gap(trail.acks.iter().map(|c| c.at), self.elapsed)
    }

    /// The replica with the worst per-replica staleness window, with that
    /// window — the set's weakest failover target. Ties resolve to the
    /// lowest index. `None` when no replica acked anything.
    pub fn stalest_replica(&self) -> Option<(u32, SimDuration)> {
        let mut worst: Option<(u32, SimDuration)> = None;
        for trail in &self.replica_acks {
            let Some(window) = self.replica_staleness(trail.replica) else {
                continue;
            };
            let beats = worst.is_none_or(|(_, w)| window > w);
            if beats {
                worst = Some((trail.replica, window));
            }
        }
        worst
    }

    /// FNV-1a digest over every *virtual-time* field of the report — name,
    /// ops, checkpoints, stage events, commits, failover, chaos stats and
    /// spans — deliberately excluding wall-clock measurements
    /// (`wall_nanos`, resource usage, telemetry snapshots). Two runs of
    /// the same scenario with the same seed must produce the same
    /// fingerprint; the chaos determinism tests and the `repro chaos`
    /// experiment assert exactly that.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.name.as_bytes());
        eat(&self.elapsed.as_nanos().to_le_bytes());
        eat(&self.ops_completed.to_bits().to_le_bytes());
        eat(&self.throughput_ops_per_sec.to_bits().to_le_bytes());
        for c in &self.checkpoints {
            eat(&c.seq.to_le_bytes());
            eat(&c.paused_at.as_nanos().to_le_bytes());
            eat(&c.period.as_nanos().to_le_bytes());
            eat(&c.pause.as_nanos().to_le_bytes());
            eat(&c.dirty_pages.to_le_bytes());
            eat(&c.degradation.to_bits().to_le_bytes());
        }
        for e in &self.stage_events {
            eat(&e.seq.to_le_bytes());
            eat(e.stage.label().as_bytes());
            eat(&e.at.as_nanos().to_le_bytes());
            eat(&e.duration.as_nanos().to_le_bytes());
            eat(&e.pages.to_le_bytes());
            eat(&e.bytes.to_le_bytes());
        }
        for c in &self.commits {
            eat(&c.seq.to_le_bytes());
            eat(&c.at.as_nanos().to_le_bytes());
        }
        if let Some(fo) = &self.failover {
            eat(&fo.failed_at.as_nanos().to_le_bytes());
            eat(&fo.detected_at.as_nanos().to_le_bytes());
            eat(&fo.resumed_at.as_nanos().to_le_bytes());
            eat(&fo.resumed_from_checkpoint.to_le_bytes());
            eat(&(fo.packets_lost as u64).to_le_bytes());
            eat(&fo.ops_lost.to_bits().to_le_bytes());
            eat(&(fo.devices_switched as u64).to_le_bytes());
        }
        eat(&self.consistency_checks.to_le_bytes());
        if let Some(stats) = &self.chaos {
            eat(&stats.faults_injected.to_le_bytes());
            eat(&stats.transfer_retries.to_le_bytes());
            eat(&stats.transfer_recoveries.to_le_bytes());
            eat(&stats.epochs_aborted.to_le_bytes());
        }
        for s in &self.spans {
            eat(s.name.as_bytes());
            eat(s.category.as_bytes());
            eat(&s.track.pid().to_le_bytes());
            eat(&s.track.tid().to_le_bytes());
            eat(&s.epoch.unwrap_or(u64::MAX).to_le_bytes());
            eat(&s.start_nanos.to_le_bytes());
            eat(&s.duration_nanos.to_le_bytes());
            eat(&s.parent.map_or(u64::MAX, |p| p.get()).to_le_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ckpt(seq: u64, pause_ms: u64, period_s: u64, pages: u64) -> CheckpointRecord {
        let pause = SimDuration::from_millis(pause_ms);
        let period = SimDuration::from_secs(period_s);
        CheckpointRecord {
            seq,
            paused_at: SimTime::from_secs(seq * period_s),
            period,
            pause,
            dirty_pages: pages,
            degradation: pause.as_secs_f64() / (pause + period).as_secs_f64(),
            wall_nanos: None,
        }
    }

    #[test]
    fn report_summaries() {
        let report = RunReport {
            name: "t".into(),
            elapsed: SimDuration::from_secs(10),
            ops_completed: 1000.0,
            throughput_ops_per_sec: 100.0,
            migration: None,
            checkpoints: vec![ckpt(1, 100, 2, 10), ckpt(2, 300, 2, 30)],
            stage_events: Vec::new(),
            period_decisions: Vec::new(),
            period_series: TimeSeries::new("period"),
            degradation_series: TimeSeries::new("deg"),
            packet_latencies: Histogram::new(),
            failover: None,
            resources: ResourceUsage {
                cpu_core_pct: 10.0,
                rss: ByteSize::from_mib(100),
            },
            consistency_checks: 0,
            commits: vec![
                CommitEntry {
                    seq: 1,
                    at: SimTime::from_secs(2),
                },
                CommitEntry {
                    seq: 2,
                    at: SimTime::from_secs(7),
                },
            ],
            replica_acks: Vec::new(),
            chaos: None,
            telemetry: None,
            spans: Vec::new(),
            incident: None,
            wire_versions: Vec::new(),
        };
        assert_eq!(report.mean_pause(), Some(SimDuration::from_millis(200)));
        assert_eq!(report.mean_dirty_pages(), Some(20.0));
        let d = report.mean_degradation().unwrap();
        assert!(d > 0.0 && d < 0.2);
        // Gaps: 0→2 s, 2→7 s, 7→10 s (run end). Worst is the middle one.
        assert_eq!(report.worst_staleness(), Some(SimDuration::from_secs(5)));
        // The fingerprint is a pure function of the virtual-time fields.
        let twin = report.clone();
        assert_eq!(report.fingerprint(), twin.fingerprint());
        let mut other = report.clone();
        other.commits[1].seq = 3;
        assert_ne!(report.fingerprint(), other.fingerprint());
        // Per-replica trails do not enter the fingerprint (they are
        // derived bookkeeping, like telemetry) — N = 1 runs stay
        // bit-compatible with pre-topology baselines.
        let mut with_trails = report.clone();
        with_trails.replica_acks = vec![ReplicaAcks {
            replica: 0,
            acks: report.commits.clone(),
        }];
        assert_eq!(report.fingerprint(), with_trails.fingerprint());
    }

    #[test]
    fn per_replica_staleness_finds_the_stalest_replica() {
        let at = |s: u64| SimTime::from_secs(s);
        let entry = |seq: u64, s: u64| CommitEntry { seq, at: at(s) };
        let mut report = RunReport {
            name: "stale".into(),
            elapsed: SimDuration::from_secs(10),
            ops_completed: 0.0,
            throughput_ops_per_sec: 0.0,
            migration: None,
            checkpoints: vec![],
            stage_events: Vec::new(),
            period_decisions: Vec::new(),
            period_series: TimeSeries::new("period"),
            degradation_series: TimeSeries::new("deg"),
            packet_latencies: Histogram::new(),
            failover: None,
            resources: ResourceUsage {
                cpu_core_pct: 0.0,
                rss: ByteSize::ZERO,
            },
            consistency_checks: 0,
            commits: vec![entry(1, 2), entry(2, 4), entry(3, 6)],
            replica_acks: vec![
                ReplicaAcks {
                    replica: 0,
                    acks: vec![entry(1, 2), entry(2, 4), entry(3, 6)],
                },
                // Replica 1 missed epoch 2 and caught up late: its worst
                // window is 1 s → 8 s.
                ReplicaAcks {
                    replica: 1,
                    acks: vec![entry(1, 1), entry(3, 8)],
                },
            ],
            chaos: None,
            telemetry: None,
            spans: Vec::new(),
            incident: None,
            wire_versions: Vec::new(),
        };
        assert_eq!(report.replica_staleness(0), Some(SimDuration::from_secs(4)));
        assert_eq!(report.replica_staleness(1), Some(SimDuration::from_secs(7)));
        assert_eq!(report.replica_staleness(2), None);
        assert_eq!(
            report.stalest_replica(),
            Some((1, SimDuration::from_secs(7)))
        );
        // A replica that never acked was stale for the entire run and
        // dominates the set.
        report.replica_acks.push(ReplicaAcks {
            replica: 2,
            acks: Vec::new(),
        });
        assert_eq!(report.replica_staleness(2), Some(report.elapsed));
        assert_eq!(report.stalest_replica(), Some((2, report.elapsed)));
    }

    #[test]
    fn empty_report_summaries_are_none() {
        let report = RunReport {
            name: "empty".into(),
            elapsed: SimDuration::ZERO,
            ops_completed: 0.0,
            throughput_ops_per_sec: 0.0,
            migration: None,
            checkpoints: vec![],
            stage_events: Vec::new(),
            period_decisions: Vec::new(),
            period_series: TimeSeries::new("period"),
            degradation_series: TimeSeries::new("deg"),
            packet_latencies: Histogram::new(),
            failover: None,
            resources: ResourceUsage {
                cpu_core_pct: 0.0,
                rss: ByteSize::ZERO,
            },
            consistency_checks: 0,
            commits: Vec::new(),
            replica_acks: Vec::new(),
            chaos: None,
            telemetry: None,
            spans: Vec::new(),
            incident: None,
            wire_versions: Vec::new(),
        };
        assert!(report.mean_pause().is_none());
        assert!(report.mean_degradation().is_none());
        assert!(report.mean_dirty_pages().is_none());
        assert!(report.stage_breakdown().iter().all(|&(_, d)| d.is_zero()));
        assert!(report.worst_staleness().is_none());
    }

    #[test]
    fn record_is_derived_from_stage_events() {
        let mk = |stage, at_ms: u64, dur_ms, pages| StageEvent {
            seq: 7,
            stage,
            at: SimTime::ZERO + SimDuration::from_millis(at_ms),
            duration: SimDuration::from_millis(dur_ms),
            wall_nanos: None,
            pages,
            bytes: pages * 4096,
        };
        let events = vec![
            mk(Stage::Pause, 1000, 8, 0),
            mk(Stage::Harvest, 1008, 40, 128),
            mk(Stage::Translate, 1048, 4, 128),
            mk(Stage::Transfer, 1052, 12, 128),
            mk(Stage::Ack, 1064, 2, 0),
            mk(Stage::Resume, 1066, 0, 0),
        ];
        let record = CheckpointRecord::from_events(SimDuration::from_secs(2), &events);
        assert_eq!(record.seq, 7);
        assert_eq!(record.paused_at, SimTime::ZERO + SimDuration::from_secs(1));
        // The ack does not count toward the VM-visible pause.
        assert_eq!(record.pause, SimDuration::from_millis(8 + 40 + 4 + 12));
        assert_eq!(record.dirty_pages, 128);
        let expect = degradation(record.pause, record.period);
        assert!((record.degradation - expect).abs() < 1e-12);
        // No stage carried a wall-clock measurement.
        assert_eq!(record.wall_nanos, None);
    }

    #[test]
    fn wall_clock_sums_across_measured_stages() {
        let mk = |stage, wall: Option<u64>| StageEvent {
            seq: 1,
            stage,
            at: SimTime::ZERO,
            duration: SimDuration::from_millis(1),
            wall_nanos: wall,
            pages: 1,
            bytes: 4096,
        };
        let events = vec![
            mk(Stage::Pause, None),
            mk(Stage::Harvest, Some(1_500)),
            mk(Stage::Translate, Some(2_500)),
            mk(Stage::Transfer, None),
            mk(Stage::Ack, None),
            mk(Stage::Resume, None),
        ];
        let record = CheckpointRecord::from_events(SimDuration::from_secs(1), &events);
        assert_eq!(record.wall_nanos, Some(4_000));
    }
}
