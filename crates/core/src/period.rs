//! The dynamic checkpoint period manager — Algorithm 1 of the paper.
//!
//! The goal (§5.4, Equation 2): find the *smallest* checkpoint period `T`
//! (more frequent checkpoints = less data loss on failover) such that the
//! measured performance degradation `D_T = t / (t + T)` stays near the
//! user's soft target `D`, while never exceeding the hard cap `T_max`.
//!
//! The algorithm is a step-based search: while within the degradation
//! budget, shrink `T` by one step `σ` (remembering the last-known-good
//! value); on overshoot, first walk back to the remembered value, and if
//! that is also over budget, jump to the midpoint between the current `T`
//! and `T_max` (rounded to `σ`).

use serde::{Deserialize, Serialize};

use here_sim_core::time::SimDuration;

use crate::config::PeriodPolicy;

/// Measured degradation for a pause `t` within period `T`:
/// `D_T = t / (t + T)` (Equation 1).
pub fn degradation(pause: SimDuration, period: SimDuration) -> f64 {
    let t = pause.as_secs_f64();
    let total = t + period.as_secs_f64();
    if total == 0.0 {
        0.0
    } else {
        t / total
    }
}

/// What Algorithm 1's loop body did on one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeriodAction {
    /// Far below target (`D_curr <= D/2`): halve the period.
    FastDescent,
    /// Within budget near the target: shrink by one step `σ` (line 8).
    StepDescent,
    /// First overshoot: return to the last-known-good period (line 10).
    WalkBack,
    /// Sustained overshoot: jump to the midpoint of `(T, T_max)`
    /// (lines 12–13).
    MidpointJump,
    /// Sustained overshoot with unbounded `T_max`: double the period.
    Double,
    /// The period did not move (fixed-period controller).
    Hold,
}

impl PeriodAction {
    /// Stable snake_case label for exports and the flight recorder.
    pub fn label(self) -> &'static str {
        match self {
            PeriodAction::FastDescent => "fast_descent",
            PeriodAction::StepDescent => "step_descent",
            PeriodAction::WalkBack => "walk_back",
            PeriodAction::MidpointJump => "midpoint_jump",
            PeriodAction::Double => "double",
            PeriodAction::Hold => "hold",
        }
    }
}

/// Which bound clipped the chosen period, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClampReason {
    /// The choice exceeded the hard cap and was pulled back to `T_max`.
    TMax,
    /// The choice fell below one step `σ` and was raised to the floor.
    SigmaFloor,
}

impl ClampReason {
    /// Stable snake_case label for exports and the flight recorder.
    pub fn label(self) -> &'static str {
        match self {
            ClampReason::TMax => "t_max",
            ClampReason::SigmaFloor => "sigma_floor",
        }
    }
}

/// The structured outcome of one period-controller iteration: what was
/// measured, what was chosen, and why. Surfaced per checkpoint in
/// [`crate::report::RunReport::period_decisions`] and mirrored into the
/// flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodDecision {
    /// Dirty pages `N` of the checkpoint that fed the decision (filled in
    /// by the caller — the controller itself only sees the pause).
    pub dirty_pages: u64,
    /// Measured pause `t` of the finished epoch.
    pub measured_pause: SimDuration,
    /// Measured degradation `D_curr = t / (t + T_prev)` of that epoch.
    pub measured_degradation: f64,
    /// Period the finished epoch ran with.
    pub previous_period: SimDuration,
    /// Period chosen for the next epoch.
    pub chosen_period: SimDuration,
    /// Degradation the next epoch is predicted to see if the pause
    /// repeats: `t / (t + T_chosen)`.
    pub predicted_degradation: f64,
    /// Which branch of the algorithm ran.
    pub action: PeriodAction,
    /// Which bound clipped the choice, if any.
    pub clamp: Option<ClampReason>,
}

/// The period controller: either a fixed period or Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PeriodManager {
    /// Fixed `T` (Remus, and HERE's `D = 0 %` rows).
    Fixed(SimDuration),
    /// Algorithm 1 state.
    Dynamic(DynamicPeriodManager),
}

impl PeriodManager {
    /// Builds the controller for a policy.
    pub fn new(policy: PeriodPolicy) -> Self {
        match policy {
            PeriodPolicy::Fixed(t) => PeriodManager::Fixed(t),
            PeriodPolicy::Dynamic {
                d_target,
                t_max,
                sigma,
            } => PeriodManager::Dynamic(DynamicPeriodManager::new(d_target, t_max, sigma)),
        }
    }

    /// The period to run the next epoch with.
    pub fn current(&self) -> SimDuration {
        match self {
            PeriodManager::Fixed(t) => *t,
            PeriodManager::Dynamic(d) => d.current(),
        }
    }

    /// Feeds the measured pause of the checkpoint that just completed;
    /// returns the structured decision (whose `chosen_period` is the
    /// period for the next epoch). A fixed controller holds its period.
    pub fn on_checkpoint(&mut self, pause: SimDuration) -> PeriodDecision {
        match self {
            PeriodManager::Fixed(t) => {
                let d = degradation(pause, *t);
                PeriodDecision {
                    dirty_pages: 0,
                    measured_pause: pause,
                    measured_degradation: d,
                    previous_period: *t,
                    chosen_period: *t,
                    predicted_degradation: d,
                    action: PeriodAction::Hold,
                    clamp: None,
                }
            }
            PeriodManager::Dynamic(d) => d.on_checkpoint(pause),
        }
    }
}

/// Algorithm 1's mutable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicPeriodManager {
    d_target: f64,
    t_max: SimDuration,
    sigma: SimDuration,
    t: SimDuration,
    t_prev: SimDuration,
    d_prev: f64,
}

impl DynamicPeriodManager {
    /// Creates the controller. Initially `T = T_max` ("to avoid exceeding
    /// the replication interval constraint", line 1) and `D_prev = D`
    /// (line 2). An unbounded `T_max` ([`SimDuration::MAX`]) starts from a
    /// practical stand-in of 30 s.
    ///
    /// # Panics
    ///
    /// Panics if `d_target` is outside `(0, 1)` or `sigma` is zero.
    pub fn new(d_target: f64, t_max: SimDuration, sigma: SimDuration) -> Self {
        assert!(
            d_target > 0.0 && d_target < 1.0,
            "degradation target must be in (0,1), got {d_target}"
        );
        assert!(!sigma.is_zero(), "sigma must be non-zero");
        let start = if t_max == SimDuration::MAX {
            SimDuration::from_secs(30)
        } else {
            t_max
        };
        DynamicPeriodManager {
            d_target,
            t_max,
            sigma,
            t: start,
            t_prev: start,
            d_prev: d_target,
        }
    }

    /// The degradation target `D`.
    pub fn target(&self) -> f64 {
        self.d_target
    }

    /// The hard cap `T_max`.
    pub fn t_max(&self) -> SimDuration {
        self.t_max
    }

    /// The period for the next epoch.
    pub fn current(&self) -> SimDuration {
        self.t
    }

    /// One iteration of Algorithm 1's loop body, fed with the measured
    /// pause duration `t_curr` of the checkpoint that just completed.
    /// Returns the structured decision; `decision.chosen_period` is the
    /// new period (also readable via [`Self::current`]).
    pub fn on_checkpoint(&mut self, t_curr: SimDuration) -> PeriodDecision {
        let previous_period = self.t;
        let d_curr = degradation(t_curr, self.t);
        let mut clamp = None;
        let action;
        if d_curr <= self.d_target {
            // Within budget: remember this period and probe lower (lines
            // 7–8). Near the target the probe is one step sigma; when the
            // measured degradation is far below target (half or less) the
            // controller descends multiplicatively instead — Algorithm 1
            // specifies the sigma step near equilibrium, and without a
            // fast path the descent from T = T_max would take hundreds of
            // checkpoints. The period never drops below one step.
            self.t_prev = self.t;
            let raw = if d_curr <= self.d_target / 2.0 {
                action = PeriodAction::FastDescent;
                let half = self.t / 2;
                if half < self.sigma {
                    // The rounding below pulls the halved period back up to
                    // one step: the floor, not the halving, decided.
                    clamp = Some(ClampReason::SigmaFloor);
                }
                half.round_to(self.sigma)
            } else {
                action = PeriodAction::StepDescent;
                self.t.saturating_sub(self.sigma)
            };
            if raw < self.sigma {
                clamp = Some(ClampReason::SigmaFloor);
            }
            self.t = raw.max(self.sigma);
        } else if self.d_prev <= self.d_target {
            // First overshoot: walk back to the last-known-good period
            // (line 10).
            action = PeriodAction::WalkBack;
            self.t = self.t_prev;
        } else {
            // Still over budget: jump to the midpoint between the current
            // period and T_max, rounded to sigma (lines 12–13). With an
            // unbounded T_max the recovery doubles the period instead.
            self.t_prev = self.t;
            let raw = if self.t_max == SimDuration::MAX {
                action = PeriodAction::Double;
                (self.t * 2).round_to(self.sigma)
            } else {
                action = PeriodAction::MidpointJump;
                ((self.t + self.t_max) / 2).round_to(self.sigma)
            };
            if raw < self.sigma {
                clamp = Some(ClampReason::SigmaFloor);
            }
            self.t = raw.max(self.sigma);
        }
        if self.t_max != SimDuration::MAX && self.t > self.t_max {
            clamp = Some(ClampReason::TMax);
            self.t = self.t_max;
        }
        self.d_prev = d_curr;
        PeriodDecision {
            dirty_pages: 0,
            measured_pause: t_curr,
            measured_degradation: d_curr,
            previous_period,
            chosen_period: self.t,
            predicted_degradation: degradation(t_curr, self.t),
            action,
            clamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: SimDuration = SimDuration::from_secs(1);

    fn mgr(d: f64, t_max_secs: u64) -> DynamicPeriodManager {
        DynamicPeriodManager::new(d, SimDuration::from_secs(t_max_secs), SEC)
    }

    #[test]
    fn degradation_matches_equation_1() {
        let d = degradation(SimDuration::from_secs(2), SimDuration::from_secs(8));
        assert!((d - 0.2).abs() < 1e-12);
        assert_eq!(degradation(SimDuration::ZERO, SimDuration::ZERO), 0.0);
    }

    #[test]
    fn starts_at_t_max() {
        let m = mgr(0.3, 25);
        assert_eq!(m.current(), SimDuration::from_secs(25));
    }

    #[test]
    fn shrinks_while_within_budget() {
        let mut m = mgr(0.3, 10);
        // A tiny pause keeps D_curr ~ 0: far below target, so the fast
        // descent halves the period.
        let d1 = m.on_checkpoint(SimDuration::from_millis(10));
        assert_eq!(d1.chosen_period, SimDuration::from_secs(5));
        assert_eq!(d1.previous_period, SimDuration::from_secs(10));
        assert_eq!(d1.action, PeriodAction::FastDescent);
        assert_eq!(d1.clamp, None);
        let d2 = m.on_checkpoint(SimDuration::from_millis(10));
        assert_eq!(d2.chosen_period, SimDuration::from_secs(3));
        // Close to the target (D_curr in (D/2, D]): single sigma steps.
        // t = 1 s at T = 3 s gives D_curr = 0.25, within (0.15, 0.3].
        let d3 = m.on_checkpoint(SimDuration::from_secs(1));
        assert_eq!(d3.chosen_period, SimDuration::from_secs(2));
        assert_eq!(d3.action, PeriodAction::StepDescent);
        assert!((d3.measured_degradation - 0.25).abs() < 1e-12);
        // Predicted: the same 1 s pause at T = 2 s gives 1/3.
        assert!((d3.predicted_degradation - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn never_shrinks_below_sigma() {
        let mut m = DynamicPeriodManager::new(0.5, SimDuration::from_secs(2), SEC);
        let mut last = None;
        for _ in 0..10 {
            last = Some(m.on_checkpoint(SimDuration::from_millis(1)));
        }
        assert_eq!(m.current(), SEC);
        // Once parked at the floor the clamp reason says so.
        assert_eq!(last.unwrap().clamp, Some(ClampReason::SigmaFloor));
    }

    #[test]
    fn single_overshoot_walks_back_to_last_good() {
        let mut m = mgr(0.3, 10);
        // t = 3 s at T = 10 s gives D_curr = 0.23 in (0.15, 0.3]: sigma step.
        m.on_checkpoint(SimDuration::from_secs(3)); // T: 10 -> 9, good
        m.on_checkpoint(SimDuration::from_secs(3)); // T: 9 -> 8, good
                                                    // Now a big pause at T=8: D = 8/(8+8) = 0.5 > 0.3; D_prev was good,
                                                    // so walk back to T_prev = 9.
        let d = m.on_checkpoint(SimDuration::from_secs(8));
        assert_eq!(d.chosen_period, SimDuration::from_secs(9));
        assert_eq!(d.action, PeriodAction::WalkBack);
    }

    #[test]
    fn sustained_overshoot_jumps_toward_t_max() {
        let mut m = mgr(0.2, 20);
        // Drive T down to the floor with tiny pauses.
        for _ in 0..15 {
            m.on_checkpoint(SimDuration::from_millis(1));
        }
        assert_eq!(m.current(), SEC);
        // Bring it to a mid value: overshoot once (walk back), then settle.
        // Instead, directly verify the two-overshoot recovery from 5 s.
        let mut m = mgr(0.2, 20);
        for _ in 0..2 {
            m.on_checkpoint(SimDuration::from_millis(1)); // 20 -> 10 -> 5
        }
        assert_eq!(m.current(), SimDuration::from_secs(5));
        // Overshoot twice: first walks back (to the remembered 10), second
        // jumps to the midpoint of (10, 20) = 15.
        m.on_checkpoint(SimDuration::from_secs(30));
        assert_eq!(m.current(), SimDuration::from_secs(10));
        m.on_checkpoint(SimDuration::from_secs(30));
        assert_eq!(m.current(), SimDuration::from_secs(15));
    }

    #[test]
    fn unbounded_t_max_recovers_by_doubling() {
        let mut m = DynamicPeriodManager::new(0.2, SimDuration::MAX, SEC);
        assert_eq!(m.current(), SimDuration::from_secs(30));
        for _ in 0..5 {
            m.on_checkpoint(SimDuration::from_millis(1)); // fast descent
        }
        assert_eq!(m.current(), SEC);
        m.on_checkpoint(SimDuration::from_secs(60)); // overshoot #1: back to 2
        assert_eq!(m.current(), SimDuration::from_secs(2));
        m.on_checkpoint(SimDuration::from_secs(60)); // overshoot #2: double
        assert_eq!(m.current(), SimDuration::from_secs(4));
    }

    #[test]
    fn converges_near_target_for_stable_load() {
        // Pause is a fixed function of the workload: t = 0.9 s. The
        // equilibrium T* solving D = t/(t+T) at D=0.3 is T* = 2.1 s. The
        // controller should oscillate within a couple of sigma of T*.
        let mut m = DynamicPeriodManager::new(
            0.3,
            SimDuration::from_secs(25),
            SimDuration::from_millis(250),
        );
        let pause = SimDuration::from_millis(900);
        for _ in 0..200 {
            m.on_checkpoint(pause);
        }
        let t = m.current().as_secs_f64();
        assert!((1.5..3.2).contains(&t), "converged to {t}");
    }

    #[test]
    fn sustained_overshoot_clamps_at_t_max() {
        // Even with pathological pauses the recovery jump can never push
        // T past the hard cap: the midpoint of (T, T_max) rounded up to a
        // sigma multiple is re-clamped to T_max.
        let mut m = mgr(0.2, 10);
        let mut last = None;
        for _ in 0..20 {
            let d = m.on_checkpoint(SimDuration::from_secs(1_000));
            assert!(
                d.chosen_period <= SimDuration::from_secs(10),
                "T {} exceeded T_max",
                d.chosen_period
            );
            last = Some(d);
        }
        // With every checkpoint over budget the controller parks at T_max.
        assert_eq!(m.current(), SimDuration::from_secs(10));
        assert_eq!(last.unwrap().action, PeriodAction::MidpointJump);
    }

    #[test]
    fn t_max_clamp_is_recorded_in_the_decision() {
        // sigma = 2 s, T_max = 3 s: the recovery midpoint of (3, 3) rounds
        // up to 4 s and must be pulled back to the cap, with the decision
        // naming T_max as the clamp reason.
        let mut m =
            DynamicPeriodManager::new(0.2, SimDuration::from_secs(3), SimDuration::from_secs(2));
        m.on_checkpoint(SimDuration::from_secs(100)); // walk-back (no move)
        let d = m.on_checkpoint(SimDuration::from_secs(100));
        assert_eq!(d.action, PeriodAction::MidpointJump);
        assert_eq!(d.clamp, Some(ClampReason::TMax));
        assert_eq!(d.chosen_period, SimDuration::from_secs(3));
    }

    #[test]
    fn far_below_target_descends_multiplicatively() {
        // D_curr <= D/2 takes the fast path: T halves (rounded to sigma)
        // instead of stepping by sigma.
        let mut m = mgr(0.4, 24);
        assert_eq!(
            m.on_checkpoint(SimDuration::from_millis(1)).chosen_period,
            SimDuration::from_secs(12)
        );
        assert_eq!(
            m.on_checkpoint(SimDuration::from_millis(1)).chosen_period,
            SimDuration::from_secs(6)
        );
        assert_eq!(
            m.on_checkpoint(SimDuration::from_millis(1)).chosen_period,
            SimDuration::from_secs(3)
        );
        // Just above D/2 leaves the fast path: a single sigma step.
        // t = 1 s at T = 3 s gives D_curr = 0.25, in (0.2, 0.4].
        assert_eq!(
            m.on_checkpoint(SimDuration::from_secs(1)).chosen_period,
            SimDuration::from_secs(2)
        );
    }

    #[test]
    fn converges_from_t_max_within_logarithmic_checkpoints() {
        // Starting at the conservative T = T_max, a stable pause function
        // must bring the controller into the equilibrium band in a handful
        // of checkpoints (the multiplicative fast path), not the hundreds
        // a pure sigma descent would need from 25 s at sigma = 250 ms.
        let mut m = DynamicPeriodManager::new(
            0.3,
            SimDuration::from_secs(25),
            SimDuration::from_millis(250),
        );
        assert_eq!(m.current(), SimDuration::from_secs(25));
        let pause = SimDuration::from_millis(900); // equilibrium T* = 2.1 s
        let mut reached_at = None;
        for i in 0..30 {
            let t = m.on_checkpoint(pause).chosen_period;
            if reached_at.is_none() && (1.5..3.2).contains(&t.as_secs_f64()) {
                reached_at = Some(i + 1);
            }
        }
        let reached_at = reached_at.expect("controller never reached the equilibrium band");
        assert!(reached_at <= 10, "took {reached_at} checkpoints");
        // And it stays there once load is stable.
        for _ in 0..50 {
            m.on_checkpoint(pause);
        }
        let t = m.current().as_secs_f64();
        assert!((1.5..3.2).contains(&t), "drifted to {t}");
    }

    #[test]
    fn fixed_manager_never_moves() {
        let mut m = PeriodManager::new(PeriodPolicy::Fixed(SimDuration::from_secs(8)));
        let d = m.on_checkpoint(SimDuration::from_secs(100));
        assert_eq!(d.chosen_period, SimDuration::from_secs(8));
        assert_eq!(d.action, PeriodAction::Hold);
        assert_eq!(d.clamp, None);
        assert_eq!(m.current(), SimDuration::from_secs(8));
    }
}
