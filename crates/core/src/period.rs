//! The dynamic checkpoint period manager — Algorithm 1 of the paper.
//!
//! The goal (§5.4, Equation 2): find the *smallest* checkpoint period `T`
//! (more frequent checkpoints = less data loss on failover) such that the
//! measured performance degradation `D_T = t / (t + T)` stays near the
//! user's soft target `D`, while never exceeding the hard cap `T_max`.
//!
//! The algorithm is a step-based search: while within the degradation
//! budget, shrink `T` by one step `σ` (remembering the last-known-good
//! value); on overshoot, first walk back to the remembered value, and if
//! that is also over budget, jump to the midpoint between the current `T`
//! and `T_max` (rounded to `σ`).

use serde::{Deserialize, Serialize};

use here_sim_core::time::SimDuration;

use crate::config::PeriodPolicy;

/// Measured degradation for a pause `t` within period `T`:
/// `D_T = t / (t + T)` (Equation 1).
pub fn degradation(pause: SimDuration, period: SimDuration) -> f64 {
    let t = pause.as_secs_f64();
    let total = t + period.as_secs_f64();
    if total == 0.0 {
        0.0
    } else {
        t / total
    }
}

/// The period controller: either a fixed period or Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PeriodManager {
    /// Fixed `T` (Remus, and HERE's `D = 0 %` rows).
    Fixed(SimDuration),
    /// Algorithm 1 state.
    Dynamic(DynamicPeriodManager),
}

impl PeriodManager {
    /// Builds the controller for a policy.
    pub fn new(policy: PeriodPolicy) -> Self {
        match policy {
            PeriodPolicy::Fixed(t) => PeriodManager::Fixed(t),
            PeriodPolicy::Dynamic {
                d_target,
                t_max,
                sigma,
            } => PeriodManager::Dynamic(DynamicPeriodManager::new(d_target, t_max, sigma)),
        }
    }

    /// The period to run the next epoch with.
    pub fn current(&self) -> SimDuration {
        match self {
            PeriodManager::Fixed(t) => *t,
            PeriodManager::Dynamic(d) => d.current(),
        }
    }

    /// Feeds the measured pause of the checkpoint that just completed;
    /// returns the period for the next epoch.
    pub fn on_checkpoint(&mut self, pause: SimDuration) -> SimDuration {
        match self {
            PeriodManager::Fixed(t) => *t,
            PeriodManager::Dynamic(d) => d.on_checkpoint(pause),
        }
    }
}

/// Algorithm 1's mutable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicPeriodManager {
    d_target: f64,
    t_max: SimDuration,
    sigma: SimDuration,
    t: SimDuration,
    t_prev: SimDuration,
    d_prev: f64,
}

impl DynamicPeriodManager {
    /// Creates the controller. Initially `T = T_max` ("to avoid exceeding
    /// the replication interval constraint", line 1) and `D_prev = D`
    /// (line 2). An unbounded `T_max` ([`SimDuration::MAX`]) starts from a
    /// practical stand-in of 30 s.
    ///
    /// # Panics
    ///
    /// Panics if `d_target` is outside `(0, 1)` or `sigma` is zero.
    pub fn new(d_target: f64, t_max: SimDuration, sigma: SimDuration) -> Self {
        assert!(
            d_target > 0.0 && d_target < 1.0,
            "degradation target must be in (0,1), got {d_target}"
        );
        assert!(!sigma.is_zero(), "sigma must be non-zero");
        let start = if t_max == SimDuration::MAX {
            SimDuration::from_secs(30)
        } else {
            t_max
        };
        DynamicPeriodManager {
            d_target,
            t_max,
            sigma,
            t: start,
            t_prev: start,
            d_prev: d_target,
        }
    }

    /// The degradation target `D`.
    pub fn target(&self) -> f64 {
        self.d_target
    }

    /// The hard cap `T_max`.
    pub fn t_max(&self) -> SimDuration {
        self.t_max
    }

    /// The period for the next epoch.
    pub fn current(&self) -> SimDuration {
        self.t
    }

    /// One iteration of Algorithm 1's loop body, fed with the measured
    /// pause duration `t_curr` of the checkpoint that just completed.
    /// Returns the new period.
    pub fn on_checkpoint(&mut self, t_curr: SimDuration) -> SimDuration {
        let d_curr = degradation(t_curr, self.t);
        if d_curr <= self.d_target {
            // Within budget: remember this period and probe lower (lines
            // 7–8). Near the target the probe is one step sigma; when the
            // measured degradation is far below target (half or less) the
            // controller descends multiplicatively instead — Algorithm 1
            // specifies the sigma step near equilibrium, and without a
            // fast path the descent from T = T_max would take hundreds of
            // checkpoints. The period never drops below one step.
            self.t_prev = self.t;
            self.t = if d_curr <= self.d_target / 2.0 {
                (self.t / 2).round_to(self.sigma).max(self.sigma)
            } else {
                self.t.saturating_sub(self.sigma).max(self.sigma)
            };
        } else if self.d_prev <= self.d_target {
            // First overshoot: walk back to the last-known-good period
            // (line 10).
            self.t = self.t_prev;
        } else {
            // Still over budget: jump to the midpoint between the current
            // period and T_max, rounded to sigma (lines 12–13). With an
            // unbounded T_max the recovery doubles the period instead.
            self.t_prev = self.t;
            self.t = if self.t_max == SimDuration::MAX {
                (self.t * 2).round_to(self.sigma).max(self.sigma)
            } else {
                ((self.t + self.t_max) / 2)
                    .round_to(self.sigma)
                    .max(self.sigma)
            };
        }
        if self.t_max != SimDuration::MAX {
            self.t = self.t.clamp(self.sigma, self.t_max);
        }
        self.d_prev = d_curr;
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: SimDuration = SimDuration::from_secs(1);

    fn mgr(d: f64, t_max_secs: u64) -> DynamicPeriodManager {
        DynamicPeriodManager::new(d, SimDuration::from_secs(t_max_secs), SEC)
    }

    #[test]
    fn degradation_matches_equation_1() {
        let d = degradation(SimDuration::from_secs(2), SimDuration::from_secs(8));
        assert!((d - 0.2).abs() < 1e-12);
        assert_eq!(degradation(SimDuration::ZERO, SimDuration::ZERO), 0.0);
    }

    #[test]
    fn starts_at_t_max() {
        let m = mgr(0.3, 25);
        assert_eq!(m.current(), SimDuration::from_secs(25));
    }

    #[test]
    fn shrinks_while_within_budget() {
        let mut m = mgr(0.3, 10);
        // A tiny pause keeps D_curr ~ 0: far below target, so the fast
        // descent halves the period.
        let t1 = m.on_checkpoint(SimDuration::from_millis(10));
        assert_eq!(t1, SimDuration::from_secs(5));
        let t2 = m.on_checkpoint(SimDuration::from_millis(10));
        assert_eq!(t2, SimDuration::from_secs(3));
        // Close to the target (D_curr in (D/2, D]): single sigma steps.
        // t = 1 s at T = 3 s gives D_curr = 0.25, within (0.15, 0.3].
        let t3 = m.on_checkpoint(SimDuration::from_secs(1));
        assert_eq!(t3, SimDuration::from_secs(2));
    }

    #[test]
    fn never_shrinks_below_sigma() {
        let mut m = DynamicPeriodManager::new(0.5, SimDuration::from_secs(2), SEC);
        for _ in 0..10 {
            m.on_checkpoint(SimDuration::from_millis(1));
        }
        assert_eq!(m.current(), SEC);
    }

    #[test]
    fn single_overshoot_walks_back_to_last_good() {
        let mut m = mgr(0.3, 10);
        // t = 3 s at T = 10 s gives D_curr = 0.23 in (0.15, 0.3]: sigma step.
        m.on_checkpoint(SimDuration::from_secs(3)); // T: 10 -> 9, good
        m.on_checkpoint(SimDuration::from_secs(3)); // T: 9 -> 8, good
                                                    // Now a big pause at T=8: D = 8/(8+8) = 0.5 > 0.3; D_prev was good,
                                                    // so walk back to T_prev = 9.
        let t = m.on_checkpoint(SimDuration::from_secs(8));
        assert_eq!(t, SimDuration::from_secs(9));
    }

    #[test]
    fn sustained_overshoot_jumps_toward_t_max() {
        let mut m = mgr(0.2, 20);
        // Drive T down to the floor with tiny pauses.
        for _ in 0..15 {
            m.on_checkpoint(SimDuration::from_millis(1));
        }
        assert_eq!(m.current(), SEC);
        // Bring it to a mid value: overshoot once (walk back), then settle.
        // Instead, directly verify the two-overshoot recovery from 5 s.
        let mut m = mgr(0.2, 20);
        for _ in 0..2 {
            m.on_checkpoint(SimDuration::from_millis(1)); // 20 -> 10 -> 5
        }
        assert_eq!(m.current(), SimDuration::from_secs(5));
        // Overshoot twice: first walks back (to the remembered 10), second
        // jumps to the midpoint of (10, 20) = 15.
        m.on_checkpoint(SimDuration::from_secs(30));
        assert_eq!(m.current(), SimDuration::from_secs(10));
        m.on_checkpoint(SimDuration::from_secs(30));
        assert_eq!(m.current(), SimDuration::from_secs(15));
    }

    #[test]
    fn unbounded_t_max_recovers_by_doubling() {
        let mut m = DynamicPeriodManager::new(0.2, SimDuration::MAX, SEC);
        assert_eq!(m.current(), SimDuration::from_secs(30));
        for _ in 0..5 {
            m.on_checkpoint(SimDuration::from_millis(1)); // fast descent
        }
        assert_eq!(m.current(), SEC);
        m.on_checkpoint(SimDuration::from_secs(60)); // overshoot #1: back to 2
        assert_eq!(m.current(), SimDuration::from_secs(2));
        m.on_checkpoint(SimDuration::from_secs(60)); // overshoot #2: double
        assert_eq!(m.current(), SimDuration::from_secs(4));
    }

    #[test]
    fn converges_near_target_for_stable_load() {
        // Pause is a fixed function of the workload: t = 0.9 s. The
        // equilibrium T* solving D = t/(t+T) at D=0.3 is T* = 2.1 s. The
        // controller should oscillate within a couple of sigma of T*.
        let mut m = DynamicPeriodManager::new(
            0.3,
            SimDuration::from_secs(25),
            SimDuration::from_millis(250),
        );
        let pause = SimDuration::from_millis(900);
        for _ in 0..200 {
            m.on_checkpoint(pause);
        }
        let t = m.current().as_secs_f64();
        assert!((1.5..3.2).contains(&t), "converged to {t}");
    }

    #[test]
    fn sustained_overshoot_clamps_at_t_max() {
        // Even with pathological pauses the recovery jump can never push
        // T past the hard cap: the midpoint of (T, T_max) rounded up to a
        // sigma multiple is re-clamped to T_max.
        let mut m = mgr(0.2, 10);
        for _ in 0..20 {
            let t = m.on_checkpoint(SimDuration::from_secs(1_000));
            assert!(t <= SimDuration::from_secs(10), "T {t} exceeded T_max");
        }
        // With every checkpoint over budget the controller parks at T_max.
        assert_eq!(m.current(), SimDuration::from_secs(10));
    }

    #[test]
    fn far_below_target_descends_multiplicatively() {
        // D_curr <= D/2 takes the fast path: T halves (rounded to sigma)
        // instead of stepping by sigma.
        let mut m = mgr(0.4, 24);
        assert_eq!(
            m.on_checkpoint(SimDuration::from_millis(1)),
            SimDuration::from_secs(12)
        );
        assert_eq!(
            m.on_checkpoint(SimDuration::from_millis(1)),
            SimDuration::from_secs(6)
        );
        assert_eq!(
            m.on_checkpoint(SimDuration::from_millis(1)),
            SimDuration::from_secs(3)
        );
        // Just above D/2 leaves the fast path: a single sigma step.
        // t = 1 s at T = 3 s gives D_curr = 0.25, in (0.2, 0.4].
        assert_eq!(
            m.on_checkpoint(SimDuration::from_secs(1)),
            SimDuration::from_secs(2)
        );
    }

    #[test]
    fn converges_from_t_max_within_logarithmic_checkpoints() {
        // Starting at the conservative T = T_max, a stable pause function
        // must bring the controller into the equilibrium band in a handful
        // of checkpoints (the multiplicative fast path), not the hundreds
        // a pure sigma descent would need from 25 s at sigma = 250 ms.
        let mut m = DynamicPeriodManager::new(
            0.3,
            SimDuration::from_secs(25),
            SimDuration::from_millis(250),
        );
        assert_eq!(m.current(), SimDuration::from_secs(25));
        let pause = SimDuration::from_millis(900); // equilibrium T* = 2.1 s
        let mut reached_at = None;
        for i in 0..30 {
            let t = m.on_checkpoint(pause);
            if reached_at.is_none() && (1.5..3.2).contains(&t.as_secs_f64()) {
                reached_at = Some(i + 1);
            }
        }
        let reached_at = reached_at.expect("controller never reached the equilibrium band");
        assert!(reached_at <= 10, "took {reached_at} checkpoints");
        // And it stays there once load is stable.
        for _ in 0..50 {
            m.on_checkpoint(pause);
        }
        let t = m.current().as_secs_f64();
        assert!((1.5..3.2).contains(&t), "drifted to {t}");
    }

    #[test]
    fn fixed_manager_never_moves() {
        let mut m = PeriodManager::new(PeriodPolicy::Fixed(SimDuration::from_secs(8)));
        assert_eq!(
            m.on_checkpoint(SimDuration::from_secs(100)),
            SimDuration::from_secs(8)
        );
        assert_eq!(m.current(), SimDuration::from_secs(8));
    }
}
