//! The trace analyzer: turns a run's causal spans, period decisions and
//! SLO breaches into an actionable report.
//!
//! Four questions the paper's evaluation keeps asking, answered from the
//! trace instead of aggregates:
//!
//! 1. **Critical path per epoch** — which pipeline stage spans make up
//!    each checkpoint's pause, and how the measured pause compares to the
//!    model `t = αN/P + C` (Eq. 4).
//! 2. **Straggler lanes** — encode lanes whose measured wall time
//!    exceeds `k ×` the epoch's median lane.
//! 3. **Period oscillation** — Algorithm 1 bouncing between periods
//!    (direction flips, walk-backs and midpoint jumps over the
//!    [`PeriodDecision`] history).
//! 4. **SLO-breach root cause** — for each breach of the degradation
//!    target `D` or period cap, which stage grew relative to its trailing
//!    mean.

use here_sim_core::time::SimDuration;
use here_telemetry::export::json_escape;
use here_telemetry::slo::BreachKind;
use here_telemetry::span::{Span, TraceTree, Track};

use crate::config::{CostModel, Strategy};
use crate::error::CoreResult;
use crate::period::{PeriodAction, PeriodDecision};
use crate::postmortem::IncidentBundle;
use crate::report::RunReport;
use crate::trace::{stage_totals, Stage};

/// Tunables for the analyzer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyzerConfig {
    /// A lane is a straggler when its wall time exceeds `k ×` the epoch's
    /// median lane wall time.
    pub straggler_k: f64,
    /// Ignore lanes faster than this when hunting stragglers (wall-clock
    /// noise floor, ns).
    pub straggler_floor_nanos: u64,
    /// Minimum decisions before oscillation can be declared.
    pub oscillation_window: usize,
    /// Fraction of direction changes (between consecutive period moves)
    /// at which the controller counts as oscillating.
    pub oscillation_flip_ratio: f64,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            straggler_k: 1.5,
            straggler_floor_nanos: 1_000,
            oscillation_window: 8,
            oscillation_flip_ratio: 0.6,
        }
    }
}

/// One stage's share of an epoch's pause.
#[derive(Debug, Clone, PartialEq)]
pub struct StageShare {
    /// Stage label (`pause`, `harvest`, `translate`, `transfer`,
    /// `resume`).
    pub stage: &'static str,
    /// Virtual time the stage took.
    pub duration: SimDuration,
    /// `duration / pause` (0 when the pause is zero).
    pub share: f64,
}

/// Critical-path attribution for one checkpoint epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochAttribution {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// The epoch's VM-visible pause (from the checkpoint record).
    pub pause: SimDuration,
    /// Pause time attributed to named stage spans.
    pub attributed: SimDuration,
    /// `attributed / pause` — 1.0 when every nanosecond of the pause is
    /// explained by a named stage span.
    pub attributed_fraction: f64,
    /// Per-stage breakdown, in pipeline order.
    pub stages: Vec<StageShare>,
    /// The stage with the largest share.
    pub dominant_stage: &'static str,
    /// The model's pause for this epoch's dirty-page count:
    /// `t = αN/P + C`.
    pub model_pause: SimDuration,
    /// `(measured − model) / model`, as a percentage.
    pub model_residual_pct: f64,
}

/// An encode lane flagged as a straggler within its epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StragglerLane {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// Lane index.
    pub lane: u32,
    /// The lane's measured wall time (ns).
    pub wall_nanos: u64,
    /// The epoch's median lane wall time (ns).
    pub median_wall_nanos: u64,
}

impl StragglerLane {
    /// How many times slower than the median this lane was.
    pub fn ratio(&self) -> f64 {
        if self.median_wall_nanos == 0 {
            f64::INFINITY
        } else {
            self.wall_nanos as f64 / self.median_wall_nanos as f64
        }
    }
}

/// Summary of the period controller's stability over the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OscillationReport {
    /// Decisions examined.
    pub decisions: usize,
    /// Times the period's direction of travel reversed between
    /// consecutive non-hold moves.
    pub direction_flips: usize,
    /// `direction_flips / (moves − 1)` (0 with fewer than two moves).
    pub flip_ratio: f64,
    /// `WalkBack` branches taken.
    pub walk_backs: usize,
    /// `MidpointJump` branches taken.
    pub midpoint_jumps: usize,
    /// Verdict: enough history and a flip ratio above the configured
    /// threshold.
    pub oscillating: bool,
}

/// Root-cause attribution for one SLO breach.
#[derive(Debug, Clone, PartialEq)]
pub struct BreachRoot {
    /// Checkpoint sequence number that breached.
    pub seq: u64,
    /// Which bound was violated.
    pub kind: BreachKind,
    /// The measured value that breached.
    pub measured: f64,
    /// The bound it was compared against.
    pub bound: f64,
    /// The breaching epoch's dominant stage.
    pub dominant_stage: &'static str,
    /// That stage's duration in the breaching epoch.
    pub stage_duration: SimDuration,
    /// The same stage's mean duration over all prior epochs.
    pub trailing_mean: SimDuration,
    /// `(stage_duration − trailing_mean) / trailing_mean`, as a
    /// percentage (0 when there is no prior history).
    pub growth_pct: f64,
}

/// Everything the analyzer derives from one run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// Per-epoch critical-path attribution, in sequence order.
    pub epochs: Vec<EpochAttribution>,
    /// The worst `attributed_fraction` across epochs (1.0 for a run with
    /// no epochs).
    pub min_attributed_fraction: f64,
    /// Straggler lanes, in (seq, lane) order.
    pub stragglers: Vec<StragglerLane>,
    /// Period-controller stability.
    pub oscillation: OscillationReport,
    /// Root-caused SLO breaches, in breach order.
    pub breach_roots: Vec<BreachRoot>,
    /// Structural defect counts from [`TraceTree`] validation (both are
    /// zero for a healthy trace).
    pub nesting_violations: usize,
    /// Replica spans whose epoch link does not resolve.
    pub unresolved_links: usize,
    /// Set when the spans could not even be assembled into a tree.
    pub tree_error: Option<String>,
}

/// The analyzer. Construct with [`TraceAnalyzer::default`] or a custom
/// [`AnalyzerConfig`], then [`TraceAnalyzer::analyze`] a finished run.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceAnalyzer {
    cfg: AnalyzerConfig,
}

impl TraceAnalyzer {
    /// An analyzer with custom thresholds.
    pub fn new(cfg: AnalyzerConfig) -> Self {
        TraceAnalyzer { cfg }
    }

    /// Analyzes a finished run against its cost model.
    pub fn analyze(
        &self,
        report: &RunReport,
        costs: &CostModel,
        threads: u32,
        strategy: Strategy,
    ) -> AnalysisReport {
        let (nesting_violations, unresolved_links, tree_error) =
            match TraceTree::build(&report.spans) {
                Ok(tree) => (
                    tree.nesting_violations().len(),
                    tree.unresolved_links().len(),
                    None,
                ),
                Err(e) => (0, 0, Some(e.to_string())),
            };
        let epochs = self.attribute_epochs(report, costs, threads, strategy);
        let min_attributed_fraction = epochs
            .iter()
            .map(|e| e.attributed_fraction)
            .fold(f64::INFINITY, f64::min)
            .min(1.0);
        let min_attributed_fraction = if epochs.is_empty() {
            1.0
        } else {
            min_attributed_fraction
        };
        AnalysisReport {
            stragglers: self.find_stragglers(&report.spans),
            oscillation: self.detect_oscillation(&report.period_decisions),
            breach_roots: self.root_cause_breaches(report, &epochs),
            epochs,
            min_attributed_fraction,
            nesting_violations,
            unresolved_links,
            tree_error,
        }
    }

    fn attribute_epochs(
        &self,
        report: &RunReport,
        costs: &CostModel,
        threads: u32,
        strategy: Strategy,
    ) -> Vec<EpochAttribution> {
        report
            .checkpoints
            .iter()
            .map(|ckpt| {
                // The pause is attributed to the epoch's named stage spans
                // that count toward it (everything but the ack wait).
                let stages: Vec<StageShare> = report
                    .spans
                    .iter()
                    .filter(|s| {
                        s.category == "stage" && s.epoch == Some(ckpt.seq) && s.name != "ack"
                    })
                    .map(|s| {
                        let duration = SimDuration::from_nanos(s.duration_nanos);
                        let share = if ckpt.pause.is_zero() {
                            0.0
                        } else {
                            s.duration_nanos as f64 / ckpt.pause.as_nanos() as f64
                        };
                        StageShare {
                            stage: s.name,
                            duration,
                            share,
                        }
                    })
                    .collect();
                let attributed: SimDuration = stages.iter().map(|s| s.duration).sum();
                let attributed_fraction = if ckpt.pause.is_zero() {
                    1.0
                } else {
                    attributed.as_nanos() as f64 / ckpt.pause.as_nanos() as f64
                };
                let dominant_stage = stages
                    .iter()
                    .max_by_key(|s| s.duration)
                    .map(|s| s.stage)
                    .unwrap_or("unknown");
                let model_pause = costs.checkpoint_pause(ckpt.dirty_pages, threads, strategy);
                let model_residual_pct = if model_pause.is_zero() {
                    0.0
                } else {
                    (ckpt.pause.as_nanos() as f64 - model_pause.as_nanos() as f64)
                        / model_pause.as_nanos() as f64
                        * 100.0
                };
                EpochAttribution {
                    seq: ckpt.seq,
                    pause: ckpt.pause,
                    attributed,
                    attributed_fraction,
                    stages,
                    dominant_stage,
                    model_pause,
                    model_residual_pct,
                }
            })
            .collect()
    }

    fn find_stragglers(&self, spans: &[Span]) -> Vec<StragglerLane> {
        let mut by_epoch: Vec<(u64, Vec<(u32, u64)>)> = Vec::new();
        for span in spans {
            let (Track::PrimaryLane(lane), Some(epoch), Some(wall)) =
                (span.track, span.epoch, span.wall_nanos)
            else {
                continue;
            };
            match by_epoch.iter_mut().find(|(e, _)| *e == epoch) {
                Some((_, lanes)) => lanes.push((lane, wall)),
                None => by_epoch.push((epoch, vec![(lane, wall)])),
            }
        }
        let mut out = Vec::new();
        for (epoch, lanes) in by_epoch {
            if lanes.len() < 2 {
                continue;
            }
            let mut walls: Vec<u64> = lanes.iter().map(|&(_, w)| w).collect();
            walls.sort_unstable();
            let median = walls[walls.len() / 2];
            for (lane, wall) in lanes {
                if wall < self.cfg.straggler_floor_nanos {
                    continue;
                }
                if wall as f64 > self.cfg.straggler_k * median as f64 {
                    out.push(StragglerLane {
                        seq: epoch,
                        lane,
                        wall_nanos: wall,
                        median_wall_nanos: median,
                    });
                }
            }
        }
        out.sort_by_key(|s| (s.seq, s.lane));
        out
    }

    fn detect_oscillation(&self, decisions: &[PeriodDecision]) -> OscillationReport {
        let mut directions = Vec::new();
        let mut walk_backs = 0;
        let mut midpoint_jumps = 0;
        for d in decisions {
            match d.action {
                PeriodAction::WalkBack => walk_backs += 1,
                PeriodAction::MidpointJump => midpoint_jumps += 1,
                _ => {}
            }
            match d.chosen_period.cmp(&d.previous_period) {
                std::cmp::Ordering::Greater => directions.push(1i8),
                std::cmp::Ordering::Less => directions.push(-1i8),
                std::cmp::Ordering::Equal => {}
            }
        }
        let direction_flips = directions.windows(2).filter(|w| w[0] != w[1]).count();
        let flip_ratio = if directions.len() > 1 {
            direction_flips as f64 / (directions.len() - 1) as f64
        } else {
            0.0
        };
        OscillationReport {
            decisions: decisions.len(),
            direction_flips,
            flip_ratio,
            walk_backs,
            midpoint_jumps,
            oscillating: decisions.len() >= self.cfg.oscillation_window
                && flip_ratio >= self.cfg.oscillation_flip_ratio,
        }
    }

    fn root_cause_breaches(
        &self,
        report: &RunReport,
        epochs: &[EpochAttribution],
    ) -> Vec<BreachRoot> {
        let Some(telemetry) = &report.telemetry else {
            return Vec::new();
        };
        telemetry
            .slo_breaches
            .iter()
            .filter_map(|breach| {
                let epoch = epochs.iter().find(|e| e.seq == breach.seq)?;
                let dominant = epoch
                    .stages
                    .iter()
                    .max_by_key(|s| s.duration)
                    .cloned()
                    .unwrap_or(StageShare {
                        stage: "unknown",
                        duration: SimDuration::ZERO,
                        share: 0.0,
                    });
                // How the dominant stage compares to its own history
                // before the breach.
                let prior: Vec<SimDuration> = epochs
                    .iter()
                    .filter(|e| e.seq < breach.seq)
                    .filter_map(|e| {
                        e.stages
                            .iter()
                            .find(|s| s.stage == dominant.stage)
                            .map(|s| s.duration)
                    })
                    .collect();
                let trailing_mean = if prior.is_empty() {
                    SimDuration::ZERO
                } else {
                    prior.iter().copied().sum::<SimDuration>() / prior.len() as u64
                };
                let growth_pct = if trailing_mean.is_zero() {
                    0.0
                } else {
                    (dominant.duration.as_nanos() as f64 - trailing_mean.as_nanos() as f64)
                        / trailing_mean.as_nanos() as f64
                        * 100.0
                };
                Some(BreachRoot {
                    seq: breach.seq,
                    kind: breach.kind,
                    measured: breach.measured,
                    bound: breach.bound,
                    dominant_stage: dominant.stage,
                    stage_duration: dominant.duration,
                    trailing_mean,
                    growth_pct,
                })
            })
            .collect()
    }
}

/// One stage's virtual-time total, incident run vs. fault-stripped
/// baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDelta {
    /// Stage label (`pause` … `resume`).
    pub stage: &'static str,
    /// Total virtual time the stage took across the incident run.
    pub incident: SimDuration,
    /// Same total across the healthy baseline.
    pub baseline: SimDuration,
    /// `incident − baseline` in nanoseconds (negative = incident faster).
    pub delta_nanos: i64,
}

/// How one replica's progress diverged between the incident run and the
/// fault-stripped baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaDivergence {
    /// 0-based replica index.
    pub replica: u32,
    /// Epochs the replica acked in the incident run.
    pub incident_acks: u64,
    /// Epochs the replica acked in the baseline.
    pub baseline_acks: u64,
    /// The replica's final ack mark in the incident run.
    pub incident_last_acked: u64,
    /// The replica's final ack mark in the baseline.
    pub baseline_last_acked: u64,
    /// Final lag (epochs behind the last quorum commit) in the incident.
    pub incident_lag: u64,
    /// Final lag in the baseline.
    pub baseline_lag: u64,
    /// Transfer retries charged to the replica in the incident run.
    pub incident_retries: u64,
    /// Transfer retries charged in the baseline.
    pub baseline_retries: u64,
}

/// The differential postmortem: incident run vs. the same seed with the
/// fault plan stripped.
#[derive(Debug, Clone, PartialEq)]
pub struct PostmortemReport {
    /// What tripped capture (`alert`, `failover`, `epoch_abort`,
    /// `request`).
    pub trigger: String,
    /// Epoch the trigger fired in.
    pub trigger_epoch: u64,
    /// Trigger detail line from the capture.
    pub trigger_detail: String,
    /// Fingerprint of the re-executed incident run.
    pub incident_fingerprint: u64,
    /// Fingerprint of the fault-stripped baseline run.
    pub baseline_fingerprint: u64,
    /// True when the incident rerun reproduced the bundled fingerprint —
    /// the precondition for trusting every diff below.
    pub fingerprint_reproduced: bool,
    /// Per-stage virtual-time totals, incident vs. baseline, in pipeline
    /// order.
    pub stage_deltas: Vec<StageDelta>,
    /// The stage dominating total pause time in the incident run.
    pub dominant_stage_incident: &'static str,
    /// The stage dominating total pause time in the baseline.
    pub dominant_stage_baseline: &'static str,
    /// True when the dominant stage differs — the fault shifted the
    /// critical path.
    pub critical_path_shifted: bool,
    /// Per-replica ack/lag/retry divergence, in index order.
    pub replicas: Vec<ReplicaDivergence>,
    /// The incident run's alert arc, `rule:state@epoch` in firing order.
    pub alert_timeline: Vec<String>,
    /// Same arc for the baseline (normally empty — that is the point).
    pub baseline_alerts: Vec<String>,
    /// Checkpoints the incident run committed.
    pub incident_checkpoints: u64,
    /// Checkpoints the baseline committed.
    pub baseline_checkpoints: u64,
    /// Epochs the incident run aborted (0 when no fault plan aborted
    /// any).
    pub aborted_epochs: u64,
    /// Throughput delta `(incident − baseline) / baseline`, percent.
    pub throughput_delta_pct: f64,
}

impl PostmortemReport {
    /// Deterministic JSON rendering (`postmortem.json`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"trigger\": \"{}\",\n  \"trigger_epoch\": {},\n  \"trigger_detail\": \"{}\",\n",
            json_escape(&self.trigger),
            self.trigger_epoch,
            json_escape(&self.trigger_detail)
        ));
        out.push_str(&format!(
            "  \"incident_fingerprint\": \"0x{:016x}\",\n  \"baseline_fingerprint\": \"0x{:016x}\",\n  \"fingerprint_reproduced\": {},\n",
            self.incident_fingerprint, self.baseline_fingerprint, self.fingerprint_reproduced
        ));
        out.push_str("  \"stage_deltas\": [\n");
        for (i, d) in self.stage_deltas.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"stage\": \"{}\", \"incident_nanos\": {}, \"baseline_nanos\": {}, \"delta_nanos\": {}}}{}\n",
                d.stage,
                d.incident.as_nanos(),
                d.baseline.as_nanos(),
                d.delta_nanos,
                if i + 1 < self.stage_deltas.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"dominant_stage_incident\": \"{}\",\n  \"dominant_stage_baseline\": \"{}\",\n  \"critical_path_shifted\": {},\n",
            self.dominant_stage_incident, self.dominant_stage_baseline, self.critical_path_shifted
        ));
        out.push_str("  \"replicas\": [\n");
        for (i, r) in self.replicas.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"replica\": {}, \"incident_acks\": {}, \"baseline_acks\": {}, \"incident_last_acked\": {}, \"baseline_last_acked\": {}, \"incident_lag\": {}, \"baseline_lag\": {}, \"incident_retries\": {}, \"baseline_retries\": {}}}{}\n",
                r.replica,
                r.incident_acks,
                r.baseline_acks,
                r.incident_last_acked,
                r.baseline_last_acked,
                r.incident_lag,
                r.baseline_lag,
                r.incident_retries,
                r.baseline_retries,
                if i + 1 < self.replicas.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        let timeline = self
            .alert_timeline
            .iter()
            .map(|a| format!("\"{}\"", json_escape(a)))
            .collect::<Vec<_>>()
            .join(", ");
        let baseline = self
            .baseline_alerts
            .iter()
            .map(|a| format!("\"{}\"", json_escape(a)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "  \"alert_timeline\": [{timeline}],\n  \"baseline_alerts\": [{baseline}],\n"
        ));
        out.push_str(&format!(
            "  \"incident_checkpoints\": {},\n  \"baseline_checkpoints\": {},\n  \"aborted_epochs\": {},\n  \"throughput_delta_pct\": {:.3}\n}}\n",
            self.incident_checkpoints,
            self.baseline_checkpoints,
            self.aborted_epochs,
            self.throughput_delta_pct
        ));
        out
    }

    /// Human-readable postmortem (`postmortem_report.txt`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("POSTMORTEM\n==========\n");
        out.push_str(&format!(
            "trigger     : {} at epoch {} ({})\n",
            self.trigger, self.trigger_epoch, self.trigger_detail
        ));
        out.push_str(&format!(
            "fingerprint : incident 0x{:016x}, baseline 0x{:016x} ({})\n",
            self.incident_fingerprint,
            self.baseline_fingerprint,
            if self.fingerprint_reproduced {
                "bundle reproduced"
            } else {
                "BUNDLE NOT REPRODUCED"
            }
        ));
        out.push_str(&format!(
            "critical path: {} (incident) vs {} (baseline){}\n",
            self.dominant_stage_incident,
            self.dominant_stage_baseline,
            if self.critical_path_shifted {
                " — SHIFTED by the fault"
            } else {
                ""
            }
        ));
        out.push_str("\nstage deltas (incident − baseline):\n");
        for d in &self.stage_deltas {
            out.push_str(&format!(
                "  {:<10} {:>14} ns vs {:>14} ns  Δ {:>+14} ns\n",
                d.stage,
                d.incident.as_nanos(),
                d.baseline.as_nanos(),
                d.delta_nanos
            ));
        }
        out.push_str("\nreplica divergence:\n");
        for r in &self.replicas {
            out.push_str(&format!(
                "  r{}: acks {} vs {}, last_acked {} vs {}, lag {} vs {}, retries {} vs {}\n",
                r.replica,
                r.incident_acks,
                r.baseline_acks,
                r.incident_last_acked,
                r.baseline_last_acked,
                r.incident_lag,
                r.baseline_lag,
                r.incident_retries,
                r.baseline_retries
            ));
        }
        out.push_str("\nalert timeline (incident):\n");
        if self.alert_timeline.is_empty() {
            out.push_str("  (none)\n");
        }
        for a in &self.alert_timeline {
            out.push_str(&format!("  {a}\n"));
        }
        out.push_str(&format!(
            "baseline alerts: {}\n",
            if self.baseline_alerts.is_empty() {
                "(none)".to_string()
            } else {
                self.baseline_alerts.join(", ")
            }
        ));
        out.push_str(&format!(
            "\ncheckpoints {} vs {}, aborted epochs {}, throughput Δ {:+.3}%\n",
            self.incident_checkpoints,
            self.baseline_checkpoints,
            self.aborted_epochs,
            self.throughput_delta_pct
        ));
        out
    }
}

/// The differential forensics engine: re-runs a bundle's seed twice —
/// once as captured and once with the fault plan stripped — and diffs
/// the two deterministic runs stage by stage, replica by replica.
#[derive(Debug, Clone, Copy, Default)]
pub struct PostmortemAnalyzer;

impl PostmortemAnalyzer {
    /// Diffs the bundle's incident run against its fault-stripped
    /// baseline.
    pub fn diff(bundle: &IncidentBundle) -> CoreResult<PostmortemReport> {
        let incident = bundle.execute(true)?;
        let baseline = bundle.execute(false)?;
        Ok(Self::diff_reports(bundle, &incident, &baseline))
    }

    /// The pure diff, for callers that already hold both runs.
    pub fn diff_reports(
        bundle: &IncidentBundle,
        incident: &RunReport,
        baseline: &RunReport,
    ) -> PostmortemReport {
        let inc_totals = stage_totals(&incident.stage_events);
        let base_totals = stage_totals(&baseline.stage_events);
        let total_of = |totals: &[(Stage, SimDuration)], stage: Stage| {
            totals
                .iter()
                .find(|(s, _)| *s == stage)
                .map(|(_, d)| *d)
                .unwrap_or(SimDuration::ZERO)
        };
        let stage_deltas: Vec<StageDelta> = Stage::ALL
            .into_iter()
            .map(|stage| {
                let inc = total_of(&inc_totals, stage);
                let base = total_of(&base_totals, stage);
                StageDelta {
                    stage: stage.label(),
                    incident: inc,
                    baseline: base,
                    delta_nanos: inc.as_nanos() as i64 - base.as_nanos() as i64,
                }
            })
            .collect();
        let dominant = |totals: &[(Stage, SimDuration)]| {
            totals
                .iter()
                .filter(|(s, _)| s.counts_toward_pause())
                .max_by_key(|(_, d)| *d)
                .map(|(s, _)| s.label())
                .unwrap_or("none")
        };
        let dominant_stage_incident = dominant(&inc_totals);
        let dominant_stage_baseline = dominant(&base_totals);

        let replica_count = incident.replica_acks.len().max(baseline.replica_acks.len());
        let last_commit = |r: &RunReport| r.commits.last().map(|c| c.seq).unwrap_or(0);
        let inc_head = last_commit(incident);
        let base_head = last_commit(baseline);
        let retries_of = |r: &RunReport, replica: u32| -> u64 {
            let label = replica.to_string();
            r.telemetry
                .as_ref()
                .map(|t| {
                    t.registry
                        .metrics
                        .iter()
                        .filter(|m| {
                            m.name == "here_replica_retries_total"
                                && m.label
                                    .as_ref()
                                    .is_some_and(|(k, v)| k == "replica" && *v == label)
                        })
                        .map(|m| match m.value {
                            here_telemetry::metrics::MetricValue::Counter(n) => n,
                            _ => 0,
                        })
                        .sum()
                })
                .unwrap_or(0)
        };
        let trail = |r: &RunReport, i: usize| -> (u64, u64) {
            r.replica_acks
                .get(i)
                .map(|t| {
                    (
                        t.acks.len() as u64,
                        t.acks.last().map(|a| a.seq).unwrap_or(0),
                    )
                })
                .unwrap_or((0, 0))
        };
        let replicas: Vec<ReplicaDivergence> = (0..replica_count)
            .map(|i| {
                let (incident_acks, incident_last_acked) = trail(incident, i);
                let (baseline_acks, baseline_last_acked) = trail(baseline, i);
                ReplicaDivergence {
                    replica: i as u32,
                    incident_acks,
                    baseline_acks,
                    incident_last_acked,
                    baseline_last_acked,
                    incident_lag: inc_head.saturating_sub(incident_last_acked),
                    baseline_lag: base_head.saturating_sub(baseline_last_acked),
                    incident_retries: retries_of(incident, i as u32),
                    baseline_retries: retries_of(baseline, i as u32),
                }
            })
            .collect();

        let timeline = |r: &RunReport| -> Vec<String> {
            r.telemetry
                .as_ref()
                .and_then(|t| t.health.as_ref())
                .map(|h| {
                    h.alert_log
                        .iter()
                        .map(|a| format!("{}:{}@{}", a.rule, a.state.label(), a.epoch))
                        .collect()
                })
                .unwrap_or_default()
        };
        let baseline_throughput = baseline.throughput_ops_per_sec;
        let throughput_delta_pct = if baseline_throughput == 0.0 {
            0.0
        } else {
            (incident.throughput_ops_per_sec - baseline_throughput) / baseline_throughput * 100.0
        };
        let incident_fingerprint = incident.fingerprint();
        PostmortemReport {
            trigger: bundle.incident.trigger.clone(),
            trigger_epoch: bundle.incident.epoch,
            trigger_detail: bundle.incident.detail.clone(),
            incident_fingerprint,
            baseline_fingerprint: baseline.fingerprint(),
            fingerprint_reproduced: incident_fingerprint == bundle.fingerprint,
            stage_deltas,
            dominant_stage_incident,
            dominant_stage_baseline,
            critical_path_shifted: dominant_stage_incident != dominant_stage_baseline,
            replicas,
            alert_timeline: timeline(incident),
            baseline_alerts: timeline(baseline),
            incident_checkpoints: incident.checkpoints.len() as u64,
            baseline_checkpoints: baseline.checkpoints.len() as u64,
            aborted_epochs: incident.chaos.as_ref().map_or(0, |c| c.epochs_aborted),
            throughput_delta_pct,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplicationConfig;
    use crate::engine::Scenario;
    use here_sim_core::time::SimDuration;
    use here_workloads::memstress::MemStress;

    fn run() -> (RunReport, ReplicationConfig) {
        let cfg = ReplicationConfig::dynamic(0.3, SimDuration::from_secs(5));
        let report = Scenario::builder()
            .vm_memory_mib(64)
            .vcpus(4)
            .workload(Box::new(MemStress::with_percent(30).with_rate(20_000)))
            .config(cfg.clone())
            .duration(SimDuration::from_secs(20))
            .build()
            .unwrap()
            .run();
        (report, cfg)
    }

    #[test]
    fn postmortem_diff_attributes_the_fault_and_reproduces_the_bundle() {
        use crate::chaos::FaultPlan;
        use crate::config::{FanoutMode, TopologyConfig};
        use crate::postmortem::{IncidentBundle, ScenarioSpec, WorkloadSpec};

        let spec = ScenarioSpec {
            name: "pm-diff".into(),
            memory_mib: 64,
            vcpus: 2,
            workload: WorkloadSpec::MemStress {
                percent: 30,
                rate: 20_000,
            },
            duration: SimDuration::from_secs(20),
            seed: 42,
            verify_consistency: false,
        };
        let cfg = ReplicationConfig::fixed_period(SimDuration::from_secs(2))
            .with_topology(TopologyConfig {
                replicas: 3,
                quorum: 2,
                fanout: FanoutMode::Star,
                stale_epoch_lag: 4,
            })
            .with_health_plane()
            .with_postmortem_capture();
        let plan = FaultPlan::new(7).with_partition_span(4..=9, &[2], 10);
        let report = spec
            .build_scenario(cfg.clone(), Some(plan.clone()))
            .unwrap()
            .run();
        let bundle = IncidentBundle::capture(spec, &cfg, Some(&plan), &report).unwrap();
        let pm = PostmortemAnalyzer::diff(&bundle).unwrap();
        assert!(
            pm.fingerprint_reproduced,
            "incident rerun must match bundle"
        );
        assert_ne!(pm.incident_fingerprint, pm.baseline_fingerprint);
        // The partitioned replica fell behind only under the fault plan.
        let r2 = &pm.replicas[2];
        assert!(r2.incident_retries > r2.baseline_retries);
        assert!(r2.incident_acks < r2.baseline_acks);
        assert!(!pm.alert_timeline.is_empty());
        assert!(pm.baseline_alerts.is_empty(), "{:?}", pm.baseline_alerts);
        // Renderings are non-empty and mention the trigger.
        let json = pm.render_json();
        assert!(json.contains("\"trigger\": \"alert\""));
        assert!(json.contains("\"stage_deltas\""));
        let text = pm.render_text();
        assert!(text.contains("POSTMORTEM"));
        assert!(text.contains("alert timeline"));
    }

    #[test]
    fn every_epoch_pause_is_fully_attributed() {
        let (report, cfg) = run();
        assert!(!report.checkpoints.is_empty());
        let threads = cfg.effective_threads(4);
        let analysis = TraceAnalyzer::default().analyze(&report, &cfg.costs, threads, cfg.strategy);
        assert_eq!(analysis.epochs.len(), report.checkpoints.len());
        // The stage spans sum to the pause by construction, so every
        // epoch attributes ≥ 95 % (in fact 100 %) of its pause.
        assert!(
            analysis.min_attributed_fraction >= 0.95,
            "min attributed fraction {}",
            analysis.min_attributed_fraction
        );
        for epoch in &analysis.epochs {
            assert_eq!(epoch.attributed, epoch.pause, "epoch {}", epoch.seq);
            // Measured pause equals the model by construction in the
            // virtual-time simulator: residual is (sub-nanosecond) zero.
            assert!(
                epoch.model_residual_pct.abs() < 1.0,
                "epoch {} residual {}",
                epoch.seq,
                epoch.model_residual_pct
            );
        }
        assert_eq!(analysis.nesting_violations, 0);
        assert_eq!(analysis.unresolved_links, 0);
        assert!(analysis.tree_error.is_none());
    }

    #[test]
    fn oscillation_flags_alternating_periods() {
        let analyzer = TraceAnalyzer::default();
        let mk = |prev_ms: u64, next_ms: u64, action| PeriodDecision {
            dirty_pages: 100,
            measured_pause: SimDuration::from_millis(10),
            measured_degradation: 0.1,
            previous_period: SimDuration::from_millis(prev_ms),
            chosen_period: SimDuration::from_millis(next_ms),
            predicted_degradation: 0.1,
            action,
            clamp: None,
        };
        // A\B\A\B… ping-pong: every move reverses direction.
        let mut ping_pong = Vec::new();
        for i in 0..10 {
            if i % 2 == 0 {
                ping_pong.push(mk(1000, 500, PeriodAction::StepDescent));
            } else {
                ping_pong.push(mk(500, 1000, PeriodAction::WalkBack));
            }
        }
        let osc = analyzer.detect_oscillation(&ping_pong);
        assert!(osc.oscillating, "{osc:?}");
        assert_eq!(osc.walk_backs, 5);
        assert_eq!(osc.direction_flips, 9);

        // Monotone descent: no flips, not oscillating.
        let descent: Vec<PeriodDecision> = (0..10)
            .map(|i| mk(1000 - i * 50, 950 - i * 50, PeriodAction::StepDescent))
            .collect();
        let osc = analyzer.detect_oscillation(&descent);
        assert!(!osc.oscillating, "{osc:?}");
        assert_eq!(osc.direction_flips, 0);
    }

    #[test]
    fn stragglers_flagged_above_k_times_median() {
        use here_telemetry::span::{SpanDraft, SpanRecorder, Track};
        let mut rec = SpanRecorder::new();
        for (lane, wall) in [(0u32, 10_000u64), (1, 11_000), (2, 9_000), (3, 40_000)] {
            rec.push(
                SpanDraft::new("encode_lane", "lane", Track::PrimaryLane(lane), 0)
                    .lasting(100)
                    .epoch(5)
                    .wall(wall),
            );
        }
        let found = TraceAnalyzer::default().find_stragglers(rec.spans());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].lane, 3);
        assert_eq!(found[0].seq, 5);
        assert!(found[0].ratio() > 3.0);
    }
}
