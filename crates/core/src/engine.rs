//! The replication engine: scenarios, the continuous-replication loop, and
//! failover handling.
//!
//! A [`Scenario`] wires together the full stack — a primary host, a
//! secondary host, a protected VM running a workload, the replication
//! configuration, and optionally an injected failure — and [`Scenario::run`]
//! executes it in virtual time, producing a [`RunReport`] with everything
//! the paper's figures need.
//!
//! The loop implements the Remus workflow of §3.2 with HERE's extensions
//! (§5, §7): seed by live migration, then repeat { run the VM for `T`
//! buffering its output; pause; copy the dirty pages (multithreaded, via
//! the real chunk workers); translate and ship vCPU/device state through
//! the wire codec; wait for the ack; commit (release buffered output);
//! resume; let the dynamic period manager pick the next `T` }.

use here_hypervisor::arch::Gpr;
use here_hypervisor::fault::{DosOutcome, HostHealth};
use here_hypervisor::host::Hypervisor;
use here_hypervisor::kind::HypervisorKind;
use here_hypervisor::vcpu::{KvmVcpuState, VcpuStateBlob, XenVcpuState};
use here_hypervisor::vm::{VmConfig, VmId};
use here_hypervisor::{KvmHypervisor, PageId, VcpuId, XenHypervisor, PAGE_SIZE};
use here_sim_core::metrics::{Histogram, TimeSeries};
use here_sim_core::rate::ByteSize;
use here_sim_core::rng::SimRng;
use here_sim_core::time::{SimDuration, SimTime};
use here_simnet::link::Link;
use here_vmstate::cir::CpuStateCir;
use here_vmstate::translate::StateTranslator;
use here_vmstate::wire::{Record, StreamDecoder, StreamEncoder};
use here_vmstate::{reconcile, MemoryDelta};
use here_vulndb::exploit::{Exploit, ExploitResult};
use here_workloads::idle::IdleGuest;
use here_workloads::traits::Workload;

use crate::config::{ReplicationConfig, Strategy};
use crate::devmgr::DeviceManager;
use crate::error::{CoreError, CoreResult};
use crate::failover::{detection_time, FailoverRecord};
use crate::period::{degradation, PeriodManager};
use crate::report::{
    CheckpointRecord, IterationStats, MigrationOutcome, ResourceUsage, RunReport,
};
use crate::transfer::{collect_chunked, ProblematicTracker};

/// Host memory given to each simulated server (the testbed's 192 GB).
const HOST_MEMORY: ByteSize = ByteSize::from_gib(192);

/// Maximum pre-copy iterations before forcing the stop-and-copy (Xen's
/// default of 5, §3.2).
pub const MAX_MIGRATION_ITERATIONS: u32 = 5;

/// Dirty-page threshold below which migration converges to stop-and-copy.
pub const MIGRATION_DIRTY_THRESHOLD: u64 = 256;

/// Fixed client-side stack overhead added to every packet's latency.
const CLIENT_STACK_OVERHEAD: SimDuration = SimDuration::from_micros(38);

/// Largest workload advance slice; bounds phase-change and emission
/// timestamp granularity.
const MAX_SLICE: SimDuration = SimDuration::from_millis(250);

/// What brings the primary down.
#[derive(Debug, Clone)]
pub enum FailureCause {
    /// A weaponised DoS CVE launched at the primary.
    Exploit(Exploit),
    /// An accidental failure (hardware fault, power cut) with the given
    /// manifestation.
    Accident(DosOutcome),
}

/// A planned failure injection.
#[derive(Debug, Clone)]
pub struct FailurePlan {
    /// When the failure hits.
    pub at: SimTime,
    /// What happens.
    pub cause: FailureCause,
    /// After failover, relaunch the same exploit against the secondary
    /// (the paper's "the attacker now needs two different exploits"
    /// argument, §6). Only meaningful for [`FailureCause::Exploit`].
    pub reattack_secondary: bool,
}

/// How the VM is protected.
#[derive(Debug, Clone)]
enum Protection {
    Unprotected,
    Replicated(ReplicationConfig),
}

/// A fully specified experiment.
///
/// Create one with [`Scenario::builder`]; run it with [`Scenario::run`].
#[derive(Debug)]
pub struct Scenario {
    name: String,
    memory: ByteSize,
    vcpus: u32,
    workload: Box<dyn Workload>,
    protection: Protection,
    duration: SimDuration,
    seed: u64,
    failure: Option<FailurePlan>,
    stop_when_workload_done: bool,
    load_during_seed: bool,
    warmup: SimDuration,
    warmup_under_load: bool,
    verify_consistency: bool,
}

/// Builder for [`Scenario`].
#[derive(Debug)]
pub struct ScenarioBuilder {
    name: Option<String>,
    memory: ByteSize,
    vcpus: u32,
    workload: Option<Box<dyn Workload>>,
    protection: Protection,
    duration: SimDuration,
    seed: u64,
    failure: Option<FailurePlan>,
    stop_when_workload_done: bool,
    load_during_seed: bool,
    warmup: SimDuration,
    warmup_under_load: bool,
    verify_consistency: bool,
}

impl Scenario {
    /// Starts building a scenario. Defaults: 1 GiB / 4 vCPUs, idle guest,
    /// HERE with a fixed 5-second period, 60 s of virtual time, seed 42.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder {
            name: None,
            memory: ByteSize::from_gib(1),
            vcpus: 4,
            workload: None,
            protection: Protection::Replicated(ReplicationConfig::fixed_period(
                SimDuration::from_secs(5),
            )),
            duration: SimDuration::from_secs(60),
            seed: 42,
            failure: None,
            stop_when_workload_done: true,
            load_during_seed: false,
            warmup: SimDuration::ZERO,
            warmup_under_load: false,
            verify_consistency: false,
        }
    }

    /// Executes the scenario to completion.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations (e.g. a corrupted
    /// replication stream), never on valid configurations.
    pub fn run(self) -> RunReport {
        match &self.protection {
            Protection::Unprotected => run_unprotected(self),
            Protection::Replicated(_) => {
                run_replicated(self).expect("replicated run failed on a valid scenario")
            }
        }
    }
}

impl ScenarioBuilder {
    /// Sets the scenario name (appears in the report).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Guest memory in GiB.
    pub fn vm_memory_gib(mut self, gib: u64) -> Self {
        self.memory = ByteSize::from_gib(gib);
        self
    }

    /// Guest memory in MiB (for small test VMs).
    pub fn vm_memory_mib(mut self, mib: u64) -> Self {
        self.memory = ByteSize::from_mib(mib);
        self
    }

    /// Number of vCPUs.
    pub fn vcpus(mut self, vcpus: u32) -> Self {
        self.vcpus = vcpus;
        self
    }

    /// The workload to run in the protected VM.
    pub fn workload(mut self, workload: Box<dyn Workload>) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Protects the VM with the given replication configuration.
    pub fn config(mut self, config: ReplicationConfig) -> Self {
        self.protection = Protection::Replicated(config);
        self
    }

    /// Runs the VM without any replication (the figures' "Xen" baseline).
    pub fn unprotected(mut self) -> Self {
        self.protection = Protection::Unprotected;
        self
    }

    /// Virtual-time budget of the run.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Experiment seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Plans a failure injection.
    pub fn failure(mut self, plan: FailurePlan) -> Self {
        self.failure = Some(plan);
        self
    }

    /// Keep running even after a bounded workload finishes (default is to
    /// stop at completion).
    pub fn run_full_duration(mut self) -> Self {
        self.stop_when_workload_done = false;
        self
    }

    /// Runs the workload during the seeding migration too (Fig. 6
    /// migrates a VM that is already under load). By default the workload
    /// starts only once replication is established — benchmarks measure
    /// the replicated steady state, not the seeding transient — and an
    /// idle guest supplies the background dirtying during the seed.
    pub fn load_during_seed(mut self) -> Self {
        self.load_during_seed = true;
        self
    }

    /// Runs continuous replication for `warmup` of virtual time before the
    /// measurement starts, then discards everything observed so far. Lets
    /// the dynamic period manager converge from its conservative
    /// `T = T_max` start before a figure's recording window opens
    /// (Fig. 9). The workload's own clock restarts at the end of warmup.
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Like [`ScenarioBuilder::warmup`], but the scenario's own workload
    /// (at its initial phase) drives the system during warmup instead of
    /// an idle guest, so the period manager converges against the load it
    /// will actually see. The workload's clock is rebased to zero when
    /// measurement starts; phase-scheduled workloads replay their schedule.
    /// Not meaningful for bounded workloads (their progress would be
    /// consumed by the warmup).
    pub fn warmup_under_load(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self.warmup_under_load = true;
        self
    }

    /// After every checkpoint commit, verify byte-for-byte that the
    /// replica's memory and every vCPU's architectural state match the
    /// (paused) primary's, and panic on divergence. Costs one memory
    /// comparison per checkpoint; intended for tests.
    pub fn verify_consistency(mut self) -> Self {
        self.verify_consistency = true;
        self
    }

    /// Validates and builds the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidScenario`] for zero vCPUs, invalid
    /// memory sizes, or a zero duration.
    pub fn build(self) -> CoreResult<Scenario> {
        if self.vcpus == 0 {
            return Err(CoreError::InvalidScenario("vcpus must be positive".into()));
        }
        if self.duration.is_zero() {
            return Err(CoreError::InvalidScenario("duration must be positive".into()));
        }
        // Validate memory via VmConfig.
        VmConfig::new("probe", self.memory, self.vcpus).map_err(CoreError::Hypervisor)?;
        let workload = self
            .workload
            .unwrap_or_else(|| Box::new(IdleGuest::new()) as Box<dyn Workload>);
        let name = self.name.unwrap_or_else(|| {
            format!("{}-{}", workload.name(), self.memory)
        });
        Ok(Scenario {
            name,
            memory: self.memory,
            vcpus: self.vcpus,
            workload,
            protection: self.protection,
            duration: self.duration,
            seed: self.seed,
            failure: self.failure,
            stop_when_workload_done: self.stop_when_workload_done,
            load_during_seed: self.load_during_seed,
            warmup: self.warmup,
            warmup_under_load: self.warmup_under_load,
            verify_consistency: self.verify_consistency,
        })
    }
}

/// Everything mutable during a replicated run.
struct Session {
    clock: SimTime,
    rng: SimRng,
    primary: Box<dyn Hypervisor>,
    secondary: Box<dyn Hypervisor>,
    pvm: VmId,
    rvm: VmId,
    translator: Option<StateTranslator>,
    cfg: ReplicationConfig,
    threads: u32,
    period: PeriodManager,
    devmgr: DeviceManager,
    repl_link: Link,
    client_link: Link,
    workload: Box<dyn Workload>,
    idle_filler: IdleGuest,
    workload_started: bool,
    load_during_seed: bool,
    workload_now_base: SimTime,
    measure_base: SimTime,
    buffering: bool,
    verify_consistency: bool,
    consistency_checks: u64,
    // accounting
    seq: u64,
    ops_committed: f64,
    ops_uncommitted: f64,
    disturbance_debt: SimDuration,
    cpu_work: SimDuration,
    max_ckpt_pages: u64,
    checkpoints: Vec<CheckpointRecord>,
    period_series: TimeSeries,
    degradation_series: TimeSeries,
    latencies: Histogram,
}

impl Session {
    /// Advances the protected VM (and virtual time) by `dt`, slicing for
    /// emission timestamps and phase changes. Returns early if the
    /// workload completes and `stop_done` is set.
    fn advance(&mut self, dt: SimDuration, stop_done: bool) {
        let end = self.clock + dt;
        while self.clock < end {
            let slice = (end - self.clock).clamp(SimDuration::ZERO, MAX_SLICE);
            // Apply pending guest-side disturbance: the workload loses this
            // much effective CPU time after each pause (§8.6).
            let lost = self.disturbance_debt.clamp(SimDuration::ZERO, slice);
            self.disturbance_debt -= lost;
            let effective = slice - lost;
            let slice_start = self.clock;
            let in_seed = !self.workload_started;
            let progress = if effective.is_zero() {
                here_workloads::traits::Progress::default()
            } else {
                let vm = self
                    .primary
                    .vm_mut(self.pvm)
                    .expect("primary must be alive while advancing");
                if in_seed && !self.load_during_seed {
                    // The benchmark has not started yet; an idle guest
                    // supplies the background dirtying the seed copies.
                    self.idle_filler
                        .advance(slice_start, effective, vm, &mut self.rng)
                } else {
                    let wnow = SimTime::ZERO
                        + slice_start.saturating_duration_since(self.workload_now_base);
                    self.workload.advance(wnow, effective, vm, &mut self.rng)
                }
            };
            self.ops_uncommitted += progress.ops;
            for emission in progress.emissions {
                let at = slice_start + emission.offset;
                if self.buffering {
                    self.devmgr.buffer_outgoing(emission.size, at);
                } else {
                    let latency = self.client_link.transfer_time(emission.size) * 2
                        + CLIENT_STACK_OVERHEAD;
                    self.latencies.observe(latency.as_secs_f64());
                }
            }
            self.clock += slice;
            self.tick_vcpus(slice);
            if stop_done && self.workload.is_done() {
                return;
            }
        }
    }

    /// Advances guest CPU state so checkpoints carry evolving registers.
    fn tick_vcpus(&mut self, dt: SimDuration) {
        let Ok(vm) = self.primary.vm_mut(self.pvm) else {
            return;
        };
        let cycles = dt.as_nanos().saturating_mul(21) / 10; // 2.1 GHz
        let ops_bits = self.ops_uncommitted as u64;
        for vcpu in vm.vcpus_mut() {
            vcpu.regs.tsc = vcpu.regs.tsc.wrapping_add(cycles);
            vcpu.regs.rip = 0xffff_ffff_8100_0000 + (vcpu.regs.tsc % 0x1_0000);
            vcpu.regs.set_gpr(Gpr::Rax, ops_bits);
        }
    }

    /// Snapshot-and-clear the primary's dirty bitmap, returning the
    /// snapshot; also harvests (and discards) the PML rings so they do not
    /// grow without bound.
    fn take_dirty_snapshot(&mut self) -> here_hypervisor::dirty::DirtyBitmap {
        let vm = self
            .primary
            .vm_mut(self.pvm)
            .expect("primary must be alive at checkpoint");
        let snapshot = vm.dirty().bitmap().clone();
        vm.dirty_mut().bitmap_mut().clear();
        for i in 0..vm.dirty().vcpu_count() {
            let _ = vm.dirty_mut().harvest_ring(i);
        }
        snapshot
    }

    /// Ships a delta plus vCPU/device state through the wire codec and
    /// installs it on the replica. This is the *data plane*: real bytes are
    /// encoded, checksummed, decoded and applied.
    fn ship_checkpoint(&mut self, delta: &MemoryDelta, seq: u64) -> CoreResult<()> {
        let mut enc = StreamEncoder::new();
        enc.push(&Record::CheckpointBegin { seq });
        enc.push(&Record::PageBatch(delta.clone()));
        let vcpu_count = self.primary.vm(self.pvm)?.vcpus().len() as u32;
        for i in 0..vcpu_count {
            let blob = self.primary.get_vcpu_state(self.pvm, VcpuId::new(i))?;
            let cir = match &self.translator {
                Some(t) => t.decode_to_cir(&blob)?,
                None => CpuStateCir {
                    regs: blob.to_arch(),
                    online: blob.is_online(),
                },
            };
            enc.push(&Record::VcpuState { index: i, cir });
        }
        for dev in self.primary.vm(self.pvm)?.devices() {
            enc.push(&Record::Device(dev.identity.clone()));
        }
        enc.push(&Record::CheckpointEnd {
            seq,
            pages_total: delta.len() as u64,
        });
        let stream = enc.finish();

        // Receive side.
        let mut dec = StreamDecoder::new(stream)?;
        let mut pages_seen = 0u64;
        while let Some(record) = dec.next_record()? {
            match record {
                Record::CheckpointBegin { .. } | Record::StreamHeader { .. } => {}
                Record::PageBatch(batch) => {
                    pages_seen += batch.len() as u64;
                    let replica = self.secondary.vm_mut(self.rvm)?;
                    for &(page, rec) in batch.entries() {
                        replica.memory_mut().install_page(page, rec)?;
                    }
                }
                Record::VcpuState { index, cir } => {
                    let blob = match self.secondary.kind() {
                        HypervisorKind::Xen => {
                            VcpuStateBlob::Xen(XenVcpuState::from_arch(&cir.regs, cir.online))
                        }
                        HypervisorKind::Kvm => {
                            VcpuStateBlob::Kvm(KvmVcpuState::from_arch(&cir.regs, cir.online))
                        }
                    };
                    self.secondary
                        .set_vcpu_state(self.rvm, VcpuId::new(index), blob)?;
                }
                Record::Device(_) => {
                    // Identities are checked on failover; the replica's own
                    // device set is built by the device manager then.
                }
                Record::CheckpointEnd { pages_total, .. } => {
                    if pages_total != pages_seen {
                        return Err(CoreError::InvalidScenario(format!(
                            "checkpoint {seq}: {pages_seen} pages received, header says {pages_total}"
                        )));
                    }
                }
                Record::Ack { .. } => {}
            }
        }
        Ok(())
    }

    /// Releases buffered output at the commit instant and records client
    /// latencies.
    fn commit(&mut self) {
        for released in self.devmgr.on_commit(self.clock) {
            let latency = released.buffering_delay()
                + self.client_link.transfer_time(released.packet.size) * 2
                + CLIENT_STACK_OVERHEAD;
            self.latencies.observe(latency.as_secs_f64());
        }
        self.ops_committed += self.ops_uncommitted;
        self.ops_uncommitted = 0.0;
    }

    /// One full checkpoint: pause, copy, ship, ack, commit, resume.
    fn do_checkpoint(&mut self, period_used: SimDuration) -> CoreResult<()> {
        self.seq += 1;
        let seq = self.seq;
        let paused_at = self.clock;
        self.primary.vm_mut(self.pvm)?.pause()?;

        let snapshot = self.take_dirty_snapshot();
        let delta = {
            let vm = self.primary.vm(self.pvm)?;
            collect_chunked(vm.memory(), &snapshot, self.threads)
        };
        let pages = delta.len() as u64;
        let pause = self
            .cfg
            .costs
            .checkpoint_pause(pages, self.threads, self.cfg.strategy);
        self.ship_checkpoint(&delta, seq)?;
        if self.verify_consistency {
            self.assert_replica_matches_primary(seq)?;
            self.consistency_checks += 1;
        }
        self.clock += pause;
        self.clock += self.repl_link.rtt(); // checkpoint acknowledgement
        self.commit();
        self.primary.vm_mut(self.pvm)?.resume()?;
        self.disturbance_debt += self.cfg.costs.pause_disturbance;

        let d = degradation(pause, period_used);
        self.period.on_checkpoint(pause);
        self.cpu_work += self.cfg.costs.checkpoint_cpu_work(pages, self.threads);
        self.max_ckpt_pages = self.max_ckpt_pages.max(pages);
        // All report timestamps are relative to the measurement start.
        let rel_paused = SimTime::ZERO + paused_at.saturating_duration_since(self.measure_base);
        let rel_now = SimTime::ZERO + self.clock.saturating_duration_since(self.measure_base);
        self.checkpoints.push(CheckpointRecord {
            seq,
            paused_at: rel_paused,
            period: period_used,
            pause,
            dirty_pages: pages,
            degradation: d,
        });
        self.period_series
            .record(rel_now, self.period.current().as_secs_f64());
        self.degradation_series.record(rel_now, d * 100.0);
        Ok(())
    }

    /// Verifies that the replica is an exact copy of the paused primary:
    /// every page version identical, every vCPU architecturally equal.
    fn assert_replica_matches_primary(&self, seq: u64) -> CoreResult<()> {
        let primary = self.primary.vm(self.pvm)?;
        let replica = self.secondary.vm(self.rvm)?;
        if !primary.memory().content_equals(replica.memory()) {
            let diff = primary.memory().diff(replica.memory(), 4);
            return Err(CoreError::InvalidScenario(format!(
                "checkpoint {seq}: replica memory diverged at frames {diff:?}"
            )));
        }
        for (p, r) in primary.vcpus().iter().zip(replica.vcpus()) {
            if p.regs.digest() != r.regs.digest() {
                return Err(CoreError::InvalidScenario(format!(
                    "checkpoint {seq}: vCPU {} state diverged",
                    p.id.index()
                )));
            }
        }
        Ok(())
    }

    /// The seeding migration (§3.2 step ②–③, with §7.2's optimisations).
    fn seed(&mut self) -> CoreResult<MigrationOutcome> {
        let costs = self.cfg.costs;
        let mut iterations = Vec::new();
        let mut pages_sent = 0u64;
        let mut tracker = ProblematicTracker::new();
        let started = self.clock;

        if self.cfg.strategy == Strategy::Here {
            // Thread-pool and per-vCPU PML setup; the VM keeps running.
            self.advance(costs.here_migration_setup, false);
        }

        // Iteration 0: every page of the VM goes over.
        let total_pages = self.primary.vm(self.pvm)?.memory().num_pages();
        let round = costs.migration_round(total_pages, self.threads);
        // Content snapshot first (what iteration 0 sends), then the guest
        // keeps dirtying during the copy.
        let full_delta: MemoryDelta = self
            .primary
            .vm(self.pvm)?
            .memory()
            .touched_iter()
            .collect();
        self.advance(round, false);
        self.install_delta(&full_delta, 0)?;
        pages_sent += total_pages;
        iterations.push(IterationStats {
            index: 0,
            pages: total_pages,
            duration: round,
            problematic_new: 0,
        });

        // Iterative pre-copy.
        let mut iter = 1u32;
        loop {
            let snapshot = self.take_dirty_snapshot();
            let dirty_count = snapshot.count();
            if dirty_count <= MIGRATION_DIRTY_THRESHOLD || iter >= MAX_MIGRATION_ITERATIONS {
                // Final stop-and-copy: pause, send remaining dirty pages
                // plus the problematic resend list, plus vCPU/device state.
                self.primary.vm_mut(self.pvm)?.pause()?;
                let mut final_delta = {
                    let vm = self.primary.vm(self.pvm)?;
                    collect_chunked(vm.memory(), &snapshot, self.threads)
                };
                let problematic = tracker.resend_list();
                let problematic_resent = problematic.len() as u64;
                let resend = self.pages_to_delta(&problematic)?;
                final_delta.merge(resend);
                let downtime = costs.migration_round(final_delta.len() as u64, self.threads)
                    + costs.checkpoint_const;
                self.ship_checkpoint(&final_delta, 0)?;
                pages_sent += final_delta.len() as u64;
                self.clock += downtime;
                self.primary.vm_mut(self.pvm)?.resume()?;
                iterations.push(IterationStats {
                    index: iter,
                    pages: final_delta.len() as u64,
                    duration: downtime,
                    problematic_new: 0,
                });
                return Ok(MigrationOutcome {
                    iterations,
                    total: self.clock.saturating_duration_since(started),
                    downtime,
                    pages_sent,
                    problematic_resent,
                });
            }

            // Copy this round's dirty set while the guest keeps running.
            let delta = {
                let vm = self.primary.vm(self.pvm)?;
                collect_chunked(vm.memory(), &snapshot, self.threads)
            };
            let before = tracker.len();
            if self.cfg.strategy == Strategy::Here {
                // Per-vCPU migrator threads: pages are sent by the thread
                // of the vCPU that last wrote them; pages that hop between
                // threads across rounds become problematic (§7.2).
                for &(page, rec) in delta.entries() {
                    tracker.record(page, rec.last_writer);
                }
            }
            let problematic_new = (tracker.len() - before) as u64;
            let round = costs.migration_round(dirty_count, self.threads);
            self.advance(round, false);
            self.install_delta(&delta, iter)?;
            pages_sent += dirty_count;
            iterations.push(IterationStats {
                index: iter,
                pages: dirty_count,
                duration: round,
                problematic_new,
            });
            iter += 1;
        }
    }

    fn pages_to_delta(&self, pages: &[PageId]) -> CoreResult<MemoryDelta> {
        let vm = self.primary.vm(self.pvm)?;
        let mut delta = MemoryDelta::new();
        for &p in pages {
            delta.push(p, vm.memory().page(p)?);
        }
        Ok(delta)
    }

    fn install_delta(&mut self, delta: &MemoryDelta, _iter: u32) -> CoreResult<()> {
        let replica = self.secondary.vm_mut(self.rvm)?;
        for &(page, rec) in delta.entries() {
            replica.memory_mut().install_page(page, rec)?;
        }
        Ok(())
    }

    /// Handles a primary-host failure: detect, discard, switch devices,
    /// activate.
    fn failover(&mut self, failed_at: SimTime) -> CoreResult<FailoverRecord> {
        let post_health = self.primary.health();
        debug_assert_ne!(post_health, HostHealth::Healthy);
        let detected_at = detection_time(&self.cfg.heartbeat, failed_at, post_health);
        self.clock = detected_at;

        // Everything since the last commit is rolled back.
        let ops_lost = self.ops_uncommitted;
        self.ops_uncommitted = 0.0;

        let switch = {
            let replica = self.secondary.vm_mut(self.rvm)?;
            self.devmgr.switch_devices(replica, self.translator.as_ref())
        };
        let activation = self.secondary.activation_latency()
            + self.cfg.costs.device_switch
            + self.cfg.costs.state_load;
        self.clock += activation;
        self.secondary.vm_mut(self.rvm)?.activate()?;
        let rel = |t: SimTime| SimTime::ZERO + t.saturating_duration_since(self.measure_base);
        Ok(FailoverRecord {
            failed_at: rel(failed_at),
            detected_at: rel(detected_at),
            resumed_at: rel(self.clock),
            resumed_from_checkpoint: self.seq,
            packets_lost: switch.packets_discarded,
            ops_lost,
            devices_switched: switch.devices_switched,
        })
    }
}

fn run_unprotected(scenario: Scenario) -> RunReport {
    let Scenario {
        name,
        memory,
        vcpus,
        mut workload,
        duration,
        seed,
        stop_when_workload_done,
        ..
    } = scenario;
    let mut xen = XenHypervisor::new(HOST_MEMORY);
    let cfg = VmConfig::new(name.clone(), memory, vcpus)
        .expect("scenario builder validated the VM config");
    let pvm = xen.create_vm(cfg).expect("fresh host has room");
    let client_link = Link::ethernet_10g();
    let mut rng = SimRng::seed_from(seed).fork("workload");
    let mut clock = SimTime::ZERO;
    let mut ops = 0.0;
    let mut latencies = Histogram::new();
    let end = SimTime::ZERO + duration;
    while clock < end {
        let slice = (end - clock).clamp(SimDuration::ZERO, MAX_SLICE);
        let vm = xen.vm_mut(pvm).expect("unprotected primary never fails");
        let progress = workload.advance(clock, slice, vm, &mut rng);
        ops += progress.ops;
        for emission in progress.emissions {
            let latency =
                client_link.transfer_time(emission.size) * 2 + CLIENT_STACK_OVERHEAD;
            latencies.observe(latency.as_secs_f64());
        }
        clock += slice;
        if stop_when_workload_done && workload.is_done() {
            break;
        }
    }
    let elapsed = clock.saturating_duration_since(SimTime::ZERO);
    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    RunReport {
        name,
        elapsed,
        ops_completed: ops,
        throughput_ops_per_sec: ops / secs,
        migration: None,
        checkpoints: Vec::new(),
        period_series: TimeSeries::new("period_secs"),
        degradation_series: TimeSeries::new("degradation_pct"),
        packet_latencies: latencies,
        failover: None,
        resources: ResourceUsage {
            cpu_core_pct: 0.0,
            rss: ByteSize::ZERO,
        },
        consistency_checks: 0,
    }
}

fn run_replicated(scenario: Scenario) -> CoreResult<RunReport> {
    let Scenario {
        name,
        memory,
        vcpus,
        workload,
        protection,
        duration,
        seed,
        failure,
        stop_when_workload_done,
        load_during_seed,
        warmup,
        warmup_under_load,
        verify_consistency,
    } = scenario;
    let Protection::Replicated(cfg) = protection else {
        unreachable!("run_replicated requires a replication config");
    };

    // Hosts: HERE pairs Xen with KVM/kvmtool; Remus pairs Xen with Xen.
    let primary_box: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(HOST_MEMORY));
    let (secondary_box, translator): (Box<dyn Hypervisor>, Option<StateTranslator>) =
        match cfg.strategy {
            Strategy::Here => (
                Box::new(KvmHypervisor::new(HOST_MEMORY)),
                Some(StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Kvm)?),
            ),
            Strategy::Remus => (Box::new(XenHypervisor::new(HOST_MEMORY)), None),
        };
    let mut primary = primary_box;
    let mut secondary = secondary_box;

    // Platform reconciliation (§5.3): the VM boots with the intersection of
    // both hosts' CPUID policies, so it can resume anywhere.
    let contract = reconcile(&primary.default_cpuid(), &secondary.default_cpuid());
    let vm_cfg = VmConfig::new(name.clone(), memory, vcpus)
        .map_err(CoreError::Hypervisor)?
        .with_cpuid(contract.cpuid);
    let pvm = primary.create_vm(vm_cfg.clone())?;
    let rvm = secondary.create_shell(vm_cfg)?;
    primary.vm_mut(pvm)?.dirty_mut().enable_logging();

    let threads = cfg.effective_threads(vcpus);
    let period = PeriodManager::new(cfg.period);
    let mut session = Session {
        clock: SimTime::ZERO,
        rng: SimRng::seed_from(seed).fork("workload"),
        primary,
        secondary,
        pvm,
        rvm,
        translator,
        threads,
        period,
        devmgr: DeviceManager::new(),
        repl_link: Link::omni_path_100g(),
        client_link: Link::ethernet_10g(),
        workload,
        idle_filler: IdleGuest::new(),
        workload_started: false,
        load_during_seed,
        workload_now_base: SimTime::ZERO,
        measure_base: SimTime::ZERO,
        buffering: false,
        verify_consistency,
        consistency_checks: 0,
        seq: 0,
        ops_committed: 0.0,
        ops_uncommitted: 0.0,
        disturbance_debt: SimDuration::ZERO,
        cpu_work: SimDuration::ZERO,
        max_ckpt_pages: 0,
        checkpoints: Vec::new(),
        period_series: TimeSeries::new("period_secs"),
        degradation_series: TimeSeries::new("degradation_pct"),
        latencies: Histogram::new(),
        cfg,
    };

    // Phase 1: seeding.
    let migration = session.seed()?;

    // Application measurement starts after seeding (the benchmarks of §8
    // run against an already-replicated VM).
    let mut replication_start = session.clock;
    if !session.load_during_seed {
        session.workload_now_base = replication_start;
    }
    session.measure_base = replication_start;
    session.ops_committed = 0.0;
    session.ops_uncommitted = 0.0;
    session.buffering = true;

    // Optional warmup: replicate the idle guest without recording, then
    // reset. The real workload starts only when measurement does, so
    // bounded workloads and phase schedules are untouched by warmup.
    if !warmup.is_zero() {
        if warmup_under_load {
            session.workload_started = true;
        }
        let warmup_end = replication_start + warmup;
        while session.clock < warmup_end {
            let t = session.period.current();
            let epoch_end = (session.clock + t).min(warmup_end);
            session.advance(
                epoch_end.saturating_duration_since(session.clock),
                false,
            );
            session.do_checkpoint(t)?;
            // Bounded workloads cycle during warmup so the dirty pressure
            // the controller converges against never drops out.
            if session.workload.is_done() {
                session.workload.reset();
            }
        }
        // Measurement starts on a fresh workload run.
        session.workload.reset();
        session.checkpoints.clear();
        session.period_series = TimeSeries::new("period_secs");
        session.degradation_series = TimeSeries::new("degradation_pct");
        session.latencies = Histogram::new();
        session.ops_committed = 0.0;
        session.ops_uncommitted = 0.0;
        session.cpu_work = SimDuration::ZERO;
        session.max_ckpt_pages = 0;
        replication_start = session.clock;
        session.measure_base = replication_start;
        session.workload_now_base = replication_start;
    }
    session.workload_started = true;
    let end = replication_start + duration;

    let mut failover_record = None;
    let mut plan = failure;

    // Phase 2: continuous replication.
    'outer: while session.clock < end {
        let t = session.period.current();
        let epoch_end = (session.clock + t).min(end);

        // A failure inside this epoch interrupts it. A failure instant
        // that fell within the previous checkpoint's pause fires now, at
        // the first moment the simulation can observe it.
        if let Some(p) = &plan {
            let fire_at = replication_start + p.at.saturating_duration_since(SimTime::ZERO);
            if fire_at < epoch_end {
                let run_for = fire_at.saturating_duration_since(session.clock);
                session.advance(run_for, false);
                let plan_taken = plan.take().expect("plan checked above");
                let downed = apply_cause(&plan_taken.cause, session.primary.as_mut());
                if downed {
                    let record = session.failover(session.clock)?;
                    session.clock = record.resumed_at;
                    failover_record = Some(record);
                    // Service continues on the (now unreplicated) replica.
                    if plan_taken.reattack_secondary {
                        if let FailureCause::Exploit(e) = &plan_taken.cause {
                            let result = e.launch(session.secondary.as_mut());
                            if matches!(result, ExploitResult::HostDown(_)) {
                                // Homogeneous replication loses here: the
                                // same exploit kills the replica too.
                                break 'outer;
                            }
                        }
                    }
                    run_on_replica(&mut session, end, stop_when_workload_done)?;
                    break 'outer;
                }
                // Exploit repelled or guest-only: the epoch continues.
                continue 'outer;
            }
        }

        session.advance(
            epoch_end.saturating_duration_since(session.clock),
            stop_when_workload_done,
        );
        session.do_checkpoint(t)?;
        if stop_when_workload_done && session.workload.is_done() {
            break;
        }
    }

    let elapsed = session.clock.saturating_duration_since(replication_start);
    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    let bitmap_bytes = session
        .primary
        .vm(session.pvm)
        .map(|vm| vm.memory().num_pages() / 8)
        .unwrap_or(0);
    // The staging buffer holds full page payloads for the round in
    // flight, windowed at 256 MiB (the engine recycles chunk buffers).
    let staging_pages = session.max_ckpt_pages.min(65_536);
    let rss = ByteSize::from_mib(session.cfg.costs.rss_base_mib)
        + ByteSize::from_bytes(staging_pages * PAGE_SIZE)
        + ByteSize::from_bytes(bitmap_bytes)
        + session.devmgr.io().high_watermark();
    let cpu_core_pct = session.cpu_work.as_secs_f64() / secs * 100.0;
    let ops_completed = session.ops_committed + session.ops_uncommitted;
    Ok(RunReport {
        name,
        elapsed,
        ops_completed,
        throughput_ops_per_sec: ops_completed / secs,
        migration: Some(migration),
        checkpoints: session.checkpoints,
        period_series: session.period_series,
        degradation_series: session.degradation_series,
        packet_latencies: session.latencies,
        failover: failover_record,
        resources: ResourceUsage { cpu_core_pct, rss },
        consistency_checks: session.consistency_checks,
    })
}

/// After a failover the workload continues on the activated replica,
/// unreplicated (the secondary has no further peer).
fn run_on_replica(
    session: &mut Session,
    end: SimTime,
    stop_when_workload_done: bool,
) -> CoreResult<()> {
    session.buffering = false;
    while session.clock < end {
        let slice = end
            .saturating_duration_since(session.clock)
            .clamp(SimDuration::ZERO, MAX_SLICE);
        let vm = session.secondary.vm_mut(session.rvm)?;
        let wnow = SimTime::ZERO
            + session
                .clock
                .saturating_duration_since(session.workload_now_base);
        let progress = session.workload.advance(wnow, slice, vm, &mut session.rng);
        session.ops_committed += progress.ops;
        for emission in progress.emissions {
            let latency = session.client_link.transfer_time(emission.size) * 2
                + CLIENT_STACK_OVERHEAD;
            session.latencies.observe(latency.as_secs_f64());
        }
        session.clock += slice;
        if stop_when_workload_done && session.workload.is_done() {
            break;
        }
    }
    Ok(())
}

/// Applies a failure cause to the primary; returns `true` if the host went
/// down.
fn apply_cause(cause: &FailureCause, primary: &mut dyn Hypervisor) -> bool {
    match cause {
        FailureCause::Exploit(e) => {
            matches!(e.launch(primary), ExploitResult::HostDown(_))
        }
        FailureCause::Accident(outcome) => {
            primary.inject_dos(*outcome);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_workloads::memstress::MemStress;

    fn small_scenario(cfg: ReplicationConfig) -> Scenario {
        Scenario::builder()
            .vm_memory_mib(64)
            .vcpus(4)
            .workload(Box::new(MemStress::with_percent(30).with_rate(20_000)))
            .config(cfg)
            .duration(SimDuration::from_secs(30))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        assert!(Scenario::builder().vcpus(0).build().is_err());
        assert!(Scenario::builder()
            .duration(SimDuration::ZERO)
            .build()
            .is_err());
        assert!(Scenario::builder().build().is_ok());
    }

    #[test]
    fn fixed_period_checkpoints_at_the_configured_rate() {
        let report =
            small_scenario(ReplicationConfig::fixed_period(SimDuration::from_secs(3))).run();
        // 30 s at T = 3 s → ~10 checkpoints (pauses stretch epochs a bit).
        assert!(
            (8..=11).contains(&report.checkpoints.len()),
            "got {}",
            report.checkpoints.len()
        );
        for c in &report.checkpoints {
            assert_eq!(c.period, SimDuration::from_secs(3));
            assert!(c.dirty_pages > 0);
        }
        assert!(report.migration.is_some());
    }

    #[test]
    fn replica_memory_matches_primary_after_run() {
        // White-box check through a bespoke session is complex; instead
        // verify via ops accounting that checkpoints committed work.
        let report =
            small_scenario(ReplicationConfig::fixed_period(SimDuration::from_secs(2))).run();
        assert!(report.ops_completed > 0.0);
        assert!(report.throughput_ops_per_sec > 0.0);
    }

    #[test]
    fn remus_pauses_longer_than_here() {
        let here =
            small_scenario(ReplicationConfig::fixed_period(SimDuration::from_secs(3))).run();
        let remus = small_scenario(ReplicationConfig::remus(SimDuration::from_secs(3))).run();
        let hp = here.mean_pause().unwrap();
        let rp = remus.mean_pause().unwrap();
        assert!(
            rp > hp,
            "remus pause {rp} should exceed here pause {hp}"
        );
    }

    #[test]
    fn dynamic_manager_shrinks_period_under_light_load() {
        let scenario = Scenario::builder()
            .vm_memory_mib(64)
            .vcpus(4)
            .workload(Box::new(MemStress::with_percent(5).with_rate(500)))
            .config(ReplicationConfig::dynamic(0.3, SimDuration::from_secs(3)))
            .duration(SimDuration::from_secs(120))
            .build()
            .unwrap();
        let report = scenario.run();
        let last_period = report.period_series.last().unwrap().1;
        assert!(
            last_period < 1.0,
            "period should shrink toward sigma, got {last_period}"
        );
    }

    #[test]
    fn unprotected_baseline_outruns_replicated() {
        let baseline = Scenario::builder()
            .vm_memory_mib(64)
            .vcpus(4)
            .workload(Box::new(MemStress::with_percent(30).with_rate(20_000)))
            .unprotected()
            .duration(SimDuration::from_secs(30))
            .build()
            .unwrap()
            .run();
        let replicated =
            small_scenario(ReplicationConfig::remus(SimDuration::from_secs(1))).run();
        assert!(baseline.throughput_ops_per_sec > replicated.throughput_ops_per_sec);
        assert!(baseline.checkpoints.is_empty());
    }

    #[test]
    fn accident_triggers_failover_with_short_resumption() {
        let scenario = Scenario::builder()
            .vm_memory_mib(64)
            .vcpus(2)
            .workload(Box::new(MemStress::with_percent(20).with_rate(5_000)))
            .config(ReplicationConfig::fixed_period(SimDuration::from_secs(2)))
            .duration(SimDuration::from_secs(30))
            .failure(FailurePlan {
                at: SimTime::from_secs(10),
                cause: FailureCause::Accident(DosOutcome::Crash),
                reattack_secondary: false,
            })
            .build()
            .unwrap();
        let report = scenario.run();
        let fo = report.failover.expect("failover must have happened");
        // kvmtool activation + device switch + state load ≈ 10 ms.
        let resumption = fo.resumption_time();
        assert!(
            resumption < SimDuration::from_millis(15),
            "resumption {resumption}"
        );
        assert!(fo.devices_switched == 3);
        assert!(report.ops_completed > 0.0);
    }
}
