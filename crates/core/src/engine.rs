//! Scenario description and orchestration — the crate's public entry
//! point.
//!
//! A [`Scenario`] wires together the full stack — a primary host, a
//! secondary host, a protected VM running a workload, the replication
//! configuration, and optionally an injected failure — and [`Scenario::run`]
//! executes it in virtual time, producing a [`RunReport`] with everything
//! the paper's figures need.
//!
//! The engine itself is deliberately thin: the replication lifecycle lives
//! in dedicated modules. [`crate::session`] owns the mutable run state and
//! its phase FSM, [`crate::migrate`] runs the seeding migration,
//! [`crate::checkpoint`] drives the continuous phase, and every checkpoint
//! flows through the staged pipeline of [`crate::pipeline`], emitting
//! [`StageEvent`](crate::trace::StageEvent)s at each boundary.

use here_hypervisor::fault::DosOutcome;
use here_hypervisor::host::Hypervisor;
use here_hypervisor::vm::VmConfig;
use here_hypervisor::XenHypervisor;
use here_sim_core::metrics::{Histogram, TimeSeries};
use here_sim_core::rate::ByteSize;
use here_sim_core::rng::SimRng;
use here_sim_core::time::{SimDuration, SimTime};
use here_simnet::link::Link;
use here_vulndb::exploit::Exploit;
use here_workloads::idle::IdleGuest;
use here_workloads::traits::Workload;

use crate::chaos::FaultPlan;
use crate::config::ReplicationConfig;
use crate::error::{CoreError, CoreResult};
use crate::report::{ResourceUsage, RunReport};
use crate::session::{CLIENT_STACK_OVERHEAD, HOST_MEMORY, MAX_SLICE};

/// What brings the primary down.
#[derive(Debug, Clone)]
pub enum FailureCause {
    /// A weaponised DoS CVE launched at the primary.
    Exploit(Exploit),
    /// An accidental failure (hardware fault, power cut) with the given
    /// manifestation.
    Accident(DosOutcome),
}

/// A planned failure injection.
#[derive(Debug, Clone)]
pub struct FailurePlan {
    /// When the failure hits.
    pub at: SimTime,
    /// What happens.
    pub cause: FailureCause,
    /// After failover, relaunch the same exploit against the secondary
    /// (the paper's "the attacker now needs two different exploits"
    /// argument, §6). Only meaningful for [`FailureCause::Exploit`].
    pub reattack_secondary: bool,
}

/// How the VM is protected.
// One per Scenario, never collected — the variant size gap is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum Protection {
    Unprotected,
    Replicated(ReplicationConfig),
}

/// A fully specified experiment.
///
/// Create one with [`Scenario::builder`]; run it with [`Scenario::run`].
#[derive(Debug)]
pub struct Scenario {
    pub(crate) name: String,
    pub(crate) memory: ByteSize,
    pub(crate) vcpus: u32,
    pub(crate) workload: Box<dyn Workload>,
    pub(crate) protection: Protection,
    pub(crate) duration: SimDuration,
    pub(crate) seed: u64,
    pub(crate) failure: Option<FailurePlan>,
    pub(crate) stop_when_workload_done: bool,
    pub(crate) load_during_seed: bool,
    pub(crate) warmup: SimDuration,
    pub(crate) warmup_under_load: bool,
    pub(crate) verify_consistency: bool,
    pub(crate) chaos: Option<FaultPlan>,
}

/// Builder for [`Scenario`].
#[derive(Debug)]
pub struct ScenarioBuilder {
    name: Option<String>,
    memory: ByteSize,
    vcpus: u32,
    workload: Option<Box<dyn Workload>>,
    protection: Protection,
    duration: SimDuration,
    seed: u64,
    failure: Option<FailurePlan>,
    stop_when_workload_done: bool,
    load_during_seed: bool,
    warmup: SimDuration,
    warmup_under_load: bool,
    verify_consistency: bool,
    chaos: Option<FaultPlan>,
}

impl Scenario {
    /// Starts building a scenario. Defaults: 1 GiB / 4 vCPUs, idle guest,
    /// HERE with a fixed 5-second period, 60 s of virtual time, seed 42.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder {
            name: None,
            memory: ByteSize::from_gib(1),
            vcpus: 4,
            workload: None,
            protection: Protection::Replicated(ReplicationConfig::fixed_period(
                SimDuration::from_secs(5),
            )),
            duration: SimDuration::from_secs(60),
            seed: 42,
            failure: None,
            stop_when_workload_done: true,
            load_during_seed: false,
            warmup: SimDuration::ZERO,
            warmup_under_load: false,
            verify_consistency: false,
            chaos: None,
        }
    }

    /// Executes the scenario to completion.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations (e.g. a corrupted
    /// replication stream), never on valid configurations.
    pub fn run(self) -> RunReport {
        let report = match &self.protection {
            Protection::Unprotected => run_unprotected(self),
            Protection::Replicated(_) => crate::checkpoint::run_replicated(self)
                .expect("replicated run failed on a valid scenario"),
        };
        notify_run_observer(&report);
        report
    }
}

/// An optional process-wide callback invoked with every finished
/// [`RunReport`] — the hook behind `repro --format`, letting a harness
/// dump any scenario's telemetry or trace without per-experiment code.
type RunObserver = Box<dyn Fn(&RunReport) + Send>;

static RUN_OBSERVER: std::sync::Mutex<Option<RunObserver>> = std::sync::Mutex::new(None);

/// Installs (or replaces) the process-wide run observer.
pub fn set_run_observer(observer: impl Fn(&RunReport) + Send + 'static) {
    if let Ok(mut slot) = RUN_OBSERVER.lock() {
        *slot = Some(Box::new(observer));
    }
}

/// Removes the process-wide run observer, if any.
pub fn clear_run_observer() {
    if let Ok(mut slot) = RUN_OBSERVER.lock() {
        *slot = None;
    }
}

fn notify_run_observer(report: &RunReport) {
    if let Ok(slot) = RUN_OBSERVER.lock() {
        if let Some(observer) = slot.as_ref() {
            observer(report);
        }
    }
}

impl ScenarioBuilder {
    /// Sets the scenario name (appears in the report).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Guest memory in GiB.
    pub fn vm_memory_gib(mut self, gib: u64) -> Self {
        self.memory = ByteSize::from_gib(gib);
        self
    }

    /// Guest memory in MiB (for small test VMs).
    pub fn vm_memory_mib(mut self, mib: u64) -> Self {
        self.memory = ByteSize::from_mib(mib);
        self
    }

    /// Number of vCPUs.
    pub fn vcpus(mut self, vcpus: u32) -> Self {
        self.vcpus = vcpus;
        self
    }

    /// The workload to run in the protected VM.
    pub fn workload(mut self, workload: Box<dyn Workload>) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Protects the VM with the given replication configuration.
    pub fn config(mut self, config: ReplicationConfig) -> Self {
        self.protection = Protection::Replicated(config);
        self
    }

    /// Runs the VM without any replication (the figures' "Xen" baseline).
    pub fn unprotected(mut self) -> Self {
        self.protection = Protection::Unprotected;
        self
    }

    /// Virtual-time budget of the run.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Experiment seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Plans a failure injection.
    pub fn failure(mut self, plan: FailurePlan) -> Self {
        self.failure = Some(plan);
        self
    }

    /// Keep running even after a bounded workload finishes (default is to
    /// stop at completion).
    pub fn run_full_duration(mut self) -> Self {
        self.stop_when_workload_done = false;
        self
    }

    /// Runs the workload during the seeding migration too (Fig. 6
    /// migrates a VM that is already under load). By default the workload
    /// starts only once replication is established — benchmarks measure
    /// the replicated steady state, not the seeding transient — and an
    /// idle guest supplies the background dirtying during the seed.
    pub fn load_during_seed(mut self) -> Self {
        self.load_during_seed = true;
        self
    }

    /// Runs continuous replication for `warmup` of virtual time before the
    /// measurement starts, then discards everything observed so far. Lets
    /// the dynamic period manager converge from its conservative
    /// `T = T_max` start before a figure's recording window opens
    /// (Fig. 9). The workload's own clock restarts at the end of warmup.
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Like [`ScenarioBuilder::warmup`], but the scenario's own workload
    /// (at its initial phase) drives the system during warmup instead of
    /// an idle guest, so the period manager converges against the load it
    /// will actually see. The workload's clock is rebased to zero when
    /// measurement starts; phase-scheduled workloads replay their schedule.
    /// Not meaningful for bounded workloads (their progress would be
    /// consumed by the warmup).
    pub fn warmup_under_load(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self.warmup_under_load = true;
        self
    }

    /// Arms the deterministic fault-injection plane with the given plan.
    /// Fault events fire at their scheduled epochs; corruption salts and
    /// generated schedules come from a dedicated RNG fork, so the same
    /// seed replays the same faults without perturbing the workload
    /// stream. Without a plan the fault plane is fully inert.
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// After every checkpoint commit, verify byte-for-byte that the
    /// replica's memory and every vCPU's architectural state match the
    /// (paused) primary's, and panic on divergence. Costs one memory
    /// comparison per checkpoint; intended for tests.
    pub fn verify_consistency(mut self) -> Self {
        self.verify_consistency = true;
        self
    }

    /// Validates and builds the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidScenario`] for zero vCPUs, invalid
    /// memory sizes, or a zero duration.
    pub fn build(self) -> CoreResult<Scenario> {
        if self.vcpus == 0 {
            return Err(CoreError::InvalidScenario("vcpus must be positive".into()));
        }
        if self.duration.is_zero() {
            return Err(CoreError::InvalidScenario(
                "duration must be positive".into(),
            ));
        }
        // Validate memory via VmConfig.
        VmConfig::new("probe", self.memory, self.vcpus).map_err(CoreError::Hypervisor)?;
        let workload = self
            .workload
            .unwrap_or_else(|| Box::new(IdleGuest::new()) as Box<dyn Workload>);
        let name = self
            .name
            .unwrap_or_else(|| format!("{}-{}", workload.name(), self.memory));
        Ok(Scenario {
            name,
            memory: self.memory,
            vcpus: self.vcpus,
            workload,
            protection: self.protection,
            duration: self.duration,
            seed: self.seed,
            failure: self.failure,
            stop_when_workload_done: self.stop_when_workload_done,
            load_during_seed: self.load_during_seed,
            warmup: self.warmup,
            warmup_under_load: self.warmup_under_load,
            verify_consistency: self.verify_consistency,
            chaos: self.chaos,
        })
    }
}

/// Runs the figures' "Xen" baseline: the workload on a bare primary, no
/// replication, no checkpoints, no buffering.
fn run_unprotected(scenario: Scenario) -> RunReport {
    let Scenario {
        name,
        memory,
        vcpus,
        mut workload,
        duration,
        seed,
        stop_when_workload_done,
        ..
    } = scenario;
    let mut xen = XenHypervisor::new(HOST_MEMORY);
    let cfg = VmConfig::new(name.clone(), memory, vcpus)
        .expect("scenario builder validated the VM config");
    let pvm = xen.create_vm(cfg).expect("fresh host has room");
    let client_link = Link::ethernet_10g();
    let mut rng = SimRng::seed_from(seed).fork("workload");
    let mut clock = SimTime::ZERO;
    let mut ops = 0.0;
    let mut latencies = Histogram::new();
    let end = SimTime::ZERO + duration;
    while clock < end {
        let slice = (end - clock).clamp(SimDuration::ZERO, MAX_SLICE);
        let vm = xen.vm_mut(pvm).expect("unprotected primary never fails");
        let progress = workload.advance(clock, slice, vm, &mut rng);
        ops += progress.ops;
        for emission in progress.emissions {
            let latency = client_link.transfer_time(emission.size) * 2 + CLIENT_STACK_OVERHEAD;
            latencies.observe(latency.as_secs_f64());
        }
        clock += slice;
        if stop_when_workload_done && workload.is_done() {
            break;
        }
    }
    let elapsed = clock.saturating_duration_since(SimTime::ZERO);
    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    RunReport {
        name,
        elapsed,
        ops_completed: ops,
        throughput_ops_per_sec: ops / secs,
        migration: None,
        checkpoints: Vec::new(),
        stage_events: Vec::new(),
        period_decisions: Vec::new(),
        period_series: TimeSeries::new("period_secs"),
        degradation_series: TimeSeries::new("degradation_pct"),
        packet_latencies: latencies,
        failover: None,
        resources: ResourceUsage {
            cpu_core_pct: 0.0,
            rss: ByteSize::ZERO,
        },
        consistency_checks: 0,
        commits: Vec::new(),
        replica_acks: Vec::new(),
        chaos: None,
        telemetry: None,
        spans: Vec::new(),
        incident: None,
        wire_versions: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates() {
        assert!(Scenario::builder().vcpus(0).build().is_err());
        assert!(Scenario::builder()
            .duration(SimDuration::ZERO)
            .build()
            .is_err());
        assert!(Scenario::builder().build().is_ok());
    }

    #[test]
    fn default_name_combines_workload_and_memory() {
        let s = Scenario::builder().build().unwrap();
        assert!(s.name.contains("idle"), "got {}", s.name);
    }

    #[test]
    fn unprotected_run_has_no_replication_artifacts() {
        let report = Scenario::builder()
            .vm_memory_mib(64)
            .vcpus(2)
            .unprotected()
            .duration(SimDuration::from_secs(5))
            .build()
            .unwrap()
            .run();
        assert!(report.migration.is_none());
        assert!(report.checkpoints.is_empty());
        assert!(report.stage_events.is_empty());
        assert!(report.failover.is_none());
    }
}
