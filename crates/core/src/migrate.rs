//! The seeding phase: live migration from primary to replica shell
//! (§3.2 step ②–③, with §7.2's multithreaded optimisations).
//!
//! Seeding is iterative pre-copy: a full-memory pass, then rounds that
//! resend whatever the guest dirtied during the previous round, until the
//! dirty set drops below the configured threshold or the iteration cap
//! forces the final stop-and-copy. The bounds live in
//! [`ReplicationConfig`](crate::config::ReplicationConfig)
//! (`max_migration_iterations`, `migration_dirty_threshold`).
//!
//! Strategy differences are behind
//! [`ReplicationStrategy`](crate::pipeline::ReplicationStrategy): HERE
//! pays a one-time thread-pool setup, and its per-vCPU migrator threads
//! feed the problematic-page tracker so cross-thread pages are resent in
//! the stop-and-copy; Remus does neither.

use here_sim_core::time::SimDuration;
use here_telemetry::span::{SpanDraft, Track};

use crate::error::CoreResult;
use crate::report::{IterationStats, MigrationOutcome};
use crate::session::{Session, SessionPhase};
use crate::transfer::{collect_chunked, ProblematicTracker};

/// Records one migration iteration as a primary-track span (the round's
/// virtual interval ends at the session clock).
fn record_iteration_span(
    session: &mut Session,
    iteration: u64,
    pages: u64,
    phase: &'static str,
    duration: SimDuration,
) {
    let end = session.clock.as_nanos();
    let start = end.saturating_sub(duration.as_nanos());
    session.spans.push(
        SpanDraft::new(phase, "migration", Track::Primary, start)
            .lasting(duration.as_nanos())
            .attr_u64("iteration", iteration)
            .attr_u64("pages", pages),
    );
}

/// Runs the seeding migration to completion, leaving the session in the
/// replicating phase with the replica an exact copy of the primary.
pub(crate) fn seed(session: &mut Session) -> CoreResult<MigrationOutcome> {
    session.enter_phase(SessionPhase::Seeding);
    let costs = session.cfg.costs;
    let max_iterations = session.cfg.max_migration_iterations;
    let dirty_threshold = session.cfg.migration_dirty_threshold;
    let strategy = session.strategy;
    let mut iterations = Vec::new();
    let mut pages_sent = 0u64;
    let mut tracker = ProblematicTracker::new();
    let started = session.clock;

    // Thread-pool and per-vCPU PML setup (zero for Remus); the VM keeps
    // running.
    session.advance(strategy.migration_setup(&costs), false);

    // Iteration 0: every page of the VM goes over.
    let total_pages = session.primary.vm(session.pvm)?.memory().num_pages();
    let round = costs.migration_round(total_pages, session.threads);
    // Content snapshot first (what iteration 0 sends), then the guest
    // keeps dirtying during the copy.
    let full_delta: here_vmstate::MemoryDelta = session
        .primary
        .vm(session.pvm)?
        .memory()
        .touched_iter()
        .collect();
    session.advance(round, false);
    session.install_delta(&full_delta, 0)?;
    pages_sent += total_pages;
    let at_nanos = session.clock.as_nanos();
    session
        .telemetry
        .on_migration_iteration(0, total_pages, "full_copy", at_nanos);
    record_iteration_span(session, 0, total_pages, "full_copy", round);
    iterations.push(IterationStats {
        index: 0,
        pages: total_pages,
        duration: round,
        problematic_new: 0,
    });

    // Iterative pre-copy.
    let mut iter = 1u32;
    loop {
        let snapshot = session.take_dirty_snapshot();
        let dirty_count = snapshot.count();
        if dirty_count <= dirty_threshold || iter >= max_iterations {
            // Final stop-and-copy: pause, send remaining dirty pages
            // plus the problematic resend list, plus vCPU/device state.
            session.primary.vm_mut(session.pvm)?.pause()?;
            let mut final_delta = {
                let vm = session.primary.vm(session.pvm)?;
                collect_chunked(vm.memory(), &snapshot, session.threads)
            };
            let problematic = tracker.resend_list();
            let problematic_resent = problematic.len() as u64;
            let resend = session.pages_to_delta(&problematic)?;
            final_delta.merge(resend);
            let downtime = costs.migration_round(final_delta.len() as u64, session.threads)
                + costs.checkpoint_const;
            session.ship_checkpoint(&final_delta, 0)?;
            pages_sent += final_delta.len() as u64;
            session.clock += downtime;
            session.primary.vm_mut(session.pvm)?.resume()?;
            let at_nanos = session.clock.as_nanos();
            session.telemetry.on_migration_iteration(
                iter as u64,
                final_delta.len() as u64,
                "stop_and_copy",
                at_nanos,
            );
            record_iteration_span(
                session,
                iter as u64,
                final_delta.len() as u64,
                "stop_and_copy",
                downtime,
            );
            iterations.push(IterationStats {
                index: iter,
                pages: final_delta.len() as u64,
                duration: downtime,
                problematic_new: 0,
            });
            session.enter_phase(SessionPhase::Replicating);
            return Ok(MigrationOutcome {
                iterations,
                total: session.clock.saturating_duration_since(started),
                downtime,
                pages_sent,
                problematic_resent,
            });
        }

        // Copy this round's dirty set while the guest keeps running.
        let delta = {
            let vm = session.primary.vm(session.pvm)?;
            collect_chunked(vm.memory(), &snapshot, session.threads)
        };
        let before = tracker.len();
        strategy.track_problematic(&mut tracker, &delta);
        let problematic_new = (tracker.len() - before) as u64;
        let round = costs.migration_round(dirty_count, session.threads);
        session.advance(round, false);
        session.install_delta(&delta, iter)?;
        pages_sent += dirty_count;
        let at_nanos = session.clock.as_nanos();
        session
            .telemetry
            .on_migration_iteration(iter as u64, dirty_count, "pre_copy", at_nanos);
        record_iteration_span(session, iter as u64, dirty_count, "pre_copy", round);
        iterations.push(IterationStats {
            index: iter,
            pages: dirty_count,
            duration: round,
            problematic_new,
        });
        iter += 1;
    }
}
