//! The zero-copy, work-stealing, pipelined checkpoint data plane.
//!
//! PR 1 made the *harvest* side genuinely threaded and PR 2 made encode
//! zero-copy; this revision makes encode genuinely parallel and lets it
//! overlap the transfer stage. Three pieces:
//!
//! - [`LanePool`] — a persistent work-stealing pool owned by
//!   [`CheckpointPools`]. Worker threads are spawned once and parked
//!   between checkpoints (no per-epoch `thread::scope` spawn/join).
//!   Each encode round splits its pages into tasks on per-lane queues
//!   (round-robin by task index, so a lane re-encodes the same memory
//!   regions epoch after epoch — warm affinity); a lane that drains its
//!   own queue steals from the back of the fullest other lane.
//! - **Chunked framing** — a round's tasks are either the legacy
//!   one-record-per-lane shards (`chunk_pages: None`, byte-identical to
//!   the PR 2 wire format) or fixed-size page chunks, one record per
//!   chunk, which gives the pool enough tasks to actually steal.
//! - **Streamed hand-off** — completed task segments pass through a
//!   bounded in-order window to a consumer running on the calling
//!   thread ([`EncodePlan::window`]), so transfer/decode work proceeds
//!   while later chunks are still encoding. Segments are always
//!   delivered in task order, so the assembled stream is byte-identical
//!   to the barrier path at every window depth.
//!
//! Allocation lifecycle: [`BufferPool`] hands out recycled `BytesMut`
//! buffers and reclaims them from spent `Bytes` segments via
//! `try_into_mut` (sole-owner, whole-allocation reclamation); the pool's
//! round scratch (the copied entry table and task slots) is likewise
//! reused across epochs, so the steady-state checkpoint loop performs no
//! allocation once warm. [`CheckpointPools`] bundles all of it for
//! [`crate::session::Session`].

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use bytes::{Bytes, BytesMut};

use here_hypervisor::memory::{materialize_content_into, GuestMemory, PageVersion, PAGE_SIZE};
use here_hypervisor::vcpu::VcpuStateBlob;
use here_hypervisor::PageId;
use here_vmstate::cir::CpuStateCir;
use here_vmstate::simd;
use here_vmstate::translate::{StateTranslator, TranslateResult};
use here_vmstate::wire::{
    encode_page_batch_into, encode_page_columns_meta_into, write_preamble_versioned,
    PageDataWriter, PagePayload, Record, ScatterStream, StreamDecoder, PAGE_CONTENT_BYTES,
    PAGE_META_BYTES, VERSION,
};
use here_vmstate::MemoryDelta;

use crate::error::{CoreError, CoreResult};
use crate::transfer::CollectScratch;

/// Frame-header plus small-record slack reserved per lane segment.
const SEGMENT_SLACK: usize = 64;

/// Below this many pages a parallel encode is not worth the thread
/// wake-ups; the shard loop collapses to one lane.
pub const PARALLEL_ENCODE_MIN_PAGES: usize = 1024;

/// Default chunk size (pages) for chunk-framed rounds: 2 MiB of guest
/// memory, matching the harvest side's chunk granularity.
pub const DEFAULT_CHUNK_PAGES: u32 = 512;

/// What an encoded page record carries for each page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadMode {
    /// Metadata only (frame + version): the replication session's wire
    /// format, where the replica re-materializes contents from versions.
    Metadata,
    /// Full materialized 4 KiB page images, as a real hypervisor's stream
    /// would carry — the datapath benchmark path.
    Materialized,
    /// v3 columnar metadata, delta-encoded against the committed epoch
    /// named here — the negotiated-v3 replication session's wire format.
    Columnar {
        /// Committed epoch the record's deltas are encoded against.
        base_epoch: u64,
    },
}

/// A recycling pool of encode buffers.
///
/// `checkout` prefers a cleared, previously used buffer; `recycle`
/// reclaims a spent stream segment's storage when this pool holds the last
/// reference (via `Bytes::try_into_mut`). Hit/miss counters make reuse
/// observable in tests and benchmarks.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<BytesMut>,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Takes a buffer with at least `min_capacity` spare bytes, reusing a
    /// pooled allocation when one exists.
    pub fn checkout(&mut self, min_capacity: usize) -> BytesMut {
        match self.free.pop() {
            Some(mut buf) => {
                self.hits += 1;
                buf.clear();
                buf.reserve(min_capacity);
                buf
            }
            None => {
                self.misses += 1;
                BytesMut::with_capacity(min_capacity)
            }
        }
    }

    /// Reclaims a spent segment's storage if this is the last reference to
    /// the whole allocation; returns whether the buffer was pooled.
    pub fn recycle(&mut self, segment: Bytes) -> bool {
        match segment.try_into_mut() {
            Ok(buf) => {
                self.free.push(buf);
                true
            }
            Err(_) => false,
        }
    }

    /// Returns a mutable buffer directly (e.g. one that was never frozen).
    pub fn recycle_mut(&mut self, buf: BytesMut) {
        self.free.push(buf);
    }

    /// Buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Checkouts served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Checkouts that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// How one encode round is split, framed and handed off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodePlan {
    /// Encode lanes (parallel workers) for the round.
    pub lanes: u32,
    /// Record payload mode.
    pub mode: PayloadMode,
    /// `None`: legacy framing, one record per lane shard
    /// (`delta.shards(lanes)` boundaries — byte-identical to the
    /// pre-pool wire format). `Some(p)`: one record per `p`-page chunk.
    pub chunk_pages: Option<u32>,
    /// `None`: barrier — the caller participates as lane 0 and segments
    /// are delivered after the whole round completes. `Some(d)`: the
    /// caller acts as the consumer of a bounded in-order window of `d`
    /// chunks; encode lanes block when they run `d` chunks ahead of the
    /// consumer (backpressure), and the consumer sees each segment as
    /// soon as it and all its predecessors are done.
    pub window: Option<u32>,
}

impl EncodePlan {
    /// The legacy plan: shard framing, barrier hand-off.
    pub fn legacy(lanes: u32, mode: PayloadMode) -> Self {
        EncodePlan {
            lanes,
            mode,
            chunk_pages: None,
            window: None,
        }
    }
}

/// Per-lane activity of one encode round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneRoundStats {
    /// Tasks this lane executed (own + stolen).
    pub tasks: u64,
    /// Tasks this lane stole from another lane's queue.
    pub steals: u64,
    /// Host nanoseconds this lane spent encoding.
    pub busy_nanos: u64,
}

/// What one encode round did, per lane and in aggregate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EncodeRoundStats {
    /// Per-lane activity, indexed by logical lane.
    pub per_lane: Vec<LaneRoundStats>,
    /// Wall nanoseconds of the whole round (split + encode + hand-off).
    pub round_wall_nanos: u64,
}

impl EncodeRoundStats {
    /// Total tasks executed.
    pub fn tasks(&self) -> u64 {
        self.per_lane.iter().map(|l| l.tasks).sum()
    }

    /// Total steals.
    pub fn steals(&self) -> u64 {
        self.per_lane.iter().map(|l| l.steals).sum()
    }

    /// Lane occupancy: busy time over `lanes × round wall`, as a
    /// percentage (0 when no pool round ran).
    pub fn occupancy_pct(&self) -> f64 {
        let lanes = self.per_lane.len();
        if lanes == 0 || self.round_wall_nanos == 0 {
            return 0.0;
        }
        let busy: u64 = self.per_lane.iter().map(|l| l.busy_nanos).sum();
        busy as f64 / (self.round_wall_nanos as f64 * lanes as f64) * 100.0
    }
}

/// Cumulative pool counters across all rounds since the pool was built.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LanePoolTotals {
    /// Rounds dispatched through the pool (inline rounds not counted).
    pub rounds: u64,
    /// Tasks executed.
    pub tasks: u64,
    /// Tasks stolen.
    pub steals: u64,
    /// Encode busy nanoseconds summed over lanes.
    pub busy_nanos: u64,
}

// ---------------------------------------------------------------------------
// LanePool internals
// ---------------------------------------------------------------------------

struct Segment {
    bytes: Bytes,
    wall_nanos: u64,
}

/// Mutable round state shared between lanes and the consumer: task input
/// buffers, completed output slots and the in-order window cursor.
struct Progress {
    inputs: Vec<Option<BytesMut>>,
    slots: Vec<Option<Segment>>,
    consumed: usize,
}

#[derive(Default)]
struct LaneCell {
    tasks: AtomicU64,
    steals: AtomicU64,
    busy_nanos: AtomicU64,
}

/// One dispatched encode round. Entries are *copied* in (≈16 bytes per
/// page — trivial next to the encoded output), which is what lets the
/// worker threads outlive any borrow of the caller's delta without
/// `unsafe` lifetime laundering; the entry table itself is recycled
/// round to round via [`RoundScratch`].
struct Round {
    entries: Vec<(PageId, PageVersion)>,
    tasks: Vec<(usize, usize)>,
    mode: PayloadMode,
    lanes: usize,
    caller_participates: bool,
    depth: usize,
    queues: Vec<Mutex<VecDeque<usize>>>,
    progress: Mutex<Progress>,
    producer_cv: Condvar,
    consumer_cv: Condvar,
    lane_stats: Vec<LaneCell>,
}

impl Round {
    /// Which logical lane pool worker `idx` plays this round, if any.
    /// When the caller participates it takes lane 0 and workers cover
    /// lanes `1..`; otherwise workers cover lanes `0..`.
    fn lane_for_worker(&self, idx: usize) -> Option<usize> {
        let lane = if self.caller_participates {
            idx + 1
        } else {
            idx
        };
        (lane < self.lanes).then_some(lane)
    }

    fn workers_engaged(&self) -> usize {
        if self.caller_participates {
            self.lanes - 1
        } else {
            self.lanes
        }
    }

    /// Claims the next task for `lane`: its own queue front first, then a
    /// steal from the back of the fullest other queue.
    fn claim(&self, lane: usize) -> Option<(usize, bool)> {
        if let Some(task) = self.queues[lane].lock().expect("queue lock").pop_front() {
            return Some((task, false));
        }
        loop {
            let victim = self
                .queues
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != lane)
                .map(|(i, q)| (q.lock().expect("queue lock").len(), i))
                .max()?;
            if victim.0 == 0 {
                return None;
            }
            if let Some(task) = self.queues[victim.1].lock().expect("queue lock").pop_back() {
                return Some((task, true));
            }
        }
    }

    /// Runs `lane` until no tasks remain anywhere.
    fn work(&self, lane: usize) {
        while let Some((task, stolen)) = self.claim(lane) {
            let mut buf = {
                let mut p = self.progress.lock().expect("progress lock");
                // Bounded window: never run more than `depth` chunks ahead
                // of the consumer. Safe against deadlock because lane
                // queues ascend and steals take the *highest* index, so
                // the owner of the lowest unconsumed chunk is never the
                // one blocked here (see DESIGN.md).
                while task >= p.consumed + self.depth {
                    p = self.producer_cv.wait(p).expect("window wait");
                }
                p.inputs[task].take().expect("task buffer claimed once")
            };
            let start = Instant::now();
            let (lo, hi) = self.tasks[task];
            encode_shard(&self.entries[lo..hi], self.mode, &mut buf);
            let wall = start.elapsed().as_nanos() as u64;
            let cell = &self.lane_stats[lane];
            cell.tasks.fetch_add(1, Ordering::Relaxed);
            if stolen {
                cell.steals.fetch_add(1, Ordering::Relaxed);
            }
            cell.busy_nanos.fetch_add(wall, Ordering::Relaxed);
            let mut p = self.progress.lock().expect("progress lock");
            p.slots[task] = Some(Segment {
                bytes: buf.freeze(),
                wall_nanos: wall,
            });
            self.consumer_cv.notify_all();
        }
    }
}

struct PoolState {
    round: Option<Arc<Round>>,
    epoch: u64,
    idle: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// Recycled allocations for round construction.
#[derive(Default)]
struct RoundScratch {
    entries: Vec<(PageId, PageVersion)>,
    tasks: Vec<(usize, usize)>,
}

/// The persistent work-stealing encode pool.
///
/// Workers are spawned lazily the first time a round needs them, then
/// parked on a condvar between rounds; [`Drop`] shuts them down and
/// joins. All dispatch state is internally synchronised, so the pool is
/// shared by `&` reference alongside a `&mut BufferPool`.
pub struct LanePool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    scratch: Mutex<RoundScratch>,
    totals: Mutex<LanePoolTotals>,
    last_round: Mutex<EncodeRoundStats>,
}

impl std::fmt::Debug for LanePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LanePool")
            .field("workers", &self.workers.lock().expect("workers lock").len())
            .field("totals", &self.totals())
            .finish()
    }
}

impl Default for LanePool {
    fn default() -> Self {
        LanePool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    round: None,
                    epoch: 0,
                    idle: 0,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
            scratch: Mutex::new(RoundScratch::default()),
            totals: Mutex::new(LanePoolTotals::default()),
            last_round: Mutex::new(EncodeRoundStats::default()),
        }
    }
}

impl LanePool {
    /// A pool with no workers yet; they spawn on first use.
    pub fn new() -> Self {
        LanePool::default()
    }

    /// Worker threads currently alive.
    pub fn workers_spawned(&self) -> usize {
        self.workers.lock().expect("workers lock").len()
    }

    /// Cumulative counters since construction.
    pub fn totals(&self) -> LanePoolTotals {
        *self.totals.lock().expect("totals lock")
    }

    /// Stats of the most recent pool round (zeroes if none ran yet).
    pub fn last_round(&self) -> EncodeRoundStats {
        self.last_round.lock().expect("last round lock").clone()
    }

    fn ensure_workers(&self, needed: usize) {
        let mut workers = self.workers.lock().expect("workers lock");
        while workers.len() < needed {
            let idx = workers.len();
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("encode-lane-{}", idx + 1))
                .spawn(move || worker_main(shared, idx))
                .expect("spawn encode lane worker");
            workers.push(handle);
        }
    }

    /// Dispatches one round and consumes its segments in task order via
    /// `on_segment`. Returns per-task walls and the round's lane stats.
    fn run_round(
        &self,
        round: Round,
        mut on_segment: impl FnMut(usize, Segment),
    ) -> (Vec<u64>, EncodeRoundStats) {
        let ntasks = round.tasks.len();
        let start = Instant::now();
        let engaged = round.workers_engaged();
        self.ensure_workers(engaged);
        let worker_total = self.workers_spawned();
        let caller_lane = round.caller_participates.then_some(0usize);
        let round = Arc::new(round);
        {
            let mut st = self.shared.state.lock().expect("pool state lock");
            while st.idle < worker_total {
                st = self.shared.done_cv.wait(st).expect("pool idle wait");
            }
            st.round = Some(Arc::clone(&round));
            st.epoch += 1;
            self.shared.work_cv.notify_all();
        }
        if let Some(lane) = caller_lane {
            round.work(lane);
        }
        // Consume completed segments strictly in task order; each consume
        // opens one more window slot for the producers.
        let mut walls = vec![0u64; ntasks];
        for (next, wall) in walls.iter_mut().enumerate() {
            let seg = {
                let mut p = round.progress.lock().expect("progress lock");
                loop {
                    if let Some(seg) = p.slots[next].take() {
                        p.consumed = next + 1;
                        round.producer_cv.notify_all();
                        break seg;
                    }
                    p = round.consumer_cv.wait(p).expect("consumer wait");
                }
            };
            *wall = seg.wall_nanos;
            on_segment(next, seg);
        }
        // Reclaim the round: drop the dispatch slot, wait for every worker
        // to park (each drops its Arc clone *before* raising `idle`), then
        // unwrap the sole remaining Arc and recycle its allocations.
        {
            let mut st = self.shared.state.lock().expect("pool state lock");
            st.round = None;
            while st.idle < worker_total {
                st = self.shared.done_cv.wait(st).expect("pool drain wait");
            }
        }
        let round = Arc::try_unwrap(round)
            .ok()
            .expect("round has no other holders once workers parked");
        let stats = EncodeRoundStats {
            per_lane: round
                .lane_stats
                .iter()
                .map(|c| LaneRoundStats {
                    tasks: c.tasks.load(Ordering::Relaxed),
                    steals: c.steals.load(Ordering::Relaxed),
                    busy_nanos: c.busy_nanos.load(Ordering::Relaxed),
                })
                .collect(),
            round_wall_nanos: start.elapsed().as_nanos() as u64,
        };
        {
            let mut scratch = self.scratch.lock().expect("scratch lock");
            scratch.entries = round.entries;
            scratch.entries.clear();
            scratch.tasks = round.tasks;
            scratch.tasks.clear();
        }
        {
            let mut totals = self.totals.lock().expect("totals lock");
            totals.rounds += 1;
            totals.tasks += stats.tasks();
            totals.steals += stats.steals();
            totals.busy_nanos += stats.per_lane.iter().map(|l| l.busy_nanos).sum::<u64>();
        }
        *self.last_round.lock().expect("last round lock") = stats.clone();
        (walls, stats)
    }
}

impl Drop for LanePool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state lock");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.lock().expect("workers lock").drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_main(shared: Arc<PoolShared>, idx: usize) {
    let mut guard = shared.state.lock().expect("pool state lock");
    let mut last_epoch = guard.epoch;
    guard.idle += 1;
    shared.done_cv.notify_all();
    loop {
        while !guard.shutdown && guard.epoch == last_epoch {
            guard = shared.work_cv.wait(guard).expect("worker park");
        }
        if guard.shutdown {
            return;
        }
        last_epoch = guard.epoch;
        let engaged = guard
            .round
            .clone()
            .and_then(|round| round.lane_for_worker(idx).map(|lane| (round, lane)));
        if let Some((round, lane)) = engaged {
            guard.idle -= 1;
            drop(guard);
            round.work(lane);
            // The Arc clone must die before `idle` rises again: the
            // dispatcher relies on `idle == workers` implying it holds
            // the only reference to the round.
            drop(round);
            guard = shared.state.lock().expect("pool state lock");
            guard.idle += 1;
            shared.done_cv.notify_all();
        }
    }
}

/// The committed image of guest memory as of the last *committed* epoch,
/// tracked symmetrically on the encode (primary) and apply (replica)
/// sides so v3 epoch-delta streams always agree on their XOR/delta base.
///
/// The shadow only advances when an epoch commits (reaches quorum) —
/// aborted epochs leave it untouched on both sides, which is what makes
/// re-encoding after an abort safe — and a replica catching up a parked
/// backlog folds that backlog in via [`EpochShadow::rebase`] before
/// applying a stream encoded against a newer base.
#[derive(Debug, Default)]
pub struct EpochShadow {
    epoch: u64,
    pages: HashMap<u64, PageVersion>,
}

impl EpochShadow {
    /// The committed epoch this shadow reflects (0 before any commit).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The committed version of `frame`, if the page ever committed.
    pub fn page(&self, frame: u64) -> Option<PageVersion> {
        self.pages.get(&frame).copied()
    }

    /// Pages tracked.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether no page ever committed.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Folds a committed epoch's delta in (newest version wins) and
    /// advances the base epoch to `epoch`.
    pub fn commit(&mut self, delta: &MemoryDelta, epoch: u64) {
        for &(page, rec) in delta.entries() {
            self.pages.insert(page.frame(), rec);
        }
        self.epoch = epoch;
    }

    /// Re-bases a lagging replica shadow onto `epoch` by folding its
    /// parked backlog in — the catch-up path for a stream encoded against
    /// a base the replica missed.
    pub fn rebase(&mut self, backlog: &MemoryDelta, epoch: u64) {
        self.commit(backlog, epoch);
    }
}

/// All allocation-reuse state one session threads through its checkpoint
/// loop: the harvest delta, the per-lane collect scratch, the encode
/// buffer pool and the persistent encode lane pool.
#[derive(Debug, Default)]
pub struct CheckpointPools {
    /// Reused harvest output (taken during Harvest, returned after
    /// Translate).
    pub delta: MemoryDelta,
    /// Per-lane harvest scratch for `collect_chunked_into`.
    pub collect: CollectScratch,
    /// Encode segment buffers, reclaimed after each Transfer.
    pub buffers: BufferPool,
    /// The persistent work-stealing encode pool.
    pub lanes: LanePool,
    /// Replica-side decode staging: pages accumulate here while a
    /// checkpoint stream is validated, and are installed into guest
    /// memory only after the trailer checks out — a corrupt or truncated
    /// stream can never leave the replica partially updated.
    pub apply: Vec<(here_hypervisor::PageId, PageVersion)>,
    /// Committed-epoch shadow: the delta base both sides of a v3 session
    /// encode and apply against. Stays empty under v2.
    pub shadow: EpochShadow,
}

impl CheckpointPools {
    /// Empty pools; everything warms up on the first checkpoint.
    pub fn new() -> Self {
        CheckpointPools::default()
    }
}

fn segment_capacity(pages: usize, mode: PayloadMode) -> usize {
    let per_page = match mode {
        // Columnar metas are denser than v2 metas; the v2 stride is a
        // safe capacity ceiling for them.
        PayloadMode::Metadata | PayloadMode::Columnar { .. } => PAGE_META_BYTES,
        PayloadMode::Materialized => PAGE_META_BYTES + PAGE_CONTENT_BYTES,
    };
    pages * per_page + SEGMENT_SLACK
}

fn encode_shard(
    shard: &[(here_hypervisor::PageId, PageVersion)],
    mode: PayloadMode,
    out: &mut BytesMut,
) {
    match mode {
        PayloadMode::Metadata => encode_page_batch_into(shard, out),
        PayloadMode::Columnar { base_epoch } => {
            encode_page_columns_meta_into(base_epoch, shard, out)
        }
        PayloadMode::Materialized => {
            let mut writer = PageDataWriter::new(out);
            let mut scratch = [0u8; PAGE_SIZE as usize];
            for &(page, rec) in shard {
                materialize_content_into(page, rec, &mut scratch);
                writer.push(page, rec, &scratch);
            }
            writer.finish();
        }
    }
}

/// Splits `n` entries into task ranges per `plan`: legacy framing uses
/// the `delta.shards(lanes)` boundaries (near-equal contiguous slices,
/// one per lane); chunk framing uses fixed `chunk_pages` strides.
fn plan_tasks(n: usize, plan: &EncodePlan, out: &mut Vec<(usize, usize)>) {
    out.clear();
    if n == 0 {
        return;
    }
    let stride = match plan.chunk_pages {
        Some(p) => (p as usize).max(1),
        None => n.div_ceil(plan.lanes.max(1) as usize),
    };
    let mut lo = 0;
    while lo < n {
        let hi = (lo + stride).min(n);
        out.push((lo, hi));
        lo = hi;
    }
}

/// Encodes a delta's pages per `plan`, delivering frozen segments
/// strictly in task (= ascending frame) order through `on_segment`.
/// Returns per-task encode walls (host ns) and the round's lane stats.
///
/// With `plan.window: None` the caller participates as lane 0 and
/// `on_segment` runs after the barrier; with `Some(d)` the caller is the
/// consumer of a bounded `d`-chunk window and `on_segment` overlaps the
/// remaining encode work. Small rounds (a single task, or a single
/// lane with no window) are encoded inline without touching the pool.
///
/// # Panics
///
/// Panics if `plan.lanes` is zero.
pub fn encode_pages_round(
    delta: &MemoryDelta,
    plan: &EncodePlan,
    pool: &mut BufferPool,
    lanes: &LanePool,
    mut on_segment: impl FnMut(usize, Bytes),
) -> (Vec<u64>, EncodeRoundStats) {
    assert!(plan.lanes >= 1, "at least one encode lane is required");
    let split_start = Instant::now();
    let entries = delta.entries();
    let mut scratch = {
        let mut s = lanes.scratch.lock().expect("scratch lock");
        RoundScratch {
            entries: std::mem::take(&mut s.entries),
            tasks: std::mem::take(&mut s.tasks),
        }
    };
    plan_tasks(entries.len(), plan, &mut scratch.tasks);
    let ntasks = scratch.tasks.len();
    if ntasks == 0 {
        let mut s = lanes.scratch.lock().expect("scratch lock");
        *s = scratch;
        return (Vec::new(), EncodeRoundStats::default());
    }
    let mut bufs: Vec<BytesMut> = scratch
        .tasks
        .iter()
        .map(|&(lo, hi)| pool.checkout(segment_capacity(hi - lo, plan.mode)))
        .collect();

    let inline = ntasks == 1 || (plan.lanes == 1 && plan.window.is_none());
    if inline {
        // No pool, no entry copy: the caller encodes every task itself.
        let mut walls = vec![0u64; ntasks];
        let split_nanos = split_start.elapsed().as_nanos() as u64;
        for (i, buf) in bufs.iter_mut().enumerate() {
            let (lo, hi) = scratch.tasks[i];
            let start = Instant::now();
            encode_shard(&entries[lo..hi], plan.mode, buf);
            walls[i] = start.elapsed().as_nanos() as u64;
        }
        // Task-split time belongs to lane 0, so attribution still sums
        // to the whole encode (see the straggler detector in analyze.rs).
        walls[0] += split_nanos;
        for (i, buf) in bufs.into_iter().enumerate() {
            on_segment(i, buf.freeze());
        }
        let mut s = lanes.scratch.lock().expect("scratch lock");
        *s = scratch;
        return (walls, EncodeRoundStats::default());
    }

    let round_lanes = (plan.lanes as usize).min(ntasks).max(1);
    scratch.entries.clear();
    scratch.entries.extend_from_slice(entries);
    let caller_participates = plan.window.is_none();
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..round_lanes)
        .map(|lane| {
            Mutex::new(
                (lane..ntasks)
                    .step_by(round_lanes)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();
    let depth = plan
        .window
        .map(|d| (d as usize).max(1))
        .unwrap_or(ntasks)
        .min(ntasks);
    let round = Round {
        entries: scratch.entries,
        tasks: scratch.tasks,
        mode: plan.mode,
        lanes: round_lanes,
        caller_participates,
        depth,
        queues,
        progress: Mutex::new(Progress {
            inputs: bufs.into_iter().map(Some).collect(),
            slots: (0..ntasks).map(|_| None).collect(),
            consumed: 0,
        }),
        producer_cv: Condvar::new(),
        consumer_cv: Condvar::new(),
        lane_stats: (0..round_lanes).map(|_| LaneCell::default()).collect(),
    };
    let split_nanos = split_start.elapsed().as_nanos() as u64;
    let (mut walls, stats) = lanes.run_round(round, |i, seg| on_segment(i, seg.bytes));
    if let Some(first) = walls.first_mut() {
        *first += split_nanos;
    }
    (walls, stats)
}

/// Encodes a delta's pages as one length-framed page-batch record per
/// worker lane, concurrently, into pooled buffers. Returns the frozen
/// segments in shard (= ascending frame) order, ready to be spliced into a
/// [`ScatterStream`].
///
/// Legacy shard framing: byte-identical to the pre-pool encoder at every
/// lane count. In `Materialized` mode the lanes also materialize every
/// 4 KiB page image (into a per-lane stack buffer — no per-page heap
/// traffic) and fold it into the record's streaming checksum as it is
/// appended.
///
/// # Panics
///
/// Panics if `lanes` is zero.
pub fn encode_pages_parallel(
    delta: &MemoryDelta,
    lanes: u32,
    mode: PayloadMode,
    pool: &mut BufferPool,
    lane_pool: &LanePool,
) -> Vec<Bytes> {
    encode_pages_parallel_timed(delta, lanes, mode, pool, lane_pool).0
}

/// [`encode_pages_parallel`] plus per-shard wall-clock timings: result
/// `.1` holds, for each returned segment, the host nanoseconds spent
/// encoding it (shard 0's wall also carries the task-split/dispatch
/// cost, so the walls sum to the whole encode). The telemetry layer
/// feeds these into the `here_encode_lane_wall_nanos` histogram and the
/// flight recorder, making lane imbalance observable without
/// re-instrumenting call sites.
///
/// # Panics
///
/// Panics if `lanes` is zero.
pub fn encode_pages_parallel_timed(
    delta: &MemoryDelta,
    lanes: u32,
    mode: PayloadMode,
    pool: &mut BufferPool,
    lane_pool: &LanePool,
) -> (Vec<Bytes>, Vec<u64>) {
    assert!(lanes >= 1, "at least one encode lane is required");
    let lanes = if delta.len() < PARALLEL_ENCODE_MIN_PAGES {
        1
    } else {
        lanes
    };
    let plan = EncodePlan::legacy(lanes, mode);
    let mut segments = Vec::new();
    let (walls, _) = encode_pages_round(delta, &plan, pool, lane_pool, |_, seg| {
        segments.push(seg);
    });
    (segments, walls)
}

fn blob_to_cir(
    blob: &VcpuStateBlob,
    translator: Option<&StateTranslator>,
) -> TranslateResult<CpuStateCir> {
    match translator {
        Some(t) => t.decode_to_cir(blob),
        None => Ok(CpuStateCir {
            regs: blob.to_arch(),
            online: blob.is_online(),
        }),
    }
}

/// Translates captured vCPU blobs to the common format, fanning the
/// (CPU-bound) decode across up to `lanes` scoped workers. Order is
/// preserved: result `i` is blob `i`'s translation.
///
/// # Errors
///
/// Returns the first translation error encountered (format mismatch).
pub fn translate_vcpus_parallel(
    blobs: &[VcpuStateBlob],
    translator: Option<&StateTranslator>,
    lanes: u32,
) -> TranslateResult<Vec<CpuStateCir>> {
    if lanes <= 1 || blobs.len() <= 1 {
        return blobs.iter().map(|b| blob_to_cir(b, translator)).collect();
    }
    let chunk = blobs.len().div_ceil(lanes as usize);
    let mut out = Vec::with_capacity(blobs.len());
    let mut chunk_results: Vec<TranslateResult<Vec<CpuStateCir>>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = blobs
            .chunks(chunk)
            .map(|c| {
                scope.spawn(move || {
                    c.iter()
                        .map(|b| blob_to_cir(b, translator))
                        .collect::<TranslateResult<Vec<_>>>()
                })
            })
            .collect();
        for h in handles {
            chunk_results.push(h.join().expect("vCPU translate worker must not panic"));
        }
    });
    for r in chunk_results {
        out.extend(r?);
    }
    Ok(out)
}

fn install_record(
    record: Record,
    replica: &mut GuestMemory,
    verify_content: bool,
    expected: &mut [u8; PAGE_SIZE as usize],
) -> CoreResult<u64> {
    let mut pages_installed = 0u64;
    match record {
        Record::PageBatch(batch) => {
            for &(page, rec) in batch.entries() {
                replica.install_page(page, rec)?;
                pages_installed += 1;
            }
        }
        Record::PageDataBatch(batch) => {
            for &(page, rec, ref content) in batch.pages() {
                if verify_content {
                    materialize_content_into(page, rec, expected);
                    if !simd::active().bytes_equal(&content[..], &expected[..]) {
                        return Err(CoreError::InvalidScenario(format!(
                            "page {} content diverged from its version record",
                            page.frame()
                        )));
                    }
                }
                replica.install_page(page, rec)?;
                pages_installed += 1;
            }
        }
        Record::PageColumns(batch) => {
            for (page, rec, payload) in batch.entries() {
                if verify_content && !matches!(payload, PagePayload::Meta) {
                    // Reconstruct the content the payload implies (for a
                    // delta, against the replica's current copy of the
                    // page) and check it against the deterministic image
                    // the new `(frame, version)` record mandates.
                    let mut base = [0u8; PAGE_SIZE as usize];
                    let base_ref = if matches!(payload, PagePayload::Delta(_)) {
                        let prev = replica.page(*page)?;
                        materialize_content_into(*page, prev, &mut base);
                        Some(&base[..])
                    } else {
                        None
                    };
                    if let Some(got) = payload.materialize(base_ref)? {
                        materialize_content_into(*page, *rec, expected);
                        if !simd::active().bytes_equal(&got, &expected[..]) {
                            return Err(CoreError::InvalidScenario(format!(
                                "page {} columnar payload diverged from its version record",
                                page.frame()
                            )));
                        }
                    }
                }
                replica.install_page(*page, *rec)?;
                pages_installed += 1;
            }
        }
        _ => {}
    }
    Ok(pages_installed)
}

/// Decodes a (possibly scattered) checkpoint stream and installs every
/// page record into `replica` — the receive side of the datapath. With
/// `verify_content` set, each materialized payload is checked against the
/// deterministic image its `(frame, version)` record implies, proving the
/// bytes survived encode → splice → decode intact.
///
/// Returns the number of pages installed.
///
/// # Errors
///
/// Wire errors on corrupt streams, hypervisor errors on out-of-range
/// installs, and an [`CoreError::InvalidScenario`] on a content mismatch.
pub fn decode_and_restore(
    stream: ScatterStream,
    replica: &mut GuestMemory,
    verify_content: bool,
) -> CoreResult<u64> {
    let mut dec = StreamDecoder::new_scattered(stream)?;
    let mut pages_installed = 0u64;
    let mut expected = [0u8; PAGE_SIZE as usize];
    while let Some(record) = dec.next_record()? {
        pages_installed += install_record(record, replica, verify_content, &mut expected)?;
    }
    Ok(pages_installed)
}

/// Incremental receive side for the streamed encode path: accepts lane
/// segments one at a time, decoding and installing each as it arrives —
/// this is what lets decode/transfer work overlap the still-running
/// encode lanes. Each accepted segment must hold complete records (which
/// every segment produced by [`encode_pages_round`] does).
#[derive(Debug)]
pub struct SegmentRestorer<'a> {
    replica: &'a mut GuestMemory,
    verify_content: bool,
    preamble: Bytes,
    installed: u64,
}

impl<'a> SegmentRestorer<'a> {
    /// A restorer installing into `replica`.
    pub fn new(replica: &'a mut GuestMemory, verify_content: bool) -> Self {
        Self::new_versioned(replica, verify_content, VERSION)
    }

    /// A restorer decoding segments under an explicit stream version —
    /// required for segments carrying v3 page-columns records.
    pub fn new_versioned(replica: &'a mut GuestMemory, verify_content: bool, version: u16) -> Self {
        let mut head = BytesMut::with_capacity(8);
        write_preamble_versioned(&mut head, version);
        SegmentRestorer {
            replica,
            verify_content,
            preamble: head.freeze(),
            installed: 0,
        }
    }

    /// Decodes one segment and installs its pages. The caller keeps its
    /// `Bytes` handle, so once this returns (all record slices dropped)
    /// the segment can be recycled into a [`BufferPool`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`decode_and_restore`].
    pub fn accept(&mut self, segment: &Bytes) -> CoreResult<()> {
        let mut stream = ScatterStream::from(self.preamble.clone());
        stream.push(segment.clone());
        let mut dec = StreamDecoder::new_scattered(stream)?;
        let mut expected = [0u8; PAGE_SIZE as usize];
        while let Some(record) = dec.next_record()? {
            self.installed +=
                install_record(record, self.replica, self.verify_content, &mut expected)?;
        }
        Ok(())
    }

    /// Pages installed so far.
    pub fn installed(&self) -> u64 {
        self.installed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_hypervisor::arch::ArchRegs;
    use here_hypervisor::kind::HypervisorKind;
    use here_hypervisor::vcpu::XenVcpuState;
    use here_hypervisor::PageId;
    use here_sim_core::rate::ByteSize;
    use here_vmstate::wire::write_preamble;

    fn delta_of(n: u64) -> MemoryDelta {
        (0..n)
            .map(|f| {
                (
                    PageId::new(f * 2),
                    PageVersion {
                        version: (f % 9) as u32 + 1,
                        last_writer: (f % 4) as u16,
                    },
                )
            })
            .collect()
    }

    fn splice(segments: Vec<Bytes>) -> ScatterStream {
        let mut head = BytesMut::new();
        write_preamble(&mut head);
        let mut stream = ScatterStream::from(head.freeze());
        for seg in segments {
            stream.push(seg);
        }
        stream
    }

    fn decoded_pages(stream: ScatterStream) -> Vec<(u64, u32, u16)> {
        let mut dec = StreamDecoder::new_scattered(stream).unwrap();
        let mut out = Vec::new();
        while let Some(rec) = dec.next_record().unwrap() {
            match rec {
                Record::PageBatch(b) => out.extend(
                    b.entries()
                        .iter()
                        .map(|&(p, v)| (p.frame(), v.version, v.last_writer)),
                ),
                Record::PageDataBatch(b) => out.extend(
                    b.pages()
                        .iter()
                        .map(|(p, v, _)| (p.frame(), v.version, v.last_writer)),
                ),
                _ => {}
            }
        }
        out
    }

    #[test]
    fn parallel_encode_is_lane_count_invariant() {
        // Framing differs with lane count (one record per shard), but the
        // decoded page sequence must not; payload content integrity is
        // covered by the checksummed round-trip tests below.
        let delta = delta_of(4096);
        let mut pool = BufferPool::new();
        let lp = LanePool::new();
        let reference = decoded_pages(splice(encode_pages_parallel(
            &delta,
            1,
            PayloadMode::Materialized,
            &mut pool,
            &lp,
        )));
        assert_eq!(reference.len(), delta.len());
        for lanes in [2u32, 4, 8] {
            let segs =
                encode_pages_parallel(&delta, lanes, PayloadMode::Materialized, &mut pool, &lp);
            let got = decoded_pages(splice(segs));
            assert!(got == reference, "lanes={lanes} decoded differently");
        }
    }

    #[test]
    fn restore_round_trips_materialized_pages() {
        let delta = delta_of(2048);
        let mut pool = BufferPool::new();
        let lp = LanePool::new();
        let segs = encode_pages_parallel(&delta, 4, PayloadMode::Materialized, &mut pool, &lp);
        let mut replica = GuestMemory::new(ByteSize::from_mib(32)).unwrap();
        let installed = decode_and_restore(splice(segs), &mut replica, true).unwrap();
        assert_eq!(installed, delta.len() as u64);
        for &(page, rec) in delta.entries() {
            assert_eq!(replica.page(page).unwrap(), rec);
        }
    }

    #[test]
    fn metadata_mode_matches_session_wire_format() {
        let delta = delta_of(2048);
        let mut pool = BufferPool::new();
        let lp = LanePool::new();
        let segs = encode_pages_parallel(&delta, 4, PayloadMode::Metadata, &mut pool, &lp);
        let mut replica = GuestMemory::new(ByteSize::from_mib(32)).unwrap();
        let installed = decode_and_restore(splice(segs), &mut replica, false).unwrap();
        assert_eq!(installed, delta.len() as u64);
    }

    #[test]
    fn buffer_pool_reaches_steady_state() {
        let delta = delta_of(4096);
        let mut pool = BufferPool::new();
        let lp = LanePool::new();
        for round in 0..4 {
            let segs = encode_pages_parallel(&delta, 4, PayloadMode::Metadata, &mut pool, &lp);
            assert_eq!(segs.len(), 4);
            for seg in segs {
                assert!(pool.recycle(seg), "round {round}: segment not reclaimed");
            }
        }
        // First round misses, later rounds hit.
        assert_eq!(pool.misses(), 4);
        assert_eq!(pool.hits(), 12);
        assert_eq!(pool.pooled(), 4);
    }

    #[test]
    fn timed_encode_reports_one_wall_per_lane() {
        let delta = delta_of(4096);
        let mut pool = BufferPool::new();
        let lp = LanePool::new();
        let (segs, walls) =
            encode_pages_parallel_timed(&delta, 4, PayloadMode::Metadata, &mut pool, &lp);
        assert_eq!(segs.len(), 4);
        assert_eq!(walls.len(), 4);
        // The timed and untimed entry points must produce identical bytes.
        let plain = encode_pages_parallel(&delta, 4, PayloadMode::Metadata, &mut pool, &lp);
        assert_eq!(segs, plain);
    }

    #[test]
    fn small_deltas_collapse_to_one_lane() {
        let delta = delta_of(16);
        let mut pool = BufferPool::new();
        let lp = LanePool::new();
        let segs = encode_pages_parallel(&delta, 8, PayloadMode::Metadata, &mut pool, &lp);
        assert_eq!(segs.len(), 1);
        // The inline path never wakes the pool.
        assert_eq!(lp.workers_spawned(), 0);
        assert_eq!(lp.totals().rounds, 0);
    }

    #[test]
    fn pool_workers_persist_across_rounds() {
        let delta = delta_of(4096);
        let mut pool = BufferPool::new();
        let lp = LanePool::new();
        for _ in 0..3 {
            let segs = encode_pages_parallel(&delta, 4, PayloadMode::Metadata, &mut pool, &lp);
            for seg in segs {
                pool.recycle(seg);
            }
        }
        // Barrier rounds engage lanes-1 workers (the caller is lane 0),
        // spawned once and reused.
        assert_eq!(lp.workers_spawned(), 3);
        let totals = lp.totals();
        assert_eq!(totals.rounds, 3);
        assert_eq!(totals.tasks, 12);
    }

    #[test]
    fn chunked_framing_is_depth_invariant() {
        // The streamed path must produce byte-identical segments to the
        // barrier path at every window depth.
        let delta = delta_of(4096);
        let mut pool = BufferPool::new();
        let lp = LanePool::new();
        let barrier = EncodePlan {
            lanes: 4,
            mode: PayloadMode::Metadata,
            chunk_pages: Some(256),
            window: None,
        };
        let mut reference = Vec::new();
        encode_pages_round(&delta, &barrier, &mut pool, &lp, |_, seg| {
            reference.push(seg)
        });
        assert_eq!(reference.len(), 16);
        for depth in [1u32, 2, 4, 64] {
            let plan = EncodePlan {
                window: Some(depth),
                ..barrier
            };
            let mut got = Vec::new();
            encode_pages_round(&delta, &plan, &mut pool, &lp, |_, seg| got.push(seg));
            assert_eq!(got, reference, "depth={depth}");
        }
    }

    #[test]
    fn streamed_restore_matches_barrier_restore() {
        let delta = delta_of(3000);
        let mut pool = BufferPool::new();
        let lp = LanePool::new();
        let plan = EncodePlan {
            lanes: 4,
            mode: PayloadMode::Materialized,
            chunk_pages: Some(512),
            window: Some(2),
        };
        let mut streamed = GuestMemory::new(ByteSize::from_mib(32)).unwrap();
        {
            let mut restorer = SegmentRestorer::new(&mut streamed, true);
            encode_pages_round(&delta, &plan, &mut pool, &lp, |_, seg| {
                restorer.accept(&seg).expect("streamed decode");
            });
            assert_eq!(restorer.installed(), delta.len() as u64);
        }
        let barrier = EncodePlan {
            window: None,
            ..plan
        };
        let mut segs = Vec::new();
        encode_pages_round(&delta, &barrier, &mut pool, &lp, |_, seg| segs.push(seg));
        let mut spliced = GuestMemory::new(ByteSize::from_mib(32)).unwrap();
        decode_and_restore(splice(segs), &mut spliced, true).unwrap();
        assert!(streamed.content_equals(&spliced));
    }

    #[test]
    fn round_stats_account_for_every_task() {
        let delta = delta_of(4096);
        let mut pool = BufferPool::new();
        let lp = LanePool::new();
        let plan = EncodePlan {
            lanes: 4,
            mode: PayloadMode::Metadata,
            chunk_pages: Some(128),
            window: None,
        };
        let (walls, stats) = encode_pages_round(&delta, &plan, &mut pool, &lp, |_, _| {});
        assert_eq!(walls.len(), 32);
        assert_eq!(stats.tasks(), 32);
        assert!(stats.steals() <= 32);
        assert_eq!(stats.per_lane.len(), 4);
        assert!(stats.round_wall_nanos > 0);
    }

    #[test]
    fn vcpu_translation_is_lane_count_invariant() {
        let translator = StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Kvm).unwrap();
        let blobs: Vec<VcpuStateBlob> = (0..8u64)
            .map(|i| {
                let mut regs = ArchRegs::reset_state();
                regs.tsc = i * 1000;
                VcpuStateBlob::Xen(XenVcpuState::from_arch(&regs, true))
            })
            .collect();
        let reference = translate_vcpus_parallel(&blobs, Some(&translator), 1).unwrap();
        for lanes in [2u32, 4, 8] {
            let got = translate_vcpus_parallel(&blobs, Some(&translator), lanes).unwrap();
            assert_eq!(got, reference, "lanes={lanes}");
        }
    }

    #[test]
    fn corrupted_payload_fails_restore() {
        let delta = delta_of(PARALLEL_ENCODE_MIN_PAGES as u64 * 2);
        let mut pool = BufferPool::new();
        let lp = LanePool::new();
        let segs = encode_pages_parallel(&delta, 2, PayloadMode::Materialized, &mut pool, &lp);
        let mut flipped = segs[1].to_vec();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        let stream = splice(vec![segs[0].clone(), Bytes::from(flipped)]);
        let mut replica = GuestMemory::new(ByteSize::from_mib(32)).unwrap();
        assert!(decode_and_restore(stream, &mut replica, true).is_err());
    }
}
