//! The zero-copy parallel checkpoint data plane.
//!
//! PR 1 made the *harvest* side genuinely threaded; this module extends
//! the executed-parallelism boundary through translate and encode. Each
//! checkpoint's [`MemoryDelta`] is sharded into per-worker slices, and
//! `std::thread::scope` workers materialize page payloads, translate vCPU
//! state, compute streaming checksums, and encode their own length-framed
//! page-batch records concurrently — each into its own pooled `BytesMut`
//! lane buffer. The transfer stage splices the frozen lane segments into a
//! [`ScatterStream`]; nothing is concatenated or re-sorted.
//!
//! Allocation lifecycle: [`BufferPool`] hands out recycled `BytesMut`
//! buffers and reclaims them from spent `Bytes` segments via
//! `try_into_mut` (sole-owner, whole-allocation reclamation), so the
//! steady-state checkpoint loop reuses the same handful of allocations
//! round after round. [`CheckpointPools`] bundles the pool with the
//! reusable harvest delta and per-lane collect scratch that
//! [`crate::session::Session`] threads through every checkpoint.

use bytes::{Bytes, BytesMut};

use here_hypervisor::memory::{materialize_content_into, GuestMemory, PageVersion, PAGE_SIZE};
use here_hypervisor::vcpu::VcpuStateBlob;
use here_vmstate::cir::CpuStateCir;
use here_vmstate::translate::{StateTranslator, TranslateResult};
use here_vmstate::wire::{
    encode_page_batch_into, PageDataWriter, Record, ScatterStream, StreamDecoder,
    PAGE_CONTENT_BYTES, PAGE_META_BYTES,
};
use here_vmstate::MemoryDelta;

use crate::error::{CoreError, CoreResult};
use crate::transfer::CollectScratch;

/// Frame-header plus small-record slack reserved per lane segment.
const SEGMENT_SLACK: usize = 64;

/// Below this many pages a parallel encode is not worth the thread
/// wake-ups; the shard loop collapses to one lane.
pub const PARALLEL_ENCODE_MIN_PAGES: usize = 1024;

/// What an encoded page record carries for each page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadMode {
    /// Metadata only (frame + version): the replication session's wire
    /// format, where the replica re-materializes contents from versions.
    Metadata,
    /// Full materialized 4 KiB page images, as a real hypervisor's stream
    /// would carry — the datapath benchmark path.
    Materialized,
}

/// A recycling pool of encode buffers.
///
/// `checkout` prefers a cleared, previously used buffer; `recycle`
/// reclaims a spent stream segment's storage when this pool holds the last
/// reference (via `Bytes::try_into_mut`). Hit/miss counters make reuse
/// observable in tests and benchmarks.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<BytesMut>,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Takes a buffer with at least `min_capacity` spare bytes, reusing a
    /// pooled allocation when one exists.
    pub fn checkout(&mut self, min_capacity: usize) -> BytesMut {
        match self.free.pop() {
            Some(mut buf) => {
                self.hits += 1;
                buf.clear();
                buf.reserve(min_capacity);
                buf
            }
            None => {
                self.misses += 1;
                BytesMut::with_capacity(min_capacity)
            }
        }
    }

    /// Reclaims a spent segment's storage if this is the last reference to
    /// the whole allocation; returns whether the buffer was pooled.
    pub fn recycle(&mut self, segment: Bytes) -> bool {
        match segment.try_into_mut() {
            Ok(buf) => {
                self.free.push(buf);
                true
            }
            Err(_) => false,
        }
    }

    /// Returns a mutable buffer directly (e.g. one that was never frozen).
    pub fn recycle_mut(&mut self, buf: BytesMut) {
        self.free.push(buf);
    }

    /// Buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Checkouts served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Checkouts that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// All allocation-reuse state one session threads through its checkpoint
/// loop: the harvest delta, the per-lane collect scratch, and the encode
/// buffer pool.
#[derive(Debug, Default)]
pub struct CheckpointPools {
    /// Reused harvest output (taken during Harvest, returned after
    /// Translate).
    pub delta: MemoryDelta,
    /// Per-lane harvest scratch for `collect_chunked_into`.
    pub collect: CollectScratch,
    /// Encode segment buffers, reclaimed after each Transfer.
    pub buffers: BufferPool,
    /// Replica-side decode staging: pages accumulate here while a
    /// checkpoint stream is validated, and are installed into guest
    /// memory only after the trailer checks out — a corrupt or truncated
    /// stream can never leave the replica partially updated.
    pub apply: Vec<(here_hypervisor::PageId, PageVersion)>,
}

impl CheckpointPools {
    /// Empty pools; everything warms up on the first checkpoint.
    pub fn new() -> Self {
        CheckpointPools::default()
    }
}

fn segment_capacity(pages: usize, mode: PayloadMode) -> usize {
    let per_page = match mode {
        PayloadMode::Metadata => PAGE_META_BYTES,
        PayloadMode::Materialized => PAGE_META_BYTES + PAGE_CONTENT_BYTES,
    };
    pages * per_page + SEGMENT_SLACK
}

fn encode_shard(
    shard: &[(here_hypervisor::PageId, PageVersion)],
    mode: PayloadMode,
    out: &mut BytesMut,
) {
    match mode {
        PayloadMode::Metadata => encode_page_batch_into(shard, out),
        PayloadMode::Materialized => {
            let mut writer = PageDataWriter::new(out);
            let mut scratch = [0u8; PAGE_SIZE as usize];
            for &(page, rec) in shard {
                materialize_content_into(page, rec, &mut scratch);
                writer.push(page, rec, &scratch);
            }
            writer.finish();
        }
    }
}

/// Encodes a delta's pages as one length-framed page-batch record per
/// worker lane, concurrently, into pooled buffers. Returns the frozen
/// segments in shard (= ascending frame) order, ready to be spliced into a
/// [`ScatterStream`].
///
/// Each worker owns one contiguous shard of the delta and one buffer, so
/// no synchronisation exists beyond the scope join. In `Materialized`
/// mode the workers also materialize every 4 KiB page image (into a
/// per-lane stack buffer — no per-page heap traffic) and fold it into the
/// record's streaming checksum as it is appended.
///
/// # Panics
///
/// Panics if `lanes` is zero.
pub fn encode_pages_parallel(
    delta: &MemoryDelta,
    lanes: u32,
    mode: PayloadMode,
    pool: &mut BufferPool,
) -> Vec<Bytes> {
    encode_pages_parallel_timed(delta, lanes, mode, pool).0
}

/// [`encode_pages_parallel`] plus per-lane wall-clock timings: result `.1`
/// holds, for each returned segment, the host nanoseconds its lane spent
/// encoding (measured around the shard encode only, not the buffer
/// checkout). The telemetry layer feeds these into the
/// `here_encode_lane_wall_nanos` histogram and the flight recorder, making
/// lane imbalance observable without re-instrumenting call sites.
///
/// # Panics
///
/// Panics if `lanes` is zero.
pub fn encode_pages_parallel_timed(
    delta: &MemoryDelta,
    lanes: u32,
    mode: PayloadMode,
    pool: &mut BufferPool,
) -> (Vec<Bytes>, Vec<u64>) {
    assert!(lanes >= 1, "at least one encode lane is required");
    let lanes = if delta.len() < PARALLEL_ENCODE_MIN_PAGES {
        1
    } else {
        lanes
    };
    let shards = delta.shards(lanes as usize);
    if shards.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let mut bufs: Vec<BytesMut> = shards
        .iter()
        .map(|s| pool.checkout(segment_capacity(s.len(), mode)))
        .collect();
    let mut walls = vec![0u64; shards.len()];
    if shards.len() == 1 {
        let start = std::time::Instant::now();
        encode_shard(shards[0], mode, &mut bufs[0]);
        walls[0] = start.elapsed().as_nanos() as u64;
    } else {
        std::thread::scope(|scope| {
            for ((shard, buf), wall) in shards.iter().zip(bufs.iter_mut()).zip(walls.iter_mut()) {
                scope.spawn(move || {
                    let start = std::time::Instant::now();
                    encode_shard(shard, mode, buf);
                    *wall = start.elapsed().as_nanos() as u64;
                });
            }
        });
    }
    (bufs.into_iter().map(BytesMut::freeze).collect(), walls)
}

fn blob_to_cir(
    blob: &VcpuStateBlob,
    translator: Option<&StateTranslator>,
) -> TranslateResult<CpuStateCir> {
    match translator {
        Some(t) => t.decode_to_cir(blob),
        None => Ok(CpuStateCir {
            regs: blob.to_arch(),
            online: blob.is_online(),
        }),
    }
}

/// Translates captured vCPU blobs to the common format, fanning the
/// (CPU-bound) decode across up to `lanes` scoped workers. Order is
/// preserved: result `i` is blob `i`'s translation.
///
/// # Errors
///
/// Returns the first translation error encountered (format mismatch).
pub fn translate_vcpus_parallel(
    blobs: &[VcpuStateBlob],
    translator: Option<&StateTranslator>,
    lanes: u32,
) -> TranslateResult<Vec<CpuStateCir>> {
    if lanes <= 1 || blobs.len() <= 1 {
        return blobs.iter().map(|b| blob_to_cir(b, translator)).collect();
    }
    let chunk = blobs.len().div_ceil(lanes as usize);
    let mut out = Vec::with_capacity(blobs.len());
    let mut chunk_results: Vec<TranslateResult<Vec<CpuStateCir>>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = blobs
            .chunks(chunk)
            .map(|c| {
                scope.spawn(move || {
                    c.iter()
                        .map(|b| blob_to_cir(b, translator))
                        .collect::<TranslateResult<Vec<_>>>()
                })
            })
            .collect();
        for h in handles {
            chunk_results.push(h.join().expect("vCPU translate worker must not panic"));
        }
    });
    for r in chunk_results {
        out.extend(r?);
    }
    Ok(out)
}

/// Decodes a (possibly scattered) checkpoint stream and installs every
/// page record into `replica` — the receive side of the datapath. With
/// `verify_content` set, each materialized payload is checked against the
/// deterministic image its `(frame, version)` record implies, proving the
/// bytes survived encode → splice → decode intact.
///
/// Returns the number of pages installed.
///
/// # Errors
///
/// Wire errors on corrupt streams, hypervisor errors on out-of-range
/// installs, and an [`CoreError::InvalidScenario`] on a content mismatch.
pub fn decode_and_restore(
    stream: ScatterStream,
    replica: &mut GuestMemory,
    verify_content: bool,
) -> CoreResult<u64> {
    let mut dec = StreamDecoder::new_scattered(stream)?;
    let mut pages_installed = 0u64;
    let mut expected = [0u8; PAGE_SIZE as usize];
    while let Some(record) = dec.next_record()? {
        match record {
            Record::PageBatch(batch) => {
                for &(page, rec) in batch.entries() {
                    replica.install_page(page, rec)?;
                    pages_installed += 1;
                }
            }
            Record::PageDataBatch(batch) => {
                for &(page, rec, ref content) in batch.pages() {
                    if verify_content {
                        materialize_content_into(page, rec, &mut expected);
                        if content[..] != expected[..] {
                            return Err(CoreError::InvalidScenario(format!(
                                "page {} content diverged from its version record",
                                page.frame()
                            )));
                        }
                    }
                    replica.install_page(page, rec)?;
                    pages_installed += 1;
                }
            }
            _ => {}
        }
    }
    Ok(pages_installed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_hypervisor::arch::ArchRegs;
    use here_hypervisor::kind::HypervisorKind;
    use here_hypervisor::vcpu::XenVcpuState;
    use here_hypervisor::PageId;
    use here_sim_core::rate::ByteSize;
    use here_vmstate::wire::write_preamble;

    fn delta_of(n: u64) -> MemoryDelta {
        (0..n)
            .map(|f| {
                (
                    PageId::new(f * 2),
                    PageVersion {
                        version: (f % 9) as u32 + 1,
                        last_writer: (f % 4) as u16,
                    },
                )
            })
            .collect()
    }

    fn splice(segments: Vec<Bytes>) -> ScatterStream {
        let mut head = BytesMut::new();
        write_preamble(&mut head);
        let mut stream = ScatterStream::from(head.freeze());
        for seg in segments {
            stream.push(seg);
        }
        stream
    }

    fn decoded_pages(stream: ScatterStream) -> Vec<(u64, u32, u16)> {
        let mut dec = StreamDecoder::new_scattered(stream).unwrap();
        let mut out = Vec::new();
        while let Some(rec) = dec.next_record().unwrap() {
            match rec {
                Record::PageBatch(b) => out.extend(
                    b.entries()
                        .iter()
                        .map(|&(p, v)| (p.frame(), v.version, v.last_writer)),
                ),
                Record::PageDataBatch(b) => out.extend(
                    b.pages()
                        .iter()
                        .map(|(p, v, _)| (p.frame(), v.version, v.last_writer)),
                ),
                _ => {}
            }
        }
        out
    }

    #[test]
    fn parallel_encode_is_lane_count_invariant() {
        // Framing differs with lane count (one record per shard), but the
        // decoded page sequence must not; payload content integrity is
        // covered by the checksummed round-trip tests below.
        let delta = delta_of(4096);
        let mut pool = BufferPool::new();
        let reference = decoded_pages(splice(encode_pages_parallel(
            &delta,
            1,
            PayloadMode::Materialized,
            &mut pool,
        )));
        assert_eq!(reference.len(), delta.len());
        for lanes in [2u32, 4, 8] {
            let segs = encode_pages_parallel(&delta, lanes, PayloadMode::Materialized, &mut pool);
            let got = decoded_pages(splice(segs));
            assert!(got == reference, "lanes={lanes} decoded differently");
        }
    }

    #[test]
    fn restore_round_trips_materialized_pages() {
        let delta = delta_of(2048);
        let mut pool = BufferPool::new();
        let segs = encode_pages_parallel(&delta, 4, PayloadMode::Materialized, &mut pool);
        let mut replica = GuestMemory::new(ByteSize::from_mib(32)).unwrap();
        let installed = decode_and_restore(splice(segs), &mut replica, true).unwrap();
        assert_eq!(installed, delta.len() as u64);
        for &(page, rec) in delta.entries() {
            assert_eq!(replica.page(page).unwrap(), rec);
        }
    }

    #[test]
    fn metadata_mode_matches_session_wire_format() {
        let delta = delta_of(2048);
        let mut pool = BufferPool::new();
        let segs = encode_pages_parallel(&delta, 4, PayloadMode::Metadata, &mut pool);
        let mut replica = GuestMemory::new(ByteSize::from_mib(32)).unwrap();
        let installed = decode_and_restore(splice(segs), &mut replica, false).unwrap();
        assert_eq!(installed, delta.len() as u64);
    }

    #[test]
    fn buffer_pool_reaches_steady_state() {
        let delta = delta_of(4096);
        let mut pool = BufferPool::new();
        for round in 0..4 {
            let segs = encode_pages_parallel(&delta, 4, PayloadMode::Metadata, &mut pool);
            assert_eq!(segs.len(), 4);
            for seg in segs {
                assert!(pool.recycle(seg), "round {round}: segment not reclaimed");
            }
        }
        // First round misses, later rounds hit.
        assert_eq!(pool.misses(), 4);
        assert_eq!(pool.hits(), 12);
        assert_eq!(pool.pooled(), 4);
    }

    #[test]
    fn timed_encode_reports_one_wall_per_lane() {
        let delta = delta_of(4096);
        let mut pool = BufferPool::new();
        let (segs, walls) =
            encode_pages_parallel_timed(&delta, 4, PayloadMode::Metadata, &mut pool);
        assert_eq!(segs.len(), 4);
        assert_eq!(walls.len(), 4);
        // The timed and untimed entry points must produce identical bytes.
        let plain = encode_pages_parallel(&delta, 4, PayloadMode::Metadata, &mut pool);
        assert_eq!(segs, plain);
    }

    #[test]
    fn small_deltas_collapse_to_one_lane() {
        let delta = delta_of(16);
        let mut pool = BufferPool::new();
        let segs = encode_pages_parallel(&delta, 8, PayloadMode::Metadata, &mut pool);
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn vcpu_translation_is_lane_count_invariant() {
        let translator = StateTranslator::new(HypervisorKind::Xen, HypervisorKind::Kvm).unwrap();
        let blobs: Vec<VcpuStateBlob> = (0..8u64)
            .map(|i| {
                let mut regs = ArchRegs::reset_state();
                regs.tsc = i * 1000;
                VcpuStateBlob::Xen(XenVcpuState::from_arch(&regs, true))
            })
            .collect();
        let reference = translate_vcpus_parallel(&blobs, Some(&translator), 1).unwrap();
        for lanes in [2u32, 4, 8] {
            let got = translate_vcpus_parallel(&blobs, Some(&translator), lanes).unwrap();
            assert_eq!(got, reference, "lanes={lanes}");
        }
    }

    #[test]
    fn corrupted_payload_fails_restore() {
        let delta = delta_of(PARALLEL_ENCODE_MIN_PAGES as u64 * 2);
        let mut pool = BufferPool::new();
        let segs = encode_pages_parallel(&delta, 2, PayloadMode::Materialized, &mut pool);
        let mut flipped = segs[1].to_vec();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        let stream = splice(vec![segs[0].clone(), Bytes::from(flipped)]);
        let mut replica = GuestMemory::new(ByteSize::from_mib(32)).unwrap();
        assert!(decode_and_restore(stream, &mut replica, true).is_err());
    }
}
