//! The staged checkpoint pipeline and the pluggable replication strategy.
//!
//! Continuous replication advances one checkpoint at a time through six
//! explicit, typed stages (§3.2):
//!
//! ```text
//! Pause → Harvest → Translate → Transfer → Ack → Resume
//! ```
//!
//! Each stage is a typestate token ([`Paused`], [`Harvested`], …) that
//! owns the session borrow, so stages cannot be skipped or reordered at
//! compile time. Crossing a stage boundary emits one
//! [`StageEvent`](crate::trace::StageEvent) and advances virtual time by
//! that stage's share of the pause model `t = αN/P + C` (Eq. 4): the
//! strategy's extra constant for *Pause*, the parallel scan `αN/P` for
//! *Harvest*, the constant `C` for *Translate*, the wire term for
//! *Transfer*, and one replication-link RTT for *Ack*. The sum of the
//! pause-counting stages therefore equals
//! [`CostModel::checkpoint_pause`] exactly — stage attribution can never
//! drift from the total.
//!
//! Everything Remus and HERE do *differently* lives behind
//! [`ReplicationStrategy`]: the secondary-host pairing, the transfer
//! thread policy, the seeding setup cost, problematic-page tracking, and
//! the per-checkpoint extra constant. The pipeline itself is
//! strategy-agnostic.

use std::fmt;

use here_hypervisor::host::Hypervisor;
use here_hypervisor::kind::HypervisorKind;
use here_hypervisor::{KvmHypervisor, XenHypervisor, PAGE_SIZE};
use here_sim_core::rate::ByteSize;
use here_sim_core::time::SimDuration;
use here_vmstate::translate::StateTranslator;
use here_vmstate::wire::{PAGE_META_BYTES, VERSION_V3};
use here_vmstate::MemoryDelta;

use crate::config::{CostModel, Strategy};
use crate::error::CoreResult;
use crate::session::{EpochStreams, Session};
use crate::trace::Stage;
use crate::transfer::{collect_chunked_into, ProblematicTracker};

/// The replication-scheme plug point: everything that distinguishes the
/// Remus baseline from HERE, factored out of the engine.
///
/// The checkpoint pipeline, seeding migration and session setup call
/// these hooks instead of matching on [`Strategy`], so adding a scheme
/// means implementing this trait — not editing the engine.
pub trait ReplicationStrategy: fmt::Debug + Sync {
    /// Human-readable scheme name.
    fn name(&self) -> &'static str;

    /// The [`Strategy`] tag this implementation realises.
    fn kind(&self) -> Strategy;

    /// Builds the secondary host and, for heterogeneous pairs, the state
    /// translator between the two hypervisors' native formats.
    ///
    /// # Errors
    ///
    /// Fails if the translator cannot be constructed for the pairing.
    fn make_secondary(
        &self,
        host_memory: ByteSize,
    ) -> CoreResult<(Box<dyn Hypervisor>, Option<StateTranslator>)>;

    /// The transfer thread count the data plane will use for a VM with
    /// `vcpus` vCPUs, given the configured override.
    fn effective_threads(&self, configured: Option<u32>, vcpus: u32) -> u32;

    /// One-time cost paid before the seeding migration starts (HERE's
    /// thread-pool and per-vCPU PML ring setup; zero for Remus).
    fn migration_setup(&self, costs: &CostModel) -> SimDuration;

    /// Feeds one pre-copy round's delta into the problematic-page tracker
    /// (§7.2). Remus has a single migration stream, so nothing is ever
    /// problematic; HERE records each page's sending thread.
    fn track_problematic(&self, tracker: &mut ProblematicTracker, delta: &MemoryDelta);

    /// Extra constant this scheme pays in the *Pause* stage of every
    /// checkpoint (Remus re-enters its toolstack; HERE keeps a persistent
    /// session).
    fn pause_extra(&self, costs: &CostModel) -> SimDuration;
}

/// The Remus baseline: homogeneous Xen → Xen pair, single-threaded data
/// plane, toolstack re-entry on every checkpoint.
#[derive(Debug, Clone, Copy, Default)]
pub struct RemusStrategy;

impl ReplicationStrategy for RemusStrategy {
    fn name(&self) -> &'static str {
        "remus"
    }

    fn kind(&self) -> Strategy {
        Strategy::Remus
    }

    fn make_secondary(
        &self,
        host_memory: ByteSize,
    ) -> CoreResult<(Box<dyn Hypervisor>, Option<StateTranslator>)> {
        Ok((Box::new(XenHypervisor::new(host_memory)), None))
    }

    fn effective_threads(&self, _configured: Option<u32>, _vcpus: u32) -> u32 {
        1
    }

    fn migration_setup(&self, _costs: &CostModel) -> SimDuration {
        SimDuration::ZERO
    }

    fn track_problematic(&self, _tracker: &mut ProblematicTracker, _delta: &MemoryDelta) {}

    fn pause_extra(&self, costs: &CostModel) -> SimDuration {
        costs.remus_extra_const
    }
}

/// HERE: heterogeneous Xen → KVM/kvmtool pair with state translation,
/// per-vCPU seeding threads and round-robin chunk workers.
#[derive(Debug, Clone, Copy, Default)]
pub struct HereStrategy;

impl ReplicationStrategy for HereStrategy {
    fn name(&self) -> &'static str {
        "here"
    }

    fn kind(&self) -> Strategy {
        Strategy::Here
    }

    fn make_secondary(
        &self,
        host_memory: ByteSize,
    ) -> CoreResult<(Box<dyn Hypervisor>, Option<StateTranslator>)> {
        Ok((
            Box::new(KvmHypervisor::new(host_memory)),
            Some(StateTranslator::new(
                HypervisorKind::Xen,
                HypervisorKind::Kvm,
            )?),
        ))
    }

    fn effective_threads(&self, configured: Option<u32>, vcpus: u32) -> u32 {
        configured.unwrap_or(vcpus).max(1)
    }

    fn migration_setup(&self, costs: &CostModel) -> SimDuration {
        costs.here_migration_setup
    }

    fn track_problematic(&self, tracker: &mut ProblematicTracker, delta: &MemoryDelta) {
        // Per-vCPU migrator threads: pages are sent by the thread of the
        // vCPU that last wrote them; pages that hop between threads across
        // rounds become problematic (§7.2).
        for &(page, rec) in delta.entries() {
            tracker.record(page, rec.last_writer);
        }
    }

    fn pause_extra(&self, _costs: &CostModel) -> SimDuration {
        SimDuration::ZERO
    }
}

static REMUS: RemusStrategy = RemusStrategy;
static HERE: HereStrategy = HereStrategy;

/// The runtime strategy object for a [`Strategy`] tag.
pub fn runtime(strategy: Strategy) -> &'static dyn ReplicationStrategy {
    match strategy {
        Strategy::Remus => &REMUS,
        Strategy::Here => &HERE,
    }
}

/// What one completed trip through the pipeline produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointSummary {
    /// The checkpoint's sequence number.
    pub seq: u64,
    /// Dirty pages copied.
    pub pages: u64,
    /// The VM-visible pause `t` (sum of the pause-counting stages).
    pub pause: SimDuration,
}

/// Starts a checkpoint: bumps the sequence number, pauses the VM, pays
/// the strategy's extra constant, and emits the *Pause* event.
pub(crate) fn begin(session: &mut Session) -> CoreResult<Paused<'_>> {
    session.seq += 1;
    let seq = session.seq;
    session.chaos_primary_fault(seq, Stage::Pause)?;
    let paused_at = session.clock;
    session.primary.vm_mut(session.pvm)?.pause()?;
    let extra = session.strategy.pause_extra(&session.cfg.costs);
    session.record_stage(seq, Stage::Pause, paused_at, extra, None, 0, 0);
    session.clock += extra;
    Ok(Paused {
        session,
        seq,
        pause: extra,
    })
}

/// Stage token: the VM is paused; dirty pages have not been collected yet.
pub struct Paused<'s> {
    session: &'s mut Session,
    seq: u64,
    pause: SimDuration,
}

impl<'s> Paused<'s> {
    /// *Harvest*: snapshot-and-clear the dirty bitmap, collect the dirty
    /// pages with the chunk workers, and pay the parallel scan `αN/P`.
    pub(crate) fn harvest(self) -> CoreResult<Harvested<'s>> {
        let Paused {
            session,
            seq,
            mut pause,
        } = self;
        session.chaos_primary_fault(seq, Stage::Harvest)?;
        let snapshot = session.take_dirty_snapshot();
        // The harvest reuses the session's pooled delta and per-lane
        // scratch: steady state allocates nothing per checkpoint.
        let mut delta = std::mem::take(&mut session.pools.delta);
        let mut scratch = std::mem::take(&mut session.pools.collect);
        delta.clear();
        let harvest_start = std::time::Instant::now();
        {
            let vm = session.primary.vm(session.pvm)?;
            collect_chunked_into(
                vm.memory(),
                &snapshot,
                session.threads,
                &mut scratch,
                &mut delta,
            );
        }
        let wall = harvest_start.elapsed().as_nanos() as u64;
        session.pools.collect = scratch;
        let pages = delta.len() as u64;
        let scan = session.cfg.costs.checkpoint_scan(pages, session.threads);
        let at = session.clock;
        session.record_stage(
            seq,
            Stage::Harvest,
            at,
            scan,
            Some(wall),
            pages,
            pages * PAGE_SIZE,
        );
        session.clock += scan;
        pause += scan;
        Ok(Harvested {
            session,
            seq,
            pause,
            delta,
            pages,
            scan,
        })
    }
}

/// Stage token: dirty pages are collected; state has not been encoded.
pub struct Harvested<'s> {
    session: &'s mut Session,
    seq: u64,
    pause: SimDuration,
    delta: MemoryDelta,
    pages: u64,
    /// The *Harvest* stage's parallel-scan duration, carried forward so
    /// *Transfer* can size the encode/transfer overlap window.
    scan: SimDuration,
}

impl<'s> Harvested<'s> {
    /// *Translate*: capture vCPU/device state, translate it to the common
    /// format and encode the checkpoint stream, paying the constant `C`.
    pub(crate) fn translate(self) -> CoreResult<Translated<'s>> {
        let Harvested {
            session,
            seq,
            mut pause,
            delta,
            pages,
            scan,
        } = self;
        session.chaos_primary_fault(seq, Stage::Translate)?;
        let encode_start = std::time::Instant::now();
        let streams = session.encode_checkpoint(&delta, seq)?;
        let wall = encode_start.elapsed().as_nanos() as u64;
        // The delta's allocation goes back to the pool for the next round.
        session.pools.delta = delta;
        let cost = session.cfg.costs.checkpoint_const;
        let at = session.clock;
        session.record_stage(
            seq,
            Stage::Translate,
            at,
            cost,
            Some(wall),
            pages,
            streams.canonical().len() as u64,
        );
        session.clock += cost;
        pause += cost;
        Ok(Translated {
            session,
            seq,
            pause,
            streams,
            pages,
            scan,
        })
    }
}

/// Stage token: the checkpoint stream is encoded but not yet shipped.
pub struct Translated<'s> {
    session: &'s mut Session,
    seq: u64,
    pause: SimDuration,
    streams: EpochStreams,
    pages: u64,
    /// The epoch's harvest-scan duration: the window the wire can hide
    /// under when encode/transfer overlap is on.
    scan: SimDuration,
}

impl<'s> Translated<'s> {
    /// *Transfer*: fan the encoded stream out across the replica set
    /// (each replica decodes its own clone over its own link) and install
    /// it, paying the per-page wire cost — in parallel across links for a
    /// star fan-out (stage duration is the slowest replica), serially
    /// along the chain for chained replication (stage duration is the
    /// sum). Verifies replica/primary equality when the scenario asks for
    /// it.
    ///
    /// Under an active fault plane each per-replica attempt may be
    /// dropped, corrupted on the wire, refused by the replica, or sent
    /// into a downed link; a failed attempt pays the wire timeout plus
    /// exponential backoff (see [`RetryPolicy`](crate::config::RetryPolicy))
    /// and is retried. A replica that exhausts its budget misses the
    /// epoch: its pages are queued as catch-up backlog and it converges
    /// asynchronously. Only when so many replicas miss that a quorum
    /// cannot apply does the stage return [`CoreError::EpochAborted`]:
    /// the stream is discarded and the epoch loop rolls the pages into
    /// the next checkpoint. Without a fault plane the single attempt per
    /// replica succeeds and, at N = 1, this stage is byte-identical to
    /// the unhardened path.
    pub(crate) fn transfer(self) -> CoreResult<Transferred<'s>> {
        use crate::chaos::{corrupt_stream, TransferFault};
        let Translated {
            session,
            seq,
            mut pause,
            streams,
            pages,
            scan,
        } = self;
        session.chaos_primary_fault(seq, Stage::Transfer)?;
        let bytes = streams.canonical().len() as u64;
        let wire_v2 = session.cfg.costs.checkpoint_wire(pages);
        // A v3 link carries the columnar stream's page records instead of
        // one fixed-size meta per page: its wire time scales by those
        // bytes expressed in v2 page-meta equivalents (never more than
        // the v2 page count).
        let wire_v3 = if streams.v3.is_some() {
            let equiv = streams
                .v3_page_bytes
                .div_ceil(PAGE_META_BYTES as u64)
                .min(pages);
            session.cfg.costs.checkpoint_wire(equiv)
        } else {
            wire_v2
        };
        let policy = session.cfg.retry;
        let max_attempts = policy.max_attempts.max(1);
        let fanout = session.cfg.topology.fanout;
        let replica_count = session.replicas.len() as u32;
        let mut applied: Vec<u32> = Vec::with_capacity(replica_count as usize);
        let mut spents: Vec<SimDuration> = Vec::with_capacity(replica_count as usize);
        // Each replica decodes a clone of the scattered segments; once
        // every apply lands, the clones are dropped and the original's
        // segments are sole-owner again, so the pool reclaims their
        // allocations.
        let apply_start = std::time::Instant::now();
        for replica in 0..replica_count {
            let version = session.replicas.get(replica).wire_version();
            let wire = if version >= VERSION_V3 {
                wire_v3
            } else {
                wire_v2
            };
            let stream = streams.for_version(version);
            let mut spent = SimDuration::ZERO;
            let mut attempt = 0u32;
            loop {
                let fault = session.chaos_transfer_fault(seq, replica, attempt);
                let failure: Option<&'static str> = match fault {
                    None | Some(TransferFault::Delayed(_)) => {
                        if !session.replicas.get(replica).link.is_up() {
                            // The flap is over; the link carries this
                            // attempt.
                            session.replicas.get_mut(replica).link.set_up(true);
                        }
                        session.apply_checkpoint(stream.clone(), seq, replica)?;
                        if let Some(TransferFault::Delayed(by)) = fault {
                            spent = spent.saturating_add(by);
                        }
                        None
                    }
                    Some(TransferFault::LinkDown) => {
                        session.replicas.get_mut(replica).link.set_up(false);
                        Some("link_down")
                    }
                    Some(TransferFault::Dropped) => Some("dropped"),
                    Some(TransferFault::DecodeRefused) => Some("decode_refused"),
                    Some(TransferFault::Corrupted {
                        segment_salt,
                        byte_salt,
                    }) => {
                        let corrupted = corrupt_stream(stream, segment_salt, byte_salt);
                        match session.apply_checkpoint(corrupted, seq, replica) {
                            // The decoder's frame checksums (or the trailer
                            // cross-check) reject the flipped byte — and the
                            // two-phase apply guarantees nothing partial was
                            // installed.
                            Err(_) => Some("corrupt_frame"),
                            // Unreachable with checksummed framing; treat a
                            // surviving flip as a delivered attempt.
                            Ok(()) => None,
                        }
                    }
                };
                match failure {
                    None => {
                        spent = spent.saturating_add(wire);
                        if attempt > 0 {
                            session.note_transfer_recovery(seq, attempt);
                        }
                        applied.push(replica);
                        break;
                    }
                    Some(reason) => {
                        // The failed attempt still occupied the wire for
                        // its timeout window.
                        spent = spent.saturating_add(wire);
                        attempt += 1;
                        if attempt >= max_attempts {
                            session.replicas.get_mut(replica).link.set_up(true);
                            break;
                        }
                        let backoff = policy.backoff_after(attempt - 1);
                        spent = spent.saturating_add(backoff);
                        session.note_transfer_retry(seq, replica, attempt, reason, backoff);
                    }
                }
            }
            spents.push(spent);
        }
        // Star links run concurrently; a chain forwards hop by hop.
        let spent = match fanout {
            crate::config::FanoutMode::Star => {
                spents.iter().copied().max().unwrap_or(SimDuration::ZERO)
            }
            crate::config::FanoutMode::Chain => spents
                .iter()
                .fold(SimDuration::ZERO, |acc, &s| acc.saturating_add(s)),
        };
        // Encode/transfer overlap (§overlap knob): with the bounded
        // channel streaming completed chunks onto the wire while later
        // chunks are still encoding, all but the last chunk's share of
        // the smaller of (scan, wire) hides under the encode window. The
        // credit is integer arithmetic — window − window/chunks — so the
        // accounting stays deterministic, and it applies identically on
        // the commit and abort paths so the recorded stage duration
        // always equals the pause contribution. A chain pays its hops
        // serially but still streams into the first hop, so the credit
        // applies once to the combined spent, not per hop.
        let credit = if session.cfg.overlap_transfer {
            let chunks = session.cfg.epoch_chunks(pages, session.threads);
            let window = if scan < spent { scan } else { spent };
            window.saturating_sub(window / chunks.max(1))
        } else {
            SimDuration::ZERO
        };
        let visible = spent.saturating_sub(credit);
        let wall = apply_start.elapsed().as_nanos() as u64;
        let quorum = session.ledger.quorum() as usize;
        if applied.len() < quorum {
            // Not enough replicas hold the epoch for it to ever commit:
            // abort it wholesale, exactly like a single exhausted pair.
            session.recycle_streams(streams);
            let at = session.clock;
            session.note_overlap_credit(credit);
            session.record_stage(seq, Stage::Transfer, at, visible, Some(wall), pages, bytes);
            session.clock += visible;
            return Err(crate::error::CoreError::EpochAborted {
                seq,
                attempts: max_attempts,
            });
        }
        // Replicas that missed the epoch catch up asynchronously: the
        // pages they missed ride their backlog into the next apply.
        if applied.len() < replica_count as usize {
            let delta = std::mem::take(&mut session.pools.delta);
            for replica in 0..replica_count {
                if !applied.contains(&replica) {
                    session.note_replica_backlog(replica, &delta);
                }
            }
            session.pools.delta = delta;
        }
        if session.verify_consistency {
            for &replica in &applied {
                session.assert_replica_matches_primary(seq, replica)?;
                session.consistency_checks += 1;
            }
        }
        session.recycle_streams(streams);
        let at = session.clock;
        session.note_overlap_credit(credit);
        session.record_stage(seq, Stage::Transfer, at, visible, Some(wall), pages, bytes);
        session.clock += visible;
        pause += visible;
        Ok(Transferred {
            session,
            seq,
            pause,
            pages,
            applied,
        })
    }
}

/// Stage token: a quorum of replicas holds the checkpoint; their acks
/// are outstanding.
pub struct Transferred<'s> {
    session: &'s mut Session,
    seq: u64,
    pause: SimDuration,
    pages: u64,
    /// Replicas that fully applied this epoch, in index order.
    applied: Vec<u32>,
}

impl<'s> Transferred<'s> {
    /// *Ack*: every replica that applied the epoch acks it back across
    /// its link — one RTT on a star fan-out, the prefix of chain RTTs on
    /// chained replication. The stage lasts until the quorum-th ack
    /// lands; that ack drives the commit (buffered output is released to
    /// the client), and later acks are per-replica catch-up bookkeeping.
    /// The acks overlap the resume path, so they do not count toward the
    /// VM-visible pause.
    pub(crate) fn ack(self) -> Acked<'s> {
        let Transferred {
            session,
            seq,
            pause,
            pages,
            applied,
        } = self;
        let fanout = session.cfg.topology.fanout;
        let mut arrivals: Vec<(SimDuration, u32)> = applied
            .iter()
            .map(|&replica| {
                let rtt = match fanout {
                    crate::config::FanoutMode::Star => session.replicas.get(replica).link.rtt(),
                    // The ack hops back along every chain link up to and
                    // including the replica's own.
                    crate::config::FanoutMode::Chain => (0..=replica)
                        .fold(SimDuration::ZERO, |acc, hop| {
                            acc.saturating_add(session.replicas.get(hop).link.rtt())
                        }),
                };
                (rtt, replica)
            })
            .collect();
        // Stable by arrival time: equal RTTs ack in index order.
        arrivals.sort_by_key(|&(rtt, _)| rtt);
        let quorum = (session.ledger.quorum() as usize).clamp(1, arrivals.len().max(1));
        let stage = arrivals
            .get(quorum - 1)
            .map_or(SimDuration::ZERO, |&(rtt, _)| rtt);
        let at = session.clock;
        session.record_stage(seq, Stage::Ack, at, stage, None, 0, 0);
        session.clock += stage;
        let mut committed = false;
        for &(rtt, replica) in &arrivals {
            let acked_at = session.rel(at + rtt);
            if session.ledger.ack(replica, seq, acked_at) {
                session.on_epoch_committed(seq);
                committed = true;
            }
        }
        if committed && session.wire_v3_active() {
            // The epoch is now the committed base every side agrees on:
            // fold its delta into the primary's encode-side shadow and
            // each applied replica's apply-side shadow. Replicas that
            // missed the epoch keep their old base and re-base from
            // backlog at their next apply.
            let delta = std::mem::take(&mut session.pools.delta);
            session.pools.shadow.commit(&delta, seq);
            for &replica in &applied {
                session
                    .replicas
                    .get_mut(replica)
                    .pools
                    .shadow
                    .commit(&delta, seq);
            }
            session.pools.delta = delta;
        }
        session.update_staleness(seq);
        Acked {
            session,
            seq,
            pause,
            pages,
        }
    }
}

/// Stage token: the checkpoint is committed; the VM is still paused.
pub struct Acked<'s> {
    session: &'s mut Session,
    seq: u64,
    pause: SimDuration,
    pages: u64,
}

impl Acked<'_> {
    /// *Resume*: the VM runs again, carrying the post-pause disturbance
    /// debt (§8.6).
    pub(crate) fn resume(self) -> CoreResult<CheckpointSummary> {
        let Acked {
            session,
            seq,
            pause,
            pages,
        } = self;
        session.primary.vm_mut(session.pvm)?.resume()?;
        session.disturbance_debt += session.cfg.costs.pause_disturbance;
        let at = session.clock;
        session.record_stage(seq, Stage::Resume, at, SimDuration::ZERO, None, 0, 0);
        Ok(CheckpointSummary { seq, pages, pause })
    }
}

macro_rules! opaque_debug {
    ($($token:ident),*) => {$(
        impl fmt::Debug for $token<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_struct(stringify!($token))
                    .field("seq", &self.seq)
                    .finish_non_exhaustive()
            }
        }
    )*};
}
opaque_debug!(Paused, Harvested, Translated, Transferred, Acked);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_maps_tags_to_strategies() {
        assert_eq!(runtime(Strategy::Remus).kind(), Strategy::Remus);
        assert_eq!(runtime(Strategy::Here).kind(), Strategy::Here);
        assert_eq!(runtime(Strategy::Remus).name(), "remus");
        assert_eq!(runtime(Strategy::Here).name(), "here");
    }

    #[test]
    fn remus_is_single_threaded_and_pays_the_toolstack_tax() {
        let costs = CostModel::default();
        let remus = runtime(Strategy::Remus);
        assert_eq!(remus.effective_threads(Some(8), 4), 1);
        assert_eq!(remus.pause_extra(&costs), costs.remus_extra_const);
        assert_eq!(remus.migration_setup(&costs), SimDuration::ZERO);
    }

    #[test]
    fn here_scales_threads_with_vcpus() {
        let costs = CostModel::default();
        let here = runtime(Strategy::Here);
        assert_eq!(here.effective_threads(None, 4), 4);
        assert_eq!(here.effective_threads(Some(2), 4), 2);
        assert_eq!(here.effective_threads(Some(0), 4), 1);
        assert_eq!(here.pause_extra(&costs), SimDuration::ZERO);
        assert_eq!(here.migration_setup(&costs), costs.here_migration_setup);
    }

    #[test]
    fn secondaries_pair_per_the_paper() {
        let (remus_sec, remus_tr) = runtime(Strategy::Remus)
            .make_secondary(ByteSize::from_gib(16))
            .unwrap();
        assert_eq!(remus_sec.kind(), HypervisorKind::Xen);
        assert!(remus_tr.is_none());
        let (here_sec, here_tr) = runtime(Strategy::Here)
            .make_secondary(ByteSize::from_gib(16))
            .unwrap();
        assert_eq!(here_sec.kind(), HypervisorKind::Kvm);
        assert!(here_tr.is_some());
    }

    #[test]
    fn here_tracks_problematic_pages_and_remus_does_not() {
        use here_hypervisor::memory::PageVersion;
        use here_hypervisor::PageId;
        let mut delta = MemoryDelta::new();
        delta.push(
            PageId::new(7),
            PageVersion {
                version: 1,
                last_writer: 0,
            },
        );
        let mut delta2 = MemoryDelta::new();
        delta2.push(
            PageId::new(7),
            PageVersion {
                version: 2,
                last_writer: 1,
            },
        );
        let mut tracker = ProblematicTracker::new();
        let here = runtime(Strategy::Here);
        here.track_problematic(&mut tracker, &delta);
        here.track_problematic(&mut tracker, &delta2);
        assert_eq!(tracker.len(), 1);

        let mut tracker = ProblematicTracker::new();
        let remus = runtime(Strategy::Remus);
        remus.track_problematic(&mut tracker, &delta);
        remus.track_problematic(&mut tracker, &delta2);
        assert!(tracker.is_empty());
    }
}
