//! The postmortem plane: deterministic incident capture and bundle replay.
//!
//! When a run arms [`ReplicationConfig::postmortem_capture`]
//! (crate::config::ReplicationConfig::postmortem_capture), the session
//! snapshots an [`IncidentSnapshot`] the first time an armed trigger fires
//! — an alert raised, a failover, an epoch abort, or (when nothing fires)
//! an explicit end-of-run request — freezing the trailing flight-recorder
//! window, the commit ledger and per-replica acks, the enclosing epoch's
//! span subtree, the health transitions and windowed-series tail at that
//! instant.
//!
//! [`IncidentBundle`] wraps that snapshot together with everything needed
//! to *re-execute* the run: the scenario parameters ([`ScenarioSpec`]),
//! the full [`ReplicationConfig`], the active [`FaultPlan`] and the run's
//! [`RunReport::fingerprint`]. The bundle serializes to a self-describing,
//! versioned text document with a checksummed header
//! ([`IncidentBundle::encode`]); decoding is strict — an unknown version,
//! a truncated payload or a tampered byte is rejected, never silently
//! accepted ([`IncidentBundle::decode`]).
//!
//! Because every run is seed-deterministic in virtual time, the bundle
//! *is* the repro: [`IncidentBundle::replay`] rebuilds the scenario from
//! the bundle alone, re-executes it, and checks the fingerprint and the
//! alert log byte for byte. The differential side — re-running the same
//! seed with the fault plan stripped and diffing incident against healthy
//! baseline — lives in
//! [`PostmortemAnalyzer`](crate::analyze::PostmortemAnalyzer).

use serde::{Deserialize, Serialize};

use here_sim_core::time::{SimDuration, SimTime};
use here_vmstate::wire::fnv32;
use here_workloads::idle::IdleGuest;
use here_workloads::memstress::MemStress;
use here_workloads::traits::Workload;

use crate::chaos::{FaultKind, FaultPlan};
use crate::config::{FanoutMode, PeriodPolicy, ReplicationConfig, Strategy, TopologyConfig};
use crate::engine::Scenario;
use crate::error::{CoreError, CoreResult};
use crate::failover::{CommitEntry, ReplicaAcks};
use crate::report::RunReport;
use crate::trace::Stage;

use here_hypervisor::fault::DosOutcome;

/// Bundle format magic (first header line starts with this).
pub const BUNDLE_MAGIC: &str = "HEREBUNDLE";

/// Bundle format version this build writes and accepts.
pub const BUNDLE_VERSION: u32 = 1;

/// Lines of the windowed-series JSONL export the snapshot retains (the
/// *tail* — the newest windows at capture time).
pub const SERIES_TAIL_LINES: usize = 32;

/// Normalizes the host-noise values out of a flight-recorder dump — the
/// same keys the bench gate ignores: wall-clock stamps and the
/// work-stealing pool's scheduler-timing diagnostics. Everything else in
/// the dump is virtual time, so with these neutralized the captured dump
/// (and with it the whole encoded bundle) is byte-identical across hosts
/// and runs.
pub(crate) fn normalize_flight_dump(json: &str) -> String {
    let mut out = json.to_string();
    for (key, neutral) in [
        ("\"wall_nanos\":", "null"),
        ("\"steals\":", "0"),
        ("\"occupancy_pct\":", "0.0"),
    ] {
        out = neutralize_values(&out, key, neutral);
    }
    out
}

/// Replaces the numeric value after every occurrence of `key` with
/// `neutral` (non-numeric values, like an already-`null` stamp, pass
/// through untouched).
fn neutralize_values(json: &str, key: &str, neutral: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(pos) = rest.find(key) {
        let after = pos + key.len();
        out.push_str(&rest[..after]);
        rest = &rest[after..];
        let n = rest
            .bytes()
            .take_while(|b| b.is_ascii_digit() || matches!(b, b'.' | b'-'))
            .count();
        if n > 0 {
            out.push_str(neutral);
            rest = &rest[n..];
        }
    }
    out.push_str(rest);
    out
}

/// The workload half of a [`ScenarioSpec`] — only workloads the bundle
/// can reconstruct byte-identically are capturable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// The idle guest (background dirtying only).
    Idle,
    /// [`MemStress`] touching `percent` % of memory at `rate` pages/s.
    MemStress {
        /// Memory percentage the stressor walks (1..=100).
        percent: u8,
        /// Page writes per second.
        rate: u64,
    },
}

impl WorkloadSpec {
    /// Builds the live workload this spec describes.
    pub fn build(&self) -> Box<dyn Workload> {
        match *self {
            WorkloadSpec::Idle => Box::new(IdleGuest::new()),
            WorkloadSpec::MemStress { percent, rate } => {
                Box::new(MemStress::with_percent(percent).with_rate(rate))
            }
        }
    }

    fn render(&self) -> String {
        match *self {
            WorkloadSpec::Idle => "idle".to_string(),
            WorkloadSpec::MemStress { percent, rate } => format!("memstress:{percent}:{rate}"),
        }
    }

    fn parse(s: &str) -> CoreResult<WorkloadSpec> {
        if s == "idle" {
            return Ok(WorkloadSpec::Idle);
        }
        if let Some(rest) = s.strip_prefix("memstress:") {
            let mut it = rest.split(':');
            let percent = parse_num::<u8>(it.next().unwrap_or(""), "workload percent")?;
            let rate = parse_num::<u64>(it.next().unwrap_or(""), "workload rate")?;
            if it.next().is_some() {
                return Err(bundle_err("workload spec has trailing fields"));
            }
            return Ok(WorkloadSpec::MemStress { percent, rate });
        }
        Err(bundle_err(&format!("unknown workload spec {s:?}")))
    }
}

/// Everything needed to rebuild the captured run's [`Scenario`] — the
/// builder knobs the run was constructed with. The replication config and
/// fault plan ride separately in the bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (part of the fingerprint).
    pub name: String,
    /// Protected VM memory in MiB.
    pub memory_mib: u64,
    /// Protected VM vCPU count.
    pub vcpus: u32,
    /// The workload, in reconstructible form.
    pub workload: WorkloadSpec,
    /// Scenario duration.
    pub duration: SimDuration,
    /// Run seed (workload RNG stream).
    pub seed: u64,
    /// Whether the run verified replica/primary equality each checkpoint.
    pub verify_consistency: bool,
}

impl ScenarioSpec {
    /// Rebuilds the scenario this spec plus `config` and `plan` describe.
    pub fn build_scenario(
        &self,
        config: ReplicationConfig,
        plan: Option<FaultPlan>,
    ) -> CoreResult<Scenario> {
        let mut builder = Scenario::builder()
            .name(&self.name)
            .vm_memory_mib(self.memory_mib)
            .vcpus(self.vcpus)
            .workload(self.workload.build())
            .config(config)
            .duration(self.duration)
            .seed(self.seed);
        if let Some(plan) = plan {
            builder = builder.chaos(plan);
        }
        if self.verify_consistency {
            builder = builder.verify_consistency();
        }
        builder.build()
    }
}

/// The point-in-time observability capture the session freezes when the
/// first armed trigger fires; rides in [`RunReport::incident`]. Excluded
/// from [`RunReport::fingerprint`] (like telemetry), so arming capture
/// never perturbs a run's identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentSnapshot {
    /// What fired: `alert`, `failover`, `epoch_abort` or `request`.
    pub trigger: String,
    /// Epoch the trigger fired in.
    pub epoch: u64,
    /// Report-relative virtual instant of the trigger.
    pub at_nanos: u64,
    /// Human-readable trigger detail (alert rule, abort attempts, …).
    pub detail: String,
    /// The trailing flight-recorder window at capture (JSON dump).
    pub flight_json: String,
    /// Committed epochs at capture, oldest first.
    pub commits: Vec<CommitEntry>,
    /// Per-replica ack trails at capture, in index order.
    pub acks: Vec<ReplicaAcks>,
    /// The enclosing span subtree at capture: every span of the trigger
    /// epoch plus the failover tree, rendered one line per span.
    pub spans: Vec<String>,
    /// Health transitions recorded so far, `rN:from->to@epoch`.
    pub transitions: Vec<String>,
    /// Tail of the windowed-series JSONL export at capture.
    pub series_tail: String,
    /// Alert rules firing at capture, in declaration order.
    pub active_alerts: Vec<String>,
    /// The ordered alert log at capture (JSONL).
    pub alert_log_jsonl: String,
}

/// Outcome of one [`IncidentBundle::replay`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Fingerprint of the re-executed run.
    pub fingerprint: u64,
    /// True when the rerun reproduced the bundled fingerprint.
    pub fingerprint_matches: bool,
    /// True when the rerun's final alert log matched byte for byte.
    pub alert_log_matches: bool,
    /// True when the rerun's unresolved alerts matched the bundle's.
    pub active_alerts_match: bool,
    /// The re-executed run's full report.
    pub report: RunReport,
}

impl ReplayOutcome {
    /// True when every replay assertion held.
    pub fn verified(&self) -> bool {
        self.fingerprint_matches && self.alert_log_matches && self.active_alerts_match
    }
}

/// A self-describing, versioned, checksummed incident capture — the
/// one-file repro of a run that paged, failed over or aborted an epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentBundle {
    /// The captured run's scenario parameters.
    pub spec: ScenarioSpec,
    /// The captured run's full replication config.
    pub config: ReplicationConfig,
    /// The fault plan that was armed, if any.
    pub plan: Option<FaultPlan>,
    /// The captured run's [`RunReport::fingerprint`].
    pub fingerprint: u64,
    /// The captured run's *final* alert log (JSONL; empty when the health
    /// plane was unarmed).
    pub alert_log_jsonl: String,
    /// Alert rules still firing when the captured run ended — an incident
    /// the run ended in the middle of, preserved, not dropped.
    pub active_alerts: Vec<String>,
    /// The point-in-time capture at the trigger instant.
    pub incident: IncidentSnapshot,
}

impl IncidentBundle {
    /// Assembles the bundle for a finished `report` of the run `spec`,
    /// `config` and `plan` describe. Fails when the run captured no
    /// incident (capture was not armed).
    pub fn capture(
        spec: ScenarioSpec,
        config: &ReplicationConfig,
        plan: Option<&FaultPlan>,
        report: &RunReport,
    ) -> CoreResult<IncidentBundle> {
        let incident = report.incident.clone().ok_or_else(|| {
            bundle_err("the run captured no incident (arm ReplicationConfig::postmortem_capture)")
        })?;
        let (alert_log_jsonl, active_alerts) =
            match report.telemetry.as_ref().and_then(|t| t.health.as_ref()) {
                Some(h) => (h.alert_log_jsonl.clone(), h.active_alerts.clone()),
                None => (String::new(), Vec::new()),
            };
        Ok(IncidentBundle {
            spec,
            config: config.clone(),
            plan: plan.cloned(),
            fingerprint: report.fingerprint(),
            alert_log_jsonl,
            active_alerts,
            incident,
        })
    }

    /// Re-executes the captured run: `with_plan` keeps the fault plan
    /// (the incident), `false` strips it (the healthy baseline the
    /// differential analyzer diffs against).
    pub fn execute(&self, with_plan: bool) -> CoreResult<RunReport> {
        let plan = if with_plan { self.plan.clone() } else { None };
        Ok(self.spec.build_scenario(self.config.clone(), plan)?.run())
    }

    /// Replays the bundle — rebuilds the session from the bundle alone,
    /// re-executes it, and checks the fingerprint and alert log byte for
    /// byte. The bundle *is* the repro.
    pub fn replay(&self) -> CoreResult<ReplayOutcome> {
        let report = self.execute(true)?;
        let (alert_log, active) = match report.telemetry.as_ref().and_then(|t| t.health.as_ref()) {
            Some(h) => (h.alert_log_jsonl.clone(), h.active_alerts.clone()),
            None => (String::new(), Vec::new()),
        };
        let fingerprint = report.fingerprint();
        Ok(ReplayOutcome {
            fingerprint,
            fingerprint_matches: fingerprint == self.fingerprint,
            alert_log_matches: alert_log == self.alert_log_jsonl,
            active_alerts_match: active == self.active_alerts,
            report,
        })
    }

    /// Serializes the bundle: a three-line checksummed header (magic +
    /// version, payload length, payload FNV-32), a `---` separator, and
    /// the line-oriented payload. Everything a decoder needs to validate
    /// the document is in the header.
    pub fn encode(&self) -> String {
        let payload = self.render_payload();
        format!(
            "{BUNDLE_MAGIC} v{BUNDLE_VERSION}\nlen={}\ncrc=0x{:08x}\n---\n{payload}",
            payload.len(),
            fnv32(payload.as_bytes()),
        )
    }

    /// Strictly decodes a bundle document: the magic and version must
    /// match ([`BUNDLE_VERSION`]), the payload length must equal the
    /// header's `len` (truncation), the payload FNV-32 must equal the
    /// header's `crc` (tampering), and every payload field must parse in
    /// order. Anything else is an error, never a partial bundle.
    pub fn decode(doc: &str) -> CoreResult<IncidentBundle> {
        let mut lines = doc.splitn(4, '\n');
        let magic = lines.next().unwrap_or("");
        let len_line = lines.next().unwrap_or("");
        let crc_line = lines.next().unwrap_or("");
        let rest = lines.next().unwrap_or("");
        let version = magic
            .strip_prefix(BUNDLE_MAGIC)
            .and_then(|v| v.trim().strip_prefix('v'))
            .ok_or_else(|| bundle_err("not an incident bundle (bad magic)"))?;
        let version: u32 = version
            .parse()
            .map_err(|_| bundle_err("unparseable bundle version"))?;
        if version != BUNDLE_VERSION {
            return Err(bundle_err(&format!(
                "unknown bundle version v{version} (this build reads v{BUNDLE_VERSION})"
            )));
        }
        let want_len: usize = len_line
            .strip_prefix("len=")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bundle_err("malformed len header"))?;
        let want_crc = crc_line
            .strip_prefix("crc=0x")
            .and_then(|v| u32::from_str_radix(v, 16).ok())
            .ok_or_else(|| bundle_err("malformed crc header"))?;
        let payload = rest
            .strip_prefix("---\n")
            .ok_or_else(|| bundle_err("missing payload separator"))?;
        if payload.len() != want_len {
            return Err(bundle_err(&format!(
                "truncated bundle: header says {want_len} payload bytes, found {}",
                payload.len()
            )));
        }
        let crc = fnv32(payload.as_bytes());
        if crc != want_crc {
            return Err(bundle_err(&format!(
                "tampered bundle: payload crc 0x{crc:08x}, header says 0x{want_crc:08x}"
            )));
        }
        Self::parse_payload(payload)
    }

    fn render_payload(&self) -> String {
        let mut out = String::new();
        let kv = |out: &mut String, k: &str, v: &str| {
            out.push_str(k);
            out.push('=');
            out.push_str(v);
            out.push('\n');
        };
        // [scenario]
        kv(&mut out, "name", &esc(&self.spec.name));
        kv(&mut out, "memory_mib", &self.spec.memory_mib.to_string());
        kv(&mut out, "vcpus", &self.spec.vcpus.to_string());
        kv(&mut out, "workload", &self.spec.workload.render());
        kv(
            &mut out,
            "duration_nanos",
            &self.spec.duration.as_nanos().to_string(),
        );
        kv(&mut out, "seed", &self.spec.seed.to_string());
        kv(
            &mut out,
            "verify_consistency",
            bool_str(self.spec.verify_consistency),
        );
        // [config]
        let c = &self.config;
        kv(
            &mut out,
            "strategy",
            match c.strategy {
                Strategy::Here => "here",
                Strategy::Remus => "remus",
            },
        );
        let period = match c.period {
            PeriodPolicy::Fixed(t) => format!("fixed:{}", t.as_nanos()),
            PeriodPolicy::Dynamic {
                d_target,
                t_max,
                sigma,
            } => format!(
                "dynamic:0x{:016x}:{}:{}",
                d_target.to_bits(),
                t_max.as_nanos(),
                sigma.as_nanos()
            ),
        };
        kv(&mut out, "period", &period);
        kv(&mut out, "transfer_threads", &opt_num(c.transfer_threads));
        kv(&mut out, "encode_lanes", &opt_num(c.encode_lanes));
        kv(
            &mut out,
            "heartbeat",
            &format!(
                "{}:{}",
                c.heartbeat.period.as_nanos(),
                c.heartbeat.missed_threshold
            ),
        );
        kv(
            &mut out,
            "retry",
            &format!(
                "{}:{}:{}",
                c.retry.max_attempts,
                c.retry.backoff_base.as_nanos(),
                c.retry.backoff_cap.as_nanos()
            ),
        );
        let m = &c.costs;
        kv(
            &mut out,
            "costs",
            &format!(
                "{}:{}:{}:{}:{}:{}:{}:{}:0x{:016x}:0x{:016x}:{}:{}:{}:{}",
                m.migrate_scan_per_page.as_nanos(),
                m.migrate_wire_per_page.as_nanos(),
                m.checkpoint_cpu_per_page.as_nanos(),
                m.checkpoint_wire_per_page.as_nanos(),
                m.checkpoint_thread_overhead.as_nanos(),
                m.checkpoint_const.as_nanos(),
                m.remus_extra_const.as_nanos(),
                m.here_migration_setup.as_nanos(),
                m.parallel_efficiency.to_bits(),
                m.migration_parallel_efficiency.to_bits(),
                m.pause_disturbance.as_nanos(),
                m.device_switch.as_nanos(),
                m.state_load.as_nanos(),
                m.rss_base_mib,
            ),
        );
        kv(
            &mut out,
            "migration_limits",
            &format!(
                "{}:{}",
                c.max_migration_iterations, c.migration_dirty_threshold
            ),
        );
        kv(
            &mut out,
            "topology",
            &format!(
                "{}:{}:{}:{}",
                c.topology.replicas,
                c.topology.quorum,
                match c.topology.fanout {
                    FanoutMode::Star => "star",
                    FanoutMode::Chain => "chain",
                },
                c.topology.stale_epoch_lag
            ),
        );
        kv(
            &mut out,
            "encode_chunk_pages",
            &opt_num(c.encode_chunk_pages),
        );
        kv(
            &mut out,
            "overlap_channel_depth",
            &opt_num(c.overlap_channel_depth),
        );
        kv(&mut out, "overlap_transfer", bool_str(c.overlap_transfer));
        kv(&mut out, "health_plane", bool_str(c.health_plane));
        kv(
            &mut out,
            "postmortem_capture",
            bool_str(c.postmortem_capture),
        );
        kv(
            &mut out,
            "flight_recorder_capacity",
            &match c.flight_recorder_capacity {
                Some(n) => n.to_string(),
                None => "none".to_string(),
            },
        );
        // Wire negotiation: emitted only when it differs from the v2
        // default, so every pre-v3 bundle stays byte-identical.
        if c.wire_version != here_vmstate::wire::VERSION || c.replica_wire_caps.is_some() {
            let caps = match &c.replica_wire_caps {
                None => "none".to_string(),
                Some(caps) => caps
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            };
            kv(&mut out, "wire", &format!("{}:{caps}", c.wire_version));
        }
        // [fault plan]
        match &self.plan {
            None => kv(&mut out, "plan", "none"),
            Some(plan) => {
                kv(&mut out, "plan", &plan.seed.to_string());
                kv(&mut out, "plan_events", &plan.events().len().to_string());
                for e in plan.events() {
                    kv(
                        &mut out,
                        "event",
                        &format!("{}:{}:{}", e.epoch, e.replica, render_kind(&e.kind)),
                    );
                }
            }
        }
        // [run identity]
        kv(
            &mut out,
            "fingerprint",
            &format!("0x{:016x}", self.fingerprint),
        );
        kv(&mut out, "alert_log", &esc(&self.alert_log_jsonl));
        kv(
            &mut out,
            "active_alerts",
            &self.active_alerts.len().to_string(),
        );
        for rule in &self.active_alerts {
            kv(&mut out, "active", &esc(rule));
        }
        // [incident capture]
        let i = &self.incident;
        kv(&mut out, "trigger", &esc(&i.trigger));
        kv(&mut out, "trigger_epoch", &i.epoch.to_string());
        kv(&mut out, "trigger_at_nanos", &i.at_nanos.to_string());
        kv(&mut out, "trigger_detail", &esc(&i.detail));
        kv(&mut out, "flight", &esc(&i.flight_json));
        kv(&mut out, "commits", &i.commits.len().to_string());
        for commit in &i.commits {
            kv(
                &mut out,
                "commit",
                &format!("{}:{}", commit.seq, commit.at.as_nanos()),
            );
        }
        kv(&mut out, "acks", &i.acks.len().to_string());
        for trail in &i.acks {
            let entries = trail
                .acks
                .iter()
                .map(|a| format!("{}@{}", a.seq, a.at.as_nanos()))
                .collect::<Vec<_>>()
                .join(",");
            kv(&mut out, "ack", &format!("{}:{entries}", trail.replica));
        }
        kv(&mut out, "spans", &i.spans.len().to_string());
        for span in &i.spans {
            kv(&mut out, "span", &esc(span));
        }
        kv(&mut out, "transitions", &i.transitions.len().to_string());
        for t in &i.transitions {
            kv(&mut out, "transition", &esc(t));
        }
        kv(&mut out, "series_tail", &esc(&i.series_tail));
        kv(
            &mut out,
            "capture_active",
            &i.active_alerts.len().to_string(),
        );
        for rule in &i.active_alerts {
            kv(&mut out, "capture_active_rule", &esc(rule));
        }
        kv(&mut out, "capture_alert_log", &esc(&i.alert_log_jsonl));
        out
    }

    fn parse_payload(payload: &str) -> CoreResult<IncidentBundle> {
        let mut cur = Cursor::new(payload);
        let name = unesc(&cur.take("name")?)?;
        let memory_mib = parse_num(&cur.take("memory_mib")?, "memory_mib")?;
        let vcpus = parse_num(&cur.take("vcpus")?, "vcpus")?;
        let workload = WorkloadSpec::parse(&cur.take("workload")?)?;
        let duration =
            SimDuration::from_nanos(parse_num(&cur.take("duration_nanos")?, "duration_nanos")?);
        let seed = parse_num(&cur.take("seed")?, "seed")?;
        let verify_consistency = parse_bool(&cur.take("verify_consistency")?)?;
        let spec = ScenarioSpec {
            name,
            memory_mib,
            vcpus,
            workload,
            duration,
            seed,
            verify_consistency,
        };

        let strategy = match cur.take("strategy")?.as_str() {
            "here" => Strategy::Here,
            "remus" => Strategy::Remus,
            other => return Err(bundle_err(&format!("unknown strategy {other:?}"))),
        };
        let period_raw = cur.take("period")?;
        let period = if let Some(nanos) = period_raw.strip_prefix("fixed:") {
            PeriodPolicy::Fixed(SimDuration::from_nanos(parse_num(nanos, "fixed period")?))
        } else if let Some(rest) = period_raw.strip_prefix("dynamic:") {
            let parts: Vec<&str> = rest.split(':').collect();
            if parts.len() != 3 {
                return Err(bundle_err("malformed dynamic period"));
            }
            PeriodPolicy::Dynamic {
                d_target: f64::from_bits(parse_hex_u64(parts[0], "d_target")?),
                t_max: SimDuration::from_nanos(parse_num(parts[1], "t_max")?),
                sigma: SimDuration::from_nanos(parse_num(parts[2], "sigma")?),
            }
        } else {
            return Err(bundle_err("unknown period policy"));
        };
        let transfer_threads = parse_opt_num(&cur.take("transfer_threads")?, "transfer_threads")?;
        let encode_lanes = parse_opt_num(&cur.take("encode_lanes")?, "encode_lanes")?;
        let hb: Vec<String> = split_fields(&cur.take("heartbeat")?, 2, "heartbeat")?;
        let heartbeat = crate::config::HeartbeatConfig {
            period: SimDuration::from_nanos(parse_num(&hb[0], "heartbeat period")?),
            missed_threshold: parse_num(&hb[1], "heartbeat threshold")?,
        };
        let rt = split_fields(&cur.take("retry")?, 3, "retry")?;
        let retry = crate::config::RetryPolicy {
            max_attempts: parse_num(&rt[0], "retry attempts")?,
            backoff_base: SimDuration::from_nanos(parse_num(&rt[1], "retry base")?),
            backoff_cap: SimDuration::from_nanos(parse_num(&rt[2], "retry cap")?),
        };
        let cs = split_fields(&cur.take("costs")?, 14, "costs")?;
        let nanos = |i: usize, what: &str| -> CoreResult<SimDuration> {
            Ok(SimDuration::from_nanos(parse_num(&cs[i], what)?))
        };
        let costs = crate::config::CostModel {
            migrate_scan_per_page: nanos(0, "costs[0]")?,
            migrate_wire_per_page: nanos(1, "costs[1]")?,
            checkpoint_cpu_per_page: nanos(2, "costs[2]")?,
            checkpoint_wire_per_page: nanos(3, "costs[3]")?,
            checkpoint_thread_overhead: nanos(4, "costs[4]")?,
            checkpoint_const: nanos(5, "costs[5]")?,
            remus_extra_const: nanos(6, "costs[6]")?,
            here_migration_setup: nanos(7, "costs[7]")?,
            parallel_efficiency: f64::from_bits(parse_hex_u64(&cs[8], "costs[8]")?),
            migration_parallel_efficiency: f64::from_bits(parse_hex_u64(&cs[9], "costs[9]")?),
            pause_disturbance: nanos(10, "costs[10]")?,
            device_switch: nanos(11, "costs[11]")?,
            state_load: nanos(12, "costs[12]")?,
            rss_base_mib: parse_num(&cs[13], "costs[13]")?,
        };
        let ml = split_fields(&cur.take("migration_limits")?, 2, "migration_limits")?;
        let tp = split_fields(&cur.take("topology")?, 4, "topology")?;
        let topology = TopologyConfig {
            replicas: parse_num(&tp[0], "topology replicas")?,
            quorum: parse_num(&tp[1], "topology quorum")?,
            fanout: match tp[2].as_str() {
                "star" => FanoutMode::Star,
                "chain" => FanoutMode::Chain,
                other => return Err(bundle_err(&format!("unknown fanout {other:?}"))),
            },
            stale_epoch_lag: parse_num(&tp[3], "topology stale lag")?,
        };
        let encode_chunk_pages =
            parse_opt_num(&cur.take("encode_chunk_pages")?, "encode_chunk_pages")?;
        let overlap_channel_depth =
            parse_opt_num(&cur.take("overlap_channel_depth")?, "overlap_channel_depth")?;
        let overlap_transfer = parse_bool(&cur.take("overlap_transfer")?)?;
        let health_plane = parse_bool(&cur.take("health_plane")?)?;
        let postmortem_capture = parse_bool(&cur.take("postmortem_capture")?)?;
        let flight_recorder_capacity = {
            let raw = cur.take("flight_recorder_capacity")?;
            if raw == "none" {
                None
            } else {
                Some(parse_num(&raw, "flight_recorder_capacity")?)
            }
        };
        // The `wire=` line is optional: absent in every pre-v3 bundle
        // (and in any bundle of a default-v2 session), defaulting to the
        // legacy negotiation.
        let (wire_version, replica_wire_caps) = match cur.take_if("wire") {
            None => (here_vmstate::wire::VERSION, None),
            Some(raw) => {
                let (ver, caps) = raw
                    .split_once(':')
                    .ok_or_else(|| bundle_err("malformed wire line"))?;
                let version = parse_num(ver, "wire version")?;
                let caps = if caps == "none" {
                    None
                } else if caps.is_empty() {
                    Some(Vec::new())
                } else {
                    Some(
                        caps.split(',')
                            .map(|c| parse_num(c, "wire cap"))
                            .collect::<CoreResult<Vec<u16>>>()?,
                    )
                };
                (version, caps)
            }
        };
        let config = ReplicationConfig {
            strategy,
            period,
            transfer_threads,
            encode_lanes,
            heartbeat,
            retry,
            costs,
            max_migration_iterations: parse_num(&ml[0], "max_migration_iterations")?,
            migration_dirty_threshold: parse_num(&ml[1], "migration_dirty_threshold")?,
            topology,
            encode_chunk_pages,
            overlap_channel_depth,
            overlap_transfer,
            health_plane,
            postmortem_capture,
            flight_recorder_capacity,
            wire_version,
            replica_wire_caps,
        };

        let plan_raw = cur.take("plan")?;
        let plan = if plan_raw == "none" {
            None
        } else {
            let mut plan = FaultPlan::new(parse_num(&plan_raw, "plan seed")?);
            let events: usize = parse_num(&cur.take("plan_events")?, "plan_events")?;
            for _ in 0..events {
                let raw = cur.take("event")?;
                let mut it = raw.splitn(3, ':');
                let epoch = parse_num(it.next().unwrap_or(""), "event epoch")?;
                let replica = parse_num(it.next().unwrap_or(""), "event replica")?;
                let kind = parse_kind(it.next().unwrap_or(""))?;
                plan = plan.with_event_on(epoch, replica, kind);
            }
            Some(plan)
        };

        let fingerprint = parse_hex_u64(
            cur.take("fingerprint")?
                .strip_prefix("0x")
                .ok_or_else(|| bundle_err("malformed fingerprint"))?,
            "fingerprint",
        )?;
        let alert_log_jsonl = unesc(&cur.take("alert_log")?)?;
        let n_active: usize = parse_num(&cur.take("active_alerts")?, "active_alerts")?;
        let mut active_alerts = Vec::with_capacity(n_active);
        for _ in 0..n_active {
            active_alerts.push(unesc(&cur.take("active")?)?);
        }

        let trigger = unesc(&cur.take("trigger")?)?;
        let epoch = parse_num(&cur.take("trigger_epoch")?, "trigger_epoch")?;
        let at_nanos = parse_num(&cur.take("trigger_at_nanos")?, "trigger_at_nanos")?;
        let detail = unesc(&cur.take("trigger_detail")?)?;
        let flight_json = unesc(&cur.take("flight")?)?;
        let n_commits: usize = parse_num(&cur.take("commits")?, "commits")?;
        let mut commits = Vec::with_capacity(n_commits);
        for _ in 0..n_commits {
            let raw = cur.take("commit")?;
            let f = split_fields(&raw, 2, "commit")?;
            commits.push(CommitEntry {
                seq: parse_num(&f[0], "commit seq")?,
                at: SimTime::from_nanos(parse_num(&f[1], "commit at")?),
            });
        }
        let n_acks: usize = parse_num(&cur.take("acks")?, "acks")?;
        let mut acks = Vec::with_capacity(n_acks);
        for _ in 0..n_acks {
            let raw = cur.take("ack")?;
            let (replica, entries) = raw
                .split_once(':')
                .ok_or_else(|| bundle_err("malformed ack trail"))?;
            let mut trail = Vec::new();
            if !entries.is_empty() {
                for part in entries.split(',') {
                    let (seq, at) = part
                        .split_once('@')
                        .ok_or_else(|| bundle_err("malformed ack entry"))?;
                    trail.push(CommitEntry {
                        seq: parse_num(seq, "ack seq")?,
                        at: SimTime::from_nanos(parse_num(at, "ack at")?),
                    });
                }
            }
            acks.push(ReplicaAcks {
                replica: parse_num(replica, "ack replica")?,
                acks: trail,
            });
        }
        let n_spans: usize = parse_num(&cur.take("spans")?, "spans")?;
        let mut spans = Vec::with_capacity(n_spans);
        for _ in 0..n_spans {
            spans.push(unesc(&cur.take("span")?)?);
        }
        let n_transitions: usize = parse_num(&cur.take("transitions")?, "transitions")?;
        let mut transitions = Vec::with_capacity(n_transitions);
        for _ in 0..n_transitions {
            transitions.push(unesc(&cur.take("transition")?)?);
        }
        let series_tail = unesc(&cur.take("series_tail")?)?;
        let n_capture_active: usize = parse_num(&cur.take("capture_active")?, "capture_active")?;
        let mut capture_active = Vec::with_capacity(n_capture_active);
        for _ in 0..n_capture_active {
            capture_active.push(unesc(&cur.take("capture_active_rule")?)?);
        }
        let capture_alert_log = unesc(&cur.take("capture_alert_log")?)?;
        cur.finish()?;

        Ok(IncidentBundle {
            spec,
            config,
            plan,
            fingerprint,
            alert_log_jsonl,
            active_alerts,
            incident: IncidentSnapshot {
                trigger,
                epoch,
                at_nanos,
                detail,
                flight_json,
                commits,
                acks,
                spans,
                transitions,
                series_tail,
                active_alerts: capture_active,
                alert_log_jsonl: capture_alert_log,
            },
        })
    }
}

/// Sequential `key=value` line reader: every field must appear in the
/// order the encoder wrote it — a missing, reordered or extra line is a
/// decode error, not a silently defaulted field.
struct Cursor<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> Cursor<'a> {
    fn new(payload: &'a str) -> Self {
        Cursor {
            lines: payload.lines(),
        }
    }

    fn take(&mut self, key: &str) -> CoreResult<String> {
        let line = self
            .lines
            .next()
            .ok_or_else(|| bundle_err(&format!("bundle ends before field {key:?}")))?;
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| bundle_err(&format!("malformed line {line:?}")))?;
        if k != key {
            return Err(bundle_err(&format!(
                "unexpected field {k:?} (wanted {key:?})"
            )));
        }
        Ok(v.to_string())
    }

    /// Consumes the next line only if it carries `key` — how optional
    /// fields (added after v1 bundles shipped) decode without breaking
    /// the strict sequential discipline for everything else.
    fn take_if(&mut self, key: &str) -> Option<String> {
        let mut peek = self.lines.clone();
        let line = peek.next()?;
        let (k, v) = line.split_once('=')?;
        if k != key {
            return None;
        }
        self.lines = peek;
        Some(v.to_string())
    }

    fn finish(mut self) -> CoreResult<()> {
        match self.lines.next() {
            None => Ok(()),
            Some(line) => Err(bundle_err(&format!(
                "unexpected trailing bundle field {line:?}"
            ))),
        }
    }
}

fn render_kind(kind: &FaultKind) -> String {
    match kind {
        FaultKind::LinkFlap { attempts_down } => format!("link_flap:{attempts_down}"),
        FaultKind::Drop { attempts } => format!("drop:{attempts}"),
        FaultKind::Corrupt { attempts } => format!("corrupt:{attempts}"),
        FaultKind::Delay { by } => format!("delay:{}", by.as_nanos()),
        FaultKind::DecodeFail { attempts } => format!("decode_fail:{attempts}"),
        FaultKind::PrimaryFault { outcome, stage } => {
            let outcome = match outcome {
                DosOutcome::Crash => "crash",
                DosOutcome::Hang => "hang",
                DosOutcome::Starvation => "starvation",
            };
            format!("primary_fault:{outcome}:{}", stage.label())
        }
        FaultKind::HeartbeatLoss { extra_periods } => format!("heartbeat_loss:{extra_periods}"),
    }
}

fn parse_kind(raw: &str) -> CoreResult<FaultKind> {
    let (head, rest) = raw.split_once(':').unwrap_or((raw, ""));
    Ok(match head {
        "link_flap" => FaultKind::LinkFlap {
            attempts_down: parse_num(rest, "link_flap attempts")?,
        },
        "drop" => FaultKind::Drop {
            attempts: parse_num(rest, "drop attempts")?,
        },
        "corrupt" => FaultKind::Corrupt {
            attempts: parse_num(rest, "corrupt attempts")?,
        },
        "delay" => FaultKind::Delay {
            by: SimDuration::from_nanos(parse_num(rest, "delay nanos")?),
        },
        "decode_fail" => FaultKind::DecodeFail {
            attempts: parse_num(rest, "decode_fail attempts")?,
        },
        "primary_fault" => {
            let (outcome, stage) = rest
                .split_once(':')
                .ok_or_else(|| bundle_err("malformed primary_fault"))?;
            let outcome = match outcome {
                "crash" => DosOutcome::Crash,
                "hang" => DosOutcome::Hang,
                "starvation" => DosOutcome::Starvation,
                other => return Err(bundle_err(&format!("unknown DoS outcome {other:?}"))),
            };
            let stage = Stage::ALL
                .into_iter()
                .find(|s| s.label() == stage)
                .ok_or_else(|| bundle_err(&format!("unknown stage {stage:?}")))?;
            FaultKind::PrimaryFault { outcome, stage }
        }
        "heartbeat_loss" => FaultKind::HeartbeatLoss {
            extra_periods: parse_num(rest, "heartbeat_loss periods")?,
        },
        other => return Err(bundle_err(&format!("unknown fault kind {other:?}"))),
    })
}

/// Escapes a value for one-line storage: `\` → `\\`, newline → `\n`,
/// carriage return → `\r`.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`esc`]; rejects dangling or unknown escapes.
fn unesc(s: &str) -> CoreResult<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(bundle_err(&format!(
                    "invalid escape sequence \\{}",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

fn bool_str(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}

fn parse_bool(s: &str) -> CoreResult<bool> {
    match s {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(bundle_err(&format!("expected bool, got {other:?}"))),
    }
}

fn opt_num<T: ToString>(v: Option<T>) -> String {
    v.map(|n| n.to_string()).unwrap_or_else(|| "none".into())
}

fn parse_opt_num<T: std::str::FromStr>(s: &str, what: &str) -> CoreResult<Option<T>> {
    if s == "none" {
        Ok(None)
    } else {
        Ok(Some(parse_num(s, what)?))
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> CoreResult<T> {
    s.parse()
        .map_err(|_| bundle_err(&format!("unparseable {what}: {s:?}")))
}

fn parse_hex_u64(s: &str, what: &str) -> CoreResult<u64> {
    u64::from_str_radix(s.strip_prefix("0x").unwrap_or(s), 16)
        .map_err(|_| bundle_err(&format!("unparseable {what}: {s:?}")))
}

fn split_fields(raw: &str, want: usize, what: &str) -> CoreResult<Vec<String>> {
    let parts: Vec<String> = raw.split(':').map(str::to_string).collect();
    if parts.len() != want {
        return Err(bundle_err(&format!(
            "{what} wants {want} fields, got {}",
            parts.len()
        )));
    }
    Ok(parts)
}

fn bundle_err(msg: &str) -> CoreError {
    CoreError::InvalidScenario(format!("incident bundle: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_sim_core::time::SimDuration;

    fn sample_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "pm-test".into(),
            memory_mib: 64,
            vcpus: 2,
            workload: WorkloadSpec::MemStress {
                percent: 30,
                rate: 20_000,
            },
            duration: SimDuration::from_secs(20),
            seed: 42,
            verify_consistency: false,
        }
    }

    fn sample_config() -> ReplicationConfig {
        ReplicationConfig::fixed_period(SimDuration::from_secs(2))
            .with_topology(TopologyConfig {
                replicas: 3,
                quorum: 2,
                fanout: FanoutMode::Star,
                stale_epoch_lag: 4,
            })
            .with_health_plane()
            .with_postmortem_capture()
    }

    fn sample_plan() -> FaultPlan {
        FaultPlan::new(7)
            .with_partition_span(4..=9, &[2], 10)
            .with_event_on(
                3,
                1,
                FaultKind::Delay {
                    by: SimDuration::from_millis(5),
                },
            )
            .with_event_on(
                11,
                0,
                FaultKind::PrimaryFault {
                    outcome: DosOutcome::Hang,
                    stage: Stage::Transfer,
                },
            )
            .with_event_on(11, 0, FaultKind::HeartbeatLoss { extra_periods: 2 })
    }

    fn sample_bundle() -> IncidentBundle {
        IncidentBundle {
            spec: sample_spec(),
            config: sample_config(),
            plan: Some(sample_plan()),
            fingerprint: 0xdead_beef_cafe_f00d,
            alert_log_jsonl: "{\"rule\":\"stale_replica\"}\n{\"rule\":\"quorum_at_risk\"}\n".into(),
            active_alerts: vec!["quorum_at_risk".into()],
            incident: IncidentSnapshot {
                trigger: "alert".into(),
                epoch: 6,
                at_nanos: 12_000_000_000,
                detail: "stale_replica firing".into(),
                flight_json: "{\"capacity\":1024,\n\"events\":[]}".into(),
                commits: vec![CommitEntry {
                    seq: 1,
                    at: SimTime::from_nanos(2_000_000_123),
                }],
                acks: vec![
                    ReplicaAcks {
                        replica: 0,
                        acks: vec![CommitEntry {
                            seq: 1,
                            at: SimTime::from_nanos(2_000_000_123),
                        }],
                    },
                    ReplicaAcks {
                        replica: 2,
                        acks: Vec::new(),
                    },
                ],
                spans: vec!["epoch|epoch|1:0|6|12000000000|40".into()],
                transitions: vec!["r2:healthy->lagging@5".into()],
                series_tail: "{\"metric\":\"here_degradation_ppm\"}\n".into(),
                active_alerts: vec!["stale_replica".into()],
                alert_log_jsonl: "{\"rule\":\"stale_replica\"}\n".into(),
            },
        }
    }

    #[test]
    fn encode_decode_round_trips_every_field() {
        let bundle = sample_bundle();
        let doc = bundle.encode();
        let back = IncidentBundle::decode(&doc).expect("round trip");
        assert_eq!(bundle, back);
    }

    #[test]
    fn decode_rejects_unknown_version() {
        let doc = sample_bundle().encode().replace("v1", "v2");
        let err = IncidentBundle::decode(&doc).unwrap_err();
        assert!(format!("{err:?}").contains("version"), "{err:?}");
    }

    #[test]
    fn decode_rejects_truncation() {
        let doc = sample_bundle().encode();
        let truncated = &doc[..doc.len() - 10];
        let err = IncidentBundle::decode(truncated).unwrap_err();
        assert!(format!("{err:?}").contains("truncated"), "{err:?}");
    }

    #[test]
    fn decode_rejects_tampering() {
        let doc = sample_bundle().encode();
        // Flip one payload character without changing the length.
        let tampered = doc.replacen("seed=42", "seed=43", 1);
        assert_eq!(doc.len(), tampered.len());
        let err = IncidentBundle::decode(&tampered).unwrap_err();
        assert!(format!("{err:?}").contains("tampered"), "{err:?}");
    }

    #[test]
    fn decode_rejects_bad_magic_and_garbage() {
        for doc in ["", "not a bundle", "HEREBUNDLE vx\nlen=0\ncrc=0x0\n---\n"] {
            assert!(IncidentBundle::decode(doc).is_err(), "{doc:?}");
        }
    }

    #[test]
    fn every_fault_kind_round_trips() {
        let kinds = [
            FaultKind::LinkFlap { attempts_down: 3 },
            FaultKind::Drop { attempts: 2 },
            FaultKind::Corrupt { attempts: 1 },
            FaultKind::Delay {
                by: SimDuration::from_micros(750),
            },
            FaultKind::DecodeFail { attempts: 4 },
            FaultKind::PrimaryFault {
                outcome: DosOutcome::Starvation,
                stage: Stage::Harvest,
            },
            FaultKind::HeartbeatLoss { extra_periods: 5 },
        ];
        for kind in kinds {
            assert_eq!(parse_kind(&render_kind(&kind)).unwrap(), kind, "{kind:?}");
        }
    }

    #[test]
    fn escaping_round_trips_awkward_strings() {
        for s in ["", "plain", "line1\nline2", "back\\slash", "\r\n", "a\\nb"] {
            assert_eq!(unesc(&esc(s)).unwrap(), s, "{s:?}");
        }
        assert!(unesc("dangling\\").is_err());
        assert!(unesc("bad\\x").is_err());
    }

    #[test]
    fn host_noise_is_normalized_out_of_the_flight_dump() {
        // The only host-dependent bytes in a flight dump are the
        // wall-clock stamps and the encode pool's scheduler diagnostics;
        // neutralized, the captured dump (and with it the whole encoded
        // bundle) is byte-stable across runs.
        let json = r#"{"kind":"stage","wall_nanos":4155,"pages":3}
{"kind":"stage","wall_nanos":null,"pages":4}
{"kind":"encode_pool","tasks":16,"steals":3,"occupancy_pct":20.6}
{"kind":"encode_lane","wall_nanos":266747}"#;
        let stripped = normalize_flight_dump(json);
        assert!(!stripped.contains("\"wall_nanos\":4"), "{stripped}");
        assert!(!stripped.contains("\"wall_nanos\":2"), "{stripped}");
        assert_eq!(stripped.matches("\"wall_nanos\":null").count(), 3);
        assert!(stripped.contains("\"steals\":0,"), "{stripped}");
        assert!(stripped.contains("\"occupancy_pct\":0.0}"), "{stripped}");
        assert!(stripped.contains("\"tasks\":16"), "{stripped}");
        assert_eq!(normalize_flight_dump(&stripped), stripped);
        assert_eq!(normalize_flight_dump("no stamps here"), "no stamps here");
    }

    #[test]
    fn capture_requires_an_armed_run() {
        // A report with no incident snapshot cannot become a bundle.
        let report = sample_unarmed_report();
        let err = IncidentBundle::capture(sample_spec(), &sample_config(), None, &report);
        assert!(err.is_err());
    }

    fn sample_unarmed_report() -> RunReport {
        crate::engine::Scenario::builder()
            .name("pm-unarmed")
            .vm_memory_mib(64)
            .vcpus(2)
            .config(ReplicationConfig::fixed_period(SimDuration::from_secs(2)))
            .duration(SimDuration::from_secs(6))
            .build()
            .expect("valid scenario")
            .run()
    }

    #[test]
    fn armed_run_captures_and_replays_byte_identically() {
        let spec = sample_spec();
        let config = sample_config();
        let plan = FaultPlan::new(7).with_partition_span(4..=9, &[2], 10);
        let report = spec
            .build_scenario(config.clone(), Some(plan.clone()))
            .expect("valid scenario")
            .run();
        let incident = report.incident.as_ref().expect("capture armed");
        assert_eq!(incident.trigger, "alert");
        assert!(!incident.flight_json.is_empty());
        assert!(!incident.commits.is_empty());
        assert_eq!(incident.acks.len(), 3);

        let bundle = IncidentBundle::capture(spec, &config, Some(&plan), &report).expect("bundle");
        let decoded = IncidentBundle::decode(&bundle.encode()).expect("decode");
        let outcome = decoded.replay().expect("replay");
        assert!(outcome.fingerprint_matches, "fingerprint diverged");
        assert!(outcome.alert_log_matches, "alert log diverged");
        assert!(outcome.active_alerts_match);
        assert!(outcome.verified());
    }

    #[test]
    fn armed_quiet_run_captures_an_explicit_request() {
        let mut spec = sample_spec();
        spec.name = "pm-quiet".into();
        spec.duration = SimDuration::from_secs(10);
        let config = sample_config();
        let report = spec
            .build_scenario(config.clone(), None)
            .expect("valid scenario")
            .run();
        let incident = report.incident.as_ref().expect("request capture");
        assert_eq!(incident.trigger, "request");
        assert!(incident.active_alerts.is_empty());
    }

    #[test]
    fn run_ending_mid_incident_surfaces_unresolved_alerts() {
        // The partition never lifts before the run ends: the alerts that
        // fired must surface as unresolved in RunReport::health AND in the
        // bundle — not silently dropped.
        let mut spec = sample_spec();
        spec.name = "pm-unresolved".into();
        spec.duration = SimDuration::from_secs(24);
        let config = sample_config();
        let plan = FaultPlan::new(7).with_partition_span(4..=200, &[2], 10);
        let report = spec
            .build_scenario(config.clone(), Some(plan.clone()))
            .expect("valid scenario")
            .run();
        let health = report
            .telemetry
            .as_ref()
            .expect("telemetry")
            .health
            .as_ref()
            .expect("health plane armed");
        assert!(
            !health.active_alerts.is_empty(),
            "alerts still firing at run end must stay active: {:?}",
            health.alert_log_jsonl
        );
        assert!(health
            .active_alerts
            .iter()
            .any(|r| r == "stale_replica" || r == "quorum_at_risk"));
        let fired: usize = health
            .alert_log
            .iter()
            .filter(|a| a.state.label() == "firing")
            .count();
        assert!(
            fired > health.alert_log.len() - fired,
            "unresolved > resolved"
        );

        let bundle = IncidentBundle::capture(spec, &config, Some(&plan), &report).expect("bundle");
        assert_eq!(bundle.active_alerts, health.active_alerts);
        let decoded = IncidentBundle::decode(&bundle.encode()).expect("decode");
        assert_eq!(decoded.active_alerts, health.active_alerts);
        // And the replay reproduces the unresolved state byte for byte.
        let outcome = decoded.replay().expect("replay");
        assert!(outcome.verified());
    }
}
