//! The multithreaded replication data plane (§7.2).
//!
//! Two genuinely concurrent collection paths, matching the paper's two
//! schemes:
//!
//! 1. **Continuous checkpointing** — guest memory is split into 2 MiB
//!    chunks, assigned round-robin to worker threads; during each
//!    checkpoint every worker scans the shared dirty bitmap over its own
//!    chunks and copies the pages it owns ([`collect_chunked`]).
//! 2. **Seeding** — one migrator thread per vCPU harvests that vCPU's PML
//!    ring and sends its own dirty pages ([`collect_per_vcpu`]); pages
//!    transferred by *different* threads across rounds are "problematic"
//!    (possible cross-vCPU write races) and are tracked by
//!    [`ProblematicTracker`] for mandatory resend in the final
//!    stop-and-copy.
//!
//! The worker threads are real (`std::thread::scope`); only the *reported
//! durations* come from the calibrated [`CostModel`], keeping results
//! host-independent.
//!
//! [`CostModel`]: crate::config::CostModel

use std::collections::HashMap;

use here_hypervisor::dirty::DirtyBitmap;
use here_hypervisor::memory::GuestMemory;
use here_hypervisor::PageId;
use here_vmstate::MemoryDelta;

/// HERE's chunk size: 2 MiB (§7.2).
pub const CHUNK_BYTES: u64 = 2 * 1024 * 1024;
/// Pages per chunk.
pub const PAGES_PER_CHUNK: u64 = CHUNK_BYTES / here_hypervisor::PAGE_SIZE;

/// Scans `dirty` over `memory` with `workers` round-robin chunk workers and
/// returns the combined delta (ascending frame order).
///
/// Every chunk belongs to exactly one worker, so workers write disjoint
/// outputs and need no synchronisation — the same property the paper
/// relies on for its round-robin region assignment.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn collect_chunked(memory: &GuestMemory, dirty: &DirtyBitmap, workers: u32) -> MemoryDelta {
    assert!(workers >= 1, "at least one transfer worker is required");
    let num_pages = memory.num_pages();
    let num_chunks = num_pages.div_ceil(PAGES_PER_CHUNK);
    if workers == 1 || num_chunks <= 1 {
        return collect_lane(memory, dirty, num_chunks, 0, 1);
    }
    let workers = workers.min(num_chunks as u32);
    let mut lane_outputs: Vec<MemoryDelta> = Vec::with_capacity(workers as usize);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|lane| s.spawn(move || collect_lane(memory, dirty, num_chunks, lane, workers)))
            .collect();
        for h in handles {
            lane_outputs.push(h.join().expect("chunk worker must not panic"));
        }
    });

    // Merge lane outputs back into ascending frame order by walking chunks
    // round-robin (each lane's output is already chunk-ordered).
    let mut merged = MemoryDelta::new();
    for d in &lane_outputs {
        for &(page, rec) in d.entries() {
            merged.push(page, rec);
        }
    }
    let mut entries: Vec<_> = merged.entries().to_vec();
    entries.sort_by_key(|&(p, _)| p);
    MemoryDelta::from_entries(entries)
}

fn collect_lane(
    memory: &GuestMemory,
    dirty: &DirtyBitmap,
    num_chunks: u64,
    lane: u32,
    stride: u32,
) -> MemoryDelta {
    let mut delta = MemoryDelta::new();
    let mut chunk = lane as u64;
    while chunk < num_chunks {
        let lo = chunk * PAGES_PER_CHUNK;
        let hi = lo + PAGES_PER_CHUNK;
        for page in dirty.pages_in_range(lo, hi) {
            let rec = memory
                .page(page)
                .expect("dirty bitmap only marks in-range pages");
            delta.push(page, rec);
        }
        chunk += stride as u64;
    }
    delta
}

/// Per-vCPU seeding collection: turns each vCPU's harvested ring into its
/// own delta, one real thread per vCPU.
///
/// Returns one delta per input ring (parallel arrays).
pub fn collect_per_vcpu(memory: &GuestMemory, harvests: &[Vec<PageId>]) -> Vec<MemoryDelta> {
    if harvests.len() <= 1 {
        return harvests
            .iter()
            .map(|pages| pages_to_delta(memory, pages))
            .collect();
    }
    let mut out: Vec<MemoryDelta> = Vec::with_capacity(harvests.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = harvests
            .iter()
            .map(|pages| s.spawn(move || pages_to_delta(memory, pages)))
            .collect();
        for h in handles {
            out.push(h.join().expect("seeding worker must not panic"));
        }
    });
    out
}

fn pages_to_delta(memory: &GuestMemory, pages: &[PageId]) -> MemoryDelta {
    let mut delta = MemoryDelta::new();
    let mut last = None;
    for &page in pages {
        // Rings log duplicates; skip immediate repeats cheaply.
        if last == Some(page) {
            continue;
        }
        last = Some(page);
        let rec = memory
            .page(page)
            .expect("PML rings only log in-range pages");
        delta.push(page, rec);
    }
    delta
}

/// Tracks pages sent by more than one seeding thread across migration
/// rounds — the paper's "problematic" pages (§7.2, scheme 1), which may
/// have been modified by multiple vCPUs mid-copy and must be resent during
/// the final stop-and-copy.
#[derive(Debug, Default)]
pub struct ProblematicTracker {
    last_sender: HashMap<u64, u16>,
    problematic: HashMap<u64, ()>,
}

impl ProblematicTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        ProblematicTracker::default()
    }

    /// Records that seeding thread `sender` transferred `page` this round.
    /// A page previously transferred by a *different* thread becomes
    /// problematic.
    pub fn record(&mut self, page: PageId, sender: u16) {
        match self.last_sender.insert(page.frame(), sender) {
            Some(prev) if prev != sender => {
                self.problematic.insert(page.frame(), ());
            }
            _ => {}
        }
    }

    /// Records a whole per-thread delta.
    pub fn record_delta(&mut self, delta: &MemoryDelta, sender: u16) {
        for &(page, _) in delta.entries() {
            self.record(page, sender);
        }
    }

    /// Number of problematic pages so far.
    pub fn len(&self) -> usize {
        self.problematic.len()
    }

    /// `true` if no page is problematic.
    pub fn is_empty(&self) -> bool {
        self.problematic.is_empty()
    }

    /// The problematic pages, ascending — the resend list for the final
    /// stop-and-copy.
    pub fn resend_list(&self) -> Vec<PageId> {
        let mut v: Vec<u64> = self.problematic.keys().copied().collect();
        v.sort_unstable();
        v.into_iter().map(PageId::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_hypervisor::memory::PageVersion;
    use here_hypervisor::VcpuId;
    use here_sim_core::rate::ByteSize;

    fn memory_with_dirty(frames: &[u64]) -> (GuestMemory, DirtyBitmap) {
        let mut mem = GuestMemory::new(ByteSize::from_mib(32)).unwrap(); // 8192 pages
        let mut bm = DirtyBitmap::new(mem.num_pages());
        for &f in frames {
            mem.write_page(PageId::new(f), VcpuId::new(0)).unwrap();
            bm.mark(PageId::new(f));
        }
        (mem, bm)
    }

    #[test]
    fn chunked_collection_matches_single_threaded() {
        let frames: Vec<u64> = (0..8192).step_by(7).collect();
        let (mem, bm) = memory_with_dirty(&frames);
        let single = collect_chunked(&mem, &bm, 1);
        for workers in [2, 3, 4, 8] {
            let multi = collect_chunked(&mem, &bm, workers);
            assert_eq!(multi, single, "workers={workers}");
        }
        assert_eq!(single.len(), frames.len());
    }

    #[test]
    fn chunked_collection_carries_correct_versions() {
        let (mut mem, mut bm) = memory_with_dirty(&[10, 600, 4000]);
        mem.write_page(PageId::new(600), VcpuId::new(2)).unwrap();
        bm.mark(PageId::new(600));
        let delta = collect_chunked(&mem, &bm, 4);
        let v600 = delta
            .entries()
            .iter()
            .find(|&&(p, _)| p.frame() == 600)
            .unwrap()
            .1;
        assert_eq!(
            v600,
            PageVersion {
                version: 2,
                last_writer: 2
            }
        );
    }

    #[test]
    fn empty_bitmap_collects_nothing() {
        let (mem, _) = memory_with_dirty(&[]);
        let bm = DirtyBitmap::new(mem.num_pages());
        assert!(collect_chunked(&mem, &bm, 4).is_empty());
    }

    #[test]
    fn more_workers_than_chunks_is_fine() {
        let mut mem = GuestMemory::new(ByteSize::from_mib(4)).unwrap(); // 2 chunks
        let mut bm = DirtyBitmap::new(mem.num_pages());
        mem.write_page(PageId::new(5), VcpuId::new(0)).unwrap();
        bm.mark(PageId::new(5));
        let delta = collect_chunked(&mem, &bm, 64);
        assert_eq!(delta.len(), 1);
    }

    #[test]
    fn per_vcpu_collection_dedups_ring_repeats() {
        let (mem, _) = memory_with_dirty(&[1, 2, 3]);
        let harvests = vec![
            vec![PageId::new(1), PageId::new(1), PageId::new(2)],
            vec![PageId::new(3)],
        ];
        let deltas = collect_per_vcpu(&mem, &harvests);
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].len(), 2);
        assert_eq!(deltas[1].len(), 1);
    }

    #[test]
    fn problematic_tracker_flags_cross_thread_pages() {
        let mut t = ProblematicTracker::new();
        t.record(PageId::new(7), 0);
        t.record(PageId::new(7), 0); // same thread again: fine
        assert!(t.is_empty());
        t.record(PageId::new(7), 1); // a different vCPU sent it: problematic
        t.record(PageId::new(9), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.resend_list(), vec![PageId::new(7)]);
    }

    #[test]
    fn problematic_tracker_via_deltas() {
        let (mem, _) = memory_with_dirty(&[1, 2]);
        let d0 = pages_to_delta(&mem, &[PageId::new(1), PageId::new(2)]);
        let d1 = pages_to_delta(&mem, &[PageId::new(2)]);
        let mut t = ProblematicTracker::new();
        t.record_delta(&d0, 0);
        t.record_delta(&d1, 1);
        assert_eq!(t.resend_list(), vec![PageId::new(2)]);
    }
}
