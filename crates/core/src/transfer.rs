//! The multithreaded replication data plane (§7.2).
//!
//! Two genuinely concurrent collection paths, matching the paper's two
//! schemes:
//!
//! 1. **Continuous checkpointing** — guest memory is split into 2 MiB
//!    chunks, assigned round-robin to worker threads; during each
//!    checkpoint every worker scans the shared dirty bitmap over its own
//!    chunks and copies the pages it owns ([`collect_chunked`]).
//! 2. **Seeding** — one migrator thread per vCPU harvests that vCPU's PML
//!    ring and sends its own dirty pages ([`collect_per_vcpu`]); pages
//!    transferred by *different* threads across rounds are "problematic"
//!    (possible cross-vCPU write races) and are tracked by
//!    [`ProblematicTracker`] for mandatory resend in the final
//!    stop-and-copy.
//!
//! The worker threads are real (`std::thread::scope`); only the *reported
//! durations* come from the calibrated [`CostModel`], keeping results
//! host-independent.
//!
//! [`CostModel`]: crate::config::CostModel

use std::collections::{HashMap, HashSet};

use here_hypervisor::dirty::DirtyBitmap;
use here_hypervisor::memory::{GuestMemory, PageVersion};
use here_hypervisor::PageId;
use here_vmstate::MemoryDelta;

/// HERE's chunk size: 2 MiB (§7.2).
pub const CHUNK_BYTES: u64 = 2 * 1024 * 1024;
/// Pages per chunk.
pub const PAGES_PER_CHUNK: u64 = CHUNK_BYTES / here_hypervisor::PAGE_SIZE;

/// Reusable per-lane scratch buffers for [`collect_chunked_into`], so the
/// steady-state checkpoint loop performs no heap allocation once the lanes
/// have warmed up.
#[derive(Debug, Default)]
pub struct CollectScratch {
    lanes: Vec<Vec<(PageId, PageVersion)>>,
}

impl CollectScratch {
    /// Empty scratch; lane buffers grow on first use and are kept after.
    pub fn new() -> Self {
        CollectScratch::default()
    }
}

/// Scans `dirty` over `memory` with `workers` round-robin chunk workers and
/// returns the combined delta (ascending frame order).
///
/// Every chunk belongs to exactly one worker, so workers write disjoint
/// outputs and need no synchronisation — the same property the paper
/// relies on for its round-robin region assignment.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn collect_chunked(memory: &GuestMemory, dirty: &DirtyBitmap, workers: u32) -> MemoryDelta {
    let mut scratch = CollectScratch::new();
    let mut out = MemoryDelta::new();
    collect_chunked_into(memory, dirty, workers, &mut scratch, &mut out);
    out
}

/// Allocation-reusing variant of [`collect_chunked`]: lane buffers live in
/// `scratch` and the merged result replaces the contents of `out`, both
/// keeping their allocations across checkpoints.
///
/// Lane outputs are *chunk-ordered by construction* (each lane visits
/// chunks `lane, lane + stride, …` ascending, and pages within a chunk
/// ascend), so the merge is a k-way splice that walks chunks in order and
/// copies each chunk's run from its owning lane — `O(pages + chunks)`,
/// no comparison sort.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn collect_chunked_into(
    memory: &GuestMemory,
    dirty: &DirtyBitmap,
    workers: u32,
    scratch: &mut CollectScratch,
    out: &mut MemoryDelta,
) {
    assert!(workers >= 1, "at least one transfer worker is required");
    out.clear();
    let num_pages = memory.num_pages();
    let num_chunks = num_pages.div_ceil(PAGES_PER_CHUNK);
    let workers = if num_chunks <= 1 {
        1
    } else {
        workers.min(num_chunks as u32)
    };
    if workers == 1 {
        // One lane visiting every chunk is simply an ascending full scan.
        out.reserve(dirty.count() as usize);
        for page in dirty.iter() {
            let rec = memory
                .page(page)
                .expect("dirty bitmap only marks in-range pages");
            out.push(page, rec);
        }
        return;
    }

    if scratch.lanes.len() < workers as usize {
        scratch.lanes.resize_with(workers as usize, Vec::new);
    }
    let lanes = &mut scratch.lanes[..workers as usize];
    std::thread::scope(|s| {
        for (lane, buf) in lanes.iter_mut().enumerate() {
            s.spawn(move || {
                buf.clear();
                let mut chunk = lane as u64;
                while chunk < num_chunks {
                    let lo = chunk * PAGES_PER_CHUNK;
                    for page in dirty.iter_range(lo, lo + PAGES_PER_CHUNK) {
                        let rec = memory
                            .page(page)
                            .expect("dirty bitmap only marks in-range pages");
                        buf.push((page, rec));
                    }
                    chunk += workers as u64;
                }
            });
        }
    });

    // k-way chunk-ordered splice: chunk c's run sits at the front of the
    // unconsumed part of lane c % workers, already sorted.
    out.reserve(lanes.iter().map(Vec::len).sum());
    let mut cursors = vec![0usize; lanes.len()];
    for chunk in 0..num_chunks {
        let lane = (chunk % workers as u64) as usize;
        let buf = &lanes[lane];
        let cur = &mut cursors[lane];
        while *cur < buf.len() && buf[*cur].0.frame() / PAGES_PER_CHUNK == chunk {
            let (page, rec) = buf[*cur];
            out.push(page, rec);
            *cur += 1;
        }
    }
    debug_assert!(
        cursors.iter().zip(lanes.iter()).all(|(c, l)| *c == l.len()),
        "chunk-ordered merge must consume every lane entry"
    );
}

/// Per-vCPU seeding collection: turns each vCPU's harvested ring into its
/// own delta, one real thread per vCPU.
///
/// Returns one delta per input ring (parallel arrays).
pub fn collect_per_vcpu(memory: &GuestMemory, harvests: &[Vec<PageId>]) -> Vec<MemoryDelta> {
    if harvests.len() <= 1 {
        return harvests
            .iter()
            .map(|pages| pages_to_delta(memory, pages))
            .collect();
    }
    let mut out: Vec<MemoryDelta> = Vec::with_capacity(harvests.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = harvests
            .iter()
            .map(|pages| s.spawn(move || pages_to_delta(memory, pages)))
            .collect();
        for h in handles {
            out.push(h.join().expect("seeding worker must not panic"));
        }
    });
    out
}

fn pages_to_delta(memory: &GuestMemory, pages: &[PageId]) -> MemoryDelta {
    let mut delta = MemoryDelta::new();
    // PML rings log every write, so the same frame can reappear anywhere
    // in the ring, not just adjacently (vCPU touches A, B, then A again).
    // Track seen frames so each page is sent once, in first-log order;
    // the cheap adjacent check still short-circuits tight write loops.
    let mut seen: HashSet<u64> = HashSet::with_capacity(pages.len());
    let mut last = None;
    for &page in pages {
        if last == Some(page) || !seen.insert(page.frame()) {
            continue;
        }
        last = Some(page);
        let rec = memory
            .page(page)
            .expect("PML rings only log in-range pages");
        delta.push(page, rec);
    }
    delta
}

/// Tracks pages sent by more than one seeding thread across migration
/// rounds — the paper's "problematic" pages (§7.2, scheme 1), which may
/// have been modified by multiple vCPUs mid-copy and must be resent during
/// the final stop-and-copy.
#[derive(Debug, Default)]
pub struct ProblematicTracker {
    last_sender: HashMap<u64, u16>,
    problematic: HashMap<u64, ()>,
}

impl ProblematicTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        ProblematicTracker::default()
    }

    /// Records that seeding thread `sender` transferred `page` this round.
    /// A page previously transferred by a *different* thread becomes
    /// problematic.
    pub fn record(&mut self, page: PageId, sender: u16) {
        match self.last_sender.insert(page.frame(), sender) {
            Some(prev) if prev != sender => {
                self.problematic.insert(page.frame(), ());
            }
            _ => {}
        }
    }

    /// Records a whole per-thread delta.
    pub fn record_delta(&mut self, delta: &MemoryDelta, sender: u16) {
        for &(page, _) in delta.entries() {
            self.record(page, sender);
        }
    }

    /// Number of problematic pages so far.
    pub fn len(&self) -> usize {
        self.problematic.len()
    }

    /// `true` if no page is problematic.
    pub fn is_empty(&self) -> bool {
        self.problematic.is_empty()
    }

    /// The problematic pages, ascending — the resend list for the final
    /// stop-and-copy.
    pub fn resend_list(&self) -> Vec<PageId> {
        let mut v: Vec<u64> = self.problematic.keys().copied().collect();
        v.sort_unstable();
        v.into_iter().map(PageId::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_hypervisor::memory::PageVersion;
    use here_hypervisor::VcpuId;
    use here_sim_core::rate::ByteSize;

    fn memory_with_dirty(frames: &[u64]) -> (GuestMemory, DirtyBitmap) {
        let mut mem = GuestMemory::new(ByteSize::from_mib(32)).unwrap(); // 8192 pages
        let mut bm = DirtyBitmap::new(mem.num_pages());
        for &f in frames {
            mem.write_page(PageId::new(f), VcpuId::new(0)).unwrap();
            bm.mark(PageId::new(f));
        }
        (mem, bm)
    }

    #[test]
    fn chunked_collection_matches_single_threaded() {
        let frames: Vec<u64> = (0..8192).step_by(7).collect();
        let (mem, bm) = memory_with_dirty(&frames);
        let single = collect_chunked(&mem, &bm, 1);
        for workers in [2, 3, 4, 8] {
            let multi = collect_chunked(&mem, &bm, workers);
            assert_eq!(multi, single, "workers={workers}");
        }
        assert_eq!(single.len(), frames.len());
    }

    #[test]
    fn chunked_collection_carries_correct_versions() {
        let (mut mem, mut bm) = memory_with_dirty(&[10, 600, 4000]);
        mem.write_page(PageId::new(600), VcpuId::new(2)).unwrap();
        bm.mark(PageId::new(600));
        let delta = collect_chunked(&mem, &bm, 4);
        let v600 = delta
            .entries()
            .iter()
            .find(|&&(p, _)| p.frame() == 600)
            .unwrap()
            .1;
        assert_eq!(
            v600,
            PageVersion {
                version: 2,
                last_writer: 2
            }
        );
    }

    #[test]
    fn empty_bitmap_collects_nothing() {
        let (mem, _) = memory_with_dirty(&[]);
        let bm = DirtyBitmap::new(mem.num_pages());
        assert!(collect_chunked(&mem, &bm, 4).is_empty());
    }

    #[test]
    fn more_workers_than_chunks_is_fine() {
        let mut mem = GuestMemory::new(ByteSize::from_mib(4)).unwrap(); // 2 chunks
        let mut bm = DirtyBitmap::new(mem.num_pages());
        mem.write_page(PageId::new(5), VcpuId::new(0)).unwrap();
        bm.mark(PageId::new(5));
        let delta = collect_chunked(&mem, &bm, 64);
        assert_eq!(delta.len(), 1);
    }

    #[test]
    fn per_vcpu_collection_dedups_ring_repeats() {
        let (mem, _) = memory_with_dirty(&[1, 2, 3]);
        let harvests = vec![
            vec![PageId::new(1), PageId::new(1), PageId::new(2)],
            vec![PageId::new(3)],
        ];
        let deltas = collect_per_vcpu(&mem, &harvests);
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].len(), 2);
        assert_eq!(deltas[1].len(), 1);
    }

    #[test]
    fn per_vcpu_collection_dedups_non_adjacent_ring_repeats() {
        // Regression: a vCPU touching A, B, then A again logs A twice with
        // B in between; only adjacent repeats used to be skipped, so A was
        // sent twice.
        let (mem, _) = memory_with_dirty(&[1, 2, 3]);
        let harvests = vec![vec![
            PageId::new(1),
            PageId::new(2),
            PageId::new(1),
            PageId::new(3),
            PageId::new(2),
            PageId::new(1),
        ]];
        let deltas = collect_per_vcpu(&mem, &harvests);
        assert_eq!(deltas[0].len(), 3, "each frame must appear exactly once");
        let frames: Vec<u64> = deltas[0]
            .entries()
            .iter()
            .map(|&(p, _)| p.frame())
            .collect();
        assert_eq!(frames, vec![1, 2, 3], "first-log order is preserved");
    }

    #[test]
    fn pooled_collection_reuses_buffers_and_matches() {
        let frames: Vec<u64> = (0..8192).step_by(5).collect();
        let (mem, bm) = memory_with_dirty(&frames);
        let reference = collect_chunked(&mem, &bm, 1);
        let mut scratch = CollectScratch::new();
        let mut out = MemoryDelta::new();
        for workers in [2u32, 4, 8] {
            collect_chunked_into(&mem, &bm, workers, &mut scratch, &mut out);
            assert_eq!(out, reference, "workers={workers}");
        }
        // Steady state: a second round at the same width must not grow the
        // lane buffers.
        collect_chunked_into(&mem, &bm, 4, &mut scratch, &mut out);
        let caps: Vec<usize> = scratch.lanes.iter().map(Vec::capacity).collect();
        collect_chunked_into(&mem, &bm, 4, &mut scratch, &mut out);
        let caps_after: Vec<usize> = scratch.lanes.iter().map(Vec::capacity).collect();
        assert_eq!(caps, caps_after, "lane buffers must be reused, not regrown");
        assert_eq!(out, reference);
    }

    #[test]
    fn problematic_tracker_flags_cross_thread_pages() {
        let mut t = ProblematicTracker::new();
        t.record(PageId::new(7), 0);
        t.record(PageId::new(7), 0); // same thread again: fine
        assert!(t.is_empty());
        t.record(PageId::new(7), 1); // a different vCPU sent it: problematic
        t.record(PageId::new(9), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.resend_list(), vec![PageId::new(7)]);
    }

    #[test]
    fn problematic_tracker_via_deltas() {
        let (mem, _) = memory_with_dirty(&[1, 2]);
        let d0 = pages_to_delta(&mem, &[PageId::new(1), PageId::new(2)]);
        let d1 = pages_to_delta(&mem, &[PageId::new(2)]);
        let mut t = ProblematicTracker::new();
        t.record_delta(&d0, 0);
        t.record_delta(&d1, 1);
        assert_eq!(t.resend_list(), vec![PageId::new(2)]);
    }
}
