//! The replica-set topology: N heterogeneous replicas behind one primary.
//!
//! The paper's engine protects a VM with exactly one replica; this module
//! generalises that pair into a [`ReplicaSet`] of N replicas, each with
//! its own host, replication link, wire session and checkpoint pools. The
//! Transfer stage fans each encoded epoch out across the set (star or
//! chained, per [`FanoutMode`](crate::config::FanoutMode)), the
//! [`CommitLedger`](crate::failover::CommitLedger) commits an epoch once a
//! quorum of replicas acked it, and failover activates the replica
//! holding the most recent applied state. A `ReplicaSet` of one replica
//! is exactly the paper's 1→1 pair: replica 0 is always the strategy's
//! canonical secondary.
//!
//! Replica hosts alternate families beyond index 0 when the strategy is
//! heterogeneous (HERE): even indices get the strategy's secondary
//! (KVM/kvmtool), odd indices a homogeneous Xen peer — so a quorum can
//! never be taken out by a single-hypervisor exploit, the robustness
//! argument of §8.2 extended to N-way. Remus stays all-Xen.

use here_hypervisor::host::Hypervisor;
use here_hypervisor::kind::HypervisorKind;
use here_hypervisor::vm::VmId;
use here_hypervisor::XenHypervisor;
use here_sim_core::rate::ByteSize;
use here_simnet::link::Link;
use here_vmstate::translate::StateTranslator;
use here_vmstate::MemoryDelta;

use crate::dataplane::CheckpointPools;
use crate::error::CoreResult;
use crate::pipeline::ReplicationStrategy;

/// One replica of the protected VM: its host hypervisor, the never-run
/// VM shell, the failover state translator for its family, its own
/// replication link, and the per-replica apply/catch-up state.
#[derive(Debug)]
pub struct Replica {
    /// 0-based index within the set.
    pub(crate) index: u32,
    /// The replica's host hypervisor.
    pub(crate) host: Box<dyn Hypervisor>,
    /// The replica VM shell on that host.
    pub(crate) vm: VmId,
    /// Translator from the primary's native state to this replica's
    /// family (`None` for a homogeneous Xen replica).
    pub(crate) translator: Option<StateTranslator>,
    /// This replica's dedicated replication link.
    pub(crate) link: Link,
    /// Per-replica wire pools — decode staging lives here, so a torn
    /// stream on one replica cannot disturb another's apply.
    pub(crate) pools: CheckpointPools,
    /// Pages this replica missed while its link misbehaved: installed on
    /// its next successful apply (asynchronous catch-up), newest version
    /// winning on overlap.
    pub(crate) backlog: MemoryDelta,
    /// True while the replica trails the primary past the configured
    /// staleness bound.
    pub(crate) stale: bool,
    /// Wire format version negotiated with the primary for this replica
    /// (`min(session offer, replica capability)`; defaults to v2).
    pub(crate) wire_version: u16,
}

impl Replica {
    pub(crate) fn new(
        index: u32,
        host: Box<dyn Hypervisor>,
        vm: VmId,
        translator: Option<StateTranslator>,
    ) -> Self {
        Replica {
            index,
            host,
            vm,
            translator,
            link: Link::omni_path_100g(),
            pools: CheckpointPools::new(),
            backlog: MemoryDelta::new(),
            stale: false,
            wire_version: here_vmstate::wire::VERSION,
        }
    }

    /// The replica's 0-based index within its set.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The replica host's hypervisor family.
    pub fn kind(&self) -> HypervisorKind {
        self.host.kind()
    }

    /// True while the replica trails the primary past the configured
    /// staleness bound.
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// Pages parked in the replica's catch-up backlog — the health
    /// plane's backlog-depth signal.
    pub fn backlog_pages(&self) -> u64 {
        self.backlog.len() as u64
    }

    /// The wire format version this replica negotiated with the primary.
    pub fn wire_version(&self) -> u16 {
        self.wire_version
    }
}

/// The set of replicas a session protects the primary with, plus the
/// activation latch failover uses.
///
/// The latch is the no-split-brain guard: [`ReplicaSet::activate`]
/// asserts no replica activated before, so two replicas can never both
/// take over the service.
#[derive(Debug)]
pub struct ReplicaSet {
    replicas: Vec<Replica>,
    activated: Option<u32>,
}

impl ReplicaSet {
    /// Wraps already-constructed replicas into a set.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty — a session always has at least the
    /// canonical secondary.
    pub(crate) fn from_replicas(replicas: Vec<Replica>) -> Self {
        assert!(!replicas.is_empty(), "a replica set needs >= 1 replica");
        ReplicaSet {
            replicas,
            activated: None,
        }
    }

    /// Number of replicas in the set.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True if the set holds no replicas (never true for a built set).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The replica at `index`.
    pub fn get(&self, index: u32) -> &Replica {
        &self.replicas[index as usize]
    }

    pub(crate) fn get_mut(&mut self, index: u32) -> &mut Replica {
        &mut self.replicas[index as usize]
    }

    /// Iterates the replicas in index order.
    pub fn iter(&self) -> impl Iterator<Item = &Replica> {
        self.replicas.iter()
    }

    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = &mut Replica> {
        self.replicas.iter_mut()
    }

    /// Latches replica `index` as the activated one.
    ///
    /// # Panics
    ///
    /// Panics if any replica already activated — the no-split-brain
    /// invariant: at most one replica ever takes over the service.
    pub(crate) fn activate(&mut self, index: u32) {
        assert!(
            self.activated.is_none(),
            "split-brain: replica {index} activating but replica {} already active",
            self.activated.expect("checked some")
        );
        assert!((index as usize) < self.replicas.len());
        self.activated = Some(index);
    }

    /// The activated replica's index, if failover has run.
    pub fn activated(&self) -> Option<u32> {
        self.activated
    }

    pub(crate) fn active_mut(&mut self) -> &mut Replica {
        let idx = self.activated.expect("no replica activated");
        self.get_mut(idx)
    }
}

/// A replica's hypervisor paired with the translator checkpoints need to
/// reach its native format (`None` when it shares the primary's family).
pub(crate) type ReplicaHost = (Box<dyn Hypervisor>, Option<StateTranslator>);

/// Builds the replica hosts for an N-way set under `strategy`: replica 0
/// is exactly the strategy's canonical secondary; beyond it a
/// heterogeneous strategy alternates its secondary family (even indices)
/// with homogeneous Xen peers (odd indices), while a homogeneous
/// strategy stays all-Xen. Returns each host with its failover
/// translator.
pub(crate) fn make_replica_hosts(
    strategy: &dyn ReplicationStrategy,
    host_memory: ByteSize,
    replicas: u32,
) -> CoreResult<Vec<ReplicaHost>> {
    assert!(replicas >= 1, "a topology needs at least one replica");
    let canonical = strategy.make_secondary(host_memory)?;
    let heterogeneous = canonical.1.is_some();
    let mut hosts = Vec::with_capacity(replicas as usize);
    hosts.push(canonical);
    for index in 1..replicas {
        if heterogeneous && index % 2 == 0 {
            hosts.push(strategy.make_secondary(host_memory)?);
        } else {
            hosts.push((
                Box::new(XenHypervisor::new(host_memory)) as Box<dyn Hypervisor>,
                None,
            ));
        }
    }
    Ok(hosts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use crate::pipeline::runtime;
    use here_hypervisor::vm::VmConfig;

    fn tiny_set(n: u32) -> ReplicaSet {
        let hosts = make_replica_hosts(runtime(Strategy::Here), ByteSize::from_gib(16), n).unwrap();
        let replicas = hosts
            .into_iter()
            .enumerate()
            .map(|(i, (mut host, translator))| {
                let cfg = VmConfig::new(format!("r{i}"), ByteSize::from_mib(16), 1).unwrap();
                let vm = host.create_shell(cfg).unwrap();
                Replica::new(i as u32, host, vm, translator)
            })
            .collect();
        ReplicaSet::from_replicas(replicas)
    }

    #[test]
    fn here_sets_alternate_families_beyond_the_canonical_secondary() {
        let set = tiny_set(5);
        let kinds: Vec<HypervisorKind> = set.iter().map(Replica::kind).collect();
        assert_eq!(
            kinds,
            vec![
                HypervisorKind::Kvm,
                HypervisorKind::Xen,
                HypervisorKind::Kvm,
                HypervisorKind::Xen,
                HypervisorKind::Kvm,
            ]
        );
        // Translators exist exactly for the heterogeneous members.
        for r in set.iter() {
            assert_eq!(r.translator.is_some(), r.kind() == HypervisorKind::Kvm);
        }
    }

    #[test]
    fn remus_sets_stay_homogeneous() {
        let hosts =
            make_replica_hosts(runtime(Strategy::Remus), ByteSize::from_gib(16), 3).unwrap();
        for (host, translator) in &hosts {
            assert_eq!(host.kind(), HypervisorKind::Xen);
            assert!(translator.is_none());
        }
    }

    #[test]
    fn activation_latches_exactly_once() {
        let mut set = tiny_set(3);
        assert_eq!(set.activated(), None);
        set.activate(1);
        assert_eq!(set.activated(), Some(1));
        assert_eq!(set.active_mut().index(), 1);
    }

    #[test]
    #[should_panic(expected = "split-brain")]
    fn double_activation_is_a_split_brain_panic() {
        let mut set = tiny_set(2);
        set.activate(0);
        set.activate(1);
    }
}
