//! Failure detection and replica activation.
//!
//! "In the current implementation of HERE, we rely on a periodic heartbeat
//! between the primary and replica hosts to ensure that the hypervisors are
//! functioning normally" (§8.2). The secondary declares the primary dead
//! after a configurable number of consecutive missed heartbeats, then
//! activates the replica: load the last committed state, switch the device
//! models, and unpause — in the order of 10 ms on kvmtool (Fig. 7).

use serde::{Deserialize, Serialize};

use here_hypervisor::fault::HostHealth;
use here_sim_core::time::{SimDuration, SimTime};

use crate::config::HeartbeatConfig;

/// Starved hosts emit heartbeats erratically; detection takes this many
/// times longer than for a clean crash/hang.
pub const STARVATION_DETECTION_FACTOR: u64 = 10;

/// Computes when the secondary detects a primary failure that occurred at
/// `failed_at`, given the primary's post-failure health.
///
/// Crashes and hangs silence the heartbeat immediately; the detector fires
/// after `missed_threshold + 1` periods. A starved primary still emits
/// *some* heartbeats, so the detector needs sustained evidence and fires a
/// factor [`STARVATION_DETECTION_FACTOR`] later.
///
/// The branch consumes the health predicates rather than re-matching the
/// enum: a host that cannot service at all
/// ([`HostHealth::can_service`]) is silent and detected at the base
/// budget; one that services but whose heartbeats are unreliable
/// ([`HostHealth::heartbeats_reliable`]) needs the sustained-evidence
/// factor; a healthy host is never "detected".
///
/// All arithmetic is checked: a detection instant past the representable
/// range saturates to [`SimTime::MAX`] instead of overflowing.
pub fn detection_time(
    hb: &HeartbeatConfig,
    failed_at: SimTime,
    post_health: HostHealth,
) -> SimTime {
    detection_time_with_loss(hb, failed_at, post_health, 0)
}

/// [`detection_time`], with `lost_heartbeats` additional heartbeat
/// periods lost on the wire before the detector fires (the fault plane's
/// [`HeartbeatLoss`](crate::chaos::FaultKind::HeartbeatLoss) events).
pub fn detection_time_with_loss(
    hb: &HeartbeatConfig,
    failed_at: SimTime,
    post_health: HostHealth,
    lost_heartbeats: u32,
) -> SimTime {
    if post_health.heartbeats_reliable() {
        // Reliable heartbeats keep arriving: a healthy primary is never
        // declared dead.
        return SimTime::MAX;
    }
    let factor = if post_health.can_service() {
        // The host still runs (starvation): heartbeats trickle in
        // erratically, so the detector needs sustained evidence.
        STARVATION_DETECTION_FACTOR
    } else {
        1
    };
    let periods = (hb.missed_threshold as u64 + 1).saturating_add(lost_heartbeats as u64);
    hb.period
        .as_nanos()
        .checked_mul(periods)
        .and_then(|n| n.checked_mul(factor))
        .and_then(|n| failed_at.checked_add(SimDuration::from_nanos(n)))
        .unwrap_or(SimTime::MAX)
}

/// One committed epoch: its sequence number and the (report-relative)
/// commit instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitEntry {
    /// The committed checkpoint's sequence number.
    pub seq: u64,
    /// When the ack landed and buffered output was released.
    pub at: SimTime,
}

/// The authoritative record of fully-acked epochs.
///
/// An epoch enters the ledger only at *Ack* — after the replica decoded,
/// validated and installed the whole checkpoint and the ack crossed the
/// replication link. Failover activation reads
/// [`CommitLedger::last_committed`], so the replica provably resumes from
/// the last fully-acked epoch: aborted or in-flight epochs can never leak
/// into a [`FailoverRecord`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CommitLedger {
    entries: Vec<CommitEntry>,
}

impl CommitLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        CommitLedger::default()
    }

    /// Records a commit, asserting the sequence numbers stay strictly
    /// monotone (a replay or out-of-order commit is an engine bug).
    pub fn record(&mut self, seq: u64, at: SimTime) {
        if let Some(last) = self.entries.last() {
            assert!(
                seq > last.seq,
                "commit ledger must be strictly monotone: {seq} after {}",
                last.seq
            );
            assert!(
                at >= last.at,
                "commit instants must be non-decreasing: {at} after {}",
                last.at
            );
        }
        self.entries.push(CommitEntry { seq, at });
    }

    /// The last fully-acked epoch's sequence number, if any epoch
    /// committed.
    pub fn last_committed(&self) -> Option<u64> {
        self.entries.last().map(|e| e.seq)
    }

    /// The committed epochs, oldest first.
    pub fn entries(&self) -> &[CommitEntry] {
        &self.entries
    }

    /// Number of committed epochs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has committed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consumes the ledger into its entries.
    pub fn into_entries(self) -> Vec<CommitEntry> {
        self.entries
    }
}

/// What happened when a failover ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailoverRecord {
    /// When the failure hit the primary.
    pub failed_at: SimTime,
    /// When the secondary's detector fired.
    pub detected_at: SimTime,
    /// When the replica resumed service.
    pub resumed_at: SimTime,
    /// The sequence number of the last committed checkpoint the replica
    /// resumed from.
    pub resumed_from_checkpoint: u64,
    /// Output packets discarded with the rolled-back execution.
    pub packets_lost: usize,
    /// Application operations rolled back (done since the last commit).
    pub ops_lost: f64,
    /// Devices switched to the secondary's models.
    pub devices_switched: usize,
}

impl FailoverRecord {
    /// The replica resumption time the paper's Fig. 7 measures: "the period
    /// from when the secondary host is aware of a primary failure to when
    /// the replica VM resumes operation".
    pub fn resumption_time(&self) -> SimDuration {
        self.resumed_at.saturating_duration_since(self.detected_at)
    }

    /// Total service interruption as clients observe it.
    pub fn outage(&self) -> SimDuration {
        self.resumed_at.saturating_duration_since(self.failed_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_detection_uses_heartbeat_budget() {
        let hb = HeartbeatConfig::default(); // 10 ms × (3 + 1)
        let t = detection_time(&hb, SimTime::from_secs(5), HostHealth::Crashed);
        assert_eq!(t, SimTime::from_secs(5) + SimDuration::from_millis(40));
        let h = detection_time(&hb, SimTime::from_secs(5), HostHealth::Hung);
        assert_eq!(h, t, "hangs are indistinguishable from crashes");
    }

    #[test]
    fn starvation_detection_is_slower() {
        let hb = HeartbeatConfig::default();
        let crash = detection_time(&hb, SimTime::ZERO, HostHealth::Crashed);
        let starve = detection_time(&hb, SimTime::ZERO, HostHealth::Starved);
        assert!(starve.as_nanos() == crash.as_nanos() * STARVATION_DETECTION_FACTOR);
    }

    #[test]
    fn healthy_primary_is_never_declared_dead() {
        let hb = HeartbeatConfig::default();
        assert_eq!(
            detection_time(&hb, SimTime::ZERO, HostHealth::Healthy),
            SimTime::MAX
        );
    }

    #[test]
    fn detection_saturates_instead_of_overflowing() {
        // A MAX heartbeat period would overflow `base × factor` with
        // unchecked arithmetic; it must saturate for every failed health.
        let hb = HeartbeatConfig {
            period: SimDuration::MAX,
            missed_threshold: 3,
        };
        for health in [HostHealth::Crashed, HostHealth::Hung, HostHealth::Starved] {
            assert_eq!(detection_time(&hb, SimTime::ZERO, health), SimTime::MAX);
        }
        // A failure instant near the end of representable time saturates
        // on the add.
        let hb = HeartbeatConfig::default();
        let late = SimTime::MAX;
        assert_eq!(detection_time(&hb, late, HostHealth::Crashed), SimTime::MAX);
        assert_eq!(detection_time(&hb, late, HostHealth::Starved), SimTime::MAX);
        // And a run-of-the-mill configuration is unchanged by the checks.
        assert_eq!(
            detection_time(&hb, SimTime::from_secs(1), HostHealth::Crashed),
            SimTime::from_secs(1) + SimDuration::from_millis(40)
        );
    }

    #[test]
    fn lost_heartbeats_delay_detection_per_period() {
        let hb = HeartbeatConfig::default(); // 10 ms period, 40 ms budget
        let base = detection_time(&hb, SimTime::ZERO, HostHealth::Crashed);
        let delayed = detection_time_with_loss(&hb, SimTime::ZERO, HostHealth::Crashed, 2);
        assert_eq!(
            delayed.saturating_duration_since(base),
            SimDuration::from_millis(20)
        );
        // Starvation multiplies the whole (budget + loss) window.
        let starved = detection_time_with_loss(&hb, SimTime::ZERO, HostHealth::Starved, 2);
        assert_eq!(
            starved.as_nanos(),
            delayed.as_nanos() * STARVATION_DETECTION_FACTOR
        );
        // u32::MAX lost heartbeats saturates.
        assert_eq!(
            detection_time_with_loss(&hb, SimTime::ZERO, HostHealth::Starved, u32::MAX),
            SimTime::ZERO
                + SimDuration::from_nanos(
                    hb.period.as_nanos() * (u32::MAX as u64 + 4) * STARVATION_DETECTION_FACTOR
                )
        );
    }

    #[test]
    fn ledger_records_monotone_commits() {
        let mut ledger = CommitLedger::new();
        assert!(ledger.is_empty());
        assert_eq!(ledger.last_committed(), None);
        ledger.record(1, SimTime::from_secs(1));
        ledger.record(2, SimTime::from_secs(3));
        ledger.record(4, SimTime::from_secs(4)); // an aborted epoch 3 never commits
        assert_eq!(ledger.last_committed(), Some(4));
        assert_eq!(ledger.len(), 3);
        assert_eq!(ledger.entries()[1].seq, 2);
        let entries = ledger.into_entries();
        assert_eq!(entries.last().unwrap().at, SimTime::from_secs(4));
    }

    #[test]
    #[should_panic(expected = "strictly monotone")]
    fn ledger_rejects_replayed_sequence_numbers() {
        let mut ledger = CommitLedger::new();
        ledger.record(5, SimTime::from_secs(1));
        ledger.record(5, SimTime::from_secs(2));
    }

    #[test]
    fn record_durations() {
        let rec = FailoverRecord {
            failed_at: SimTime::from_secs(10),
            detected_at: SimTime::from_secs(10) + SimDuration::from_millis(40),
            resumed_at: SimTime::from_secs(10) + SimDuration::from_millis(49),
            resumed_from_checkpoint: 7,
            packets_lost: 3,
            ops_lost: 120.0,
            devices_switched: 3,
        };
        assert_eq!(rec.resumption_time(), SimDuration::from_millis(9));
        assert_eq!(rec.outage(), SimDuration::from_millis(49));
    }
}
