//! Failure detection and replica activation.
//!
//! "In the current implementation of HERE, we rely on a periodic heartbeat
//! between the primary and replica hosts to ensure that the hypervisors are
//! functioning normally" (§8.2). The secondary declares the primary dead
//! after a configurable number of consecutive missed heartbeats, then
//! activates the replica: load the last committed state, switch the device
//! models, and unpause — in the order of 10 ms on kvmtool (Fig. 7).

use serde::{Deserialize, Serialize};

use here_hypervisor::fault::HostHealth;
use here_sim_core::time::{SimDuration, SimTime};

use crate::config::HeartbeatConfig;

/// Starved hosts emit heartbeats erratically; detection takes this many
/// times longer than for a clean crash/hang.
pub const STARVATION_DETECTION_FACTOR: u64 = 10;

/// Computes when the secondary detects a primary failure that occurred at
/// `failed_at`, given the primary's post-failure health.
///
/// Crashes and hangs silence the heartbeat immediately; the detector fires
/// after `missed_threshold + 1` periods. A starved primary still emits
/// *some* heartbeats, so the detector needs sustained evidence and fires a
/// factor [`STARVATION_DETECTION_FACTOR`] later.
pub fn detection_time(
    hb: &HeartbeatConfig,
    failed_at: SimTime,
    post_health: HostHealth,
) -> SimTime {
    let base = hb.detection_latency();
    match post_health {
        HostHealth::Crashed | HostHealth::Hung => failed_at + base,
        HostHealth::Starved => failed_at + base * STARVATION_DETECTION_FACTOR,
        HostHealth::Healthy => SimTime::MAX, // a healthy primary is never "detected"
    }
}

/// What happened when a failover ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailoverRecord {
    /// When the failure hit the primary.
    pub failed_at: SimTime,
    /// When the secondary's detector fired.
    pub detected_at: SimTime,
    /// When the replica resumed service.
    pub resumed_at: SimTime,
    /// The sequence number of the last committed checkpoint the replica
    /// resumed from.
    pub resumed_from_checkpoint: u64,
    /// Output packets discarded with the rolled-back execution.
    pub packets_lost: usize,
    /// Application operations rolled back (done since the last commit).
    pub ops_lost: f64,
    /// Devices switched to the secondary's models.
    pub devices_switched: usize,
}

impl FailoverRecord {
    /// The replica resumption time the paper's Fig. 7 measures: "the period
    /// from when the secondary host is aware of a primary failure to when
    /// the replica VM resumes operation".
    pub fn resumption_time(&self) -> SimDuration {
        self.resumed_at.saturating_duration_since(self.detected_at)
    }

    /// Total service interruption as clients observe it.
    pub fn outage(&self) -> SimDuration {
        self.resumed_at.saturating_duration_since(self.failed_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_detection_uses_heartbeat_budget() {
        let hb = HeartbeatConfig::default(); // 10 ms × (3 + 1)
        let t = detection_time(&hb, SimTime::from_secs(5), HostHealth::Crashed);
        assert_eq!(t, SimTime::from_secs(5) + SimDuration::from_millis(40));
        let h = detection_time(&hb, SimTime::from_secs(5), HostHealth::Hung);
        assert_eq!(h, t, "hangs are indistinguishable from crashes");
    }

    #[test]
    fn starvation_detection_is_slower() {
        let hb = HeartbeatConfig::default();
        let crash = detection_time(&hb, SimTime::ZERO, HostHealth::Crashed);
        let starve = detection_time(&hb, SimTime::ZERO, HostHealth::Starved);
        assert!(starve.as_nanos() == crash.as_nanos() * STARVATION_DETECTION_FACTOR);
    }

    #[test]
    fn healthy_primary_is_never_declared_dead() {
        let hb = HeartbeatConfig::default();
        assert_eq!(
            detection_time(&hb, SimTime::ZERO, HostHealth::Healthy),
            SimTime::MAX
        );
    }

    #[test]
    fn record_durations() {
        let rec = FailoverRecord {
            failed_at: SimTime::from_secs(10),
            detected_at: SimTime::from_secs(10) + SimDuration::from_millis(40),
            resumed_at: SimTime::from_secs(10) + SimDuration::from_millis(49),
            resumed_from_checkpoint: 7,
            packets_lost: 3,
            ops_lost: 120.0,
            devices_switched: 3,
        };
        assert_eq!(rec.resumption_time(), SimDuration::from_millis(9));
        assert_eq!(rec.outage(), SimDuration::from_millis(49));
    }
}
