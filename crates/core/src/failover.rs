//! Failure detection and replica activation.
//!
//! "In the current implementation of HERE, we rely on a periodic heartbeat
//! between the primary and replica hosts to ensure that the hypervisors are
//! functioning normally" (§8.2). The secondary declares the primary dead
//! after a configurable number of consecutive missed heartbeats, then
//! activates the replica: load the last committed state, switch the device
//! models, and unpause — in the order of 10 ms on kvmtool (Fig. 7).

use serde::{Deserialize, Serialize};

use here_hypervisor::fault::HostHealth;
use here_sim_core::time::{SimDuration, SimTime};

use crate::config::HeartbeatConfig;

/// Starved hosts emit heartbeats erratically; detection takes this many
/// times longer than for a clean crash/hang.
pub const STARVATION_DETECTION_FACTOR: u64 = 10;

/// Computes when the secondary detects a primary failure that occurred at
/// `failed_at`, given the primary's post-failure health.
///
/// Crashes and hangs silence the heartbeat immediately; the detector fires
/// after `missed_threshold + 1` periods. A starved primary still emits
/// *some* heartbeats, so the detector needs sustained evidence and fires a
/// factor [`STARVATION_DETECTION_FACTOR`] later.
///
/// The branch consumes the health predicates rather than re-matching the
/// enum: a host that cannot service at all
/// ([`HostHealth::can_service`]) is silent and detected at the base
/// budget; one that services but whose heartbeats are unreliable
/// ([`HostHealth::heartbeats_reliable`]) needs the sustained-evidence
/// factor; a healthy host is never "detected".
///
/// All arithmetic is checked: a detection instant past the representable
/// range saturates to [`SimTime::MAX`] instead of overflowing.
pub fn detection_time(
    hb: &HeartbeatConfig,
    failed_at: SimTime,
    post_health: HostHealth,
) -> SimTime {
    detection_time_with_loss(hb, failed_at, post_health, 0)
}

/// [`detection_time`], with `lost_heartbeats` additional heartbeat
/// periods lost on the wire before the detector fires (the fault plane's
/// [`HeartbeatLoss`](crate::chaos::FaultKind::HeartbeatLoss) events).
pub fn detection_time_with_loss(
    hb: &HeartbeatConfig,
    failed_at: SimTime,
    post_health: HostHealth,
    lost_heartbeats: u32,
) -> SimTime {
    if post_health.heartbeats_reliable() {
        // Reliable heartbeats keep arriving: a healthy primary is never
        // declared dead.
        return SimTime::MAX;
    }
    let factor = if post_health.can_service() {
        // The host still runs (starvation): heartbeats trickle in
        // erratically, so the detector needs sustained evidence.
        STARVATION_DETECTION_FACTOR
    } else {
        1
    };
    let periods = (hb.missed_threshold as u64 + 1).saturating_add(lost_heartbeats as u64);
    hb.period
        .as_nanos()
        .checked_mul(periods)
        .and_then(|n| n.checked_mul(factor))
        .and_then(|n| failed_at.checked_add(SimDuration::from_nanos(n)))
        .unwrap_or(SimTime::MAX)
}

/// One committed epoch: its sequence number and the (report-relative)
/// commit instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitEntry {
    /// The committed checkpoint's sequence number.
    pub seq: u64,
    /// When the ack landed and buffered output was released.
    pub at: SimTime,
}

/// One replica's ack trail, oldest first — every epoch it reported fully
/// applied, with the (report-relative) arrival instant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaAcks {
    /// 0-based replica index within the session's replica set.
    pub replica: u32,
    /// The acks this replica delivered, oldest first.
    pub acks: Vec<CommitEntry>,
}

/// The authoritative record of quorum-committed epochs.
///
/// An epoch enters the ledger only at *Ack* — after a replica decoded,
/// validated and installed the whole checkpoint and the ack crossed the
/// replication link. With an N-replica topology the ledger tracks a
/// per-replica high-water mark and commits an epoch once the configured
/// quorum of replicas has acked it (the commit watermark is the
/// quorum-th highest per-replica ack). Failover activation reads
/// [`CommitLedger::best_replica`] and [`CommitLedger::last_committed`],
/// so the activated replica provably resumes from the last
/// quorum-committed epoch: aborted or in-flight epochs can never leak
/// into a [`FailoverRecord`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommitLedger {
    entries: Vec<CommitEntry>,
    quorum: u32,
    last_acked: Vec<Option<u64>>,
    trails: Vec<Vec<CommitEntry>>,
}

impl Default for CommitLedger {
    fn default() -> Self {
        CommitLedger::new()
    }
}

impl CommitLedger {
    /// An empty single-replica ledger (`N = 1`, quorum 1) — the paper's
    /// 1→1 pair, where every ack is immediately a commit.
    pub fn new() -> Self {
        CommitLedger::with_quorum(1, 1)
    }

    /// An empty ledger for `replicas` replicas committing at `quorum`
    /// acks (clamped to `[1, replicas]`).
    pub fn with_quorum(replicas: u32, quorum: u32) -> Self {
        assert!(replicas >= 1, "a ledger needs at least one replica");
        CommitLedger {
            entries: Vec::new(),
            quorum: quorum.clamp(1, replicas),
            last_acked: vec![None; replicas as usize],
            trails: vec![Vec::new(); replicas as usize],
        }
    }

    /// Number of replicas this ledger tracks.
    pub fn replicas(&self) -> u32 {
        self.last_acked.len() as u32
    }

    /// Acks required before an epoch commits.
    pub fn quorum(&self) -> u32 {
        self.quorum
    }

    /// Records replica `replica`'s ack of epoch `seq` at instant `at` and
    /// returns `true` if that ack pushed an epoch over the commit quorum.
    ///
    /// Acks are per-replica high-water marks: a catch-up ack of epoch 7
    /// from a replica last seen at epoch 3 implicitly covers 4–6, and a
    /// stale or duplicate ack (`seq` at or below the replica's mark) is
    /// ignored. The committed epoch is the quorum-th highest mark across
    /// all replicas, so commits skip epochs superseded while a straggler
    /// caught up — keeping the commit sequence strictly monotone.
    pub fn ack(&mut self, replica: u32, seq: u64, at: SimTime) -> bool {
        let r = replica as usize;
        assert!(
            r < self.last_acked.len(),
            "ack from replica {replica} but the ledger tracks {}",
            self.last_acked.len()
        );
        if self.last_acked[r].is_some_and(|prev| prev >= seq) {
            return false;
        }
        self.last_acked[r] = Some(seq);
        self.trails[r].push(CommitEntry { seq, at });
        let mut acked: Vec<u64> = self.last_acked.iter().filter_map(|&a| a).collect();
        if (acked.len() as u32) < self.quorum {
            return false;
        }
        acked.sort_unstable_by(|a, b| b.cmp(a));
        let watermark = acked[self.quorum as usize - 1];
        if self.last_committed().is_none_or(|last| watermark > last) {
            self.record(watermark, at);
            return true;
        }
        false
    }

    /// The highest epoch `replica` has acked, if it ever acked one.
    pub fn last_acked(&self, replica: u32) -> Option<u64> {
        self.last_acked[replica as usize]
    }

    /// Epochs `replica` trails the just-committed sequence `seq` by — the
    /// staleness scan's and the health plane's ack-lag signal. A replica
    /// that never acked trails by the full `seq`.
    pub fn lag_of(&self, replica: u32, seq: u64) -> u64 {
        seq.saturating_sub(self.last_acked(replica).unwrap_or(0))
    }

    /// The replica holding the most recent applied state: the highest
    /// per-replica ack mark, ties broken toward the lowest index. This is
    /// the failover candidate — its state is at least as fresh as the
    /// last committed epoch, because the commit watermark never exceeds
    /// the maximum ack mark.
    pub fn best_replica(&self) -> u32 {
        let mut best = 0u32;
        let mut best_acked = self.last_acked[0];
        for (i, &acked) in self.last_acked.iter().enumerate().skip(1) {
            if acked > best_acked {
                best = i as u32;
                best_acked = acked;
            }
        }
        best
    }

    /// Every replica's ack trail, indexed by replica.
    pub fn ack_trails(&self) -> &[Vec<CommitEntry>] {
        &self.trails
    }

    /// Records a commit, asserting the sequence numbers stay strictly
    /// monotone (a replay or out-of-order commit is an engine bug).
    pub fn record(&mut self, seq: u64, at: SimTime) {
        if let Some(last) = self.entries.last() {
            assert!(
                seq > last.seq,
                "commit ledger must be strictly monotone: {seq} after {}",
                last.seq
            );
            assert!(
                at >= last.at,
                "commit instants must be non-decreasing: {at} after {}",
                last.at
            );
        }
        self.entries.push(CommitEntry { seq, at });
    }

    /// The last fully-acked epoch's sequence number, if any epoch
    /// committed.
    pub fn last_committed(&self) -> Option<u64> {
        self.entries.last().map(|e| e.seq)
    }

    /// The committed epochs, oldest first.
    pub fn entries(&self) -> &[CommitEntry] {
        &self.entries
    }

    /// Number of committed epochs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has committed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consumes the ledger into its entries.
    pub fn into_entries(self) -> Vec<CommitEntry> {
        self.entries
    }

    /// Consumes the ledger into its commit entries and the per-replica
    /// ack trails.
    pub fn into_parts(self) -> (Vec<CommitEntry>, Vec<ReplicaAcks>) {
        let trails = self
            .trails
            .into_iter()
            .enumerate()
            .map(|(i, acks)| ReplicaAcks {
                replica: i as u32,
                acks,
            })
            .collect();
        (self.entries, trails)
    }
}

/// What happened when a failover ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailoverRecord {
    /// When the failure hit the primary.
    pub failed_at: SimTime,
    /// When the secondary's detector fired.
    pub detected_at: SimTime,
    /// When the replica resumed service.
    pub resumed_at: SimTime,
    /// The sequence number of the last committed checkpoint the replica
    /// resumed from.
    pub resumed_from_checkpoint: u64,
    /// Index of the replica that activated — the one holding the most
    /// recent committed state at detection time.
    pub activated_replica: u32,
    /// Output packets discarded with the rolled-back execution.
    pub packets_lost: usize,
    /// Application operations rolled back (done since the last commit).
    pub ops_lost: f64,
    /// Devices switched to the secondary's models.
    pub devices_switched: usize,
}

impl FailoverRecord {
    /// The replica resumption time the paper's Fig. 7 measures: "the period
    /// from when the secondary host is aware of a primary failure to when
    /// the replica VM resumes operation".
    pub fn resumption_time(&self) -> SimDuration {
        self.resumed_at.saturating_duration_since(self.detected_at)
    }

    /// Total service interruption as clients observe it.
    pub fn outage(&self) -> SimDuration {
        self.resumed_at.saturating_duration_since(self.failed_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_detection_uses_heartbeat_budget() {
        let hb = HeartbeatConfig::default(); // 10 ms × (3 + 1)
        let t = detection_time(&hb, SimTime::from_secs(5), HostHealth::Crashed);
        assert_eq!(t, SimTime::from_secs(5) + SimDuration::from_millis(40));
        let h = detection_time(&hb, SimTime::from_secs(5), HostHealth::Hung);
        assert_eq!(h, t, "hangs are indistinguishable from crashes");
    }

    #[test]
    fn starvation_detection_is_slower() {
        let hb = HeartbeatConfig::default();
        let crash = detection_time(&hb, SimTime::ZERO, HostHealth::Crashed);
        let starve = detection_time(&hb, SimTime::ZERO, HostHealth::Starved);
        assert!(starve.as_nanos() == crash.as_nanos() * STARVATION_DETECTION_FACTOR);
    }

    #[test]
    fn healthy_primary_is_never_declared_dead() {
        let hb = HeartbeatConfig::default();
        assert_eq!(
            detection_time(&hb, SimTime::ZERO, HostHealth::Healthy),
            SimTime::MAX
        );
    }

    #[test]
    fn detection_saturates_instead_of_overflowing() {
        // A MAX heartbeat period would overflow `base × factor` with
        // unchecked arithmetic; it must saturate for every failed health.
        let hb = HeartbeatConfig {
            period: SimDuration::MAX,
            missed_threshold: 3,
        };
        for health in [HostHealth::Crashed, HostHealth::Hung, HostHealth::Starved] {
            assert_eq!(detection_time(&hb, SimTime::ZERO, health), SimTime::MAX);
        }
        // A failure instant near the end of representable time saturates
        // on the add.
        let hb = HeartbeatConfig::default();
        let late = SimTime::MAX;
        assert_eq!(detection_time(&hb, late, HostHealth::Crashed), SimTime::MAX);
        assert_eq!(detection_time(&hb, late, HostHealth::Starved), SimTime::MAX);
        // And a run-of-the-mill configuration is unchanged by the checks.
        assert_eq!(
            detection_time(&hb, SimTime::from_secs(1), HostHealth::Crashed),
            SimTime::from_secs(1) + SimDuration::from_millis(40)
        );
    }

    #[test]
    fn lost_heartbeats_delay_detection_per_period() {
        let hb = HeartbeatConfig::default(); // 10 ms period, 40 ms budget
        let base = detection_time(&hb, SimTime::ZERO, HostHealth::Crashed);
        let delayed = detection_time_with_loss(&hb, SimTime::ZERO, HostHealth::Crashed, 2);
        assert_eq!(
            delayed.saturating_duration_since(base),
            SimDuration::from_millis(20)
        );
        // Starvation multiplies the whole (budget + loss) window.
        let starved = detection_time_with_loss(&hb, SimTime::ZERO, HostHealth::Starved, 2);
        assert_eq!(
            starved.as_nanos(),
            delayed.as_nanos() * STARVATION_DETECTION_FACTOR
        );
        // u32::MAX lost heartbeats saturates.
        assert_eq!(
            detection_time_with_loss(&hb, SimTime::ZERO, HostHealth::Starved, u32::MAX),
            SimTime::ZERO
                + SimDuration::from_nanos(
                    hb.period.as_nanos() * (u32::MAX as u64 + 4) * STARVATION_DETECTION_FACTOR
                )
        );
    }

    #[test]
    fn ledger_records_monotone_commits() {
        let mut ledger = CommitLedger::new();
        assert!(ledger.is_empty());
        assert_eq!(ledger.last_committed(), None);
        ledger.record(1, SimTime::from_secs(1));
        ledger.record(2, SimTime::from_secs(3));
        ledger.record(4, SimTime::from_secs(4)); // an aborted epoch 3 never commits
        assert_eq!(ledger.last_committed(), Some(4));
        assert_eq!(ledger.len(), 3);
        assert_eq!(ledger.entries()[1].seq, 2);
        let entries = ledger.into_entries();
        assert_eq!(entries.last().unwrap().at, SimTime::from_secs(4));
    }

    #[test]
    fn quorum_ledger_commits_at_the_quorum_th_ack() {
        let mut ledger = CommitLedger::with_quorum(3, 2);
        assert!(!ledger.ack(0, 1, SimTime::from_secs(1)));
        assert_eq!(ledger.last_committed(), None);
        assert!(ledger.ack(2, 1, SimTime::from_secs(2)));
        assert_eq!(ledger.last_committed(), Some(1));
        // The third ack arrives late and commits nothing new.
        assert!(!ledger.ack(1, 1, SimTime::from_secs(3)));
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger.last_acked(1), Some(1));
        assert_eq!(
            ledger.ack_trails()[2],
            vec![CommitEntry {
                seq: 1,
                at: SimTime::from_secs(2)
            }]
        );
    }

    #[test]
    fn catch_up_acks_skip_superseded_epochs() {
        // Replicas 0 and 1 march to epoch 3; replica 2 lags at nothing,
        // then catches up straight to 3 — epochs 1–2 are superseded and
        // never enter the commit sequence twice.
        let mut ledger = CommitLedger::with_quorum(3, 3);
        for seq in 1..=3 {
            ledger.ack(0, seq, SimTime::from_secs(seq));
            ledger.ack(1, seq, SimTime::from_secs(seq));
        }
        assert_eq!(ledger.last_committed(), None);
        assert!(ledger.ack(2, 3, SimTime::from_secs(9)));
        assert_eq!(ledger.last_committed(), Some(3));
        assert_eq!(ledger.len(), 1, "superseded epochs commit at most once");
    }

    #[test]
    fn duplicate_and_stale_acks_are_ignored() {
        let mut ledger = CommitLedger::with_quorum(2, 2);
        assert!(!ledger.ack(0, 5, SimTime::from_secs(1)));
        assert!(!ledger.ack(0, 5, SimTime::from_secs(2)));
        assert!(!ledger.ack(0, 3, SimTime::from_secs(3)));
        assert_eq!(ledger.ack_trails()[0].len(), 1);
        assert!(ledger.ack(1, 5, SimTime::from_secs(4)));
        assert_eq!(ledger.last_committed(), Some(5));
    }

    #[test]
    fn best_replica_prefers_freshest_then_lowest_index() {
        let mut ledger = CommitLedger::with_quorum(3, 1);
        assert_eq!(ledger.best_replica(), 0, "no acks yet: lowest index");
        ledger.ack(1, 2, SimTime::from_secs(1));
        assert_eq!(ledger.best_replica(), 1);
        ledger.ack(2, 2, SimTime::from_secs(2));
        assert_eq!(ledger.best_replica(), 1, "tie breaks to the lowest");
        ledger.ack(2, 4, SimTime::from_secs(3));
        assert_eq!(ledger.best_replica(), 2);
        // The best replica is never behind the commit watermark.
        let best = ledger.best_replica();
        assert!(ledger.last_acked(best) >= ledger.last_committed());
    }

    #[test]
    fn into_parts_returns_trails_by_replica() {
        let mut ledger = CommitLedger::with_quorum(2, 1);
        ledger.ack(1, 1, SimTime::from_secs(1));
        ledger.ack(0, 1, SimTime::from_secs(2));
        let (entries, trails) = ledger.into_parts();
        assert_eq!(entries.len(), 1);
        assert_eq!(trails.len(), 2);
        assert_eq!(trails[0].replica, 0);
        assert_eq!(trails[1].replica, 1);
        assert_eq!(trails[1].acks[0].at, SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "strictly monotone")]
    fn ledger_rejects_replayed_sequence_numbers() {
        let mut ledger = CommitLedger::new();
        ledger.record(5, SimTime::from_secs(1));
        ledger.record(5, SimTime::from_secs(2));
    }

    #[test]
    fn record_durations() {
        let rec = FailoverRecord {
            failed_at: SimTime::from_secs(10),
            detected_at: SimTime::from_secs(10) + SimDuration::from_millis(40),
            resumed_at: SimTime::from_secs(10) + SimDuration::from_millis(49),
            resumed_from_checkpoint: 7,
            activated_replica: 0,
            packets_lost: 3,
            ops_lost: 120.0,
            devices_switched: 3,
        };
        assert_eq!(rec.resumption_time(), SimDuration::from_millis(9));
        assert_eq!(rec.outage(), SimDuration::from_millis(49));
    }
}
