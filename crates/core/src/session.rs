//! The live replication session: shared mutable state, its lifecycle FSM,
//! and the data-plane primitives the pipeline stages call.
//!
//! A [`Session`] owns the primary host, the protected VM and its
//! [`ReplicaSet`], the links, the workload, and all run accounting. It
//! moves through
//! [`SessionPhase`]s — created → seeding → replicating →
//! (failed-over) → completed — and every transition is asserted, so the
//! seeding code cannot run twice and nothing checkpoints before the seed.
//!
//! The phase *drivers* live elsewhere: [`crate::migrate`] runs the seeding
//! migration, [`crate::checkpoint`] runs the continuous phase through the
//! staged pipeline of [`crate::pipeline`].

use here_hypervisor::arch::Gpr;
use here_hypervisor::fault::HostHealth;
use here_hypervisor::host::Hypervisor;
use here_hypervisor::kind::HypervisorKind;
use here_hypervisor::memory::PageVersion;
use here_hypervisor::vcpu::{KvmVcpuState, VcpuStateBlob, XenVcpuState};
use here_hypervisor::vm::{VmConfig, VmId};
use here_hypervisor::{PageId, VcpuId, XenHypervisor, PAGE_SIZE};
use here_sim_core::metrics::{Histogram, TimeSeries};
use here_sim_core::rate::ByteSize;
use here_sim_core::rng::SimRng;
use here_sim_core::time::{SimDuration, SimTime};
use here_simnet::link::Link;
use here_telemetry::health::HealthObservation;
use here_telemetry::span::{SpanDraft, SpanId, SpanRecorder, Track};
use here_vmstate::translate::StateTranslator;
use here_vmstate::wire::{
    encode_record_into, Record, ScatterStream, StreamDecoder, StreamEncoder, VERSION, VERSION_V3,
};
use here_vmstate::{reconcile, MemoryDelta};
use here_workloads::idle::IdleGuest;
use here_workloads::traits::Workload;

use crate::chaos::{ChaosState, FaultPlan, TransferFault};
use crate::config::ReplicationConfig;
use crate::dataplane::{
    encode_pages_parallel_timed, encode_pages_round, translate_vcpus_parallel, CheckpointPools,
    EncodePlan, PayloadMode, PARALLEL_ENCODE_MIN_PAGES,
};
use crate::devmgr::DeviceManager;
use crate::error::{CoreError, CoreResult};
use crate::failover::{detection_time_with_loss, CommitLedger, FailoverRecord};
use crate::period::{PeriodDecision, PeriodManager};
use crate::pipeline::ReplicationStrategy;
use crate::postmortem::{IncidentSnapshot, SERIES_TAIL_LINES};
use crate::report::CheckpointRecord;
use crate::telemetry::SessionTelemetry;
use crate::topology::{make_replica_hosts, Replica, ReplicaSet};
use crate::trace::{Stage, StageEvent, StageTrace};

/// Host memory given to each simulated server (the testbed's 192 GB).
pub(crate) const HOST_MEMORY: ByteSize = ByteSize::from_gib(192);

/// Fixed client-side stack overhead added to every packet's latency.
pub(crate) const CLIENT_STACK_OVERHEAD: SimDuration = SimDuration::from_micros(38);

/// Largest workload advance slice; bounds phase-change and emission
/// timestamp granularity.
pub(crate) const MAX_SLICE: SimDuration = SimDuration::from_millis(250);

/// Where a replication session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SessionPhase {
    /// Hosts and VMs exist; nothing has been copied.
    Created,
    /// The seeding migration is in flight.
    Seeding,
    /// Continuous checkpointing protects the VM.
    Replicating,
    /// The primary died; service continues on the activated replica.
    FailedOver,
    /// The run is over; the report has been (or is being) assembled.
    Completed,
}

impl SessionPhase {
    /// Legal lifecycle edges.
    fn may_enter(self, next: SessionPhase) -> bool {
        use SessionPhase::*;
        matches!(
            (self, next),
            (Created, Seeding)
                | (Seeding, Replicating)
                | (Replicating, FailedOver)
                | (Replicating, Completed)
                | (FailedOver, Completed)
        )
    }
}

/// Everything needed to construct a [`Session`], bundled so the builder
/// hand-off stays readable.
pub(crate) struct SessionSetup {
    pub(crate) name: String,
    pub(crate) memory: ByteSize,
    pub(crate) vcpus: u32,
    pub(crate) cfg: ReplicationConfig,
    pub(crate) workload: Box<dyn Workload>,
    pub(crate) seed: u64,
    pub(crate) load_during_seed: bool,
    pub(crate) verify_consistency: bool,
    pub(crate) chaos: Option<FaultPlan>,
}

/// One epoch's encoded checkpoint, in every wire version the replica set
/// negotiated. A homogeneous set carries exactly one stream; a mixed
/// v2/v3 set carries both, encoded from the same delta, and each replica
/// decodes the stream matching its negotiated version.
#[derive(Debug, Default)]
pub(crate) struct EpochStreams {
    /// Legacy v2 stream (present when any replica negotiated v2).
    pub(crate) v2: Option<ScatterStream>,
    /// Columnar epoch-delta v3 stream (present when any replica
    /// negotiated v3).
    pub(crate) v3: Option<ScatterStream>,
    /// Bytes of the v3 stream's page records (meta + payload columns,
    /// framing included) — the wire-cost model's page-equivalent input.
    pub(crate) v3_page_bytes: u64,
}

impl EpochStreams {
    /// The stream a replica that negotiated `version` decodes.
    pub(crate) fn for_version(&self, version: u16) -> &ScatterStream {
        let stream = if version >= VERSION_V3 {
            self.v3.as_ref().or(self.v2.as_ref())
        } else {
            self.v2.as_ref()
        };
        stream.expect("epoch encoded no stream for a negotiated version")
    }

    /// The stream whose size the stage trace reports: the newest format
    /// on the wire this epoch.
    pub(crate) fn canonical(&self) -> &ScatterStream {
        self.v3
            .as_ref()
            .or(self.v2.as_ref())
            .expect("epoch encoded no stream")
    }

    /// Consumes the bundle, yielding every encoded stream.
    pub(crate) fn into_streams(self) -> impl Iterator<Item = ScatterStream> {
        [self.v2, self.v3].into_iter().flatten()
    }
}

/// Everything mutable during a replicated run.
pub(crate) struct Session {
    pub(crate) name: String,
    pub(crate) phase: SessionPhase,
    pub(crate) clock: SimTime,
    pub(crate) rng: SimRng,
    pub(crate) primary: Box<dyn Hypervisor>,
    /// The N-replica topology; replica 0 is the canonical secondary.
    pub(crate) replicas: ReplicaSet,
    pub(crate) pvm: VmId,
    /// Encode-side translator (primary native → common format); each
    /// replica carries its own failover translator.
    pub(crate) translator: Option<StateTranslator>,
    pub(crate) cfg: ReplicationConfig,
    pub(crate) strategy: &'static dyn ReplicationStrategy,
    pub(crate) threads: u32,
    pub(crate) period: PeriodManager,
    pub(crate) devmgr: DeviceManager,
    pub(crate) client_link: Link,
    pub(crate) workload: Box<dyn Workload>,
    pub(crate) idle_filler: IdleGuest,
    pub(crate) workload_started: bool,
    pub(crate) load_during_seed: bool,
    pub(crate) workload_now_base: SimTime,
    pub(crate) measure_base: SimTime,
    pub(crate) buffering: bool,
    pub(crate) verify_consistency: bool,
    pub(crate) consistency_checks: u64,
    pub(crate) pools: CheckpointPools,
    /// The fault-injection plane; `None` keeps every hook a fast no-op.
    pub(crate) chaos: Option<ChaosState>,
    // accounting
    pub(crate) seq: u64,
    /// Fully-acked epochs; failover activation reads its tail.
    pub(crate) ledger: CommitLedger,
    pub(crate) ops_committed: f64,
    pub(crate) ops_uncommitted: f64,
    pub(crate) disturbance_debt: SimDuration,
    pub(crate) cpu_work: SimDuration,
    pub(crate) max_ckpt_pages: u64,
    pub(crate) checkpoints: Vec<CheckpointRecord>,
    pub(crate) trace: StageTrace,
    pub(crate) spans: SpanRecorder,
    /// Open epoch-root span, from `Pause` until `Resume` closes it.
    pub(crate) epoch_span: Option<SpanId>,
    /// Wall nanoseconds per encode lane from the most recent
    /// [`Session::encode_checkpoint`], drained into lane spans when the
    /// Translate stage is recorded.
    pub(crate) pending_lane_walls: Vec<u64>,
    /// Wire time the most recent Transfer hid under the encode window
    /// (encode/transfer overlap), drained into a `wire_overlap` child
    /// span when the Transfer stage is recorded. Zero when the overlap
    /// knob is off, so the default span tree is untouched.
    pub(crate) pending_overlap_credit: SimDuration,
    /// Lane-pool rounds already reported to telemetry, so each
    /// checkpoint emits at most one `encode_pool` flight event.
    pub(crate) pool_rounds_seen: u64,
    pub(crate) period_decisions: Vec<PeriodDecision>,
    pub(crate) period_series: TimeSeries,
    pub(crate) degradation_series: TimeSeries,
    pub(crate) latencies: Histogram,
    pub(crate) telemetry: SessionTelemetry,
    /// The first armed postmortem capture, if any fired; drained into
    /// [`RunReport::incident`](crate::report::RunReport::incident).
    pub(crate) incident: Option<IncidentSnapshot>,
}

impl Session {
    /// Builds the full replicated stack: a Xen primary, the configured
    /// [`ReplicaSet`] (replica 0 is the strategy's canonical secondary,
    /// with translators for heterogeneous members), the protected VM
    /// booted with the CPUID contract reconciled across *every* host
    /// (§5.3), and one never-run replica shell per replica.
    pub(crate) fn new(setup: SessionSetup) -> CoreResult<Session> {
        let SessionSetup {
            name,
            memory,
            vcpus,
            cfg,
            workload,
            seed,
            load_during_seed,
            verify_consistency,
            chaos,
        } = setup;
        let strategy = crate::pipeline::runtime(cfg.strategy);

        // Hosts: HERE pairs Xen with KVM/kvmtool; Remus pairs Xen with Xen.
        // Beyond replica 0 the topology alternates families (HERE) or
        // stays homogeneous (Remus).
        let mut primary: Box<dyn Hypervisor> = Box::new(XenHypervisor::new(HOST_MEMORY));
        let hosts = make_replica_hosts(strategy, HOST_MEMORY, cfg.topology.replicas.max(1))?;
        // The encode side always translates to the common format keyed by
        // the canonical secondary; each replica re-encodes natively.
        let translator = hosts[0].1;

        // Platform reconciliation (§5.3): the VM boots with the
        // intersection of *every* host's CPUID policy, so it can resume
        // anywhere in the set.
        let mut cpuid = primary.default_cpuid();
        for (host, _) in &hosts {
            cpuid = reconcile(&cpuid, &host.default_cpuid()).cpuid;
        }
        let vm_cfg = VmConfig::new(name.clone(), memory, vcpus)
            .map_err(CoreError::Hypervisor)?
            .with_cpuid(cpuid);
        let pvm = primary.create_vm(vm_cfg.clone())?;
        let mut members = Vec::with_capacity(hosts.len());
        for (index, (mut host, failover_translator)) in hosts.into_iter().enumerate() {
            let vm = host.create_shell(vm_cfg.clone())?;
            let mut member = Replica::new(index as u32, host, vm, failover_translator);
            // Per-session version negotiation: each replica speaks
            // min(session offer, its capability). The default offer is v2,
            // so existing sessions negotiate exactly the legacy format.
            member.wire_version = cfg.negotiated_wire_version(index);
            members.push(member);
        }
        let replicas = ReplicaSet::from_replicas(members);
        primary.vm_mut(pvm)?.dirty_mut().enable_logging();

        let threads = cfg.effective_threads(vcpus);
        let period = PeriodManager::new(cfg.period);
        Ok(Session {
            name,
            phase: SessionPhase::Created,
            clock: SimTime::ZERO,
            rng: SimRng::seed_from(seed).fork("workload"),
            primary,
            replicas,
            pvm,
            translator,
            threads,
            period,
            devmgr: DeviceManager::new(),
            client_link: Link::ethernet_10g(),
            workload,
            idle_filler: IdleGuest::new(),
            workload_started: false,
            load_during_seed,
            workload_now_base: SimTime::ZERO,
            measure_base: SimTime::ZERO,
            buffering: false,
            verify_consistency,
            consistency_checks: 0,
            pools: CheckpointPools::new(),
            chaos: chaos.map(ChaosState::new),
            seq: 0,
            ledger: CommitLedger::with_quorum(
                cfg.topology.replicas.max(1),
                cfg.topology.effective_quorum(),
            ),
            ops_committed: 0.0,
            ops_uncommitted: 0.0,
            disturbance_debt: SimDuration::ZERO,
            cpu_work: SimDuration::ZERO,
            max_ckpt_pages: 0,
            checkpoints: Vec::new(),
            trace: StageTrace::new(),
            spans: SpanRecorder::new(),
            epoch_span: None,
            pending_lane_walls: Vec::new(),
            pending_overlap_credit: SimDuration::ZERO,
            pool_rounds_seen: 0,
            period_decisions: Vec::new(),
            period_series: TimeSeries::new("period_secs"),
            degradation_series: TimeSeries::new("degradation_pct"),
            latencies: Histogram::new(),
            telemetry: {
                let telemetry = if cfg.health_plane {
                    SessionTelemetry::with_health_plane(
                        cfg.period,
                        cfg.topology.replicas.max(1),
                        cfg.topology.effective_quorum(),
                        cfg.topology.stale_epoch_lag,
                    )
                } else {
                    SessionTelemetry::new(cfg.period)
                };
                match cfg.flight_recorder_capacity {
                    Some(capacity) => telemetry.with_flight_capacity(capacity),
                    None => telemetry,
                }
            },
            incident: None,
            cfg,
            strategy,
        })
    }

    /// Moves the session to `next`, asserting the edge is legal.
    pub(crate) fn enter_phase(&mut self, next: SessionPhase) {
        assert!(
            self.phase.may_enter(next),
            "invalid session transition {:?} -> {:?}",
            self.phase,
            next
        );
        self.phase = next;
    }

    /// Converts an absolute instant to report time (relative to the
    /// measurement start).
    pub(crate) fn rel(&self, t: SimTime) -> SimTime {
        SimTime::ZERO + t.saturating_duration_since(self.measure_base)
    }

    /// Stashes the wire time the upcoming Transfer record hid under the
    /// encode window; drained into a `wire_overlap` child span by
    /// [`Session::record_stage`].
    pub(crate) fn note_overlap_credit(&mut self, credit: SimDuration) {
        self.pending_overlap_credit = credit;
    }

    /// Appends one stage event at absolute instant `at`. `wall` carries
    /// the host nanoseconds the stage's real work took, where the stage
    /// does real work (see [`StageEvent::wall_nanos`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_stage(
        &mut self,
        seq: u64,
        stage: Stage,
        at: SimTime,
        duration: SimDuration,
        wall: Option<u64>,
        pages: u64,
        bytes: u64,
    ) {
        let at = self.rel(at);
        let event = StageEvent {
            seq,
            stage,
            at,
            duration,
            wall_nanos: wall,
            pages,
            bytes,
        };
        self.telemetry.on_stage_event(&event);
        self.record_stage_span(&event);
        self.trace.record(event);
    }

    /// Emits the span-tree view of one stage event: the `Pause` stage
    /// opens the epoch root, each stage becomes a child span, `Translate`
    /// drains the stashed per-lane encode walls into lane child spans,
    /// `Transfer` adds the replica-side apply span (linked across the
    /// simulated wire by epoch id, not by parent), and `Resume` closes
    /// the root.
    fn record_stage_span(&mut self, event: &StageEvent) {
        let start = event.at.as_nanos();
        let end = start + event.duration.as_nanos();
        if event.stage == Stage::Pause {
            let root = self.spans.open(
                SpanDraft::new("epoch", "epoch", Track::Primary, start)
                    .epoch(event.seq)
                    .attr_u64("seq", event.seq),
            );
            self.epoch_span = Some(root);
        }
        let mut draft = SpanDraft::new(event.stage.label(), "stage", Track::Primary, start)
            .lasting(event.duration.as_nanos())
            .epoch(event.seq)
            .attr_u64("pages", event.pages)
            .attr_u64("bytes", event.bytes);
        if let Some(parent) = self.epoch_span {
            draft = draft.child_of(parent);
        }
        if let Some(wall) = event.wall_nanos {
            draft = draft.wall(wall);
        }
        let stage_span = self.spans.push(draft);
        match event.stage {
            Stage::Translate => {
                // Each lane worked inside the Translate window; its share
                // of virtual time is the stage interval, its measured time
                // the stashed wall probe.
                let walls = std::mem::take(&mut self.pending_lane_walls);
                for (lane, wall) in walls.into_iter().enumerate() {
                    self.spans.push(
                        SpanDraft::new(
                            "encode_lane",
                            "lane",
                            Track::PrimaryLane(lane as u32),
                            start,
                        )
                        .lasting(event.duration.as_nanos())
                        .epoch(event.seq)
                        .child_of(stage_span)
                        .wall(wall)
                        .attr_u64("lane", lane as u64),
                    );
                }
            }
            Stage::Transfer => {
                // Wire time hidden under the encode window by the
                // streamed overlap channel: recorded as a child of the
                // (shortened) Transfer stage so the span tree shows what
                // the pause no longer pays. Only emitted when the
                // overlap knob produced a credit — the default tree (and
                // its fingerprint) is unchanged.
                let credit = std::mem::take(&mut self.pending_overlap_credit);
                if credit > SimDuration::ZERO {
                    self.spans.push(
                        SpanDraft::new("wire_overlap", "overlap", Track::Primary, start)
                            .lasting(credit.as_nanos())
                            .epoch(event.seq)
                            .child_of(stage_span),
                    );
                }
                // Each replica decodes and installs its copy of the stream
                // inside the Transfer window, on its own host and track:
                // linked by epoch id, not by parent.
                for index in 0..self.replicas.len() as u32 {
                    let mut replica =
                        SpanDraft::new("decode_restore", "wire", Track::Replica(index), start)
                            .lasting(event.duration.as_nanos())
                            .epoch(event.seq)
                            .attr_u64("pages", event.pages)
                            .attr_u64("bytes", event.bytes);
                    if index > 0 {
                        replica = replica.attr_u64("replica", u64::from(index));
                    }
                    if let Some(wall) = event.wall_nanos {
                        replica = replica.wall(wall);
                    }
                    self.spans.push(replica);
                }
            }
            Stage::Resume => {
                if let Some(root) = self.epoch_span.take() {
                    self.spans.close(root, end);
                }
            }
            _ => {}
        }
    }

    /// Advances the protected VM (and virtual time) by `dt`, slicing for
    /// emission timestamps and phase changes. Returns early if the
    /// workload completes and `stop_done` is set.
    pub(crate) fn advance(&mut self, dt: SimDuration, stop_done: bool) {
        let end = self.clock + dt;
        while self.clock < end {
            let slice = (end - self.clock).clamp(SimDuration::ZERO, MAX_SLICE);
            // Apply pending guest-side disturbance: the workload loses this
            // much effective CPU time after each pause (§8.6).
            let lost = self.disturbance_debt.clamp(SimDuration::ZERO, slice);
            self.disturbance_debt -= lost;
            let effective = slice - lost;
            let slice_start = self.clock;
            let in_seed = !self.workload_started;
            let progress = if effective.is_zero() {
                here_workloads::traits::Progress::default()
            } else {
                let vm = self
                    .primary
                    .vm_mut(self.pvm)
                    .expect("primary must be alive while advancing");
                if in_seed && !self.load_during_seed {
                    // The benchmark has not started yet; an idle guest
                    // supplies the background dirtying the seed copies.
                    self.idle_filler
                        .advance(slice_start, effective, vm, &mut self.rng)
                } else {
                    let wnow = SimTime::ZERO
                        + slice_start.saturating_duration_since(self.workload_now_base);
                    self.workload.advance(wnow, effective, vm, &mut self.rng)
                }
            };
            self.ops_uncommitted += progress.ops;
            for emission in progress.emissions {
                let at = slice_start + emission.offset;
                if self.buffering {
                    self.devmgr.buffer_outgoing(emission.size, at);
                } else {
                    let latency =
                        self.client_link.transfer_time(emission.size) * 2 + CLIENT_STACK_OVERHEAD;
                    self.latencies.observe(latency.as_secs_f64());
                }
            }
            self.clock += slice;
            self.tick_vcpus(slice);
            if stop_done && self.workload.is_done() {
                return;
            }
        }
    }

    /// Advances guest CPU state so checkpoints carry evolving registers.
    fn tick_vcpus(&mut self, dt: SimDuration) {
        let Ok(vm) = self.primary.vm_mut(self.pvm) else {
            return;
        };
        let cycles = dt.as_nanos().saturating_mul(21) / 10; // 2.1 GHz
        let ops_bits = self.ops_uncommitted as u64;
        for vcpu in vm.vcpus_mut() {
            vcpu.regs.tsc = vcpu.regs.tsc.wrapping_add(cycles);
            vcpu.regs.rip = 0xffff_ffff_8100_0000 + (vcpu.regs.tsc % 0x1_0000);
            vcpu.regs.set_gpr(Gpr::Rax, ops_bits);
        }
    }

    /// Snapshot-and-clear the primary's dirty bitmap, returning the
    /// snapshot; the harvest also drains the PML rings so they do not grow
    /// without bound. Delegates to the hypervisor's harvest primitive.
    pub(crate) fn take_dirty_snapshot(&mut self) -> here_hypervisor::dirty::DirtyBitmap {
        self.primary
            .snapshot_dirty(self.pvm)
            .expect("primary must be alive at checkpoint")
    }

    /// Encodes a checkpoint stream: the delta, every vCPU's state
    /// (translated to the common format for heterogeneous pairs), and the
    /// device identities. This is the *send side* of the data plane — real
    /// bytes are produced and checksummed.
    ///
    /// The delta is sharded across encode lanes: scoped workers each frame
    /// their own page-batch record into a pooled buffer, and the frozen
    /// lane segments are spliced scatter-gather style into the returned
    /// [`ScatterStream`] — no concatenation, no re-sort. vCPU translation
    /// fans out across the same lanes. Buffers come back to the pool via
    /// [`Session::recycle_stream`] once the transfer lands.
    pub(crate) fn encode_checkpoint(
        &mut self,
        delta: &MemoryDelta,
        seq: u64,
    ) -> CoreResult<EpochStreams> {
        let need_v3 = self.wire_v3_active();
        let need_v2 = self.replicas.iter().any(|r| r.wire_version() < VERSION_V3);
        let mut streams = EpochStreams::default();
        if need_v3 {
            // The v3 stream is canonical when present: its encode drives
            // the lane telemetry and span walls.
            let (stream, page_bytes) =
                self.encode_checkpoint_stream(delta, seq, VERSION_V3, true)?;
            streams.v3 = Some(stream);
            streams.v3_page_bytes = page_bytes;
        }
        if need_v2 {
            let (stream, _) = self.encode_checkpoint_stream(delta, seq, VERSION, !need_v3)?;
            streams.v2 = Some(stream);
        }
        Ok(streams)
    }

    /// True when any replica negotiated wire v3 this session — the gate
    /// for every delta-base shadow bookkeeping path, so an all-v2 session
    /// does no extra work.
    pub(crate) fn wire_v3_active(&self) -> bool {
        self.replicas.iter().any(|r| r.wire_version() >= VERSION_V3)
    }

    /// Encodes one epoch stream in `version`. Returns the stream and the
    /// byte count of its page records (the lanes' output, excluding the
    /// head/tail segments). `canonical` gates lane telemetry so a mixed
    /// set's double-encode reports each lane exactly once.
    fn encode_checkpoint_stream(
        &mut self,
        delta: &MemoryDelta,
        seq: u64,
        version: u16,
        canonical: bool,
    ) -> CoreResult<(ScatterStream, u64)> {
        let lanes = self.cfg.effective_encode_lanes(self.threads);
        let mode = if version >= VERSION_V3 {
            // Delta records name the committed epoch both sides hold: the
            // primary's shadow advances only at quorum commit, so an
            // aborted epoch re-encodes against the same base.
            PayloadMode::Columnar {
                base_epoch: self.pools.shadow.epoch(),
            }
        } else {
            PayloadMode::Metadata
        };

        // Head segment: preamble + begin record.
        let mut head =
            StreamEncoder::with_buffer_versioned(self.pools.buffers.checkout(64), version);
        head.push(&Record::CheckpointBegin { seq });
        let mut stream = ScatterStream::from(head.finish());

        // Page lanes, encoded concurrently into pooled buffers. Chunk
        // framing and the streamed window are opt-in: with both knobs off
        // this is the legacy shard path, byte-identical to prior releases.
        let at_nanos = self.rel(self.clock).as_nanos();
        let chunk_pages = self.cfg.encode_chunk_pages;
        let window = self.cfg.overlap_channel_depth;
        let mut page_bytes = 0u64;
        let lane_walls = if chunk_pages.is_some() || window.is_some() {
            let plan = EncodePlan {
                lanes: if delta.len() < PARALLEL_ENCODE_MIN_PAGES {
                    1
                } else {
                    lanes
                },
                mode,
                chunk_pages,
                window,
            };
            let (walls, _stats) = encode_pages_round(
                delta,
                &plan,
                &mut self.pools.buffers,
                &self.pools.lanes,
                |_, segment| {
                    page_bytes += segment.len() as u64;
                    stream.push(segment)
                },
            );
            walls
        } else {
            let (segments, walls) = encode_pages_parallel_timed(
                delta,
                lanes,
                mode,
                &mut self.pools.buffers,
                &self.pools.lanes,
            );
            for segment in segments {
                page_bytes += segment.len() as u64;
                stream.push(segment);
            }
            walls
        };
        if canonical {
            for (lane, &wall) in lane_walls.iter().enumerate() {
                self.telemetry
                    .on_encode_lane(seq, lane as u64, wall, at_nanos);
            }
            self.pending_lane_walls = lane_walls;
        }

        // Tail segment: vCPU state (capture serial, translate parallel),
        // device identities, and the cross-check trailer.
        let vcpu_count = self.primary.vm(self.pvm)?.vcpus().len() as u32;
        let mut blobs = Vec::with_capacity(vcpu_count as usize);
        for i in 0..vcpu_count {
            blobs.push(self.primary.get_vcpu_state(self.pvm, VcpuId::new(i))?);
        }
        let cirs = translate_vcpus_parallel(&blobs, self.translator.as_ref(), lanes)?;
        let mut tail = self.pools.buffers.checkout(256);
        for (index, cir) in cirs.into_iter().enumerate() {
            encode_record_into(
                &Record::VcpuState {
                    index: index as u32,
                    cir,
                },
                &mut tail,
            );
        }
        for dev in self.primary.vm(self.pvm)?.devices() {
            encode_record_into(&Record::Device(dev.identity.clone()), &mut tail);
        }
        encode_record_into(
            &Record::CheckpointEnd {
                seq,
                pages_total: delta.len() as u64,
            },
            &mut tail,
        );
        stream.push(tail.freeze());
        Ok((stream, page_bytes))
    }

    /// Decodes a checkpoint stream and installs it on one replica — the
    /// *receive side*: pages land in that replica's memory, vCPU state is
    /// re-encoded in its host's native format, and the page count is
    /// cross-checked against the stream trailer.
    ///
    /// The apply is **two-phase**: the whole stream is decoded and
    /// validated into the replica's own staging buffer first (frame
    /// checksums, trailer cross-check, trailer presence), and only then
    /// installed. A torn, truncated or corrupted stream therefore can
    /// never leave a partial epoch on the replica — the previous committed
    /// epoch stays authoritative, which is the invariant the epoch-abort
    /// path and failover activation rely on.
    ///
    /// A successful apply first drains the replica's catch-up backlog
    /// (pages it missed while its link misbehaved), then installs the
    /// staged epoch, so the newest version always wins on overlap.
    pub(crate) fn apply_checkpoint(
        &mut self,
        stream: ScatterStream,
        seq: u64,
        replica: u32,
    ) -> CoreResult<()> {
        // Phase 1: decode + validate, touching nothing of the replica.
        let kind = self.replicas.get(replica).kind();
        let member = self.replicas.get_mut(replica);
        let negotiated = member.wire_version;
        let delta_base = member.pools.shadow.epoch();
        let may_rebase = !member.backlog.is_empty();
        let mut staged = std::mem::take(&mut member.pools.apply);
        staged.clear();
        let mut vcpus: Vec<(u32, VcpuStateBlob)> = Vec::new();
        let validated = Self::decode_checkpoint(
            stream,
            kind,
            &mut staged,
            &mut vcpus,
            seq,
            negotiated,
            delta_base,
            may_rebase,
        );
        let rebase_to = match validated {
            Ok(rebase_to) => rebase_to,
            Err(e) => {
                staged.clear();
                self.replicas.get_mut(replica).pools.apply = staged;
                return Err(e);
            }
        };

        // Phase 2: install the fully validated epoch — backlog first, so
        // the staged (newer) versions win on overlap.
        let member = self.replicas.get_mut(replica);
        let backlog = std::mem::take(&mut member.backlog);
        if let Some(base) = rebase_to {
            // Backlog catch-up under v3: the parked pages *are* the
            // committed epochs this replica missed, so folding them into
            // the shadow reconstructs the stream's delta base exactly.
            member.pools.shadow.rebase(&backlog, base);
        }
        let vm = member.host.vm_mut(member.vm)?;
        for &(page, rec) in backlog.entries() {
            vm.memory_mut().install_page(page, rec)?;
        }
        for &(page, rec) in &staged {
            vm.memory_mut().install_page(page, rec)?;
        }
        for (index, blob) in vcpus {
            member
                .host
                .set_vcpu_state(member.vm, VcpuId::new(index), blob)?;
        }
        staged.clear();
        member.pools.apply = staged;
        Ok(())
    }

    /// Phase 1 of [`Session::apply_checkpoint`]: decodes `stream` into the
    /// staging buffers, validating every frame and the trailer cross-check,
    /// without touching the replica.
    ///
    /// The decoder is pinned to the replica's `negotiated` version — a
    /// stream in any other version is a protocol violation
    /// ([`WireError::StaleVersion`](here_vmstate::WireError::StaleVersion)).
    /// Columnar records must name `delta_base` as their delta base; a
    /// newer base is accepted only when `may_rebase` (the replica holds
    /// the missed epochs as parked backlog), and the accepted base comes
    /// back as `Ok(Some(base))` so the caller can fold the backlog into
    /// its shadow before installing.
    #[allow(clippy::too_many_arguments)]
    fn decode_checkpoint(
        stream: ScatterStream,
        kind: HypervisorKind,
        staged: &mut Vec<(PageId, PageVersion)>,
        vcpus: &mut Vec<(u32, VcpuStateBlob)>,
        seq: u64,
        negotiated: u16,
        delta_base: u64,
        may_rebase: bool,
    ) -> CoreResult<Option<u64>> {
        let mut dec = StreamDecoder::new_negotiated(stream, negotiated)?;
        let mut pages_seen = 0u64;
        let mut saw_trailer = false;
        let mut rebase_to: Option<u64> = None;
        while let Some(record) = dec.next_record()? {
            match record {
                Record::CheckpointBegin { .. } | Record::StreamHeader { .. } => {}
                Record::PageBatch(batch) => {
                    pages_seen += batch.len() as u64;
                    staged.extend(batch.entries().iter().copied());
                }
                Record::PageColumns(batch) => {
                    let base = rebase_to.unwrap_or(delta_base);
                    if batch.base_epoch() != base {
                        if may_rebase && rebase_to.is_none() && batch.base_epoch() > delta_base {
                            rebase_to = Some(batch.base_epoch());
                        } else {
                            batch.check_base(base)?;
                        }
                    }
                    pages_seen += batch.len() as u64;
                    staged.extend(batch.entries().iter().map(|&(page, rec, _)| (page, rec)));
                }
                Record::PageDataBatch(batch) => {
                    pages_seen += batch.pages().len() as u64;
                    for (page, rec, _content) in batch.pages() {
                        staged.push((*page, *rec));
                    }
                }
                Record::VcpuState { index, cir } => {
                    let blob = match kind {
                        HypervisorKind::Xen => {
                            VcpuStateBlob::Xen(XenVcpuState::from_arch(&cir.regs, cir.online))
                        }
                        HypervisorKind::Kvm => {
                            VcpuStateBlob::Kvm(KvmVcpuState::from_arch(&cir.regs, cir.online))
                        }
                    };
                    vcpus.push((index, blob));
                }
                Record::Device(_) => {
                    // Identities are checked on failover; the replica's own
                    // device set is built by the device manager then.
                }
                Record::CheckpointEnd { pages_total, .. } => {
                    if pages_total != pages_seen {
                        return Err(CoreError::InvalidScenario(format!(
                            "checkpoint {seq}: {pages_seen} pages received, header says {pages_total}"
                        )));
                    }
                    saw_trailer = true;
                }
                Record::Ack { .. } => {}
            }
        }
        if !saw_trailer {
            // A stream that ends cleanly on a record boundary but without
            // its trailer is torn — reject it like any truncated frame.
            return Err(CoreError::Wire(here_vmstate::WireError::Truncated));
        }
        Ok(rebase_to)
    }

    /// Ships a delta plus vCPU/device state through the wire codec and
    /// installs it on **every** replica (encode once + apply per replica —
    /// the seeding migration's stop-and-copy uses this; the continuous
    /// phase splits it across the Translate and Transfer stages).
    pub(crate) fn ship_checkpoint(&mut self, delta: &MemoryDelta, seq: u64) -> CoreResult<()> {
        let streams = self.encode_checkpoint(delta, seq)?;
        for replica in 0..self.replicas.len() as u32 {
            let version = self.replicas.get(replica).wire_version();
            self.apply_checkpoint(streams.for_version(version).clone(), seq, replica)?;
        }
        self.recycle_streams(streams);
        Ok(())
    }

    /// Returns a consumed stream's segment allocations to the buffer pool.
    /// Call after the receive side has decoded its clone: the refcount on
    /// each segment is back to one, so `try_into_mut` reclaims the full
    /// allocations for the next checkpoint's encode lanes.
    pub(crate) fn recycle_stream(&mut self, stream: ScatterStream) {
        for segment in stream.into_segments() {
            self.pools.buffers.recycle(segment);
        }
    }

    /// Recycles every stream of an epoch's [`EpochStreams`] bundle.
    pub(crate) fn recycle_streams(&mut self, streams: EpochStreams) {
        for stream in streams.into_streams() {
            self.recycle_stream(stream);
        }
    }

    /// Runs the commit side effects once the ledger declared epoch `seq`
    /// committed (a quorum of replicas fully applied it): releases
    /// buffered output at the commit instant and records client
    /// latencies. The ledger entry itself is appended by
    /// [`CommitLedger::ack`] as the quorum-th ack lands.
    pub(crate) fn on_epoch_committed(&mut self, _seq: u64) {
        for released in self.devmgr.on_commit(self.clock) {
            let latency = released.buffering_delay()
                + self.client_link.transfer_time(released.packet.size) * 2
                + CLIENT_STACK_OVERHEAD;
            self.latencies.observe(latency.as_secs_f64());
        }
        self.ops_committed += self.ops_uncommitted;
        self.ops_uncommitted = 0.0;
        self.telemetry.on_packet_stats(
            self.devmgr.packets_buffered(),
            self.devmgr.packets_released(),
            self.devmgr.packets_discarded(),
        );
    }

    /// Queues the pages of epoch `seq`'s delta as catch-up backlog for a
    /// replica whose transfer failed this epoch: they are installed
    /// (oldest first, newest version winning) on its next successful
    /// apply, so a slow replica converges asynchronously instead of
    /// blocking the quorum.
    pub(crate) fn note_replica_backlog(&mut self, replica: u32, delta: &MemoryDelta) {
        self.replicas.get_mut(replica).backlog.merge(delta.clone());
    }

    /// Re-evaluates every replica's staleness after epoch `seq`'s acks
    /// landed: a replica trailing the newest acked epoch by more than the
    /// configured lag bound is declared stale (once, on the flight
    /// recorder); it is cleared when it catches back up. Single-replica
    /// topologies have no lag by construction and skip the scan.
    pub(crate) fn update_staleness(&mut self, seq: u64) {
        if self.replicas.len() < 2 {
            return;
        }
        let bound = self.cfg.topology.stale_epoch_lag;
        let at_nanos = self.rel(self.clock).as_nanos();
        for index in 0..self.replicas.len() as u32 {
            let lag = self.ledger.lag_of(index, seq);
            let member = self.replicas.get_mut(index);
            if lag > bound {
                if !member.stale {
                    member.stale = true;
                    self.telemetry.on_replica_stale(index, lag, at_nanos);
                }
            } else {
                member.stale = false;
            }
        }
    }

    /// One committed epoch's health-plane tick (no-op unless the config
    /// armed [`ReplicationConfig::health_plane`]): gathers each replica's
    /// ack mark, lag and backlog depth from the ledger and replica set,
    /// hands them to the telemetry bundle's series/health/alert pipeline,
    /// and lays a zero-width controller span for every alert edge so
    /// alerts land in the Chrome trace next to the epochs that caused
    /// them.
    pub(crate) fn health_tick(&mut self, record: &CheckpointRecord, at_nanos: u64) {
        if !self.cfg.health_plane {
            return;
        }
        let seq = record.seq;
        let replica_count = self.replicas.len() as u32;
        let mut observations = Vec::with_capacity(replica_count as usize);
        for index in 0..replica_count {
            observations.push(HealthObservation {
                replica: index,
                ack_mark: self.ledger.last_acked(index).unwrap_or(0),
                lag_epochs: self.ledger.lag_of(index, seq),
                backlog_pages: self.replicas.get(index).backlog_pages(),
                retries: 0, // filled in by the telemetry bundle's accounting
            });
        }
        let events = self.telemetry.on_health_tick(
            seq,
            at_nanos,
            record.degradation,
            record.period.as_nanos(),
            record.pause.as_nanos(),
            &observations,
        );
        let firing = events
            .iter()
            .find(|e| e.state.label() == "firing")
            .map(|e| (e.rule, e.detail.clone()));
        for event in events {
            self.spans.push(
                SpanDraft::new(event.rule, "alert", Track::Controller, at_nanos)
                    .epoch(seq)
                    .attr_str("state", event.state.label())
                    .attr_str("severity", event.severity.label()),
            );
        }
        if let Some((rule, detail)) = firing {
            self.capture_incident("alert", seq, at_nanos, format!("{rule}: {detail}"));
        }
    }

    /// Freezes the postmortem [`IncidentSnapshot`] if capture is armed and
    /// no earlier trigger beat this one: the trailing flight-recorder
    /// window, the ledger and per-replica ack trails, the trigger epoch's
    /// span subtree, health transitions and the windowed-series tail — all
    /// read-only, so arming capture never perturbs the run.
    pub(crate) fn capture_incident(
        &mut self,
        trigger: &'static str,
        epoch: u64,
        at_nanos: u64,
        detail: String,
    ) {
        if !self.cfg.postmortem_capture || self.incident.is_some() {
            return;
        }
        let snap = self.telemetry.snapshot();
        let (transitions, series_tail, active_alerts, alert_log_jsonl) = match snap.health {
            Some(h) => {
                let tail_start = h
                    .series_jsonl
                    .lines()
                    .count()
                    .saturating_sub(SERIES_TAIL_LINES);
                let tail = h
                    .series_jsonl
                    .lines()
                    .skip(tail_start)
                    .map(|l| format!("{l}\n"))
                    .collect::<String>();
                let transitions = h
                    .transitions
                    .iter()
                    .map(|t| {
                        format!(
                            "r{}:{}->{}@{}",
                            t.replica,
                            t.from.label(),
                            t.to.label(),
                            t.epoch
                        )
                    })
                    .collect();
                (transitions, tail, h.active_alerts, h.alert_log_jsonl)
            }
            None => (Vec::new(), String::new(), Vec::new(), String::new()),
        };
        let spans = self
            .spans
            .spans()
            .iter()
            .filter(|s| s.epoch == Some(epoch) || s.category == "failover")
            .map(|s| {
                format!(
                    "{}|{}|{}:{}|{}|{}|{}",
                    s.name,
                    s.category,
                    s.track.pid(),
                    s.track.tid(),
                    s.epoch.map(|e| e.to_string()).unwrap_or_default(),
                    s.start_nanos,
                    s.duration_nanos
                )
            })
            .collect();
        self.incident = Some(IncidentSnapshot {
            trigger: trigger.to_string(),
            epoch,
            at_nanos,
            detail,
            flight_json: crate::postmortem::normalize_flight_dump(&snap.flight_recorder_json),
            commits: self.ledger.entries().to_vec(),
            acks: self
                .ledger
                .ack_trails()
                .iter()
                .enumerate()
                .map(|(i, acks)| crate::failover::ReplicaAcks {
                    replica: i as u32,
                    acks: acks.clone(),
                })
                .collect(),
            spans,
            transitions,
            series_tail,
            active_alerts,
            alert_log_jsonl,
        });
    }

    /// Mutable access to the activated replica's host hypervisor (valid
    /// only after failover latched one).
    pub(crate) fn active_replica_host_mut(&mut self) -> &mut dyn Hypervisor {
        self.replicas.active_mut().host.as_mut()
    }

    /// Verifies that replica `replica` is an exact copy of the paused
    /// primary: every page version identical, every vCPU architecturally
    /// equal.
    pub(crate) fn assert_replica_matches_primary(&self, seq: u64, replica: u32) -> CoreResult<()> {
        let primary = self.primary.vm(self.pvm)?;
        let member = self.replicas.get(replica);
        let rvm = member.host.vm(member.vm)?;
        if !primary.memory().content_equals(rvm.memory()) {
            let diff = primary.memory().diff(rvm.memory(), 4);
            return Err(CoreError::InvalidScenario(format!(
                "checkpoint {seq}: replica {replica} memory diverged at frames {diff:?}"
            )));
        }
        for (p, r) in primary.vcpus().iter().zip(rvm.vcpus()) {
            if p.regs.digest() != r.regs.digest() {
                return Err(CoreError::InvalidScenario(format!(
                    "checkpoint {seq}: replica {replica} vCPU {} state diverged",
                    p.id.index()
                )));
            }
        }
        Ok(())
    }

    /// Reads the current content of `pages` from the primary as a delta.
    pub(crate) fn pages_to_delta(&self, pages: &[PageId]) -> CoreResult<MemoryDelta> {
        let vm = self.primary.vm(self.pvm)?;
        let mut delta = MemoryDelta::new();
        for &p in pages {
            delta.push(p, vm.memory().page(p)?);
        }
        Ok(delta)
    }

    /// Installs a pre-copy round's delta directly into every replica's
    /// memory.
    pub(crate) fn install_delta(&mut self, delta: &MemoryDelta, _iter: u32) -> CoreResult<()> {
        for member in self.replicas.iter_mut() {
            let vm = member.host.vm_mut(member.vm)?;
            for &(page, rec) in delta.entries() {
                vm.memory_mut().install_page(page, rec)?;
            }
        }
        Ok(())
    }

    /// Checks the fault plane for a primary-host fault scheduled at the
    /// entry of `stage` of epoch `seq`; if one fires, the primary goes
    /// down and the epoch loop receives
    /// [`CoreError::InjectedPrimaryFault`] to turn into a failover.
    pub(crate) fn chaos_primary_fault(&mut self, seq: u64, stage: Stage) -> CoreResult<()> {
        let Some(chaos) = self.chaos.as_mut() else {
            return Ok(());
        };
        let Some(outcome) = chaos.primary_fault(seq, stage) else {
            return Ok(());
        };
        self.primary.inject_dos(outcome);
        Err(CoreError::InjectedPrimaryFault {
            seq,
            stage,
            outcome,
        })
    }

    /// Asks the fault plane what happens to transfer attempt `attempt` of
    /// epoch `seq` toward replica `replica`, recording any injected fault
    /// on the flight recorder.
    pub(crate) fn chaos_transfer_fault(
        &mut self,
        seq: u64,
        replica: u32,
        attempt: u32,
    ) -> Option<TransferFault> {
        let fault = self.chaos.as_mut()?.transfer_fault(seq, replica, attempt)?;
        let at_nanos = self.rel(self.clock).as_nanos();
        let message = if replica == 0 {
            format!("checkpoint {seq} transfer attempt {attempt}")
        } else {
            format!("checkpoint {seq} transfer attempt {attempt} replica {replica}")
        };
        self.telemetry
            .on_fault(fault.reason(), false, message, at_nanos);
        Some(fault)
    }

    /// Records one failed-and-retried transfer attempt: counters, a
    /// flight-recorder retry event, and a zero-width controller span.
    pub(crate) fn note_transfer_retry(
        &mut self,
        seq: u64,
        replica: u32,
        attempt: u32,
        reason: &'static str,
        backoff: SimDuration,
    ) {
        if let Some(chaos) = self.chaos.as_mut() {
            chaos.stats.transfer_retries += 1;
        }
        let at_nanos = self.rel(self.clock).as_nanos();
        self.telemetry.on_transfer_retry(
            seq,
            replica,
            attempt,
            reason,
            backoff.as_nanos(),
            at_nanos,
        );
        self.spans.push(
            SpanDraft::new("transfer_retry", "fault", Track::Controller, at_nanos)
                .epoch(seq)
                .attr_u64("attempt", attempt as u64)
                .attr_str("reason", reason),
        );
    }

    /// Records a transfer that succeeded after `failed_attempts` failures.
    pub(crate) fn note_transfer_recovery(&mut self, seq: u64, failed_attempts: u32) {
        if let Some(chaos) = self.chaos.as_mut() {
            chaos.stats.transfer_recoveries += 1;
        }
        self.telemetry.on_transfer_recovery(seq, failed_attempts);
    }

    /// Aborts epoch `seq` after its transfer exhausted the retry budget:
    /// the partially transferred checkpoint is already discarded, so this
    /// re-marks the harvested pages dirty (they must ride the next epoch —
    /// without this the replica would diverge forever), resumes the VM,
    /// closes the epoch span, and records the abort. Nothing commits: the
    /// buffered output and uncommitted ops carry over to the next
    /// successful epoch, and the previous committed epoch stays
    /// authoritative on the replica.
    pub(crate) fn abort_epoch(&mut self, seq: u64, attempts: u32) -> CoreResult<()> {
        {
            // The harvested delta is still pooled (it is recycled, not
            // cleared, after Translate): every page it names was wiped
            // from the primary's dirty bitmap at Harvest but never reached
            // the replica.
            let vm = self.primary.vm_mut(self.pvm)?;
            for &(page, _) in self.pools.delta.entries() {
                vm.dirty_mut().bitmap_mut().mark(page);
            }
        }
        self.primary.vm_mut(self.pvm)?.resume()?;
        self.disturbance_debt += self.cfg.costs.pause_disturbance;
        let at_nanos = self.rel(self.clock).as_nanos();
        if let Some(root) = self.epoch_span.take() {
            self.spans.close(root, at_nanos);
        }
        self.spans.push(
            SpanDraft::new("epoch_abort", "fault", Track::Controller, at_nanos)
                .epoch(seq)
                .attr_u64("attempts", attempts as u64),
        );
        if let Some(chaos) = self.chaos.as_mut() {
            chaos.stats.epochs_aborted += 1;
        }
        self.telemetry.on_epoch_abort(seq, attempts, at_nanos);
        self.capture_incident(
            "epoch_abort",
            seq,
            at_nanos,
            format!("epoch {seq} aborted after {attempts} transfer attempts"),
        );
        Ok(())
    }

    /// Handles a primary-host failure: detect, discard, pick the replica
    /// with the most recent committed state, switch devices, activate.
    pub(crate) fn failover(&mut self, failed_at: SimTime) -> CoreResult<FailoverRecord> {
        self.enter_phase(SessionPhase::FailedOver);
        // A failure mid-epoch leaves the epoch root span open; close it at
        // the failure instant — the epoch never completed.
        if let Some(root) = self.epoch_span.take() {
            self.spans.close(root, self.rel(failed_at).as_nanos());
        }
        let post_health = self.primary.health();
        debug_assert_ne!(post_health, HostHealth::Healthy);
        let lost_heartbeats = self
            .chaos
            .as_ref()
            .map_or(0, |c| c.heartbeat_loss_periods());
        let detected_at =
            detection_time_with_loss(&self.cfg.heartbeat, failed_at, post_health, lost_heartbeats);
        self.clock = detected_at;

        // Everything since the last commit is rolled back.
        let ops_lost = self.ops_uncommitted;
        self.ops_uncommitted = 0.0;

        // Activate the replica holding the freshest *committed* state —
        // the ledger tracks per-replica acks, so a stale or partitioned
        // replica can never win over one that kept up. The set's
        // activation latch asserts at most one replica ever activates.
        let best = self.ledger.best_replica();
        self.replicas.activate(best);
        let (switch, activation, family_kind) = {
            let member = self.replicas.active_mut();
            let translator = member.translator;
            let vm = member.host.vm_mut(member.vm)?;
            let switch = self.devmgr.switch_devices(vm, translator.as_ref());
            let activation = member.host.activation_latency()
                + self.cfg.costs.device_switch
                + self.cfg.costs.state_load;
            (switch, activation, member.host.kind())
        };
        self.clock += activation;
        {
            let member = self.replicas.active_mut();
            member.host.vm_mut(member.vm)?.activate()?;
        }
        let record = FailoverRecord {
            failed_at: self.rel(failed_at),
            detected_at: self.rel(detected_at),
            resumed_at: self.rel(self.clock),
            // Activation provably uses the last *fully-acked* epoch: the
            // ledger is appended only at Ack, so an in-flight or aborted
            // epoch (whose seq is already bumped) can never appear here.
            resumed_from_checkpoint: self.ledger.last_committed().unwrap_or(0),
            activated_replica: best,
            packets_lost: switch.packets_discarded,
            ops_lost,
            devices_switched: switch.devices_switched,
        };
        self.telemetry.on_failover(&record);
        let family = match family_kind {
            HypervisorKind::Xen => "xen",
            HypervisorKind::Kvm => "kvm",
        };
        self.telemetry.on_device_switch(
            switch.devices_switched,
            switch.packets_discarded,
            family,
            record.detected_at.as_nanos(),
        );
        self.record_failover_spans(&record, switch.devices_switched, family);
        self.telemetry.on_packet_stats(
            self.devmgr.packets_buffered(),
            self.devmgr.packets_released(),
            self.devmgr.packets_discarded(),
        );
        self.capture_incident(
            "failover",
            self.seq,
            record.resumed_at.as_nanos(),
            format!(
                "primary failed; replica {best} activated from checkpoint {}",
                record.resumed_from_checkpoint
            ),
        );
        Ok(record)
    }

    /// Emits the failover span tree on the controller track: a root span
    /// covering fail → resume, with `detect` and `switch_and_activate`
    /// children splitting the outage at the detection instant.
    fn record_failover_spans(
        &mut self,
        record: &FailoverRecord,
        devices_switched: usize,
        family: &'static str,
    ) {
        let failed = record.failed_at.as_nanos();
        let detected = record.detected_at.as_nanos();
        let resumed = record.resumed_at.as_nanos();
        let root = self.spans.push(
            SpanDraft::new("failover", "failover", Track::Controller, failed)
                .lasting(resumed.saturating_sub(failed))
                .attr_u64("resumed_from_checkpoint", record.resumed_from_checkpoint)
                .attr_u64("packets_lost", record.packets_lost as u64)
                .attr_f64("ops_lost", record.ops_lost),
        );
        self.spans.push(
            SpanDraft::new("detect", "failover", Track::Controller, failed)
                .lasting(detected.saturating_sub(failed))
                .child_of(root),
        );
        self.spans.push(
            SpanDraft::new(
                "switch_and_activate",
                "failover",
                Track::Controller,
                detected,
            )
            .lasting(resumed.saturating_sub(detected))
            .child_of(root)
            .attr_u64("devices_switched", devices_switched as u64)
            .attr_str("new_family", family),
        );
    }

    /// Closes the session and assembles the final [`RunReport`]
    /// (throughput, resource accounting, and the collected stage trace).
    pub(crate) fn finish(
        mut self,
        migration: crate::report::MigrationOutcome,
        failover: Option<FailoverRecord>,
        replication_start: SimTime,
    ) -> crate::report::RunReport {
        self.enter_phase(SessionPhase::Completed);
        let elapsed = self.clock.saturating_duration_since(replication_start);
        let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
        let bitmap_bytes = self
            .primary
            .vm(self.pvm)
            .map(|vm| vm.memory().num_pages() / 8)
            .unwrap_or(0);
        // The staging buffer holds full page payloads for the round in
        // flight, windowed at 256 MiB (the engine recycles chunk buffers).
        let staging_pages = self.max_ckpt_pages.min(65_536);
        let rss = ByteSize::from_mib(self.cfg.costs.rss_base_mib)
            + ByteSize::from_bytes(staging_pages * PAGE_SIZE)
            + ByteSize::from_bytes(bitmap_bytes)
            + self.devmgr.io().high_watermark();
        let cpu_core_pct = self.cpu_work.as_secs_f64() / secs * 100.0;
        let ops_completed = self.ops_committed + self.ops_uncommitted;
        // An armed run that reached the end without any trigger still
        // captures — an explicit end-of-run "request" snapshot — so the
        // bundle workflow works on healthy runs too.
        if self.incident.is_none() {
            let at_nanos = self.rel(self.clock).as_nanos();
            self.capture_incident(
                "request",
                self.seq,
                at_nanos,
                "explicit end-of-run capture (no trigger fired)".to_string(),
            );
        }
        let incident = self.incident.take();
        let wire_versions = self.replicas.iter().map(Replica::wire_version).collect();
        let (commits, replica_acks) = self.ledger.into_parts();
        crate::report::RunReport {
            name: self.name,
            elapsed,
            ops_completed,
            throughput_ops_per_sec: ops_completed / secs,
            migration: Some(migration),
            checkpoints: self.checkpoints,
            stage_events: self.trace.into_events(),
            period_decisions: self.period_decisions,
            period_series: self.period_series,
            degradation_series: self.degradation_series,
            packet_latencies: self.latencies,
            failover,
            resources: crate::report::ResourceUsage { cpu_core_pct, rss },
            consistency_checks: self.consistency_checks,
            commits,
            replica_acks,
            chaos: self.chaos.map(|c| c.stats),
            telemetry: Some(self.telemetry.snapshot()),
            spans: self.spans.into_spans(),
            incident,
            wire_versions,
        }
    }
}
