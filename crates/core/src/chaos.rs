//! Deterministic fault-injection plane.
//!
//! The paper's premise is surviving hypervisor failure (§8.2), so the
//! replication loop must be exercised well off the happy path. A
//! [`FaultPlan`] is a *seeded schedule* of injectable events — link flaps
//! on the replication path, per-attempt drop/corruption/delay of the
//! checkpoint transfer, replica-side decode refusals, heartbeat loss, and
//! mid-epoch primary crash/hang/starvation at a chosen pipeline stage.
//! Everything nondeterministic (which byte a corruption flips) is driven
//! by a dedicated [`SimRng`] fork, so the same seed replays
//! byte-identically and a failing chaos run is a one-line reproducer.
//!
//! The plane is *fully inert* when no plan is configured: the session
//! holds `None`, every injection hook is a `None` fast-path, and the chaos
//! RNG is a separate label fork that cannot perturb the workload stream —
//! fig5/fig8/fig9 outputs are byte-identical with the plane compiled in.
//!
//! Consumers are hardened rather than special-cased: corrupted frames are
//! rejected by the wire checksums already in the decoder, the transfer
//! stage retries with exponential backoff under
//! [`RetryPolicy`](crate::config::RetryPolicy), and an exhausted retry
//! budget aborts the epoch — the partially transferred checkpoint is
//! discarded, its pages are re-marked dirty on the primary, and the
//! previous committed epoch stays authoritative (see
//! [`CommitLedger`](crate::failover::CommitLedger)).

use serde::{Deserialize, Serialize};

use here_hypervisor::fault::DosOutcome;
use here_sim_core::rng::SimRng;
use here_sim_core::time::SimDuration;
use here_vmstate::wire::ScatterStream;

use crate::trace::Stage;

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The replication link goes down
    /// ([`Link::set_up(false)`](here_simnet::link::Link::set_up)) for the
    /// first `attempts_down` transfer attempts of the epoch, then comes
    /// back up.
    LinkFlap {
        /// Transfer attempts that see the link down.
        attempts_down: u32,
    },
    /// The first `attempts` transfer attempts are dropped in flight: the
    /// replica never sees them and the sender times out.
    Drop {
        /// Transfer attempts that are lost.
        attempts: u32,
    },
    /// A byte of the checkpoint stream is flipped on the wire for the
    /// first `attempts` transfer attempts; the replica's frame checksums
    /// must reject the stream.
    Corrupt {
        /// Transfer attempts that arrive corrupted.
        attempts: u32,
    },
    /// The first transfer attempt is delayed by `by` but delivered intact.
    Delay {
        /// Added wire latency.
        by: SimDuration,
    },
    /// The replica refuses to decode the first `attempts` transfer
    /// attempts (resource exhaustion on the receive side).
    DecodeFail {
        /// Transfer attempts the replica refuses.
        attempts: u32,
    },
    /// The primary host fails with `outcome` when the epoch reaches
    /// `stage` (before the stage's work runs).
    PrimaryFault {
        /// How the primary manifests the failure.
        outcome: DosOutcome,
        /// The pipeline stage at whose entry the fault fires.
        stage: Stage,
    },
    /// Heartbeats are lost around the failure: failover detection takes
    /// `extra_periods` additional heartbeat periods.
    HeartbeatLoss {
        /// Extra heartbeat periods before the detector fires.
        extra_periods: u32,
    },
}

/// A scheduled fault: `kind` fires when the epoch with sequence number
/// `epoch` runs, against the link of replica `replica`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Checkpoint sequence number the fault targets.
    pub epoch: u64,
    /// 0-based index of the replica whose link the fault hits. Transfer
    /// faults only touch that replica's attempts; host-level kinds
    /// (primary faults, heartbeat loss) ignore the field. Plans written
    /// before topologies existed target replica 0 and replay
    /// byte-identically.
    pub replica: u32,
    /// What happens.
    pub kind: FaultKind,
}

/// A seeded, replayable schedule of fault injections.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the plan's dedicated RNG (corruption offsets etc.). Two
    /// runs of the same scenario with the same plan replay byte-identically.
    pub seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds one scheduled fault against replica 0 — the only replica a
    /// 1→1 session has, and the default target for plans that predate
    /// topologies.
    pub fn with_event(mut self, epoch: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent {
            epoch,
            replica: 0,
            kind,
        });
        self
    }

    /// Adds one scheduled fault against a specific replica's link.
    pub fn with_event_on(mut self, epoch: u64, replica: u32, kind: FaultKind) -> Self {
        self.events.push(FaultEvent {
            epoch,
            replica,
            kind,
        });
        self
    }

    /// Partitions a set of replicas at `epoch`: each listed replica's
    /// link goes down for its first `attempts_down` transfer attempts.
    /// Partitioning `N − quorum + 1` replicas for the whole retry budget
    /// starves the quorum and forces the epoch to abort.
    pub fn with_partition(mut self, epoch: u64, replicas: &[u32], attempts_down: u32) -> Self {
        for &replica in replicas {
            self.events.push(FaultEvent {
                epoch,
                replica,
                kind: FaultKind::LinkFlap { attempts_down },
            });
        }
        self
    }

    /// Partitions a set of replicas for every epoch in `epochs`: the
    /// sustained-outage shape the health plane's staleness alerts are
    /// tuned for. With `attempts_down` at or past the retry budget the
    /// listed replicas miss each epoch in the span, their backlogs and
    /// epoch lag grow, and — provided enough replicas stay connected for
    /// quorum — the run keeps committing while the health tracker walks
    /// them `Healthy → Lagging → Stale`.
    pub fn with_partition_span(
        mut self,
        epochs: core::ops::RangeInclusive<u64>,
        replicas: &[u32],
        attempts_down: u32,
    ) -> Self {
        for epoch in epochs {
            self = self.with_partition(epoch, replicas, attempts_down);
        }
        self
    }

    /// The scheduled faults.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a random plan over the first `epochs` checkpoints,
    /// deterministically from `seed` — the property-test entry point: a
    /// plan is fully described by `(seed, epochs)`.
    ///
    /// Roughly a third of the epochs get a fault; a primary fault (which
    /// ends the run in a failover) is rare and terminates the schedule.
    pub fn generate(seed: u64, epochs: u64) -> Self {
        let mut rng = SimRng::seed_from(seed).fork("faultplan");
        let mut plan = FaultPlan::new(seed);
        for epoch in 1..=epochs {
            if !rng.chance(0.35) {
                continue;
            }
            let kind = match rng.below(16) {
                0..=2 => FaultKind::LinkFlap {
                    attempts_down: 1 + rng.below(2) as u32,
                },
                3..=5 => FaultKind::Drop {
                    // Up to 5 lost attempts: sometimes past the default
                    // retry budget, so abort paths get exercised too.
                    attempts: 1 + rng.below(5) as u32,
                },
                6..=8 => FaultKind::Corrupt {
                    attempts: 1 + rng.below(2) as u32,
                },
                9..=10 => FaultKind::Delay {
                    by: SimDuration::from_millis(1 + rng.below(20)),
                },
                11..=12 => FaultKind::DecodeFail {
                    attempts: 1 + rng.below(2) as u32,
                },
                13..=14 => FaultKind::HeartbeatLoss {
                    extra_periods: 1 + rng.below(4) as u32,
                },
                _ => {
                    let outcome = DosOutcome::ALL[rng.below(3) as usize];
                    let stage = [
                        Stage::Pause,
                        Stage::Harvest,
                        Stage::Translate,
                        Stage::Transfer,
                    ][rng.below(4) as usize];
                    plan.events.push(FaultEvent {
                        epoch,
                        replica: 0,
                        kind: FaultKind::PrimaryFault { outcome, stage },
                    });
                    // Nothing after a primary fault can run.
                    break;
                }
            };
            plan.events.push(FaultEvent {
                epoch,
                replica: 0,
                kind,
            });
        }
        plan
    }
}

/// What chaos did to one transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferFault {
    /// The replication link is down for this attempt.
    LinkDown,
    /// The attempt was lost in flight.
    Dropped,
    /// The attempt arrives with one byte flipped; the salts pick which.
    Corrupted {
        /// Selects the corrupted segment (modulo the segment count).
        segment_salt: u64,
        /// Selects the corrupted byte (modulo the segment length).
        byte_salt: u64,
    },
    /// The attempt is delivered intact but late.
    Delayed(SimDuration),
    /// The replica refused to decode the attempt.
    DecodeRefused,
}

impl TransferFault {
    /// Stable label for telemetry and flight-recorder events.
    pub fn reason(&self) -> &'static str {
        match self {
            TransferFault::LinkDown => "link_down",
            TransferFault::Dropped => "dropped",
            TransferFault::Corrupted { .. } => "corrupt_frame",
            TransferFault::Delayed(_) => "delayed",
            TransferFault::DecodeRefused => "decode_refused",
        }
    }
}

/// Counters the fault plane accumulates over a run; surfaced as
/// [`RunReport::chaos`](crate::report::RunReport::chaos).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosStats {
    /// Faults the plan actually injected (scheduled events may not fire if
    /// the run ends first).
    pub faults_injected: u64,
    /// Transfer attempts that failed and were retried.
    pub transfer_retries: u64,
    /// Transfers that succeeded after at least one failed attempt.
    pub transfer_recoveries: u64,
    /// Epochs aborted after exhausting the transfer retry budget.
    pub epochs_aborted: u64,
}

/// Live state of the fault plane inside a session: the plan, its
/// dedicated RNG fork, and the run counters.
#[derive(Debug, Clone)]
pub(crate) struct ChaosState {
    plan: FaultPlan,
    rng: SimRng,
    pub(crate) stats: ChaosStats,
}

impl ChaosState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = SimRng::seed_from(plan.seed).fork("chaos");
        ChaosState {
            plan,
            rng,
            stats: ChaosStats::default(),
        }
    }

    /// The fault (if any) the plan injects into transfer attempt
    /// `attempt` (0-based) of epoch `epoch` toward replica `replica`.
    /// The first matching scheduled event wins; each injection counts
    /// toward the stats.
    pub(crate) fn transfer_fault(
        &mut self,
        epoch: u64,
        replica: u32,
        attempt: u32,
    ) -> Option<TransferFault> {
        let fault = self
            .plan
            .events
            .iter()
            .filter(|e| e.epoch == epoch && e.replica == replica)
            .find_map(|e| match e.kind {
                FaultKind::LinkFlap { attempts_down } if attempt < attempts_down => {
                    Some(TransferFault::LinkDown)
                }
                FaultKind::Drop { attempts } if attempt < attempts => Some(TransferFault::Dropped),
                FaultKind::Corrupt { attempts } if attempt < attempts => {
                    Some(TransferFault::Corrupted {
                        segment_salt: 0,
                        byte_salt: 0,
                    })
                }
                FaultKind::Delay { by } if attempt == 0 => Some(TransferFault::Delayed(by)),
                FaultKind::DecodeFail { attempts } if attempt < attempts => {
                    Some(TransferFault::DecodeRefused)
                }
                _ => None,
            })?;
        self.stats.faults_injected += 1;
        // Salt corruption from the chaos RNG *after* the match so the RNG
        // is consumed only when a corruption actually fires.
        Some(match fault {
            TransferFault::Corrupted { .. } => TransferFault::Corrupted {
                segment_salt: self.rng.next_u64(),
                byte_salt: self.rng.next_u64(),
            },
            other => other,
        })
    }

    /// The primary-host fault (if any) scheduled at the entry of `stage`
    /// of epoch `epoch`.
    pub(crate) fn primary_fault(&mut self, epoch: u64, stage: Stage) -> Option<DosOutcome> {
        let outcome = self.plan.events.iter().find_map(|e| match e.kind {
            FaultKind::PrimaryFault { outcome, stage: s } if e.epoch == epoch && s == stage => {
                Some(outcome)
            }
            _ => None,
        })?;
        self.stats.faults_injected += 1;
        Some(outcome)
    }

    /// Extra heartbeat periods failover detection loses to scheduled
    /// heartbeat loss (the worst scheduled loss applies — heartbeats are
    /// a control-plane stream, not an epoch-local one).
    pub(crate) fn heartbeat_loss_periods(&self) -> u32 {
        self.plan
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::HeartbeatLoss { extra_periods } => Some(extra_periods),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}

/// Returns a copy of `stream` with one byte flipped, selected by the two
/// salts — the on-the-wire corruption the replica's frame checksums must
/// reject. Empty streams come back unchanged.
pub(crate) fn corrupt_stream(
    stream: &ScatterStream,
    segment_salt: u64,
    byte_salt: u64,
) -> ScatterStream {
    let segments = stream.segments();
    let candidates: Vec<usize> = (0..segments.len())
        .filter(|&i| !segments[i].is_empty())
        .collect();
    if candidates.is_empty() {
        return stream.clone();
    }
    let victim = candidates[(segment_salt % candidates.len() as u64) as usize];
    let mut out = ScatterStream::new();
    for (i, segment) in segments.iter().enumerate() {
        if i == victim {
            let mut bytes = segment.to_vec();
            let at = (byte_salt % bytes.len() as u64) as usize;
            bytes[at] ^= 0xff;
            out.push(bytes.into());
        } else {
            out.push(segment.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_in_seed_and_epochs() {
        let a = FaultPlan::generate(7, 20);
        let b = FaultPlan::generate(7, 20);
        assert_eq!(a, b);
        let c = FaultPlan::generate(8, 20);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn generate_stops_at_a_primary_fault() {
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, 30);
            let positions: Vec<usize> = plan
                .events()
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e.kind, FaultKind::PrimaryFault { .. }))
                .map(|(i, _)| i)
                .collect();
            if let Some(&first) = positions.first() {
                assert_eq!(
                    first,
                    plan.events().len() - 1,
                    "a primary fault must terminate the schedule (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn transfer_fault_respects_attempt_budgets() {
        let plan = FaultPlan::new(1)
            .with_event(3, FaultKind::Drop { attempts: 2 })
            .with_event(
                5,
                FaultKind::Delay {
                    by: SimDuration::from_millis(4),
                },
            );
        let mut chaos = ChaosState::new(plan);
        assert_eq!(chaos.transfer_fault(3, 0, 0), Some(TransferFault::Dropped));
        assert_eq!(chaos.transfer_fault(3, 0, 1), Some(TransferFault::Dropped));
        assert_eq!(chaos.transfer_fault(3, 0, 2), None);
        assert_eq!(
            chaos.transfer_fault(5, 0, 0),
            Some(TransferFault::Delayed(SimDuration::from_millis(4)))
        );
        assert_eq!(chaos.transfer_fault(5, 0, 1), None);
        assert_eq!(chaos.transfer_fault(4, 0, 0), None);
        assert_eq!(chaos.stats.faults_injected, 3);
    }

    #[test]
    fn transfer_faults_only_hit_their_target_replica() {
        let plan = FaultPlan::new(1)
            .with_event(2, FaultKind::Drop { attempts: 1 })
            .with_event_on(2, 2, FaultKind::DecodeFail { attempts: 1 });
        let mut chaos = ChaosState::new(plan);
        assert_eq!(chaos.transfer_fault(2, 0, 0), Some(TransferFault::Dropped));
        assert_eq!(chaos.transfer_fault(2, 1, 0), None);
        assert_eq!(
            chaos.transfer_fault(2, 2, 0),
            Some(TransferFault::DecodeRefused)
        );
        assert_eq!(chaos.stats.faults_injected, 2);
    }

    #[test]
    fn partition_downs_every_listed_replica_link() {
        let plan = FaultPlan::new(1).with_partition(4, &[1, 2], 3);
        let mut chaos = ChaosState::new(plan);
        assert_eq!(chaos.transfer_fault(4, 0, 0), None);
        for replica in [1, 2] {
            for attempt in 0..3 {
                assert_eq!(
                    chaos.transfer_fault(4, replica, attempt),
                    Some(TransferFault::LinkDown)
                );
            }
            assert_eq!(chaos.transfer_fault(4, replica, 3), None);
        }
    }

    #[test]
    fn partition_span_repeats_the_outage_across_every_epoch() {
        let plan = FaultPlan::new(1).with_partition_span(4..=6, &[2], 10);
        assert_eq!(plan.events().len(), 3);
        let mut chaos = ChaosState::new(plan);
        for epoch in 4..=6 {
            assert_eq!(
                chaos.transfer_fault(epoch, 2, 0),
                Some(TransferFault::LinkDown)
            );
        }
        assert_eq!(chaos.transfer_fault(7, 2, 0), None);
    }

    #[test]
    fn primary_fault_matches_epoch_and_stage() {
        let plan = FaultPlan::new(1).with_event(
            4,
            FaultKind::PrimaryFault {
                outcome: DosOutcome::Hang,
                stage: Stage::Harvest,
            },
        );
        let mut chaos = ChaosState::new(plan);
        assert_eq!(chaos.primary_fault(4, Stage::Pause), None);
        assert_eq!(chaos.primary_fault(3, Stage::Harvest), None);
        assert_eq!(
            chaos.primary_fault(4, Stage::Harvest),
            Some(DosOutcome::Hang)
        );
    }

    #[test]
    fn heartbeat_loss_takes_the_worst_scheduled_event() {
        let plan = FaultPlan::new(1)
            .with_event(2, FaultKind::HeartbeatLoss { extra_periods: 2 })
            .with_event(6, FaultKind::HeartbeatLoss { extra_periods: 5 });
        let chaos = ChaosState::new(plan);
        assert_eq!(chaos.heartbeat_loss_periods(), 5);
        assert_eq!(
            ChaosState::new(FaultPlan::new(1)).heartbeat_loss_periods(),
            0
        );
    }

    #[test]
    fn corrupt_stream_flips_exactly_one_byte() {
        let mut stream = ScatterStream::new();
        stream.push(vec![1u8, 2, 3, 4].into());
        stream.push(vec![5u8, 6].into());
        let corrupted = corrupt_stream(&stream, 11, 13);
        let before = stream.gather();
        let after = corrupted.gather();
        assert_eq!(before.len(), after.len());
        let diffs = before
            .iter()
            .zip(after.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1);
    }
}
