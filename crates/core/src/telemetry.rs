//! The session's always-on observability bundle.
//!
//! [`SessionTelemetry`] wires the generic `here-telemetry` building blocks
//! — metrics registry, flight recorder, SLO tracker — to the replication
//! stack's events: stage boundaries, period-controller decisions, encode
//! lanes, buffer-pool reclaims, the seeding migration and the failover
//! timeline. The session owns one instance and calls the `on_*` hooks
//! from the instrumented paths; [`SessionTelemetry::snapshot`] freezes
//! everything into the plain-data [`TelemetrySnapshot`] that rides in
//! [`crate::report::RunReport::telemetry`].
//!
//! ## Metric reference
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `here_checkpoints_total` | counter | checkpoints completed |
//! | `here_pages_harvested_total` | counter | dirty pages copied across all checkpoints |
//! | `here_bytes_transferred_total` | counter | encoded checkpoint bytes shipped |
//! | `here_pages_seeded_total` | counter | pages sent by the seeding migration |
//! | `here_pool_reclaim_hits_total` | counter | encode-buffer checkouts served from the pool |
//! | `here_pool_reclaim_misses_total` | counter | encode-buffer checkouts that allocated |
//! | `here_packets_buffered_total` | counter | guest output packets held back for commit |
//! | `here_packets_released_total` | counter | buffered packets released at commit |
//! | `here_packets_discarded_total` | counter | buffered packets dropped by a failover |
//! | `here_slo_breaches_total` | counter | degradation/period-cap SLO breaches |
//! | `here_failovers_total` | counter | failovers performed |
//! | `here_faults_injected_total` | counter | faults laid into the run (exploits, accidents, fault plane) |
//! | `here_transfer_retries_total` | counter | checkpoint transfer attempts that failed and were retried |
//! | `here_transfer_recoveries_total` | counter | checkpoints delivered after at least one failed attempt |
//! | `here_epochs_aborted_total` | counter | checkpoints discarded after exhausting the retry budget |
//! | `here_pause_nanos` | histogram | VM-visible pause `t` per checkpoint |
//! | `here_dirty_pages` | histogram | dirty pages `N` per checkpoint |
//! | `here_stage_nanos{stage=…}` | histogram | virtual duration per pipeline stage |
//! | `here_encode_lane_wall_nanos` | histogram | wall-clock encode time per lane |
//! | `here_period_seconds` | gauge | the period `T` chosen for the next epoch |
//! | `here_degradation_ratio` | gauge | last measured degradation `D_T` |
//!
//! With the health plane armed ([`ReplicationConfig::health_plane`]
//! (crate::config::ReplicationConfig::health_plane)), these
//! replica-labelled families join the registry (single-replica and
//! unarmed runs never register them, so the frozen observe-gate metric
//! schema is untouched):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `here_replica_lag_epochs{replica=…}` | gauge | epochs each replica trails the just-committed sequence |
//! | `here_replica_backlog_pages{replica=…}` | gauge | pages parked in each replica's catch-up backlog |
//! | `here_replica_acked_epoch{replica=…}` | gauge | each replica's ack high-water mark |
//! | `here_replica_retries_total{replica=…}` | counter | transfer retries charged to each replica |
//! | `here_flight_recorder_dropped_events` | gauge | events the bounded flight ring has evicted |

use serde::{Deserialize, Serialize};

use here_sim_core::time::SimDuration;
use here_telemetry::alert::{AlertEngine, AlertEvent, AlertRules, AlertSample};
use here_telemetry::export::prometheus;
use here_telemetry::flight::{FlightEvent, FlightRecorder};
use here_telemetry::health::{
    HealthObservation, HealthPolicy, HealthState, HealthTracker, HealthTransition,
};
use here_telemetry::metrics::{
    CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry, RegistrySnapshot,
};
use here_telemetry::slo::{SloBreach, SloSummary, SloTracker};
use here_telemetry::timeseries::{SeriesKind, SeriesSet};

use crate::config::PeriodPolicy;
use crate::failover::FailoverRecord;
use crate::period::PeriodDecision;
use crate::report::CheckpointRecord;
use crate::trace::{Stage, StageEvent};

/// Events the always-on flight recorder retains.
pub const FLIGHT_RECORDER_CAPACITY: usize = 1024;

/// Virtual-time width of one health-plane series window (2 s, matching
/// the canonical checkpoint period so one window holds about one epoch).
pub const HEALTH_SERIES_WINDOW_NANOS: u64 = 2_000_000_000;

/// The health plane: windowed series, per-replica health machines, the
/// alert engine, and the replica-labelled metric families — present only
/// when [`ReplicationConfig::health_plane`]
/// (crate::config::ReplicationConfig::health_plane) armed it.
#[derive(Debug)]
struct HealthPlane {
    replicas: u32,
    quorum: u32,
    stale_lag: u64,
    series: SeriesSet,
    tracker: HealthTracker,
    engine: AlertEngine,
    replica_lag_gauges: Vec<GaugeHandle>,
    replica_backlog_gauges: Vec<GaugeHandle>,
    replica_acked_gauges: Vec<GaugeHandle>,
    replica_retry_counters: Vec<CounterHandle>,
    flight_dropped_gauge: GaugeHandle,
    /// Cumulative transfer retries per replica.
    retry_totals: Vec<u64>,
    /// `retry_totals` as of the previous health tick (for epoch deltas).
    last_retry_totals: Vec<u64>,
}

/// The live observability state of one replication session.
#[derive(Debug)]
pub struct SessionTelemetry {
    policy: PeriodPolicy,
    registry: MetricsRegistry,
    flight: FlightRecorder,
    flight_capacity: usize,
    slo: Option<SloTracker>,
    checkpoints: CounterHandle,
    pages_harvested: CounterHandle,
    bytes_transferred: CounterHandle,
    pages_seeded: CounterHandle,
    pool_hits: CounterHandle,
    pool_misses: CounterHandle,
    packets_buffered: CounterHandle,
    packets_released: CounterHandle,
    packets_discarded: CounterHandle,
    slo_breaches: CounterHandle,
    failovers: CounterHandle,
    faults_injected: CounterHandle,
    transfer_retries: CounterHandle,
    transfer_recoveries: CounterHandle,
    epochs_aborted: CounterHandle,
    pause_hist: HistogramHandle,
    dirty_pages_hist: HistogramHandle,
    stage_hists: [HistogramHandle; 6],
    encode_lane_hist: HistogramHandle,
    period_gauge: GaugeHandle,
    degradation_gauge: GaugeHandle,
    health: Option<HealthPlane>,
}

impl SessionTelemetry {
    /// Builds the bundle for a session running under `policy`. A dynamic
    /// policy arms the SLO tracker with its target `D` and cap `T_max`; a
    /// fixed policy has no stated target, so nothing is tracked.
    pub fn new(policy: PeriodPolicy) -> Self {
        let mut registry = MetricsRegistry::new();
        let checkpoints = registry.counter("here_checkpoints_total", "Checkpoints completed");
        let pages_harvested = registry.counter(
            "here_pages_harvested_total",
            "Dirty pages copied across all checkpoints",
        );
        let bytes_transferred = registry.counter(
            "here_bytes_transferred_total",
            "Encoded checkpoint bytes shipped to the replica",
        );
        let pages_seeded = registry.counter(
            "here_pages_seeded_total",
            "Pages sent by the seeding migration",
        );
        let pool_hits = registry.counter(
            "here_pool_reclaim_hits_total",
            "Encode-buffer checkouts served from the pool",
        );
        let pool_misses = registry.counter(
            "here_pool_reclaim_misses_total",
            "Encode-buffer checkouts that had to allocate",
        );
        let packets_buffered = registry.counter(
            "here_packets_buffered_total",
            "Guest output packets held back until commit",
        );
        let packets_released = registry.counter(
            "here_packets_released_total",
            "Buffered packets released at checkpoint commit",
        );
        let packets_discarded = registry.counter(
            "here_packets_discarded_total",
            "Buffered packets dropped by a failover rollback",
        );
        let slo_breaches = registry.counter(
            "here_slo_breaches_total",
            "Degradation-target and period-cap SLO breaches",
        );
        let failovers = registry.counter("here_failovers_total", "Failovers performed");
        let faults_injected = registry.counter(
            "here_faults_injected_total",
            "Faults laid into the run (exploits, accidents, fault plane)",
        );
        let transfer_retries = registry.counter(
            "here_transfer_retries_total",
            "Checkpoint transfer attempts that failed and were retried",
        );
        let transfer_recoveries = registry.counter(
            "here_transfer_recoveries_total",
            "Checkpoints delivered after at least one failed attempt",
        );
        let epochs_aborted = registry.counter(
            "here_epochs_aborted_total",
            "Checkpoints discarded after exhausting the transfer retry budget",
        );
        let pause_hist = registry.histogram(
            "here_pause_nanos",
            "VM-visible pause t per checkpoint (virtual ns)",
        );
        let dirty_pages_hist =
            registry.histogram("here_dirty_pages", "Dirty pages N per checkpoint");
        let stage_hists = Stage::ALL.map(|s| {
            registry.histogram_with_label(
                "here_stage_nanos",
                "Virtual duration per pipeline stage (ns)",
                Some(("stage", s.label())),
            )
        });
        let encode_lane_hist = registry.histogram(
            "here_encode_lane_wall_nanos",
            "Wall-clock encode time per lane (ns)",
        );
        let period_gauge = registry.gauge(
            "here_period_seconds",
            "Checkpoint period T chosen for the next epoch",
        );
        let degradation_gauge = registry.gauge(
            "here_degradation_ratio",
            "Last measured degradation D_T = t/(t+T)",
        );
        let slo = match policy {
            PeriodPolicy::Fixed(_) => None,
            PeriodPolicy::Dynamic {
                d_target, t_max, ..
            } => {
                let cap = (t_max != SimDuration::MAX).then(|| t_max.as_nanos());
                Some(SloTracker::new(d_target, cap))
            }
        };
        SessionTelemetry {
            policy,
            registry,
            flight: FlightRecorder::new(FLIGHT_RECORDER_CAPACITY),
            flight_capacity: FLIGHT_RECORDER_CAPACITY,
            slo,
            checkpoints,
            pages_harvested,
            bytes_transferred,
            pages_seeded,
            pool_hits,
            pool_misses,
            packets_buffered,
            packets_released,
            packets_discarded,
            slo_breaches,
            failovers,
            faults_injected,
            transfer_retries,
            transfer_recoveries,
            epochs_aborted,
            pause_hist,
            dirty_pages_hist,
            stage_hists,
            encode_lane_hist,
            period_gauge,
            degradation_gauge,
            health: None,
        }
    }

    /// Like [`SessionTelemetry::new`], with the health plane armed for a
    /// `replicas`-way set committing at `quorum`: registers the
    /// replica-labelled families, builds the per-replica health machines
    /// (stale threshold `stale_epoch_lag`), and arms the alert engine.
    /// Under a dynamic policy the SLO burn-rate rule inherits the
    /// policy's degradation target.
    pub fn with_health_plane(
        policy: PeriodPolicy,
        replicas: u32,
        quorum: u32,
        stale_epoch_lag: u64,
    ) -> Self {
        let mut t = SessionTelemetry::new(policy);
        let n = replicas.max(1);
        let mut replica_lag_gauges = Vec::with_capacity(n as usize);
        let mut replica_backlog_gauges = Vec::with_capacity(n as usize);
        let mut replica_acked_gauges = Vec::with_capacity(n as usize);
        let mut replica_retry_counters = Vec::with_capacity(n as usize);
        for i in 0..n {
            let label = i.to_string();
            replica_lag_gauges.push(t.registry.gauge_with_label(
                "here_replica_lag_epochs",
                "Epochs the replica trails the just-committed sequence",
                Some(("replica", &label)),
            ));
            replica_backlog_gauges.push(t.registry.gauge_with_label(
                "here_replica_backlog_pages",
                "Pages parked in the replica's catch-up backlog",
                Some(("replica", &label)),
            ));
            replica_acked_gauges.push(t.registry.gauge_with_label(
                "here_replica_acked_epoch",
                "The replica's ack high-water mark",
                Some(("replica", &label)),
            ));
            replica_retry_counters.push(t.registry.counter_with_label(
                "here_replica_retries_total",
                "Transfer retries charged to the replica",
                Some(("replica", &label)),
            ));
        }
        let flight_dropped_gauge = t.registry.gauge(
            "here_flight_recorder_dropped_events",
            "Events the bounded flight-recorder ring has evicted",
        );
        let stale_lag = stale_epoch_lag.max(1);
        let health_policy = HealthPolicy {
            lagging_lag: (stale_lag / 4).max(1),
            stale_lag,
            recover_epochs: 2,
        };
        let mut rules = AlertRules::default();
        if let PeriodPolicy::Dynamic { d_target, .. } = policy {
            rules.d_target_ppm = (d_target * 1e6).round() as u64;
        }
        t.health = Some(HealthPlane {
            replicas: n,
            quorum,
            stale_lag,
            series: SeriesSet::new(HEALTH_SERIES_WINDOW_NANOS),
            tracker: HealthTracker::new(n, health_policy),
            engine: AlertEngine::new(rules),
            replica_lag_gauges,
            replica_backlog_gauges,
            replica_acked_gauges,
            replica_retry_counters,
            flight_dropped_gauge,
            retry_totals: vec![0; n as usize],
            last_retry_totals: vec![0; n as usize],
        });
        t
    }

    /// Resizes the flight-recorder ring to `capacity` events (builder
    /// style; call before the session records anything). The chosen
    /// capacity survives [`SessionTelemetry::reset`]; the default stays
    /// [`FLIGHT_RECORDER_CAPACITY`].
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        self.flight = FlightRecorder::new(capacity);
        self.flight_capacity = capacity;
        self
    }

    /// Discards everything observed so far (used when a warmup window
    /// closes and measurement restarts). Counters are handles shared with
    /// nothing outside this bundle, so a rebuild is the cheapest reset.
    /// An armed health plane stays armed with the same parameters, and a
    /// resized flight ring keeps its capacity.
    pub fn reset(&mut self) {
        let rebuilt = match &self.health {
            Some(h) => {
                SessionTelemetry::with_health_plane(self.policy, h.replicas, h.quorum, h.stale_lag)
            }
            None => SessionTelemetry::new(self.policy),
        };
        *self = rebuilt.with_flight_capacity(self.flight_capacity);
    }

    /// One pipeline stage boundary crossed.
    pub fn on_stage_event(&mut self, event: &StageEvent) {
        let idx = Stage::ALL
            .iter()
            .position(|&s| s == event.stage)
            .expect("Stage::ALL covers every stage");
        self.stage_hists[idx].observe(event.duration.as_nanos());
        match event.stage {
            Stage::Harvest => self.pages_harvested.add(event.pages),
            Stage::Transfer => self.bytes_transferred.add(event.bytes),
            _ => {}
        }
        self.flight.record(FlightEvent::Stage {
            seq: event.seq,
            stage: event.stage.label(),
            at_nanos: event.at.as_nanos(),
            duration_nanos: event.duration.as_nanos(),
            wall_nanos: event.wall_nanos,
            pages: event.pages,
            bytes: event.bytes,
        });
    }

    /// One checkpoint completed: feeds the histograms, gauges, SLO tracker
    /// and the flight recorder with the derived record and the period
    /// controller's decision. `at_nanos` is the report-relative timestamp.
    pub fn on_checkpoint(
        &mut self,
        record: &CheckpointRecord,
        decision: &PeriodDecision,
        at_nanos: u64,
    ) {
        self.checkpoints.incr();
        self.pause_hist.observe(record.pause.as_nanos());
        self.dirty_pages_hist.observe(record.dirty_pages);
        self.period_gauge.set(decision.chosen_period.as_secs_f64());
        self.degradation_gauge.set(record.degradation);
        self.flight.record(FlightEvent::PeriodDecision {
            seq: record.seq,
            at_nanos,
            dirty_pages: decision.dirty_pages,
            measured_pause_nanos: decision.measured_pause.as_nanos(),
            previous_period_nanos: decision.previous_period.as_nanos(),
            chosen_period_nanos: decision.chosen_period.as_nanos(),
            predicted_degradation: decision.predicted_degradation,
            action: decision.action.label(),
            clamp: decision.clamp.map(|c| c.label()),
        });
        if let Some(slo) = &mut self.slo {
            let breaches = slo.observe(
                record.seq,
                at_nanos,
                record.pause.as_nanos(),
                record.period.as_nanos(),
            );
            self.slo_breaches.add(breaches.len() as u64);
        }
    }

    /// One encode lane finished its shard of checkpoint `seq`.
    pub fn on_encode_lane(&mut self, seq: u64, lane: u64, wall_nanos: u64, at_nanos: u64) {
        self.encode_lane_hist.observe(wall_nanos);
        self.flight.record(FlightEvent::EncodeLane {
            seq,
            at_nanos,
            lane,
            wall_nanos,
        });
    }

    /// The work-stealing encode pool finished a checkpoint round: record
    /// how the chunks spread across lanes. Only called when the pool ran
    /// a multi-lane round, so barrier-era flight dumps are unchanged.
    pub fn on_encode_pool(
        &mut self,
        seq: u64,
        tasks: u64,
        steals: u64,
        occupancy_pct: f64,
        at_nanos: u64,
    ) {
        self.flight.record(FlightEvent::EncodePool {
            at_nanos,
            seq,
            tasks,
            steals,
            occupancy_pct,
        });
    }

    /// Samples the encode buffer pool's cumulative reclaim statistics
    /// (called after each checkpoint's transfer recycles its segments).
    pub fn on_pool_stats(&mut self, hits: u64, misses: u64, pooled: u64, at_nanos: u64) {
        sync_counter(&self.pool_hits, hits);
        sync_counter(&self.pool_misses, misses);
        self.flight.record(FlightEvent::PoolReclaim {
            at_nanos,
            pool: "encode",
            hits,
            misses,
            pooled,
        });
    }

    /// Syncs the device manager's packet counters (cumulative values).
    pub fn on_packet_stats(&mut self, buffered: u64, released: u64, discarded: u64) {
        sync_counter(&self.packets_buffered, buffered);
        sync_counter(&self.packets_released, released);
        sync_counter(&self.packets_discarded, discarded);
    }

    /// One seeding-migration iteration finished.
    pub fn on_migration_iteration(
        &mut self,
        iteration: u64,
        pages: u64,
        phase: &'static str,
        at_nanos: u64,
    ) {
        self.pages_seeded.add(pages);
        self.flight.record(FlightEvent::Migration {
            at_nanos,
            iteration,
            pages,
            phase,
        });
    }

    /// A failover ran: counts it and lays its timeline into the recorder.
    pub fn on_failover(&mut self, record: &FailoverRecord) {
        self.failovers.incr();
        self.flight.record(FlightEvent::Failover {
            at_nanos: record.failed_at.as_nanos(),
            phase: "failed",
            detail: String::new(),
        });
        self.flight.record(FlightEvent::Failover {
            at_nanos: record.detected_at.as_nanos(),
            phase: "detected",
            detail: format!(
                "heartbeat silent for {}",
                record
                    .detected_at
                    .saturating_duration_since(record.failed_at)
            ),
        });
        self.flight.record(FlightEvent::Failover {
            at_nanos: record.resumed_at.as_nanos(),
            phase: "resumed",
            detail: format!(
                "from checkpoint {}; {} packets and {:.0} ops rolled back; {} devices switched",
                record.resumed_from_checkpoint,
                record.packets_lost,
                record.ops_lost,
                record.devices_switched
            ),
        });
    }

    /// A fault was injected into the primary (exploit launch or DoS
    /// accident): lays a timeline mark into the recorder so crash, hang
    /// and starvation runs show *what* went wrong, not just the three
    /// failover gauge marks that follow.
    pub fn on_fault(
        &mut self,
        fault: &'static str,
        host_down: bool,
        detail: String,
        at_nanos: u64,
    ) {
        self.faults_injected.incr();
        self.flight.record(FlightEvent::Fault {
            at_nanos,
            fault,
            host_down,
            detail,
        });
    }

    /// A transfer attempt toward `replica` failed and will be retried
    /// after `backoff_nanos` of exponential backoff. With the health
    /// plane armed the retry is also charged to the replica's labelled
    /// counter and to the next health tick's per-replica retry delta.
    pub fn on_transfer_retry(
        &mut self,
        seq: u64,
        replica: u32,
        attempt: u32,
        reason: &'static str,
        backoff_nanos: u64,
        at_nanos: u64,
    ) {
        self.transfer_retries.incr();
        if let Some(h) = self.health.as_mut() {
            if let Some(total) = h.retry_totals.get_mut(replica as usize) {
                *total += 1;
            }
            if let Some(counter) = h.replica_retry_counters.get(replica as usize) {
                counter.incr();
            }
        }
        self.flight.record(FlightEvent::Retry {
            at_nanos,
            seq,
            attempt,
            reason,
            backoff_nanos,
        });
    }

    /// A checkpoint was delivered after `failed_attempts` failed tries.
    pub fn on_transfer_recovery(&mut self, _seq: u64, _failed_attempts: u32) {
        self.transfer_recoveries.incr();
    }

    /// A checkpoint exhausted its transfer retry budget and was discarded;
    /// the previous committed epoch stays authoritative.
    pub fn on_epoch_abort(&mut self, seq: u64, attempts: u32, at_nanos: u64) {
        self.epochs_aborted.incr();
        self.flight.record(FlightEvent::Fault {
            at_nanos,
            fault: "epoch_abort",
            host_down: false,
            detail: format!("checkpoint {seq} discarded after {attempts} failed transfer attempts"),
        });
    }

    /// A replica fell behind the newest acked epoch by more than the
    /// topology's staleness bound and was declared stale. Recorded once
    /// per stale episode on the flight recorder (no dedicated metric
    /// family: single-replica runs never emit it, so the observe-gate
    /// schema stays frozen).
    pub fn on_replica_stale(&mut self, replica: u32, lag_epochs: u64, at_nanos: u64) {
        self.flight.record(FlightEvent::Fault {
            at_nanos,
            fault: "replica_stale",
            host_down: false,
            detail: format!("replica {replica} trails the quorum by {lag_epochs} epochs"),
        });
    }

    /// The device manager re-plugged the replica's devices during
    /// failover (the detection → activation window).
    pub fn on_device_switch(
        &mut self,
        devices: usize,
        packets_discarded: usize,
        new_family: &'static str,
        at_nanos: u64,
    ) {
        self.flight.record(FlightEvent::Failover {
            at_nanos,
            phase: "device_switch",
            detail: format!(
                "{devices} devices re-plugged as {new_family}; {packets_discarded} buffered packets discarded"
            ),
        });
    }

    /// One committed epoch's health tick (health plane only; a no-op —
    /// returning no events — when the plane is unarmed).
    ///
    /// Records the epoch into the windowed series (degradation in ppm,
    /// period, pause, per-replica lag/backlog/retries), refreshes the
    /// replica-labelled gauges and the flight-drop gauge, steps every
    /// replica's health machine, and evaluates the alert rules. Alert
    /// edges land on the flight recorder as [`FlightEvent::Alert`] and
    /// are returned so the session can lay matching spans into the
    /// trace. `observations` carry each replica's ack mark, lag and
    /// backlog; retry deltas are filled in from the plane's own
    /// per-replica retry accounting.
    pub fn on_health_tick(
        &mut self,
        epoch: u64,
        at_nanos: u64,
        degradation: f64,
        period_nanos: u64,
        pause_nanos: u64,
        observations: &[HealthObservation],
    ) -> Vec<AlertEvent> {
        let Some(h) = self.health.as_mut() else {
            return Vec::new();
        };
        let degradation_ppm = (degradation * 1e6).round() as u64;
        h.series.record(
            "here_degradation_ppm",
            None,
            SeriesKind::GaugeLast,
            at_nanos,
            degradation_ppm,
        );
        h.series.record(
            "here_period_nanos",
            None,
            SeriesKind::GaugeLast,
            at_nanos,
            period_nanos,
        );
        h.series.record(
            "here_pause_nanos",
            None,
            SeriesKind::Histogram,
            at_nanos,
            pause_nanos,
        );
        let mut epoch_retries = 0u64;
        let mut obs = Vec::with_capacity(observations.len());
        for o in observations {
            let i = o.replica as usize;
            let retries = h
                .retry_totals
                .get(i)
                .copied()
                .unwrap_or(0)
                .saturating_sub(h.last_retry_totals.get(i).copied().unwrap_or(0));
            epoch_retries += retries;
            let label = o.replica.to_string();
            h.series.record(
                "here_replica_lag_epochs",
                Some(("replica", &label)),
                SeriesKind::GaugeLast,
                at_nanos,
                o.lag_epochs,
            );
            h.series.record(
                "here_replica_backlog_pages",
                Some(("replica", &label)),
                SeriesKind::GaugeLast,
                at_nanos,
                o.backlog_pages,
            );
            for _ in 0..retries {
                h.series.record(
                    "here_transfer_retries",
                    Some(("replica", &label)),
                    SeriesKind::CounterRate,
                    at_nanos,
                    1,
                );
            }
            if let Some(g) = h.replica_lag_gauges.get(i) {
                g.set(o.lag_epochs as f64);
            }
            if let Some(g) = h.replica_backlog_gauges.get(i) {
                g.set(o.backlog_pages as f64);
            }
            if let Some(g) = h.replica_acked_gauges.get(i) {
                g.set(o.ack_mark as f64);
            }
            obs.push(HealthObservation { retries, ..*o });
        }
        h.last_retry_totals.clone_from(&h.retry_totals);
        h.flight_dropped_gauge.set(self.flight.dropped() as f64);
        h.tracker.observe(epoch, at_nanos, &obs);
        let sample = AlertSample {
            epoch,
            at_nanos,
            degradation_ppm,
            period_nanos,
            retries: epoch_retries,
            stale_replicas: h.tracker.stale_replicas(),
            serviceable: h.tracker.serviceable(),
            replicas: h.replicas,
            quorum: h.quorum,
            flight_dropped: self.flight.dropped(),
        };
        let events = h.engine.evaluate(&sample);
        for event in &events {
            self.flight.record(FlightEvent::Alert {
                at_nanos: event.at_nanos,
                seq: event.epoch,
                rule: event.rule,
                severity: event.severity.label(),
                state: event.state.label(),
                detail: event.detail.clone(),
            });
        }
        events
    }

    /// Read access for tests and exporters.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Freezes the bundle into the plain-data report snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let registry = self.registry.snapshot();
        TelemetrySnapshot {
            prometheus: prometheus(&registry),
            registry,
            flight_recorder_json: self.flight.dump_json(),
            flight_events_recorded: self.flight.total_recorded(),
            flight_events_dropped: self.flight.dropped(),
            slo: self.slo.as_ref().map(|s| s.summary()),
            slo_breaches: self
                .slo
                .as_ref()
                .map(|s| s.breaches().to_vec())
                .unwrap_or_default(),
            health: self.health.as_ref().map(|h| HealthSnapshot {
                replicas: h.replicas,
                quorum: h.quorum,
                stale_lag: h.stale_lag,
                series_points: h.series.total_windows() as u64,
                series_jsonl: h.series.render_jsonl(),
                states: h.tracker.states(),
                transitions: h.tracker.transitions().to_vec(),
                alert_log: h.engine.log().to_vec(),
                alert_log_jsonl: h.engine.render_jsonl(),
                active_alerts: h.engine.active().iter().map(|r| r.to_string()).collect(),
            }),
        }
    }
}

/// Raises a monotone counter to `target` (cumulative sources like the
/// buffer pool keep their own totals; the metric mirrors them).
fn sync_counter(counter: &CounterHandle, target: u64) {
    let current = counter.get();
    if target > current {
        counter.add(target - current);
    }
}

/// The frozen observability record of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Every metric, frozen (counters, gauges, histograms).
    pub registry: RegistrySnapshot,
    /// The registry rendered in the Prometheus text exposition format.
    pub prometheus: String,
    /// The flight recorder's JSON dump (most recent events).
    pub flight_recorder_json: String,
    /// Flight events recorded over the run (retained + evicted).
    pub flight_events_recorded: u64,
    /// Flight events evicted by the bounded ring.
    pub flight_events_dropped: u64,
    /// SLO compliance summary (`None` under a fixed-period policy).
    pub slo: Option<SloSummary>,
    /// Every SLO breach, in order.
    pub slo_breaches: Vec<SloBreach>,
    /// The frozen health plane (`None` unless the config armed it).
    pub health: Option<HealthSnapshot>,
}

/// The frozen health plane of one run: series, health trajectory, and
/// the ordered alert log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Replicas the plane watched.
    pub replicas: u32,
    /// Commit quorum the alert engine judged against.
    pub quorum: u32,
    /// Stale threshold (epochs) of the health machines.
    pub stale_lag: u64,
    /// Total series windows recorded (live + tail, across all series).
    pub series_points: u64,
    /// The windowed series as JSONL, one line per window, byte-stable.
    pub series_jsonl: String,
    /// Final health state per replica, in index order.
    pub states: Vec<HealthState>,
    /// Every health transition, in firing order.
    pub transitions: Vec<HealthTransition>,
    /// The ordered alert log (firing/resolved edges).
    pub alert_log: Vec<AlertEvent>,
    /// The alert log as JSONL, one event per line, byte-stable.
    pub alert_log_jsonl: String,
    /// Rules still firing when the run ended, in declaration order.
    pub active_alerts: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::period::PeriodAction;
    use here_sim_core::time::SimTime;
    use here_telemetry::metrics::MetricValue;

    fn dynamic_policy() -> PeriodPolicy {
        PeriodPolicy::Dynamic {
            d_target: 0.3,
            t_max: SimDuration::from_secs(10),
            sigma: SimDuration::from_millis(250),
        }
    }

    fn sample_record(seq: u64) -> CheckpointRecord {
        CheckpointRecord {
            seq,
            paused_at: SimTime::from_secs(seq),
            period: SimDuration::from_secs(2),
            pause: SimDuration::from_millis(40),
            dirty_pages: 512,
            degradation: 0.02,
            wall_nanos: Some(1_000_000),
        }
    }

    fn sample_decision() -> PeriodDecision {
        PeriodDecision {
            dirty_pages: 512,
            measured_pause: SimDuration::from_millis(40),
            measured_degradation: 0.02,
            previous_period: SimDuration::from_secs(2),
            chosen_period: SimDuration::from_secs(1),
            predicted_degradation: 0.038,
            action: PeriodAction::FastDescent,
            clamp: None,
        }
    }

    #[test]
    fn checkpoint_hook_feeds_metrics_slo_and_flight() {
        let mut t = SessionTelemetry::new(dynamic_policy());
        t.on_checkpoint(&sample_record(1), &sample_decision(), 1_000);
        let snap = t.snapshot();
        assert_eq!(
            snap.registry.find("here_checkpoints_total").unwrap().value,
            MetricValue::Counter(1)
        );
        assert_eq!(
            snap.registry.find("here_period_seconds").unwrap().value,
            MetricValue::Gauge(1.0)
        );
        let slo = snap.slo.expect("dynamic policy arms the SLO tracker");
        assert_eq!(slo.evaluated, 1);
        assert_eq!(slo.compliant, 1);
        assert!(snap.flight_recorder_json.contains("period_decision"));
        assert!(snap.prometheus.contains("here_checkpoints_total 1"));
    }

    #[test]
    fn fixed_policy_has_no_slo_tracker() {
        let mut t = SessionTelemetry::new(PeriodPolicy::Fixed(SimDuration::from_secs(2)));
        t.on_checkpoint(&sample_record(1), &sample_decision(), 0);
        let snap = t.snapshot();
        assert!(snap.slo.is_none());
        assert!(snap.slo_breaches.is_empty());
    }

    #[test]
    fn slo_breach_increments_the_breach_counter() {
        let mut t = SessionTelemetry::new(dynamic_policy());
        let mut record = sample_record(3);
        // 4 s pause over a 2 s period: D = 0.67, far over the 0.3 target.
        record.pause = SimDuration::from_secs(4);
        record.degradation = 2.0 / 3.0;
        t.on_checkpoint(&record, &sample_decision(), 0);
        let snap = t.snapshot();
        assert_eq!(
            snap.registry.find("here_slo_breaches_total").unwrap().value,
            MetricValue::Counter(1)
        );
        assert_eq!(snap.slo_breaches.len(), 1);
        assert_eq!(snap.slo_breaches[0].seq, 3);
    }

    #[test]
    fn stage_events_fill_labelled_histograms_and_counters() {
        let mut t = SessionTelemetry::new(dynamic_policy());
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            t.on_stage_event(&StageEvent {
                seq: 1,
                stage,
                at: SimTime::from_secs(i as u64),
                duration: SimDuration::from_millis(5),
                wall_nanos: (stage == Stage::Harvest).then_some(4_200),
                pages: 128,
                bytes: 128 * 4096,
            });
        }
        let snap = t.snapshot();
        assert_eq!(
            snap.registry
                .find("here_pages_harvested_total")
                .unwrap()
                .value,
            MetricValue::Counter(128)
        );
        assert_eq!(
            snap.registry
                .find("here_bytes_transferred_total")
                .unwrap()
                .value,
            MetricValue::Counter(128 * 4096)
        );
        assert!(snap
            .prometheus
            .contains("here_stage_nanos_bucket{stage=\"harvest\""));
        assert!(snap.flight_recorder_json.contains("\"wall_nanos\":4200"));
        assert_eq!(snap.flight_events_recorded, 6);
    }

    #[test]
    fn pool_and_packet_sync_is_monotone() {
        let mut t = SessionTelemetry::new(dynamic_policy());
        t.on_pool_stats(10, 4, 4, 0);
        t.on_pool_stats(25, 4, 4, 1);
        // A stale (smaller) value never decrements.
        t.on_pool_stats(20, 4, 4, 2);
        t.on_packet_stats(7, 5, 0);
        let snap = t.snapshot();
        assert_eq!(
            snap.registry
                .find("here_pool_reclaim_hits_total")
                .unwrap()
                .value,
            MetricValue::Counter(25)
        );
        assert_eq!(
            snap.registry
                .find("here_packets_buffered_total")
                .unwrap()
                .value,
            MetricValue::Counter(7)
        );
    }

    #[test]
    fn failover_lays_a_three_mark_timeline() {
        let mut t = SessionTelemetry::new(dynamic_policy());
        t.on_failover(&FailoverRecord {
            failed_at: SimTime::from_secs(10),
            detected_at: SimTime::from_secs(10) + SimDuration::from_millis(40),
            resumed_at: SimTime::from_secs(10) + SimDuration::from_millis(49),
            resumed_from_checkpoint: 7,
            activated_replica: 0,
            packets_lost: 3,
            ops_lost: 120.0,
            devices_switched: 3,
        });
        let json = t.snapshot().flight_recorder_json;
        for phase in ["failed", "detected", "resumed"] {
            assert!(json.contains(&format!("\"phase\":\"{phase}\"")), "{phase}");
        }
        assert!(json.contains("from checkpoint 7"));
    }

    #[test]
    fn retry_hooks_feed_counters_and_flight() {
        let mut t = SessionTelemetry::new(dynamic_policy());
        t.on_fault("crash", true, "injected".into(), 5);
        t.on_transfer_retry(3, 0, 1, "corrupt_frame", 500_000, 10);
        t.on_transfer_retry(3, 0, 2, "dropped", 1_000_000, 20);
        t.on_transfer_recovery(3, 2);
        t.on_epoch_abort(4, 4, 30);
        let snap = t.snapshot();
        for (name, want) in [
            ("here_faults_injected_total", 1),
            ("here_transfer_retries_total", 2),
            ("here_transfer_recoveries_total", 1),
            ("here_epochs_aborted_total", 1),
        ] {
            assert_eq!(
                snap.registry.find(name).unwrap().value,
                MetricValue::Counter(want),
                "{name}"
            );
        }
        assert!(snap.flight_recorder_json.contains("corrupt_frame"));
        assert!(snap.flight_recorder_json.contains("epoch_abort"));
        assert!(snap
            .flight_recorder_json
            .contains("discarded after 4 failed transfer attempts"));
    }

    fn lag_obs(replica: u32, acked: u64, lag: u64, backlog: u64) -> HealthObservation {
        HealthObservation {
            replica,
            ack_mark: acked,
            lag_epochs: lag,
            backlog_pages: backlog,
            retries: 0,
        }
    }

    #[test]
    fn unarmed_plane_registers_no_extra_families_and_ticks_to_nothing() {
        let mut plain = SessionTelemetry::new(dynamic_policy());
        let baseline = plain.snapshot().registry.metrics.len();
        let events = plain.on_health_tick(
            1,
            0,
            0.02,
            2_000_000_000,
            40_000_000,
            &[lag_obs(0, 1, 0, 0)],
        );
        assert!(events.is_empty());
        let snap = plain.snapshot();
        assert_eq!(snap.registry.metrics.len(), baseline);
        assert!(snap.health.is_none());
        assert!(!snap.prometheus.contains("here_replica_lag_epochs"));
    }

    #[test]
    fn armed_plane_labels_metrics_and_tracks_health() {
        let mut t = SessionTelemetry::with_health_plane(dynamic_policy(), 3, 2, 4);
        t.on_transfer_retry(2, 2, 1, "link_down", 500_000, 10);
        let events = t.on_health_tick(
            2,
            4_000_000_000,
            0.02,
            2_000_000_000,
            40_000_000,
            &[
                lag_obs(0, 2, 0, 0),
                lag_obs(1, 2, 0, 0),
                lag_obs(2, 1, 1, 32),
            ],
        );
        assert!(events.is_empty(), "one slow epoch is not an alert");
        let snap = t.snapshot();
        let health = snap.health.expect("plane armed");
        assert_eq!(health.states[2], HealthState::Lagging);
        assert_eq!(health.transitions.len(), 1);
        assert!(snap
            .prometheus
            .contains("here_replica_lag_epochs{replica=\"2\"} 1.0"));
        assert!(snap
            .prometheus
            .contains("here_replica_backlog_pages{replica=\"2\"} 32.0"));
        assert!(snap
            .prometheus
            .contains("here_replica_retries_total{replica=\"2\"} 1"));
        assert!(health.series_jsonl.contains("here_degradation_ppm"));
        assert!(health
            .series_jsonl
            .contains("\"metric\":\"here_transfer_retries\",\"label\":{\"replica\":\"2\"}"));
    }

    #[test]
    fn stale_replica_fires_and_resolves_through_the_tick() {
        let mut t = SessionTelemetry::with_health_plane(dynamic_policy(), 3, 2, 4);
        let mut fired = Vec::new();
        for epoch in 1..=6 {
            // Replica 2 misses every epoch: lag grows 1, 2, ..., 6.
            let at = epoch * 2_000_000_000;
            fired.extend(t.on_health_tick(
                epoch,
                at,
                0.02,
                2_000_000_000,
                40_000_000,
                &[
                    lag_obs(0, epoch, 0, 0),
                    lag_obs(1, epoch, 0, 0),
                    lag_obs(2, 0, epoch, 128),
                ],
            ));
        }
        let rules: Vec<&str> = fired.iter().map(|e| e.rule).collect();
        assert!(rules.contains(&"stale_replica"));
        assert!(rules.contains(&"quorum_at_risk"));
        // Replica 2 catches up and stays clean: alerts resolve.
        for epoch in 7..=10 {
            let at = epoch * 2_000_000_000;
            fired.extend(t.on_health_tick(
                epoch,
                at,
                0.02,
                2_000_000_000,
                40_000_000,
                &[
                    lag_obs(0, epoch, 0, 0),
                    lag_obs(1, epoch, 0, 0),
                    lag_obs(2, epoch, 0, 0),
                ],
            ));
        }
        let snap = t.snapshot();
        let health = snap.health.expect("plane armed");
        assert_eq!(health.states, vec![HealthState::Healthy; 3]);
        assert!(health.active_alerts.is_empty());
        assert!(health.alert_log_jsonl.contains("\"state\":\"resolved\""));
        assert!(snap.flight_recorder_json.contains("\"kind\":\"alert\""));
    }

    #[test]
    fn armed_reset_keeps_the_plane_and_its_schema() {
        let mut t = SessionTelemetry::with_health_plane(dynamic_policy(), 2, 2, 8);
        t.on_health_tick(
            1,
            0,
            0.02,
            2_000_000_000,
            40_000_000,
            &[lag_obs(0, 1, 0, 0)],
        );
        let before = t.snapshot();
        t.reset();
        let after = t.snapshot();
        assert_eq!(before.registry.metrics.len(), after.registry.metrics.len());
        let health = after.health.expect("plane survives reset");
        assert_eq!(health.series_points, 0);
        assert!(health.alert_log.is_empty());
    }

    #[test]
    fn flight_capacity_is_configurable_and_survives_reset() {
        // Default stays FLIGHT_RECORDER_CAPACITY so expositions are
        // byte-identical for unconfigured runs.
        let t = SessionTelemetry::new(dynamic_policy());
        assert!(t
            .snapshot()
            .flight_recorder_json
            .contains(&format!("\"capacity\":{FLIGHT_RECORDER_CAPACITY}")));

        // A resized ring keeps its capacity across reset and drops by it.
        let mut t = SessionTelemetry::new(dynamic_policy()).with_flight_capacity(2);
        for seq in 1..=4 {
            t.on_checkpoint(&sample_record(seq), &sample_decision(), 0);
        }
        let snap = t.snapshot();
        assert!(snap.flight_recorder_json.contains("\"capacity\":2"));
        assert_eq!(snap.flight_events_recorded, 4);
        assert_eq!(snap.flight_events_dropped, 2);
        t.reset();
        let after = t.snapshot();
        assert!(after.flight_recorder_json.contains("\"capacity\":2"));
        assert_eq!(after.flight_events_recorded, 0);

        // Zero is clamped to one rather than panicking the ring.
        let t = SessionTelemetry::new(dynamic_policy()).with_flight_capacity(0);
        assert!(t.snapshot().flight_recorder_json.contains("\"capacity\":1"));
    }

    #[test]
    fn reset_discards_history_but_keeps_schema() {
        let mut t = SessionTelemetry::new(dynamic_policy());
        t.on_checkpoint(&sample_record(1), &sample_decision(), 0);
        let before = t.snapshot();
        t.reset();
        let after = t.snapshot();
        assert_eq!(
            after.registry.find("here_checkpoints_total").unwrap().value,
            MetricValue::Counter(0)
        );
        assert_eq!(after.flight_events_recorded, 0);
        // Same metric families in both snapshots.
        assert_eq!(before.registry.metrics.len(), after.registry.metrics.len());
    }
}
