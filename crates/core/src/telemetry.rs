//! The session's always-on observability bundle.
//!
//! [`SessionTelemetry`] wires the generic `here-telemetry` building blocks
//! — metrics registry, flight recorder, SLO tracker — to the replication
//! stack's events: stage boundaries, period-controller decisions, encode
//! lanes, buffer-pool reclaims, the seeding migration and the failover
//! timeline. The session owns one instance and calls the `on_*` hooks
//! from the instrumented paths; [`SessionTelemetry::snapshot`] freezes
//! everything into the plain-data [`TelemetrySnapshot`] that rides in
//! [`crate::report::RunReport::telemetry`].
//!
//! ## Metric reference
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `here_checkpoints_total` | counter | checkpoints completed |
//! | `here_pages_harvested_total` | counter | dirty pages copied across all checkpoints |
//! | `here_bytes_transferred_total` | counter | encoded checkpoint bytes shipped |
//! | `here_pages_seeded_total` | counter | pages sent by the seeding migration |
//! | `here_pool_reclaim_hits_total` | counter | encode-buffer checkouts served from the pool |
//! | `here_pool_reclaim_misses_total` | counter | encode-buffer checkouts that allocated |
//! | `here_packets_buffered_total` | counter | guest output packets held back for commit |
//! | `here_packets_released_total` | counter | buffered packets released at commit |
//! | `here_packets_discarded_total` | counter | buffered packets dropped by a failover |
//! | `here_slo_breaches_total` | counter | degradation/period-cap SLO breaches |
//! | `here_failovers_total` | counter | failovers performed |
//! | `here_faults_injected_total` | counter | faults laid into the run (exploits, accidents, fault plane) |
//! | `here_transfer_retries_total` | counter | checkpoint transfer attempts that failed and were retried |
//! | `here_transfer_recoveries_total` | counter | checkpoints delivered after at least one failed attempt |
//! | `here_epochs_aborted_total` | counter | checkpoints discarded after exhausting the retry budget |
//! | `here_pause_nanos` | histogram | VM-visible pause `t` per checkpoint |
//! | `here_dirty_pages` | histogram | dirty pages `N` per checkpoint |
//! | `here_stage_nanos{stage=…}` | histogram | virtual duration per pipeline stage |
//! | `here_encode_lane_wall_nanos` | histogram | wall-clock encode time per lane |
//! | `here_period_seconds` | gauge | the period `T` chosen for the next epoch |
//! | `here_degradation_ratio` | gauge | last measured degradation `D_T` |

use serde::{Deserialize, Serialize};

use here_sim_core::time::SimDuration;
use here_telemetry::export::prometheus;
use here_telemetry::flight::{FlightEvent, FlightRecorder};
use here_telemetry::metrics::{
    CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry, RegistrySnapshot,
};
use here_telemetry::slo::{SloBreach, SloSummary, SloTracker};

use crate::config::PeriodPolicy;
use crate::failover::FailoverRecord;
use crate::period::PeriodDecision;
use crate::report::CheckpointRecord;
use crate::trace::{Stage, StageEvent};

/// Events the always-on flight recorder retains.
pub const FLIGHT_RECORDER_CAPACITY: usize = 1024;

/// The live observability state of one replication session.
#[derive(Debug)]
pub struct SessionTelemetry {
    policy: PeriodPolicy,
    registry: MetricsRegistry,
    flight: FlightRecorder,
    slo: Option<SloTracker>,
    checkpoints: CounterHandle,
    pages_harvested: CounterHandle,
    bytes_transferred: CounterHandle,
    pages_seeded: CounterHandle,
    pool_hits: CounterHandle,
    pool_misses: CounterHandle,
    packets_buffered: CounterHandle,
    packets_released: CounterHandle,
    packets_discarded: CounterHandle,
    slo_breaches: CounterHandle,
    failovers: CounterHandle,
    faults_injected: CounterHandle,
    transfer_retries: CounterHandle,
    transfer_recoveries: CounterHandle,
    epochs_aborted: CounterHandle,
    pause_hist: HistogramHandle,
    dirty_pages_hist: HistogramHandle,
    stage_hists: [HistogramHandle; 6],
    encode_lane_hist: HistogramHandle,
    period_gauge: GaugeHandle,
    degradation_gauge: GaugeHandle,
}

impl SessionTelemetry {
    /// Builds the bundle for a session running under `policy`. A dynamic
    /// policy arms the SLO tracker with its target `D` and cap `T_max`; a
    /// fixed policy has no stated target, so nothing is tracked.
    pub fn new(policy: PeriodPolicy) -> Self {
        let mut registry = MetricsRegistry::new();
        let checkpoints = registry.counter("here_checkpoints_total", "Checkpoints completed");
        let pages_harvested = registry.counter(
            "here_pages_harvested_total",
            "Dirty pages copied across all checkpoints",
        );
        let bytes_transferred = registry.counter(
            "here_bytes_transferred_total",
            "Encoded checkpoint bytes shipped to the replica",
        );
        let pages_seeded = registry.counter(
            "here_pages_seeded_total",
            "Pages sent by the seeding migration",
        );
        let pool_hits = registry.counter(
            "here_pool_reclaim_hits_total",
            "Encode-buffer checkouts served from the pool",
        );
        let pool_misses = registry.counter(
            "here_pool_reclaim_misses_total",
            "Encode-buffer checkouts that had to allocate",
        );
        let packets_buffered = registry.counter(
            "here_packets_buffered_total",
            "Guest output packets held back until commit",
        );
        let packets_released = registry.counter(
            "here_packets_released_total",
            "Buffered packets released at checkpoint commit",
        );
        let packets_discarded = registry.counter(
            "here_packets_discarded_total",
            "Buffered packets dropped by a failover rollback",
        );
        let slo_breaches = registry.counter(
            "here_slo_breaches_total",
            "Degradation-target and period-cap SLO breaches",
        );
        let failovers = registry.counter("here_failovers_total", "Failovers performed");
        let faults_injected = registry.counter(
            "here_faults_injected_total",
            "Faults laid into the run (exploits, accidents, fault plane)",
        );
        let transfer_retries = registry.counter(
            "here_transfer_retries_total",
            "Checkpoint transfer attempts that failed and were retried",
        );
        let transfer_recoveries = registry.counter(
            "here_transfer_recoveries_total",
            "Checkpoints delivered after at least one failed attempt",
        );
        let epochs_aborted = registry.counter(
            "here_epochs_aborted_total",
            "Checkpoints discarded after exhausting the transfer retry budget",
        );
        let pause_hist = registry.histogram(
            "here_pause_nanos",
            "VM-visible pause t per checkpoint (virtual ns)",
        );
        let dirty_pages_hist =
            registry.histogram("here_dirty_pages", "Dirty pages N per checkpoint");
        let stage_hists = Stage::ALL.map(|s| {
            registry.histogram_with_label(
                "here_stage_nanos",
                "Virtual duration per pipeline stage (ns)",
                Some(("stage", s.label())),
            )
        });
        let encode_lane_hist = registry.histogram(
            "here_encode_lane_wall_nanos",
            "Wall-clock encode time per lane (ns)",
        );
        let period_gauge = registry.gauge(
            "here_period_seconds",
            "Checkpoint period T chosen for the next epoch",
        );
        let degradation_gauge = registry.gauge(
            "here_degradation_ratio",
            "Last measured degradation D_T = t/(t+T)",
        );
        let slo = match policy {
            PeriodPolicy::Fixed(_) => None,
            PeriodPolicy::Dynamic {
                d_target, t_max, ..
            } => {
                let cap = (t_max != SimDuration::MAX).then(|| t_max.as_nanos());
                Some(SloTracker::new(d_target, cap))
            }
        };
        SessionTelemetry {
            policy,
            registry,
            flight: FlightRecorder::new(FLIGHT_RECORDER_CAPACITY),
            slo,
            checkpoints,
            pages_harvested,
            bytes_transferred,
            pages_seeded,
            pool_hits,
            pool_misses,
            packets_buffered,
            packets_released,
            packets_discarded,
            slo_breaches,
            failovers,
            faults_injected,
            transfer_retries,
            transfer_recoveries,
            epochs_aborted,
            pause_hist,
            dirty_pages_hist,
            stage_hists,
            encode_lane_hist,
            period_gauge,
            degradation_gauge,
        }
    }

    /// Discards everything observed so far (used when a warmup window
    /// closes and measurement restarts). Counters are handles shared with
    /// nothing outside this bundle, so a rebuild is the cheapest reset.
    pub fn reset(&mut self) {
        *self = SessionTelemetry::new(self.policy);
    }

    /// One pipeline stage boundary crossed.
    pub fn on_stage_event(&mut self, event: &StageEvent) {
        let idx = Stage::ALL
            .iter()
            .position(|&s| s == event.stage)
            .expect("Stage::ALL covers every stage");
        self.stage_hists[idx].observe(event.duration.as_nanos());
        match event.stage {
            Stage::Harvest => self.pages_harvested.add(event.pages),
            Stage::Transfer => self.bytes_transferred.add(event.bytes),
            _ => {}
        }
        self.flight.record(FlightEvent::Stage {
            seq: event.seq,
            stage: event.stage.label(),
            at_nanos: event.at.as_nanos(),
            duration_nanos: event.duration.as_nanos(),
            wall_nanos: event.wall_nanos,
            pages: event.pages,
            bytes: event.bytes,
        });
    }

    /// One checkpoint completed: feeds the histograms, gauges, SLO tracker
    /// and the flight recorder with the derived record and the period
    /// controller's decision. `at_nanos` is the report-relative timestamp.
    pub fn on_checkpoint(
        &mut self,
        record: &CheckpointRecord,
        decision: &PeriodDecision,
        at_nanos: u64,
    ) {
        self.checkpoints.incr();
        self.pause_hist.observe(record.pause.as_nanos());
        self.dirty_pages_hist.observe(record.dirty_pages);
        self.period_gauge.set(decision.chosen_period.as_secs_f64());
        self.degradation_gauge.set(record.degradation);
        self.flight.record(FlightEvent::PeriodDecision {
            seq: record.seq,
            at_nanos,
            dirty_pages: decision.dirty_pages,
            measured_pause_nanos: decision.measured_pause.as_nanos(),
            previous_period_nanos: decision.previous_period.as_nanos(),
            chosen_period_nanos: decision.chosen_period.as_nanos(),
            predicted_degradation: decision.predicted_degradation,
            action: decision.action.label(),
            clamp: decision.clamp.map(|c| c.label()),
        });
        if let Some(slo) = &mut self.slo {
            let breaches = slo.observe(
                record.seq,
                at_nanos,
                record.pause.as_nanos(),
                record.period.as_nanos(),
            );
            self.slo_breaches.add(breaches.len() as u64);
        }
    }

    /// One encode lane finished its shard of checkpoint `seq`.
    pub fn on_encode_lane(&mut self, seq: u64, lane: u64, wall_nanos: u64, at_nanos: u64) {
        self.encode_lane_hist.observe(wall_nanos);
        self.flight.record(FlightEvent::EncodeLane {
            seq,
            at_nanos,
            lane,
            wall_nanos,
        });
    }

    /// The work-stealing encode pool finished a checkpoint round: record
    /// how the chunks spread across lanes. Only called when the pool ran
    /// a multi-lane round, so barrier-era flight dumps are unchanged.
    pub fn on_encode_pool(
        &mut self,
        seq: u64,
        tasks: u64,
        steals: u64,
        occupancy_pct: f64,
        at_nanos: u64,
    ) {
        self.flight.record(FlightEvent::EncodePool {
            at_nanos,
            seq,
            tasks,
            steals,
            occupancy_pct,
        });
    }

    /// Samples the encode buffer pool's cumulative reclaim statistics
    /// (called after each checkpoint's transfer recycles its segments).
    pub fn on_pool_stats(&mut self, hits: u64, misses: u64, pooled: u64, at_nanos: u64) {
        sync_counter(&self.pool_hits, hits);
        sync_counter(&self.pool_misses, misses);
        self.flight.record(FlightEvent::PoolReclaim {
            at_nanos,
            pool: "encode",
            hits,
            misses,
            pooled,
        });
    }

    /// Syncs the device manager's packet counters (cumulative values).
    pub fn on_packet_stats(&mut self, buffered: u64, released: u64, discarded: u64) {
        sync_counter(&self.packets_buffered, buffered);
        sync_counter(&self.packets_released, released);
        sync_counter(&self.packets_discarded, discarded);
    }

    /// One seeding-migration iteration finished.
    pub fn on_migration_iteration(
        &mut self,
        iteration: u64,
        pages: u64,
        phase: &'static str,
        at_nanos: u64,
    ) {
        self.pages_seeded.add(pages);
        self.flight.record(FlightEvent::Migration {
            at_nanos,
            iteration,
            pages,
            phase,
        });
    }

    /// A failover ran: counts it and lays its timeline into the recorder.
    pub fn on_failover(&mut self, record: &FailoverRecord) {
        self.failovers.incr();
        self.flight.record(FlightEvent::Failover {
            at_nanos: record.failed_at.as_nanos(),
            phase: "failed",
            detail: String::new(),
        });
        self.flight.record(FlightEvent::Failover {
            at_nanos: record.detected_at.as_nanos(),
            phase: "detected",
            detail: format!(
                "heartbeat silent for {}",
                record
                    .detected_at
                    .saturating_duration_since(record.failed_at)
            ),
        });
        self.flight.record(FlightEvent::Failover {
            at_nanos: record.resumed_at.as_nanos(),
            phase: "resumed",
            detail: format!(
                "from checkpoint {}; {} packets and {:.0} ops rolled back; {} devices switched",
                record.resumed_from_checkpoint,
                record.packets_lost,
                record.ops_lost,
                record.devices_switched
            ),
        });
    }

    /// A fault was injected into the primary (exploit launch or DoS
    /// accident): lays a timeline mark into the recorder so crash, hang
    /// and starvation runs show *what* went wrong, not just the three
    /// failover gauge marks that follow.
    pub fn on_fault(
        &mut self,
        fault: &'static str,
        host_down: bool,
        detail: String,
        at_nanos: u64,
    ) {
        self.faults_injected.incr();
        self.flight.record(FlightEvent::Fault {
            at_nanos,
            fault,
            host_down,
            detail,
        });
    }

    /// A checkpoint transfer attempt failed and will be retried after
    /// `backoff_nanos` of exponential backoff.
    pub fn on_transfer_retry(
        &mut self,
        seq: u64,
        attempt: u32,
        reason: &'static str,
        backoff_nanos: u64,
        at_nanos: u64,
    ) {
        self.transfer_retries.incr();
        self.flight.record(FlightEvent::Retry {
            at_nanos,
            seq,
            attempt,
            reason,
            backoff_nanos,
        });
    }

    /// A checkpoint was delivered after `failed_attempts` failed tries.
    pub fn on_transfer_recovery(&mut self, _seq: u64, _failed_attempts: u32) {
        self.transfer_recoveries.incr();
    }

    /// A checkpoint exhausted its transfer retry budget and was discarded;
    /// the previous committed epoch stays authoritative.
    pub fn on_epoch_abort(&mut self, seq: u64, attempts: u32, at_nanos: u64) {
        self.epochs_aborted.incr();
        self.flight.record(FlightEvent::Fault {
            at_nanos,
            fault: "epoch_abort",
            host_down: false,
            detail: format!("checkpoint {seq} discarded after {attempts} failed transfer attempts"),
        });
    }

    /// A replica fell behind the newest acked epoch by more than the
    /// topology's staleness bound and was declared stale. Recorded once
    /// per stale episode on the flight recorder (no dedicated metric
    /// family: single-replica runs never emit it, so the observe-gate
    /// schema stays frozen).
    pub fn on_replica_stale(&mut self, replica: u32, lag_epochs: u64, at_nanos: u64) {
        self.flight.record(FlightEvent::Fault {
            at_nanos,
            fault: "replica_stale",
            host_down: false,
            detail: format!("replica {replica} trails the quorum by {lag_epochs} epochs"),
        });
    }

    /// The device manager re-plugged the replica's devices during
    /// failover (the detection → activation window).
    pub fn on_device_switch(
        &mut self,
        devices: usize,
        packets_discarded: usize,
        new_family: &'static str,
        at_nanos: u64,
    ) {
        self.flight.record(FlightEvent::Failover {
            at_nanos,
            phase: "device_switch",
            detail: format!(
                "{devices} devices re-plugged as {new_family}; {packets_discarded} buffered packets discarded"
            ),
        });
    }

    /// Read access for tests and exporters.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Freezes the bundle into the plain-data report snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let registry = self.registry.snapshot();
        TelemetrySnapshot {
            prometheus: prometheus(&registry),
            registry,
            flight_recorder_json: self.flight.dump_json(),
            flight_events_recorded: self.flight.total_recorded(),
            flight_events_dropped: self.flight.dropped(),
            slo: self.slo.as_ref().map(|s| s.summary()),
            slo_breaches: self
                .slo
                .as_ref()
                .map(|s| s.breaches().to_vec())
                .unwrap_or_default(),
        }
    }
}

/// Raises a monotone counter to `target` (cumulative sources like the
/// buffer pool keep their own totals; the metric mirrors them).
fn sync_counter(counter: &CounterHandle, target: u64) {
    let current = counter.get();
    if target > current {
        counter.add(target - current);
    }
}

/// The frozen observability record of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Every metric, frozen (counters, gauges, histograms).
    pub registry: RegistrySnapshot,
    /// The registry rendered in the Prometheus text exposition format.
    pub prometheus: String,
    /// The flight recorder's JSON dump (most recent events).
    pub flight_recorder_json: String,
    /// Flight events recorded over the run (retained + evicted).
    pub flight_events_recorded: u64,
    /// Flight events evicted by the bounded ring.
    pub flight_events_dropped: u64,
    /// SLO compliance summary (`None` under a fixed-period policy).
    pub slo: Option<SloSummary>,
    /// Every SLO breach, in order.
    pub slo_breaches: Vec<SloBreach>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::period::PeriodAction;
    use here_sim_core::time::SimTime;
    use here_telemetry::metrics::MetricValue;

    fn dynamic_policy() -> PeriodPolicy {
        PeriodPolicy::Dynamic {
            d_target: 0.3,
            t_max: SimDuration::from_secs(10),
            sigma: SimDuration::from_millis(250),
        }
    }

    fn sample_record(seq: u64) -> CheckpointRecord {
        CheckpointRecord {
            seq,
            paused_at: SimTime::from_secs(seq),
            period: SimDuration::from_secs(2),
            pause: SimDuration::from_millis(40),
            dirty_pages: 512,
            degradation: 0.02,
            wall_nanos: Some(1_000_000),
        }
    }

    fn sample_decision() -> PeriodDecision {
        PeriodDecision {
            dirty_pages: 512,
            measured_pause: SimDuration::from_millis(40),
            measured_degradation: 0.02,
            previous_period: SimDuration::from_secs(2),
            chosen_period: SimDuration::from_secs(1),
            predicted_degradation: 0.038,
            action: PeriodAction::FastDescent,
            clamp: None,
        }
    }

    #[test]
    fn checkpoint_hook_feeds_metrics_slo_and_flight() {
        let mut t = SessionTelemetry::new(dynamic_policy());
        t.on_checkpoint(&sample_record(1), &sample_decision(), 1_000);
        let snap = t.snapshot();
        assert_eq!(
            snap.registry.find("here_checkpoints_total").unwrap().value,
            MetricValue::Counter(1)
        );
        assert_eq!(
            snap.registry.find("here_period_seconds").unwrap().value,
            MetricValue::Gauge(1.0)
        );
        let slo = snap.slo.expect("dynamic policy arms the SLO tracker");
        assert_eq!(slo.evaluated, 1);
        assert_eq!(slo.compliant, 1);
        assert!(snap.flight_recorder_json.contains("period_decision"));
        assert!(snap.prometheus.contains("here_checkpoints_total 1"));
    }

    #[test]
    fn fixed_policy_has_no_slo_tracker() {
        let mut t = SessionTelemetry::new(PeriodPolicy::Fixed(SimDuration::from_secs(2)));
        t.on_checkpoint(&sample_record(1), &sample_decision(), 0);
        let snap = t.snapshot();
        assert!(snap.slo.is_none());
        assert!(snap.slo_breaches.is_empty());
    }

    #[test]
    fn slo_breach_increments_the_breach_counter() {
        let mut t = SessionTelemetry::new(dynamic_policy());
        let mut record = sample_record(3);
        // 4 s pause over a 2 s period: D = 0.67, far over the 0.3 target.
        record.pause = SimDuration::from_secs(4);
        record.degradation = 2.0 / 3.0;
        t.on_checkpoint(&record, &sample_decision(), 0);
        let snap = t.snapshot();
        assert_eq!(
            snap.registry.find("here_slo_breaches_total").unwrap().value,
            MetricValue::Counter(1)
        );
        assert_eq!(snap.slo_breaches.len(), 1);
        assert_eq!(snap.slo_breaches[0].seq, 3);
    }

    #[test]
    fn stage_events_fill_labelled_histograms_and_counters() {
        let mut t = SessionTelemetry::new(dynamic_policy());
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            t.on_stage_event(&StageEvent {
                seq: 1,
                stage,
                at: SimTime::from_secs(i as u64),
                duration: SimDuration::from_millis(5),
                wall_nanos: (stage == Stage::Harvest).then_some(4_200),
                pages: 128,
                bytes: 128 * 4096,
            });
        }
        let snap = t.snapshot();
        assert_eq!(
            snap.registry
                .find("here_pages_harvested_total")
                .unwrap()
                .value,
            MetricValue::Counter(128)
        );
        assert_eq!(
            snap.registry
                .find("here_bytes_transferred_total")
                .unwrap()
                .value,
            MetricValue::Counter(128 * 4096)
        );
        assert!(snap
            .prometheus
            .contains("here_stage_nanos_bucket{stage=\"harvest\""));
        assert!(snap.flight_recorder_json.contains("\"wall_nanos\":4200"));
        assert_eq!(snap.flight_events_recorded, 6);
    }

    #[test]
    fn pool_and_packet_sync_is_monotone() {
        let mut t = SessionTelemetry::new(dynamic_policy());
        t.on_pool_stats(10, 4, 4, 0);
        t.on_pool_stats(25, 4, 4, 1);
        // A stale (smaller) value never decrements.
        t.on_pool_stats(20, 4, 4, 2);
        t.on_packet_stats(7, 5, 0);
        let snap = t.snapshot();
        assert_eq!(
            snap.registry
                .find("here_pool_reclaim_hits_total")
                .unwrap()
                .value,
            MetricValue::Counter(25)
        );
        assert_eq!(
            snap.registry
                .find("here_packets_buffered_total")
                .unwrap()
                .value,
            MetricValue::Counter(7)
        );
    }

    #[test]
    fn failover_lays_a_three_mark_timeline() {
        let mut t = SessionTelemetry::new(dynamic_policy());
        t.on_failover(&FailoverRecord {
            failed_at: SimTime::from_secs(10),
            detected_at: SimTime::from_secs(10) + SimDuration::from_millis(40),
            resumed_at: SimTime::from_secs(10) + SimDuration::from_millis(49),
            resumed_from_checkpoint: 7,
            activated_replica: 0,
            packets_lost: 3,
            ops_lost: 120.0,
            devices_switched: 3,
        });
        let json = t.snapshot().flight_recorder_json;
        for phase in ["failed", "detected", "resumed"] {
            assert!(json.contains(&format!("\"phase\":\"{phase}\"")), "{phase}");
        }
        assert!(json.contains("from checkpoint 7"));
    }

    #[test]
    fn retry_hooks_feed_counters_and_flight() {
        let mut t = SessionTelemetry::new(dynamic_policy());
        t.on_fault("crash", true, "injected".into(), 5);
        t.on_transfer_retry(3, 1, "corrupt_frame", 500_000, 10);
        t.on_transfer_retry(3, 2, "dropped", 1_000_000, 20);
        t.on_transfer_recovery(3, 2);
        t.on_epoch_abort(4, 4, 30);
        let snap = t.snapshot();
        for (name, want) in [
            ("here_faults_injected_total", 1),
            ("here_transfer_retries_total", 2),
            ("here_transfer_recoveries_total", 1),
            ("here_epochs_aborted_total", 1),
        ] {
            assert_eq!(
                snap.registry.find(name).unwrap().value,
                MetricValue::Counter(want),
                "{name}"
            );
        }
        assert!(snap.flight_recorder_json.contains("corrupt_frame"));
        assert!(snap.flight_recorder_json.contains("epoch_abort"));
        assert!(snap
            .flight_recorder_json
            .contains("discarded after 4 failed transfer attempts"));
    }

    #[test]
    fn reset_discards_history_but_keeps_schema() {
        let mut t = SessionTelemetry::new(dynamic_policy());
        t.on_checkpoint(&sample_record(1), &sample_decision(), 0);
        let before = t.snapshot();
        t.reset();
        let after = t.snapshot();
        assert_eq!(
            after.registry.find("here_checkpoints_total").unwrap().value,
            MetricValue::Counter(0)
        );
        assert_eq!(after.flight_events_recorded, 0);
        // Same metric families in both snapshots.
        assert_eq!(before.registry.metrics.len(), after.registry.metrics.len());
    }
}
