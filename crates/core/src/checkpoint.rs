//! The continuous replication phase: the epoch loop that drives each
//! checkpoint through the staged pipeline, plus warmup handling, failure
//! injection and post-failover service.
//!
//! This is the Remus workflow of §3.2 with HERE's extensions (§5, §7):
//! repeat { run the VM for `T` buffering its output; drive
//! Pause → Harvest → Translate → Transfer → Ack → Resume through
//! [`crate::pipeline`]; let the dynamic period manager pick the next
//! `T` }. Per-checkpoint report records are derived from the stage events
//! the pipeline emits, so the report can never disagree with the trace.

use here_hypervisor::host::Hypervisor;
use here_sim_core::time::{SimDuration, SimTime};
use here_vulndb::exploit::ExploitResult;

use crate::engine::{FailureCause, Protection, Scenario};
use crate::error::{CoreError, CoreResult};
use crate::failover::CommitLedger;
use crate::pipeline;
use crate::report::{CheckpointRecord, RunReport};
use crate::session::{Session, SessionSetup, CLIENT_STACK_OVERHEAD, MAX_SLICE};

/// One full checkpoint: drives the six pipeline stages, then derives the
/// per-checkpoint record from the emitted stage events and feeds the
/// period controller.
pub(crate) fn do_checkpoint(session: &mut Session, period_used: SimDuration) -> CoreResult<()> {
    let summary = match pipeline::begin(session)?.harvest()?.translate()?.transfer() {
        Ok(transferred) => transferred.ack().resume()?,
        Err(CoreError::EpochAborted { seq, attempts }) => {
            // The transfer retry budget ran dry: discard the partial
            // checkpoint, re-dirty its pages and resume the primary. The
            // previous committed epoch stays authoritative; no checkpoint
            // record is emitted and the period controller is not fed.
            session.abort_epoch(seq, attempts)?;
            return Ok(());
        }
        Err(e) => return Err(e),
    };

    let events = session.trace.for_seq(summary.seq);
    let record = CheckpointRecord::from_events(period_used, &events);
    debug_assert_eq!(record.pause, summary.pause);
    let mut decision = session.period.on_checkpoint(record.pause);
    decision.dirty_pages = record.dirty_pages;
    let at_nanos = session.rel(session.clock).as_nanos();
    session
        .telemetry
        .on_checkpoint(&record, &decision, at_nanos);
    session.telemetry.on_pool_stats(
        session.pools.buffers.hits(),
        session.pools.buffers.misses(),
        session.pools.buffers.pooled() as u64,
        at_nanos,
    );
    // When the work-stealing lane pool ran for this checkpoint, record
    // its round statistics; single-lane (inline) encodes leave the pool
    // untouched and emit nothing.
    let pool_rounds = session.pools.lanes.totals().rounds;
    if pool_rounds > session.pool_rounds_seen {
        session.pool_rounds_seen = pool_rounds;
        let last = session.pools.lanes.last_round();
        session.telemetry.on_encode_pool(
            summary.seq,
            last.tasks(),
            last.steals(),
            last.occupancy_pct(),
            at_nanos,
        );
    }
    session.period_decisions.push(decision);
    session.cpu_work += session
        .cfg
        .costs
        .checkpoint_cpu_work(record.dirty_pages, session.threads);
    session.max_ckpt_pages = session.max_ckpt_pages.max(record.dirty_pages);
    let rel_now = session.rel(session.clock);
    session
        .period_series
        .record(rel_now, session.period.current().as_secs_f64());
    session
        .degradation_series
        .record(rel_now, record.degradation * 100.0);
    // The health plane ticks once per committed epoch, after the acks
    // have landed in the ledger (a no-op unless the config armed it).
    session.health_tick(&record, at_nanos);
    session.checkpoints.push(record);
    Ok(())
}

/// Runs a replicated scenario end to end: build the session, seed it,
/// optionally warm up, then checkpoint continuously until the time budget
/// (or the workload, or a fatal reattack) ends the run.
pub(crate) fn run_replicated(scenario: Scenario) -> CoreResult<RunReport> {
    let Scenario {
        name,
        memory,
        vcpus,
        workload,
        protection,
        duration,
        seed,
        failure,
        stop_when_workload_done,
        load_during_seed,
        warmup,
        warmup_under_load,
        verify_consistency,
        chaos,
    } = scenario;
    let Protection::Replicated(cfg) = protection else {
        unreachable!("run_replicated requires a replication config");
    };
    let mut session = Session::new(SessionSetup {
        name,
        memory,
        vcpus,
        cfg,
        workload,
        seed,
        load_during_seed,
        verify_consistency,
        chaos,
    })?;

    // Phase 1: seeding.
    let migration = crate::migrate::seed(&mut session)?;

    // Application measurement starts after seeding (the benchmarks of §8
    // run against an already-replicated VM).
    let mut replication_start = session.clock;
    if !session.load_during_seed {
        session.workload_now_base = replication_start;
    }
    session.measure_base = replication_start;
    session.ops_committed = 0.0;
    session.ops_uncommitted = 0.0;
    session.buffering = true;

    // Optional warmup: replicate the idle guest without recording, then
    // reset. The real workload starts only when measurement does, so
    // bounded workloads and phase schedules are untouched by warmup.
    if !warmup.is_zero() {
        if warmup_under_load {
            session.workload_started = true;
        }
        let warmup_end = replication_start + warmup;
        while session.clock < warmup_end {
            let t = session.period.current();
            let epoch_end = (session.clock + t).min(warmup_end);
            session.advance(epoch_end.saturating_duration_since(session.clock), false);
            do_checkpoint(&mut session, t)?;
            // Bounded workloads cycle during warmup so the dirty pressure
            // the controller converges against never drops out.
            if session.workload.is_done() {
                session.workload.reset();
            }
        }
        // Measurement starts on a fresh workload run.
        session.workload.reset();
        session.checkpoints.clear();
        session.trace.clear();
        session.spans.clear();
        session.epoch_span = None;
        session.pending_lane_walls.clear();
        session.period_decisions.clear();
        session.ledger = CommitLedger::with_quorum(
            session.cfg.topology.replicas.max(1),
            session.cfg.topology.effective_quorum(),
        );
        if let Some(chaos) = session.chaos.as_mut() {
            chaos.stats = Default::default();
        }
        session.telemetry.reset();
        session.period_series = here_sim_core::metrics::TimeSeries::new("period_secs");
        session.degradation_series = here_sim_core::metrics::TimeSeries::new("degradation_pct");
        session.latencies = here_sim_core::metrics::Histogram::new();
        session.ops_committed = 0.0;
        session.ops_uncommitted = 0.0;
        session.cpu_work = SimDuration::ZERO;
        session.max_ckpt_pages = 0;
        replication_start = session.clock;
        session.measure_base = replication_start;
        session.workload_now_base = replication_start;
    }
    session.workload_started = true;
    let end = replication_start + duration;

    let mut failover_record = None;
    let mut plan = failure;

    // Phase 2: continuous replication.
    'outer: while session.clock < end {
        let t = session.period.current();
        let epoch_end = (session.clock + t).min(end);

        // A failure inside this epoch interrupts it. A failure instant
        // that fell within the previous checkpoint's pause fires now, at
        // the first moment the simulation can observe it.
        if let Some(p) = &plan {
            let fire_at = replication_start + p.at.saturating_duration_since(SimTime::ZERO);
            if fire_at < epoch_end {
                let run_for = fire_at.saturating_duration_since(session.clock);
                session.advance(run_for, false);
                let plan_taken = plan.take().expect("plan checked above");
                let downed = apply_cause(&plan_taken.cause, session.primary.as_mut());
                record_fault(&mut session, &plan_taken.cause, downed);
                if downed {
                    let record = session.failover(session.clock)?;
                    session.clock = record.resumed_at;
                    failover_record = Some(record);
                    // Service continues on the (now unreplicated) replica.
                    if plan_taken.reattack_secondary {
                        if let FailureCause::Exploit(e) = &plan_taken.cause {
                            let result = e.launch(session.active_replica_host_mut());
                            if matches!(result, ExploitResult::HostDown(_)) {
                                // Homogeneous replication loses here: the
                                // same exploit kills the replica too.
                                break 'outer;
                            }
                        }
                    }
                    run_on_replica(&mut session, end, stop_when_workload_done)?;
                    break 'outer;
                }
                // Exploit repelled or guest-only: the epoch continues.
                continue 'outer;
            }
        }

        session.advance(
            epoch_end.saturating_duration_since(session.clock),
            stop_when_workload_done,
        );
        match do_checkpoint(&mut session, t) {
            Ok(()) => {}
            Err(CoreError::InjectedPrimaryFault {
                seq,
                stage,
                outcome,
            }) => {
                // The fault plane took the primary down mid-epoch. The
                // in-flight checkpoint is lost; the replica activates from
                // the last fully-acked epoch in the commit ledger.
                record_injected_fault(&mut session, seq, stage, outcome);
                let record = session.failover(session.clock)?;
                session.clock = record.resumed_at;
                failover_record = Some(record);
                run_on_replica(&mut session, end, stop_when_workload_done)?;
                break 'outer;
            }
            Err(e) => return Err(e),
        }
        if stop_when_workload_done && session.workload.is_done() {
            break;
        }
    }

    Ok(session.finish(migration, failover_record, replication_start))
}

/// After a failover the workload continues on the activated replica,
/// unreplicated (the secondary has no further peer).
fn run_on_replica(
    session: &mut Session,
    end: SimTime,
    stop_when_workload_done: bool,
) -> CoreResult<()> {
    session.buffering = false;
    while session.clock < end {
        let slice = end
            .saturating_duration_since(session.clock)
            .clamp(SimDuration::ZERO, MAX_SLICE);
        let member = session.replicas.active_mut();
        let vm = member.host.vm_mut(member.vm)?;
        let wnow = SimTime::ZERO
            + session
                .clock
                .saturating_duration_since(session.workload_now_base);
        let progress = session.workload.advance(wnow, slice, vm, &mut session.rng);
        session.ops_committed += progress.ops;
        for emission in progress.emissions {
            let latency =
                session.client_link.transfer_time(emission.size) * 2 + CLIENT_STACK_OVERHEAD;
            session.latencies.observe(latency.as_secs_f64());
        }
        session.clock += slice;
        if stop_when_workload_done && session.workload.is_done() {
            break;
        }
    }
    Ok(())
}

/// Marks an injected fault on the flight recorder and the span trace, so
/// crash/hang/starvation runs show what hit the primary — not just the
/// failover marks that follow.
fn record_fault(session: &mut Session, cause: &FailureCause, host_down: bool) {
    use here_hypervisor::fault::DosOutcome;
    let (fault, detail): (&'static str, String) = match cause {
        FailureCause::Exploit(e) => ("exploit", format!("{} launched at primary", e.cve().id)),
        FailureCause::Accident(outcome) => (
            match outcome {
                DosOutcome::Crash => "crash",
                DosOutcome::Hang => "hang",
                DosOutcome::Starvation => "starvation",
            },
            "accidental failure injected into primary".to_string(),
        ),
    };
    let at_nanos = session.rel(session.clock).as_nanos();
    session
        .telemetry
        .on_fault(fault, host_down, detail, at_nanos);
    session.spans.push(
        here_telemetry::span::SpanDraft::new(
            fault,
            "fault",
            here_telemetry::span::Track::Controller,
            at_nanos,
        )
        .attr_str("host", "primary"),
    );
}

/// Marks a fault-plane primary kill on the flight recorder and span
/// trace, tagged with the pipeline stage it interrupted.
fn record_injected_fault(
    session: &mut Session,
    seq: u64,
    stage: crate::trace::Stage,
    outcome: here_hypervisor::fault::DosOutcome,
) {
    use here_hypervisor::fault::DosOutcome;
    let fault = match outcome {
        DosOutcome::Crash => "crash",
        DosOutcome::Hang => "hang",
        DosOutcome::Starvation => "starvation",
    };
    let at_nanos = session.rel(session.clock).as_nanos();
    session.telemetry.on_fault(
        fault,
        true,
        format!(
            "fault plane downed the primary at the {} stage of checkpoint {seq}",
            stage.label()
        ),
        at_nanos,
    );
    session.spans.push(
        here_telemetry::span::SpanDraft::new(
            fault,
            "fault",
            here_telemetry::span::Track::Controller,
            at_nanos,
        )
        .epoch(seq)
        .attr_str("host", "primary")
        .attr_str("stage", stage.label()),
    );
}

/// Applies a failure cause to the primary; returns `true` if the host went
/// down.
fn apply_cause(cause: &FailureCause, primary: &mut dyn Hypervisor) -> bool {
    match cause {
        FailureCause::Exploit(e) => {
            matches!(e.launch(primary), ExploitResult::HostDown(_))
        }
        FailureCause::Accident(outcome) => {
            primary.inject_dos(*outcome);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplicationConfig;
    use crate::engine::FailurePlan;
    use crate::trace::Stage;
    use here_hypervisor::fault::DosOutcome;
    use here_workloads::memstress::MemStress;

    fn small_scenario(cfg: ReplicationConfig) -> Scenario {
        Scenario::builder()
            .vm_memory_mib(64)
            .vcpus(4)
            .workload(Box::new(MemStress::with_percent(30).with_rate(20_000)))
            .config(cfg)
            .duration(SimDuration::from_secs(30))
            .build()
            .unwrap()
    }

    #[test]
    fn fixed_period_checkpoints_at_the_configured_rate() {
        let report =
            small_scenario(ReplicationConfig::fixed_period(SimDuration::from_secs(3))).run();
        // 30 s at T = 3 s → ~10 checkpoints (pauses stretch epochs a bit).
        assert!(
            (8..=11).contains(&report.checkpoints.len()),
            "got {}",
            report.checkpoints.len()
        );
        for c in &report.checkpoints {
            assert_eq!(c.period, SimDuration::from_secs(3));
            assert!(c.dirty_pages > 0);
        }
        assert!(report.migration.is_some());
    }

    #[test]
    fn every_checkpoint_yields_a_complete_stage_sequence() {
        let report =
            small_scenario(ReplicationConfig::fixed_period(SimDuration::from_secs(3))).run();
        assert!(!report.checkpoints.is_empty());
        for c in &report.checkpoints {
            let stages: Vec<Stage> = report
                .stage_events
                .iter()
                .filter(|e| e.seq == c.seq)
                .map(|e| e.stage)
                .collect();
            assert_eq!(stages, Stage::ALL.to_vec(), "checkpoint {}", c.seq);
        }
        // And the record is exactly what the events say.
        for c in &report.checkpoints {
            let pause: SimDuration = report
                .stage_events
                .iter()
                .filter(|e| e.seq == c.seq && e.stage.counts_toward_pause())
                .map(|e| e.duration)
                .sum();
            assert_eq!(pause, c.pause, "checkpoint {}", c.seq);
            let harvested = report
                .stage_events
                .iter()
                .find(|e| e.seq == c.seq && e.stage == Stage::Harvest)
                .unwrap();
            assert_eq!(harvested.pages, c.dirty_pages);
            let paused = report
                .stage_events
                .iter()
                .find(|e| e.seq == c.seq && e.stage == Stage::Pause)
                .unwrap();
            assert_eq!(paused.at, c.paused_at);
            assert_eq!(harvested.at, paused.at + paused.duration);
        }
    }

    #[test]
    fn replica_memory_matches_primary_after_run() {
        // White-box check through a bespoke session is complex; instead
        // verify via ops accounting that checkpoints committed work.
        let report =
            small_scenario(ReplicationConfig::fixed_period(SimDuration::from_secs(2))).run();
        assert!(report.ops_completed > 0.0);
        assert!(report.throughput_ops_per_sec > 0.0);
    }

    #[test]
    fn remus_pauses_longer_than_here() {
        let here = small_scenario(ReplicationConfig::fixed_period(SimDuration::from_secs(3))).run();
        let remus = small_scenario(ReplicationConfig::remus(SimDuration::from_secs(3))).run();
        let hp = here.mean_pause().unwrap();
        let rp = remus.mean_pause().unwrap();
        assert!(rp > hp, "remus pause {rp} should exceed here pause {hp}");
    }

    #[test]
    fn dynamic_manager_shrinks_period_under_light_load() {
        let scenario = Scenario::builder()
            .vm_memory_mib(64)
            .vcpus(4)
            .workload(Box::new(MemStress::with_percent(5).with_rate(500)))
            .config(ReplicationConfig::dynamic(0.3, SimDuration::from_secs(3)))
            .duration(SimDuration::from_secs(120))
            .build()
            .unwrap();
        let report = scenario.run();
        let last_period = report.period_series.last().unwrap().1;
        assert!(
            last_period < 1.0,
            "period should shrink toward sigma, got {last_period}"
        );
    }

    #[test]
    fn unprotected_baseline_outruns_replicated() {
        let baseline = Scenario::builder()
            .vm_memory_mib(64)
            .vcpus(4)
            .workload(Box::new(MemStress::with_percent(30).with_rate(20_000)))
            .unprotected()
            .duration(SimDuration::from_secs(30))
            .build()
            .unwrap()
            .run();
        let replicated = small_scenario(ReplicationConfig::remus(SimDuration::from_secs(1))).run();
        assert!(baseline.throughput_ops_per_sec > replicated.throughput_ops_per_sec);
        assert!(baseline.checkpoints.is_empty());
        assert!(baseline.stage_events.is_empty());
    }

    #[test]
    fn accident_triggers_failover_with_short_resumption() {
        let scenario = Scenario::builder()
            .vm_memory_mib(64)
            .vcpus(2)
            .workload(Box::new(MemStress::with_percent(20).with_rate(5_000)))
            .config(ReplicationConfig::fixed_period(SimDuration::from_secs(2)))
            .duration(SimDuration::from_secs(30))
            .failure(FailurePlan {
                at: SimTime::from_secs(10),
                cause: FailureCause::Accident(DosOutcome::Crash),
                reattack_secondary: false,
            })
            .build()
            .unwrap();
        let report = scenario.run();
        let fo = report.failover.expect("failover must have happened");
        // kvmtool activation + device switch + state load ≈ 10 ms.
        let resumption = fo.resumption_time();
        assert!(
            resumption < SimDuration::from_millis(15),
            "resumption {resumption}"
        );
        assert!(fo.devices_switched == 3);
        assert!(report.ops_completed > 0.0);
    }
}
