//! # here-core — heterogeneous live VM replication (the HERE system)
//!
//! The paper's primary contribution: a platform that replicates a protected
//! VM *across hypervisor boundaries* (Xen primary → KVM/kvmtool secondary)
//! using asynchronous state replication, so that neither accidental host
//! failures nor zero-day DoS exploits against one hypervisor can take the
//! service down.
//!
//! - [`config`]: replication configuration and the calibrated cost model;
//! - [`period`]: the dynamic checkpoint period manager — Algorithm 1;
//! - [`transfer`]: the multithreaded data plane (per-vCPU seeding threads,
//!   round-robin 2 MiB chunk workers, problematic-page tracking);
//! - [`devmgr`]: outgoing-I/O buffering and the failover device switch;
//! - [`failover`]: heartbeat-based detection, the commit ledger and
//!   replica activation;
//! - [`chaos`]: the deterministic fault-injection plane — seeded
//!   [`FaultPlan`](chaos::FaultPlan)s that drop, corrupt or delay
//!   transfers, flap the replication link, lose heartbeats or down the
//!   primary mid-epoch, replayed byte-identically from the same seed;
//! - [`engine`]: [`Scenario`](engine::Scenario) — the public API tying the
//!   whole stack together;
//! - [`topology`]: the replica-set topology — N heterogeneous replicas
//!   behind one primary, with quorum commit and at-most-one activation;
//! - [`session`]: the live session — shared run state and its phase FSM;
//! - [`migrate`]: the seeding phase (iterative pre-copy live migration);
//! - [`checkpoint`]: the continuous phase — the epoch loop;
//! - [`pipeline`]: the staged checkpoint pipeline
//!   (Pause → Harvest → Translate → Transfer → Ack → Resume) and the
//!   pluggable [`ReplicationStrategy`](pipeline::ReplicationStrategy);
//! - [`trace`]: structured [`StageEvent`](trace::StageEvent)s emitted at
//!   every stage boundary;
//! - [`telemetry`]: the always-on observability bundle — metrics registry,
//!   flight recorder and SLO tracker — frozen into every report;
//! - [`analyze`]: the trace analyzer — per-epoch critical-path
//!   attribution against `t = αN/P + C`, straggler-lane detection,
//!   period-oscillation detection and SLO-breach root-causing;
//! - [`postmortem`]: the postmortem plane — deterministic incident
//!   capture into checksummed, versioned
//!   [`IncidentBundle`](postmortem::IncidentBundle)s and byte-identical
//!   bundle replay;
//! - [`report`]: the measurements each run produces, derived from the
//!   stage trace.
//!
//! ## Example
//!
//! ```
//! use here_core::{ReplicationConfig, Scenario};
//! use here_sim_core::time::SimDuration;
//!
//! let report = Scenario::builder()
//!     .vm_memory_mib(64)
//!     .vcpus(2)
//!     .config(ReplicationConfig::fixed_period(SimDuration::from_secs(3)))
//!     .duration(SimDuration::from_secs(15))
//!     .build()?
//!     .run();
//! assert!(report.checkpoints.len() >= 4);
//! # Ok::<(), here_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyze;
pub mod chaos;
pub mod checkpoint;
pub mod config;
pub mod dataplane;
pub mod devmgr;
pub mod engine;
pub mod error;
pub mod failover;
pub mod migrate;
pub mod period;
pub mod pipeline;
pub mod postmortem;
pub mod report;
pub mod session;
pub mod telemetry;
pub mod topology;
pub mod trace;
pub mod transfer;

pub use analyze::{
    AnalysisReport, AnalyzerConfig, BreachRoot, EpochAttribution, OscillationReport,
    PostmortemAnalyzer, PostmortemReport, ReplicaDivergence, StageDelta, StageShare, StragglerLane,
    TraceAnalyzer,
};
pub use chaos::{ChaosStats, FaultEvent, FaultKind, FaultPlan};
pub use config::{
    CostModel, FanoutMode, HeartbeatConfig, PeriodPolicy, ReplicationConfig, RetryPolicy, Strategy,
    TopologyConfig,
};
pub use engine::{
    clear_run_observer, set_run_observer, FailureCause, FailurePlan, Scenario, ScenarioBuilder,
};
pub use error::{CoreError, CoreResult};
pub use failover::{
    detection_time, detection_time_with_loss, CommitEntry, CommitLedger, FailoverRecord,
    ReplicaAcks, STARVATION_DETECTION_FACTOR,
};
pub use period::{
    degradation, ClampReason, DynamicPeriodManager, PeriodAction, PeriodDecision, PeriodManager,
};
pub use pipeline::{HereStrategy, RemusStrategy, ReplicationStrategy};
pub use postmortem::{
    IncidentBundle, IncidentSnapshot, ReplayOutcome, ScenarioSpec, WorkloadSpec, BUNDLE_VERSION,
};
pub use report::{CheckpointRecord, MigrationOutcome, RunReport};
pub use telemetry::{
    HealthSnapshot, SessionTelemetry, TelemetrySnapshot, FLIGHT_RECORDER_CAPACITY,
    HEALTH_SERIES_WINDOW_NANOS,
};
pub use topology::{Replica, ReplicaSet};
pub use trace::{stage_totals, Stage, StageEvent, StageTrace};
