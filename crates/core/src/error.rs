//! Error type of the replication engine.

use std::error::Error;
use std::fmt;

use here_hypervisor::HvError;
use here_vmstate::{TranslateError, WireError};

/// Errors raised by session setup or the replication loop.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A scenario or configuration value was rejected.
    InvalidScenario(String),
    /// A hypervisor operation failed.
    Hypervisor(HvError),
    /// State translation failed.
    Translate(TranslateError),
    /// The replication stream was corrupted.
    Wire(WireError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            CoreError::Hypervisor(e) => write!(f, "hypervisor error: {e}"),
            CoreError::Translate(e) => write!(f, "translation error: {e}"),
            CoreError::Wire(e) => write!(f, "replication stream error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::InvalidScenario(_) => None,
            CoreError::Hypervisor(e) => Some(e),
            CoreError::Translate(e) => Some(e),
            CoreError::Wire(e) => Some(e),
        }
    }
}

impl From<HvError> for CoreError {
    fn from(e: HvError) -> Self {
        CoreError::Hypervisor(e)
    }
}

impl From<TranslateError> for CoreError {
    fn from(e: TranslateError) -> Self {
        CoreError::Translate(e)
    }
}

impl From<WireError> for CoreError {
    fn from(e: WireError) -> Self {
        CoreError::Wire(e)
    }
}

/// Convenience alias for engine results.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: CoreError = HvError::NoSuchVm(3).into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("no VM with id 3"));
        let e: CoreError = WireError::Truncated.into();
        assert!(e.to_string().contains("stream"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
