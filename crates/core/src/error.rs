//! Error type of the replication engine.

use std::error::Error;
use std::fmt;

use here_hypervisor::fault::DosOutcome;
use here_hypervisor::HvError;
use here_vmstate::{TranslateError, WireError};

use crate::trace::Stage;

/// Errors raised by session setup or the replication loop.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A scenario or configuration value was rejected.
    InvalidScenario(String),
    /// A hypervisor operation failed.
    Hypervisor(HvError),
    /// State translation failed.
    Translate(TranslateError),
    /// The replication stream was corrupted.
    Wire(WireError),
    /// A checkpoint exhausted its transfer retry budget and the epoch was
    /// discarded; the previous committed epoch stays authoritative.
    EpochAborted {
        /// The aborted checkpoint's sequence number.
        seq: u64,
        /// Transfer attempts made before giving up.
        attempts: u32,
    },
    /// The fault plane took the primary host down mid-epoch; the epoch
    /// loop turns this into a failover.
    InjectedPrimaryFault {
        /// The in-flight checkpoint's sequence number.
        seq: u64,
        /// The pipeline stage at whose entry the fault fired.
        stage: Stage,
        /// How the primary failed.
        outcome: DosOutcome,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            CoreError::Hypervisor(e) => write!(f, "hypervisor error: {e}"),
            CoreError::Translate(e) => write!(f, "translation error: {e}"),
            CoreError::Wire(e) => write!(f, "replication stream error: {e}"),
            CoreError::EpochAborted { seq, attempts } => write!(
                f,
                "checkpoint {seq} aborted after {attempts} failed transfer attempts"
            ),
            CoreError::InjectedPrimaryFault {
                seq,
                stage,
                outcome,
            } => write!(
                f,
                "injected {outcome} took the primary down at the {} stage of checkpoint {seq}",
                stage.label()
            ),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::InvalidScenario(_) => None,
            CoreError::Hypervisor(e) => Some(e),
            CoreError::Translate(e) => Some(e),
            CoreError::Wire(e) => Some(e),
            CoreError::EpochAborted { .. } | CoreError::InjectedPrimaryFault { .. } => None,
        }
    }
}

impl From<HvError> for CoreError {
    fn from(e: HvError) -> Self {
        CoreError::Hypervisor(e)
    }
}

impl From<TranslateError> for CoreError {
    fn from(e: TranslateError) -> Self {
        CoreError::Translate(e)
    }
}

impl From<WireError> for CoreError {
    fn from(e: WireError) -> Self {
        CoreError::Wire(e)
    }
}

/// Convenience alias for engine results.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: CoreError = HvError::NoSuchVm(3).into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("no VM with id 3"));
        let e: CoreError = WireError::Truncated.into();
        assert!(e.to_string().contains("stream"));
    }

    #[test]
    fn chaos_variants_render_their_context() {
        let e = CoreError::EpochAborted {
            seq: 9,
            attempts: 4,
        };
        assert!(e.to_string().contains("checkpoint 9"));
        assert!(e.to_string().contains("4 failed transfer attempts"));
        assert!(e.source().is_none());
        let e = CoreError::InjectedPrimaryFault {
            seq: 3,
            stage: Stage::Transfer,
            outcome: DosOutcome::Hang,
        };
        assert!(e.to_string().contains("hang"));
        assert!(e.to_string().contains("transfer"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
