//! The CVE record schema used by the vulnerability study (§2, §8.2).

use std::fmt;

use serde::{Deserialize, Serialize};

use here_hypervisor::fault::DosOutcome;
use here_hypervisor::kind::HypervisorKind;

/// The five virtualization products the paper surveys (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Product {
    /// Xen hypervisor.
    Xen,
    /// Linux KVM (kernel module).
    Kvm,
    /// QEMU (userspace device emulation).
    Qemu,
    /// VMware ESXi.
    Esxi,
    /// Microsoft Hyper-V.
    HyperV,
}

/// All products, in Table 1 order.
pub const ALL_PRODUCTS: [Product; 5] = [
    Product::Xen,
    Product::Kvm,
    Product::Qemu,
    Product::Esxi,
    Product::HyperV,
];

impl Product {
    /// Display name as used in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            Product::Xen => "Xen",
            Product::Kvm => "KVM",
            Product::Qemu => "QEMU",
            Product::Esxi => "ESXi",
            Product::HyperV => "Hyper-V",
        }
    }
}

impl fmt::Display for Product {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A CVSS 2.0 impact level on one of the C/I/A axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Impact {
    /// No impact.
    None,
    /// Partial impact.
    Partial,
    /// Complete impact.
    Complete,
}

/// Where the vulnerable code lives — determines which *deployments* share
/// the vulnerability (the basis of the heterogeneity argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// The Xen hypervisor core.
    XenCore,
    /// Xen's Dom0 toolstack (xl/libxl/libxc, xenstore).
    XenTools,
    /// The Linux KVM kernel module.
    KvmModule,
    /// QEMU userspace (device emulation).
    QemuUserspace,
    /// kvmtool userspace.
    KvmtoolUserspace,
    /// ESXi's proprietary kernel.
    EsxiCore,
    /// Hyper-V's hypervisor and VSPs.
    HyperVCore,
}

/// The subsystem a vulnerability's attack passes through (§8.2's vector
/// breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackVector {
    /// Virtual device management (emulated, PV or passthrough).
    DeviceManagement,
    /// Hypercall processing.
    Hypercall,
    /// vCPU management.
    VcpuManagement,
    /// Shadow paging.
    ShadowPaging,
    /// VM-exit handling.
    VmExit,
    /// Any other component.
    Other,
}

/// What the vulnerability takes down (Table 5's target column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Target {
    /// The hypervisor core, Dom0 and tools.
    HypervisorCore,
    /// The guest OS only.
    GuestOs,
    /// Other software (e.g. Xenstore).
    OtherSoftware,
}

impl Target {
    /// Table 5 row label.
    pub fn label(self) -> &'static str {
        match self {
            Target::HypervisorCore => "Xen, Dom0, Tools",
            Target::GuestOs => "Guest OS",
            Target::OtherSoftware => "Other software",
        }
    }
}

/// Privilege required to launch the exploit (§8.2: about half need only a
/// guest user-space process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Privilege {
    /// An unprivileged process inside a guest.
    GuestUser,
    /// Ring-0 inside a guest.
    GuestKernel,
}

/// One CVE record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CveRecord {
    /// Identifier, e.g. `CVE-2015-3456`.
    pub id: String,
    /// Product the CVE was filed against.
    pub product: Product,
    /// Publication year (2013–2020 in the survey window).
    pub year: u16,
    /// Vulnerable component (drives deployment overlap).
    pub component: Component,
    /// CVSS 2.0 confidentiality impact.
    pub confidentiality: Impact,
    /// CVSS 2.0 integrity impact.
    pub integrity: Impact,
    /// CVSS 2.0 availability impact.
    pub availability: Impact,
    /// Attack vector subsystem.
    pub vector: AttackVector,
    /// What goes down on successful exploitation.
    pub target: Target,
    /// Post-attack outcome, when the CVE is exploitable for DoS.
    pub outcome: Option<DosOutcome>,
    /// Privilege needed to launch.
    pub privilege: Privilege,
}

impl CveRecord {
    /// `true` if the CVE has an availability impact of Partial or higher
    /// (Table 1's "Avail" column).
    pub fn affects_availability(&self) -> bool {
        self.availability >= Impact::Partial
    }

    /// `true` if the CVE *only* impacts availability — a "DoS exploit" in
    /// the paper's terminology (Table 1's "DoS" column).
    pub fn is_dos_only(&self) -> bool {
        self.confidentiality == Impact::None
            && self.integrity == Impact::None
            && self.affects_availability()
    }
}

/// A deployment: the set of components a host actually runs. Two
/// deployments share a vulnerability iff they share its component — which
/// is why HERE pairs Xen (PV devices, no QEMU) with KVM + *kvmtool* rather
/// than KVM + QEMU (§8.2's CVE-2015-3456 example).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Deployment {
    /// Xen with PV device models only (HERE's primary).
    XenPv,
    /// Xen using QEMU as device model (qemu-dm).
    XenQemu,
    /// Linux KVM with QEMU userspace.
    QemuKvm,
    /// Linux KVM with kvmtool userspace (HERE's secondary).
    KvmKvmtool,
    /// VMware ESXi.
    Esxi,
    /// Microsoft Hyper-V.
    HyperV,
}

impl Deployment {
    /// The components this deployment runs.
    pub fn components(self) -> &'static [Component] {
        match self {
            Deployment::XenPv => &[Component::XenCore, Component::XenTools],
            Deployment::XenQemu => &[
                Component::XenCore,
                Component::XenTools,
                Component::QemuUserspace,
            ],
            Deployment::QemuKvm => &[Component::KvmModule, Component::QemuUserspace],
            Deployment::KvmKvmtool => &[Component::KvmModule, Component::KvmtoolUserspace],
            Deployment::Esxi => &[Component::EsxiCore],
            Deployment::HyperV => &[Component::HyperVCore],
        }
    }

    /// Whether a CVE applies to this deployment.
    pub fn is_vulnerable_to(self, cve: &CveRecord) -> bool {
        self.components().contains(&cve.component)
    }

    /// The deployment HERE's simulated hosts run for each hypervisor kind.
    pub fn for_kind(kind: HypervisorKind) -> Deployment {
        match kind {
            HypervisorKind::Xen => Deployment::XenPv,
            HypervisorKind::Kvm => Deployment::KvmKvmtool,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(c: Impact, i: Impact, a: Impact) -> CveRecord {
        CveRecord {
            id: "CVE-2020-0001".into(),
            product: Product::Xen,
            year: 2020,
            component: Component::XenCore,
            confidentiality: c,
            integrity: i,
            availability: a,
            vector: AttackVector::Hypercall,
            target: Target::HypervisorCore,
            outcome: Some(DosOutcome::Crash),
            privilege: Privilege::GuestUser,
        }
    }

    #[test]
    fn dos_only_requires_pure_availability_impact() {
        assert!(record(Impact::None, Impact::None, Impact::Complete).is_dos_only());
        assert!(record(Impact::None, Impact::None, Impact::Partial).is_dos_only());
        assert!(!record(Impact::Partial, Impact::None, Impact::Complete).is_dos_only());
        assert!(!record(Impact::None, Impact::Partial, Impact::Complete).is_dos_only());
        assert!(!record(Impact::None, Impact::None, Impact::None).is_dos_only());
    }

    #[test]
    fn availability_impact_ordering() {
        assert!(record(Impact::None, Impact::None, Impact::Partial).affects_availability());
        assert!(!record(Impact::Complete, Impact::Complete, Impact::None).affects_availability());
    }

    #[test]
    fn venom_scenario_deployment_overlap() {
        // A QEMU device-emulation bug (like CVE-2015-3456) hits every
        // deployment that runs QEMU — but not HERE's Xen-PV/kvmtool pair.
        let mut venom = record(Impact::None, Impact::None, Impact::Complete);
        venom.component = Component::QemuUserspace;
        venom.product = Product::Qemu;
        assert!(Deployment::XenQemu.is_vulnerable_to(&venom));
        assert!(Deployment::QemuKvm.is_vulnerable_to(&venom));
        assert!(!Deployment::XenPv.is_vulnerable_to(&venom));
        assert!(!Deployment::KvmKvmtool.is_vulnerable_to(&venom));
    }

    #[test]
    fn here_deployments_share_no_components() {
        let primary = Deployment::for_kind(HypervisorKind::Xen);
        let secondary = Deployment::for_kind(HypervisorKind::Kvm);
        for c in primary.components() {
            assert!(!secondary.components().contains(c));
        }
    }
}
