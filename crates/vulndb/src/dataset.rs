//! The embedded CVE corpus.
//!
//! The paper surveys the NIST NVD for five products over 2013–2020
//! (Table 1) and hand-classifies Xen's DoS-only vulnerabilities by vector,
//! target, outcome and required privilege (§8.2, Table 5). The NVD itself
//! is not shippable in a reproduction, so this module *synthesises* a
//! corpus whose marginal distributions match every number the paper
//! reports; the analysis code ([`crate::analysis`]) then regenerates the
//! tables from the corpus exactly as the authors did from the NVD.

use here_hypervisor::fault::DosOutcome;

use crate::record::{
    AttackVector, Component, CveRecord, Impact, Privilege, Product, Target, ALL_PRODUCTS,
};

/// Table 1's per-product marginals: (total CVEs, availability-impacting,
/// DoS-only).
pub const TABLE1_MARGINALS: [(Product, u32, u32, u32); 5] = [
    (Product::Xen, 312, 282, 152),
    (Product::Kvm, 74, 68, 38),
    (Product::Qemu, 308, 290, 192),
    (Product::Esxi, 70, 55, 16),
    (Product::HyperV, 116, 95, 44),
];

/// Table 5's classification of Xen's 152 DoS-only CVEs:
/// `(target, outcome, count)`.
pub const TABLE5_XEN_DOS: [(Target, DosOutcome, u32); 6] = [
    (Target::HypervisorCore, DosOutcome::Crash, 100),
    (Target::HypervisorCore, DosOutcome::Hang, 20),
    (Target::HypervisorCore, DosOutcome::Starvation, 8),
    (Target::GuestOs, DosOutcome::Crash, 15),
    (Target::GuestOs, DosOutcome::Starvation, 4),
    (Target::OtherSoftware, DosOutcome::Crash, 5),
];

/// §8.2's attack-vector breakdown of Xen's DoS-only CVEs:
/// `(vector, count)` — 25 % device, 20 % hypercall, 12 % vCPU, 7 % shadow
/// paging, 2 % VM exit, 34 % other.
pub const XEN_DOS_VECTORS: [(AttackVector, u32); 6] = [
    (AttackVector::DeviceManagement, 38),
    (AttackVector::Hypercall, 30),
    (AttackVector::VcpuManagement, 18),
    (AttackVector::ShadowPaging, 11),
    (AttackVector::VmExit, 3),
    (AttackVector::Other, 52),
];

/// Number of Xen DoS-only CVEs launchable from guest user space
/// ("more than half", §8.2); the rest need ring-0.
pub const XEN_DOS_GUEST_USER: u32 = 78;

fn primary_component(product: Product) -> Component {
    match product {
        Product::Xen => Component::XenCore,
        Product::Kvm => Component::KvmModule,
        Product::Qemu => Component::QemuUserspace,
        Product::Esxi => Component::EsxiCore,
        Product::HyperV => Component::HyperVCore,
    }
}

/// Builds the full synthetic corpus (880 records). Deterministic: every
/// call returns the identical dataset.
pub fn nvd_corpus() -> Vec<CveRecord> {
    let mut records = Vec::new();
    let mut seq_by_year = [0u32; 8];
    let mut next_id = |year_slot: &mut usize| -> (u16, String) {
        let year = 2013 + (*year_slot % 8) as u16;
        let seq = &mut seq_by_year[*year_slot % 8];
        *seq += 1;
        *year_slot += 1;
        (year, format!("CVE-{year}-{:04}", 6000 + *seq))
    };
    let mut year_slot = 0usize;

    for (product, total, avail, dos) in TABLE1_MARGINALS {
        let non_avail = total - avail;
        let avail_not_dos = avail - dos;

        // DoS-only records, with Xen's detailed classification.
        if product == Product::Xen {
            let mut vectors = expand(&XEN_DOS_VECTORS);
            let mut privilege_budget = XEN_DOS_GUEST_USER;
            let mut idx = 0u32;
            for (target, outcome, count) in TABLE5_XEN_DOS {
                for _ in 0..count {
                    let (year, id) = next_id(&mut year_slot);
                    let component = match target {
                        Target::OtherSoftware => Component::XenTools,
                        _ => Component::XenCore,
                    };
                    let privilege = if privilege_budget > 0 && (idx.is_multiple_of(2) || idx >= 148)
                    {
                        privilege_budget -= 1;
                        Privilege::GuestUser
                    } else {
                        Privilege::GuestKernel
                    };
                    records.push(CveRecord {
                        id,
                        product,
                        year,
                        component,
                        confidentiality: Impact::None,
                        integrity: Impact::None,
                        availability: if idx.is_multiple_of(3) {
                            Impact::Partial
                        } else {
                            Impact::Complete
                        },
                        vector: vectors.pop().expect("vector counts sum to 152"),
                        target,
                        outcome: Some(outcome),
                        privilege,
                    });
                    idx += 1;
                }
            }
            // Spend any leftover guest-user budget by flipping kernel
            // records (keeps the 78/74 split exact).
            let mut i = records.len();
            while privilege_budget > 0 {
                i -= 1;
                if records[i].privilege == Privilege::GuestKernel {
                    records[i].privilege = Privilege::GuestUser;
                    privilege_budget -= 1;
                }
            }
        } else {
            for k in 0..dos {
                let (year, id) = next_id(&mut year_slot);
                records.push(CveRecord {
                    id,
                    product,
                    year,
                    component: primary_component(product),
                    confidentiality: Impact::None,
                    integrity: Impact::None,
                    availability: if k % 3 == 0 {
                        Impact::Partial
                    } else {
                        Impact::Complete
                    },
                    vector: spread_vector(k),
                    target: if k % 8 == 0 {
                        Target::GuestOs
                    } else {
                        Target::HypervisorCore
                    },
                    outcome: Some(spread_outcome(k)),
                    privilege: if k % 2 == 0 {
                        Privilege::GuestUser
                    } else {
                        Privilege::GuestKernel
                    },
                });
            }
        }

        // Availability-impacting but not DoS-only (C or I also affected).
        for k in 0..avail_not_dos {
            let (year, id) = next_id(&mut year_slot);
            records.push(CveRecord {
                id,
                product,
                year,
                component: primary_component(product),
                confidentiality: if k % 2 == 0 {
                    Impact::Partial
                } else {
                    Impact::None
                },
                integrity: if k % 2 == 0 {
                    Impact::None
                } else {
                    Impact::Partial
                },
                availability: Impact::Complete,
                vector: spread_vector(k),
                target: Target::HypervisorCore,
                outcome: Some(spread_outcome(k)),
                privilege: Privilege::GuestKernel,
            });
        }

        // No availability impact at all (pure info-leak / tamper bugs).
        for k in 0..non_avail {
            let (year, id) = next_id(&mut year_slot);
            records.push(CveRecord {
                id,
                product,
                year,
                component: primary_component(product),
                confidentiality: Impact::Partial,
                integrity: if k % 2 == 0 {
                    Impact::Partial
                } else {
                    Impact::None
                },
                availability: Impact::None,
                vector: spread_vector(k),
                target: Target::HypervisorCore,
                outcome: None,
                privilege: Privilege::GuestKernel,
            });
        }
    }

    // Rename one QEMU device-management DoS record to the real VENOM id,
    // the paper's worked example of a shared-device-model vulnerability.
    if let Some(venom) = records.iter_mut().find(|r| {
        r.product == Product::Qemu && r.is_dos_only() && r.vector == AttackVector::DeviceManagement
    }) {
        venom.id = "CVE-2015-3456".into();
        venom.year = 2015;
    }

    records
}

fn expand(counts: &[(AttackVector, u32)]) -> Vec<AttackVector> {
    let mut v = Vec::new();
    for &(vector, count) in counts {
        v.extend(std::iter::repeat_n(vector, count as usize));
    }
    v
}

fn spread_vector(k: u32) -> AttackVector {
    match k % 10 {
        0 | 1 => AttackVector::DeviceManagement,
        2 | 3 => AttackVector::Hypercall,
        4 => AttackVector::VcpuManagement,
        5 => AttackVector::ShadowPaging,
        6 => AttackVector::VmExit,
        _ => AttackVector::Other,
    }
}

fn spread_outcome(k: u32) -> DosOutcome {
    match k % 10 {
        0..=6 => DosOutcome::Crash,
        7 | 8 => DosOutcome::Hang,
        _ => DosOutcome::Starvation,
    }
}

/// Records for one product.
pub fn records_for(product: Product) -> Vec<CveRecord> {
    nvd_corpus()
        .into_iter()
        .filter(|r| r.product == product)
        .collect()
}

/// All products in corpus/table order.
pub fn products() -> [Product; 5] {
    ALL_PRODUCTS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_matches_table1_marginals_exactly() {
        let corpus = nvd_corpus();
        for (product, total, avail, dos) in TABLE1_MARGINALS {
            let recs: Vec<&CveRecord> = corpus.iter().filter(|r| r.product == product).collect();
            assert_eq!(recs.len() as u32, total, "{product} total");
            assert_eq!(
                recs.iter().filter(|r| r.affects_availability()).count() as u32,
                avail,
                "{product} avail"
            );
            assert_eq!(
                recs.iter().filter(|r| r.is_dos_only()).count() as u32,
                dos,
                "{product} dos"
            );
        }
    }

    #[test]
    fn xen_dos_classification_matches_table5() {
        let corpus = nvd_corpus();
        let xen_dos: Vec<&CveRecord> = corpus
            .iter()
            .filter(|r| r.product == Product::Xen && r.is_dos_only())
            .collect();
        assert_eq!(xen_dos.len(), 152);
        for (target, outcome, count) in TABLE5_XEN_DOS {
            let got = xen_dos
                .iter()
                .filter(|r| r.target == target && r.outcome == Some(outcome))
                .count() as u32;
            assert_eq!(got, count, "{target:?}/{outcome}");
        }
    }

    #[test]
    fn xen_dos_vectors_match_section_8_2() {
        let corpus = nvd_corpus();
        let xen_dos: Vec<&CveRecord> = corpus
            .iter()
            .filter(|r| r.product == Product::Xen && r.is_dos_only())
            .collect();
        for (vector, count) in XEN_DOS_VECTORS {
            let got = xen_dos.iter().filter(|r| r.vector == vector).count() as u32;
            assert_eq!(got, count, "{vector:?}");
        }
    }

    #[test]
    fn xen_dos_privilege_split() {
        let corpus = nvd_corpus();
        let user = corpus
            .iter()
            .filter(|r| {
                r.product == Product::Xen && r.is_dos_only() && r.privilege == Privilege::GuestUser
            })
            .count() as u32;
        assert_eq!(user, XEN_DOS_GUEST_USER);
    }

    #[test]
    fn corpus_is_deterministic_with_unique_ids() {
        let a = nvd_corpus();
        let b = nvd_corpus();
        assert_eq!(a, b);
        let mut ids: Vec<&str> = a.iter().map(|r| r.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "CVE ids must be unique");
    }

    #[test]
    fn venom_is_present_and_shared_by_qemu_deployments() {
        use crate::record::Deployment;
        let corpus = nvd_corpus();
        let venom = corpus.iter().find(|r| r.id == "CVE-2015-3456").unwrap();
        assert!(venom.is_dos_only());
        assert!(Deployment::XenQemu.is_vulnerable_to(venom));
        assert!(!Deployment::KvmKvmtool.is_vulnerable_to(venom));
    }

    #[test]
    fn years_span_the_survey_window() {
        let corpus = nvd_corpus();
        assert!(corpus.iter().all(|r| (2013..=2020).contains(&r.year)));
        assert!(corpus.iter().any(|r| r.year == 2013));
        assert!(corpus.iter().any(|r| r.year == 2020));
    }
}
