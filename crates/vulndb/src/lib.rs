//! # here-vulndb — hypervisor vulnerability dataset and exploit injection
//!
//! The security-study substrate of the HERE reproduction (§2, §4, §8.2):
//!
//! - [`record`]: the CVE schema — products, CVSS impacts, components,
//!   attack vectors, targets, outcomes — plus the [`record::Deployment`]
//!   model that decides which hosts share which vulnerabilities;
//! - [`dataset`]: an embedded synthetic corpus whose marginals match every
//!   number the paper reports (Table 1, Table 5, §8.2's breakdowns);
//! - [`analysis`]: aggregations regenerating Table 1 and Table 5 and the
//!   cross-deployment overlap computation;
//! - [`exploit`]: weaponised DoS CVEs that can be launched at the simulated
//!   hosts — succeeding only where the vulnerable component actually runs,
//!   which is the mechanism behind heterogeneous replication's security
//!   benefit.
//!
//! ## Example
//!
//! ```
//! use here_vulndb::analysis::{shared_vulnerabilities, table1};
//! use here_vulndb::dataset::nvd_corpus;
//! use here_vulndb::record::Deployment;
//!
//! let corpus = nvd_corpus();
//! let t1 = table1(&corpus);
//! assert_eq!(t1[0].cves, 312); // Xen row
//! // HERE's deployment pair shares no vulnerabilities at all.
//! assert!(shared_vulnerabilities(&corpus, Deployment::XenPv, Deployment::KvmKvmtool).is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod dataset;
pub mod exploit;
pub mod record;

pub use analysis::{table1, table5, Table1Row, Table5Row};
pub use dataset::nvd_corpus;
pub use exploit::{DosSource, Exploit, ExploitResult};
pub use record::{CveRecord, Deployment, Product};
