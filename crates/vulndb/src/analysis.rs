//! Aggregations that regenerate the paper's vulnerability tables.

use serde::{Deserialize, Serialize};

use here_hypervisor::fault::DosOutcome;

use crate::record::{CveRecord, Deployment, Product, Target};

/// One row of Table 1: "DoS vulnerability stats by hypervisor, 2013–2020".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// The product.
    pub product: Product,
    /// Total CVEs in the window.
    pub cves: u32,
    /// CVEs with availability impact Partial or higher.
    pub avail: u32,
    /// `avail / cves` as a percentage.
    pub avail_pct: f64,
    /// DoS-only CVEs.
    pub dos: u32,
    /// `dos / cves` as a percentage.
    pub dos_pct: f64,
}

/// Computes Table 1 from a corpus.
///
/// # Examples
///
/// ```
/// use here_vulndb::analysis::table1;
/// use here_vulndb::dataset::nvd_corpus;
///
/// let rows = table1(&nvd_corpus());
/// let xen = &rows[0];
/// assert_eq!(xen.cves, 312);
/// assert!((xen.avail_pct - 90.4).abs() < 0.1);
/// assert!((xen.dos_pct - 48.7).abs() < 0.1);
/// ```
pub fn table1(corpus: &[CveRecord]) -> Vec<Table1Row> {
    crate::record::ALL_PRODUCTS
        .iter()
        .map(|&product| {
            let recs: Vec<&CveRecord> = corpus.iter().filter(|r| r.product == product).collect();
            let cves = recs.len() as u32;
            let avail = recs.iter().filter(|r| r.affects_availability()).count() as u32;
            let dos = recs.iter().filter(|r| r.is_dos_only()).count() as u32;
            Table1Row {
                product,
                cves,
                avail,
                avail_pct: percentage(avail, cves),
                dos,
                dos_pct: percentage(dos, cves),
            }
        })
        .collect()
}

/// One row of Table 5: Xen's DoS-only CVEs by target and outcome, with the
/// applicability of HERE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// The targeted component.
    pub target: Target,
    /// The post-attack outcome.
    pub outcome: DosOutcome,
    /// Share of all DoS-only CVEs, as a percentage.
    pub share_pct: f64,
    /// Whether HERE is applicable as a countermeasure. Always `true` in the
    /// paper's analysis: every outcome eventually manifests as a missed
    /// heartbeat (or is converted to a crash by an attack detector).
    pub here_applicable: bool,
}

/// Computes Table 5 from a corpus (Xen DoS-only records).
pub fn table5(corpus: &[CveRecord]) -> Vec<Table5Row> {
    let dos: Vec<&CveRecord> = corpus
        .iter()
        .filter(|r| r.product == Product::Xen && r.is_dos_only())
        .collect();
    let total = dos.len() as u32;
    let mut rows = Vec::new();
    for target in [
        Target::HypervisorCore,
        Target::GuestOs,
        Target::OtherSoftware,
    ] {
        for outcome in [DosOutcome::Crash, DosOutcome::Hang, DosOutcome::Starvation] {
            let count = dos
                .iter()
                .filter(|r| r.target == target && r.outcome == Some(outcome))
                .count() as u32;
            if count > 0 {
                rows.push(Table5Row {
                    target,
                    outcome,
                    share_pct: percentage(count, total),
                    here_applicable: true,
                });
            }
        }
    }
    rows
}

/// CVEs shared between two deployments — the quantitative core of the
/// heterogeneity argument: HERE's pair shares *none*, while same-device-
/// model pairs share every QEMU bug.
pub fn shared_vulnerabilities(
    corpus: &[CveRecord],
    a: Deployment,
    b: Deployment,
) -> Vec<&CveRecord> {
    corpus
        .iter()
        .filter(|r| a.is_vulnerable_to(r) && b.is_vulnerable_to(r))
        .collect()
}

fn percentage(part: u32, whole: u32) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::nvd_corpus;

    #[test]
    fn table1_reproduces_paper_percentages() {
        let rows = table1(&nvd_corpus());
        let expect = [
            (Product::Xen, 90.4, 48.7),
            (Product::Kvm, 91.9, 51.4),
            (Product::Qemu, 94.2, 62.3),
            (Product::Esxi, 78.6, 22.9),
            (Product::HyperV, 81.9, 37.9),
        ];
        for (row, (product, avail_pct, dos_pct)) in rows.iter().zip(expect) {
            assert_eq!(row.product, product);
            assert!(
                (row.avail_pct - avail_pct).abs() < 0.1,
                "{product}: avail {} vs paper {avail_pct}",
                row.avail_pct
            );
            assert!(
                (row.dos_pct - dos_pct).abs() < 0.1,
                "{product}: dos {} vs paper {dos_pct}",
                row.dos_pct
            );
        }
    }

    #[test]
    fn table5_reproduces_paper_shares() {
        let rows = table5(&nvd_corpus());
        // Paper: 66 / 13 / 5.5 / 10 / 2.5 / 3 (percent of 152).
        let find = |t: Target, o: DosOutcome| {
            rows.iter()
                .find(|r| r.target == t && r.outcome == o)
                .unwrap_or_else(|| panic!("missing row {t:?}/{o}"))
                .share_pct
        };
        assert!((find(Target::HypervisorCore, DosOutcome::Crash) - 66.0).abs() < 1.0);
        assert!((find(Target::HypervisorCore, DosOutcome::Hang) - 13.0).abs() < 1.0);
        assert!((find(Target::HypervisorCore, DosOutcome::Starvation) - 5.5).abs() < 1.0);
        assert!((find(Target::GuestOs, DosOutcome::Crash) - 10.0).abs() < 1.0);
        assert!((find(Target::GuestOs, DosOutcome::Starvation) - 2.5).abs() < 1.0);
        assert!((find(Target::OtherSoftware, DosOutcome::Crash) - 3.0).abs() < 1.0);
        assert!(rows.iter().all(|r| r.here_applicable));
        let total: f64 = rows.iter().map(|r| r.share_pct).sum();
        assert!((total - 100.0).abs() < 0.01);
    }

    #[test]
    fn here_pair_shares_nothing_qemu_pairs_share_everything_qemu() {
        let corpus = nvd_corpus();
        let here_shared =
            shared_vulnerabilities(&corpus, Deployment::XenPv, Deployment::KvmKvmtool);
        assert!(here_shared.is_empty(), "HERE's pair must share no CVEs");
        let qemu_shared = shared_vulnerabilities(&corpus, Deployment::XenQemu, Deployment::QemuKvm);
        assert_eq!(
            qemu_shared.len(),
            308,
            "Xen+QEMU and QEMU-KVM share every QEMU CVE"
        );
        assert!(qemu_shared.iter().any(|r| r.id == "CVE-2015-3456"));
    }

    #[test]
    fn percentage_handles_zero_denominator() {
        assert_eq!(percentage(5, 0), 0.0);
    }
}
