//! Property tests for the causal span tree: the nesting checker must
//! agree with a brute-force recomputation, recorder-produced forests must
//! always assemble into an acyclic tree that accounts for every span,
//! and cross-host link resolution must flag exactly the replica spans
//! whose epoch has no primary root.

use here_telemetry::span::{Span, SpanDraft, SpanRecorder, TraceTree, Track, TreeError};
use proptest::prelude::*;

/// Builds a forest from `(start, duration, parent_selector)` specs. The
/// selector is reduced modulo `i + 1`: values below `i` pick an earlier
/// span as parent, `i` itself makes a root. Parents always precede
/// children, as they do in the real recorder.
fn build_forest(specs: &[(u64, u64, usize)]) -> Vec<Span> {
    let mut rec = SpanRecorder::new();
    let mut ids = Vec::new();
    for (i, &(start, dur, parent_sel)) in specs.iter().enumerate() {
        let mut draft = SpanDraft::new("s", "test", Track::Primary, start).lasting(dur);
        let sel = parent_sel % (i + 1);
        if sel < i {
            draft = draft.child_of(ids[sel]);
        }
        ids.push(rec.push(draft));
    }
    rec.into_spans()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The indexed nesting checker finds exactly the parent/child pairs a
    /// brute-force interval scan finds — no misses, no extras.
    #[test]
    fn nesting_checker_agrees_with_brute_force(
        specs in proptest::collection::vec(
            (0u64..1_000, 0u64..1_000, 0usize..32), 1..32),
    ) {
        let spans = build_forest(&specs);
        let tree = TraceTree::build(&spans).expect("recorder forests are well-formed");
        let mut got: Vec<(u64, u64)> = tree
            .nesting_violations()
            .iter()
            .map(|v| (v.child.get(), v.parent.get()))
            .collect();
        let mut expected = Vec::new();
        for s in &spans {
            let Some(pid) = s.parent else { continue };
            let p = spans.iter().find(|x| x.id == pid).expect("parent exists");
            if s.start_nanos < p.start_nanos || s.end_nanos() > p.end_nanos() {
                expected.push((s.id.get(), pid.get()));
            }
        }
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Children constructed inside their parent's interval never trip the
    /// checker — the shape every real epoch tree has by construction.
    #[test]
    fn contained_children_never_violate_nesting(
        specs in proptest::collection::vec(
            (0u64..1000, 0u64..=1000, 0u64..=1000, 0usize..32), 1..32),
    ) {
        let mut rec = SpanRecorder::new();
        let mut placed: Vec<(here_telemetry::span::SpanId, u64, u64)> = Vec::new();
        for (i, &(root_start, frac, len, parent_sel)) in specs.iter().enumerate() {
            let sel = parent_sel % (i + 1);
            let (draft, start, end) = if sel < i {
                // Nest strictly inside the chosen parent's interval.
                let (pid, pstart, pend) = placed[sel];
                let start = pstart + (pend - pstart) * frac / 1000;
                let dur = (pend - start) * len / 1000;
                (
                    SpanDraft::new("s", "test", Track::Primary, start)
                        .lasting(dur)
                        .child_of(pid),
                    start,
                    start + dur,
                )
            } else {
                let start = root_start;
                let dur = len;
                (
                    SpanDraft::new("s", "test", Track::Primary, start).lasting(dur),
                    start,
                    start + dur,
                )
            };
            let id = rec.push(draft);
            placed.push((id, start, end));
        }
        let spans = rec.into_spans();
        let tree = TraceTree::build(&spans).expect("recorder forests are well-formed");
        prop_assert!(tree.nesting_violations().is_empty());
    }

    /// Any recorder-produced forest builds acyclically, and roots plus
    /// children lists account for every span exactly once.
    #[test]
    fn recorder_forests_build_acyclic_and_complete(
        specs in proptest::collection::vec(
            (0u64..1_000, 0u64..1_000, 0usize..32), 0..48),
    ) {
        let spans = build_forest(&specs);
        let tree = TraceTree::build(&spans).expect("recorder forests are well-formed");
        let root_count = tree.roots().count();
        let child_count: usize = spans
            .iter()
            .map(|s| tree.children_of(s.id).count())
            .sum();
        prop_assert_eq!(root_count + child_count, spans.len());
        // Every child appears in exactly its own parent's list.
        for s in &spans {
            if let Some(pid) = s.parent {
                prop_assert!(tree.children_of(pid).any(|c| c.id == s.id));
            }
        }
    }

    /// `unresolved_links` flags exactly the replica spans whose epoch id
    /// has no primary epoch root (or no epoch at all).
    #[test]
    fn cross_host_links_resolve_iff_a_root_exists(
        root_epoch_picks in proptest::collection::vec(0u64..16, 0..8),
        replica_epochs in proptest::collection::vec(
            proptest::option::of(0u64..16), 0..24),
    ) {
        let root_epochs: std::collections::BTreeSet<u64> =
            root_epoch_picks.into_iter().collect();
        let mut rec = SpanRecorder::new();
        for (i, &e) in root_epochs.iter().enumerate() {
            rec.push(
                SpanDraft::new("epoch", "epoch", Track::Primary, i as u64 * 100)
                    .lasting(50)
                    .epoch(e),
            );
        }
        let mut expected = Vec::new();
        for (i, &e) in replica_epochs.iter().enumerate() {
            let mut draft =
                SpanDraft::new("decode_restore", "wire", Track::Replica(0), i as u64 * 100)
                    .lasting(10);
            if let Some(e) = e {
                draft = draft.epoch(e);
            }
            let id = rec.push(draft);
            if e.is_none_or(|e| !root_epochs.contains(&e)) {
                expected.push(id);
            }
        }
        let spans = rec.into_spans();
        let tree = TraceTree::build(&spans).expect("forest is well-formed");
        prop_assert_eq!(tree.unresolved_links(), expected);
    }
}

/// A hand-crafted parent cycle (unreachable through the recorder API) is
/// rejected rather than looping the traversals.
#[test]
fn parent_cycles_are_rejected() {
    let mut rec = SpanRecorder::new();
    let a = rec.push(SpanDraft::new("a", "test", Track::Primary, 0).lasting(10));
    let b_draft = SpanDraft::new("b", "test", Track::Primary, 0)
        .lasting(10)
        .child_of(a);
    let b = rec.push(b_draft);
    let mut spans = rec.into_spans();
    spans[0].parent = Some(b);
    match TraceTree::build(&spans) {
        Err(TreeError::Cycle(_)) => {}
        other => panic!("expected a cycle error, got {other:?}"),
    }
}
