//! Property tests for the telemetry building blocks: histogram quantiles
//! must bracket the true order statistics, snapshot merging must commute
//! with merged observation, and the flight recorder's bounded ring must
//! keep exactly the newest events in order.

use here_telemetry::{FlightEvent, FlightRecorder, MetricsRegistry};
use proptest::prelude::*;

/// Tightest log2 bucket bound above `v` — the histogram cannot place a
/// quantile estimate outside the bucket its sample fell into.
fn bucket_upper(v: u64) -> u64 {
    match v {
        0 => 0,
        _ => {
            let b = u64::BITS - v.leading_zeros();
            if b >= 64 {
                u64::MAX
            } else {
                (1u64 << b) - 1
            }
        }
    }
}

fn bucket_lower(v: u64) -> u64 {
    match v {
        0 => 0,
        _ => {
            let b = u64::BITS - v.leading_zeros();
            1u64 << (b - 1)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every quantile, the estimate lands within the log2 bucket of
    /// the true order statistic (nearest-rank), and inside [min, max].
    #[test]
    fn quantile_estimates_bracket_the_true_order_statistic(
        mut values in proptest::collection::vec(0u64..u64::MAX / 2, 1..400),
        q_millis in 0u32..=1000,
    ) {
        let q = f64::from(q_millis) / 1000.0;
        let mut registry = MetricsRegistry::new();
        let hist = registry.histogram("h", "test");
        for &v in &values {
            hist.observe(v);
        }
        values.sort_unstable();
        let count = values.len();
        let rank = ((q * count as f64).ceil() as usize).clamp(1, count);
        let truth = values[rank - 1];
        let est = hist.snapshot().quantile(q).expect("histogram is non-empty");
        let min = *values.first().unwrap() as f64;
        let max = *values.last().unwrap() as f64;
        prop_assert!(est >= min && est <= max, "estimate {est} outside [{min}, {max}]");
        let lo = (bucket_lower(truth) as f64).min(max);
        let hi = (bucket_upper(truth) as f64).max(min);
        prop_assert!(
            est >= lo && est <= hi,
            "estimate {est} outside the true statistic's bucket [{lo}, {hi}] (truth {truth})"
        );
    }

    /// Merging two histogram snapshots equals observing both sample sets
    /// into one histogram: identical buckets, count, sum, min, max — and
    /// therefore identical quantiles.
    #[test]
    fn merge_commutes_with_combined_observation(
        a in proptest::collection::vec(0u64..u64::MAX / 2, 0..200),
        b in proptest::collection::vec(0u64..u64::MAX / 2, 0..200),
    ) {
        let mut registry = MetricsRegistry::new();
        let ha = registry.histogram("a", "test");
        let hb = registry.histogram("b", "test");
        let hc = registry.histogram("c", "test");
        for &v in &a {
            ha.observe(v);
            hc.observe(v);
        }
        for &v in &b {
            hb.observe(v);
            hc.observe(v);
        }
        let mut merged = ha.snapshot();
        merged.merge_from(&hb.snapshot());
        let combined = hc.snapshot();
        prop_assert_eq!(&merged.buckets, &combined.buckets);
        prop_assert_eq!(merged.count, combined.count);
        prop_assert_eq!(merged.sum, combined.sum);
        prop_assert_eq!(merged.min, combined.min);
        prop_assert_eq!(merged.max, combined.max);
    }

    /// Histogram sum/count/min/max are exact regardless of bucketing.
    #[test]
    fn histogram_scalars_are_exact(
        values in proptest::collection::vec(0u64..1_000_000, 1..300),
    ) {
        let mut registry = MetricsRegistry::new();
        let hist = registry.histogram("h", "test");
        for &v in &values {
            hist.observe(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.min, *values.iter().min().unwrap());
        prop_assert_eq!(snap.max, *values.iter().max().unwrap());
    }

    /// The flight recorder retains exactly the newest `capacity` events in
    /// chronological order, drops the rest, and accounts for every record.
    #[test]
    fn flight_ring_keeps_the_newest_events_in_order(
        capacity in 1usize..64,
        total in 0u64..300,
    ) {
        let mut rec = FlightRecorder::new(capacity);
        for i in 0..total {
            rec.record(FlightEvent::EncodeLane {
                seq: i,
                at_nanos: i,
                lane: 0,
                wall_nanos: 1,
            });
        }
        let events = rec.events();
        let retained = (total as usize).min(capacity);
        prop_assert_eq!(events.len(), retained);
        prop_assert_eq!(rec.total_recorded(), total);
        prop_assert_eq!(rec.dropped(), total - retained as u64);
        let first = total - retained as u64;
        for (i, e) in events.iter().enumerate() {
            prop_assert_eq!(e.at_nanos(), first + i as u64);
        }
    }
}
