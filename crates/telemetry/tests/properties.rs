//! Property tests for the telemetry building blocks: histogram quantiles
//! must bracket the true order statistics, snapshot merging must commute
//! with merged observation, and the flight recorder's bounded ring must
//! keep exactly the newest events in order.

use here_telemetry::timeseries::{SeriesKind, Window, WindowedSeries};
use here_telemetry::{FlightEvent, FlightRecorder, MetricsRegistry};
use proptest::prelude::*;

/// Tightest log2 bucket bound above `v` — the histogram cannot place a
/// quantile estimate outside the bucket its sample fell into.
fn bucket_upper(v: u64) -> u64 {
    match v {
        0 => 0,
        _ => {
            let b = u64::BITS - v.leading_zeros();
            if b >= 64 {
                u64::MAX
            } else {
                (1u64 << b) - 1
            }
        }
    }
}

fn bucket_lower(v: u64) -> u64 {
    match v {
        0 => 0,
        _ => {
            let b = u64::BITS - v.leading_zeros();
            1u64 << (b - 1)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every quantile, the estimate lands within the log2 bucket of
    /// the true order statistic (nearest-rank), and inside [min, max].
    #[test]
    fn quantile_estimates_bracket_the_true_order_statistic(
        mut values in proptest::collection::vec(0u64..u64::MAX / 2, 1..400),
        q_millis in 0u32..=1000,
    ) {
        let q = f64::from(q_millis) / 1000.0;
        let mut registry = MetricsRegistry::new();
        let hist = registry.histogram("h", "test");
        for &v in &values {
            hist.observe(v);
        }
        values.sort_unstable();
        let count = values.len();
        let rank = ((q * count as f64).ceil() as usize).clamp(1, count);
        let truth = values[rank - 1];
        let est = hist.snapshot().quantile(q).expect("histogram is non-empty");
        let min = *values.first().unwrap() as f64;
        let max = *values.last().unwrap() as f64;
        prop_assert!(est >= min && est <= max, "estimate {est} outside [{min}, {max}]");
        let lo = (bucket_lower(truth) as f64).min(max);
        let hi = (bucket_upper(truth) as f64).max(min);
        prop_assert!(
            est >= lo && est <= hi,
            "estimate {est} outside the true statistic's bucket [{lo}, {hi}] (truth {truth})"
        );
    }

    /// Merging two histogram snapshots equals observing both sample sets
    /// into one histogram: identical buckets, count, sum, min, max — and
    /// therefore identical quantiles.
    #[test]
    fn merge_commutes_with_combined_observation(
        a in proptest::collection::vec(0u64..u64::MAX / 2, 0..200),
        b in proptest::collection::vec(0u64..u64::MAX / 2, 0..200),
    ) {
        let mut registry = MetricsRegistry::new();
        let ha = registry.histogram("a", "test");
        let hb = registry.histogram("b", "test");
        let hc = registry.histogram("c", "test");
        for &v in &a {
            ha.observe(v);
            hc.observe(v);
        }
        for &v in &b {
            hb.observe(v);
            hc.observe(v);
        }
        let mut merged = ha.snapshot();
        merged.merge_from(&hb.snapshot());
        let combined = hc.snapshot();
        prop_assert_eq!(&merged.buckets, &combined.buckets);
        prop_assert_eq!(merged.count, combined.count);
        prop_assert_eq!(merged.sum, combined.sum);
        prop_assert_eq!(merged.min, combined.min);
        prop_assert_eq!(merged.max, combined.max);
    }

    /// Histogram sum/count/min/max are exact regardless of bucketing.
    #[test]
    fn histogram_scalars_are_exact(
        values in proptest::collection::vec(0u64..1_000_000, 1..300),
    ) {
        let mut registry = MetricsRegistry::new();
        let hist = registry.histogram("h", "test");
        for &v in &values {
            hist.observe(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.min, *values.iter().min().unwrap());
        prop_assert_eq!(snap.max, *values.iter().max().unwrap());
    }

    /// The flight recorder retains exactly the newest `capacity` events in
    /// chronological order, drops the rest, and accounts for every record.
    #[test]
    fn flight_ring_keeps_the_newest_events_in_order(
        capacity in 1usize..64,
        total in 0u64..300,
    ) {
        let mut rec = FlightRecorder::new(capacity);
        for i in 0..total {
            rec.record(FlightEvent::EncodeLane {
                seq: i,
                at_nanos: i,
                lane: 0,
                wall_nanos: 1,
            });
        }
        let events = rec.events();
        let retained = (total as usize).min(capacity);
        prop_assert_eq!(events.len(), retained);
        prop_assert_eq!(rec.total_recorded(), total);
        prop_assert_eq!(rec.dropped(), total - retained as u64);
        let first = total - retained as u64;
        for (i, e) in events.iter().enumerate() {
            prop_assert_eq!(e.at_nanos(), first + i as u64);
        }
    }
}

/// Picks an aggregation kind from a generated selector.
fn kind_of(sel: u8) -> SeriesKind {
    match sel % 3 {
        0 => SeriesKind::CounterRate,
        1 => SeriesKind::GaugeLast,
        _ => SeriesKind::Histogram,
    }
}

/// Deterministic Fisher-Yates driven by a generated seed — the vendored
/// proptest stand-in has no `prop_shuffle`, so the tests shuffle inline.
fn shuffled(mut v: Vec<(u64, u64)>, seed: u64) -> Vec<(u64, u64)> {
    let mut state = seed | 1;
    for i in (1..v.len()).rev() {
        // SplitMix64 step; any well-mixed generator works here.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        v.swap(i, (z % (i as u64 + 1)) as usize);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The same multiset of samples produces the identical series — and
    /// identical JSONL bytes — no matter what order it is recorded in,
    /// even when rotation folds history mid-stream.
    #[test]
    fn recording_order_never_changes_the_series(
        stream in proptest::collection::vec((0u64..25_000, 0u64..5_000), 1..120),
        kind_sel in 0u8..3,
        retain in 1usize..6,
        shuffle_seed in any::<u64>(),
    ) {
        let kind = kind_of(kind_sel);
        let mut a = WindowedSeries::with_retain("m", Some(("replica", "2")), kind, 1_000, retain);
        let mut b = WindowedSeries::with_retain("m", Some(("replica", "2")), kind, 1_000, retain);
        for &(at, v) in &stream {
            a.record(at, v);
        }
        for &(at, v) in &shuffled(stream, shuffle_seed) {
            b.record(at, v);
        }
        prop_assert_eq!(&a, &b);
        let mut ja = String::new();
        a.render_jsonl_into(&mut ja);
        let mut jb = String::new();
        b.render_jsonl_into(&mut jb);
        prop_assert_eq!(ja, jb);
    }

    /// Rotation moves samples into the tail aggregate but never loses
    /// them: count and sum over live windows plus tail always equal the
    /// recorded stream's.
    #[test]
    fn rotation_never_loses_counts(
        stream in proptest::collection::vec((0u64..25_000, 0u64..5_000), 1..120),
        retain in 1usize..5,
    ) {
        let mut s = WindowedSeries::with_retain("m", None, SeriesKind::CounterRate, 1_000, retain);
        for &(at, v) in &stream {
            s.record(at, v);
        }
        prop_assert!(s.windows().len() <= retain);
        prop_assert_eq!(s.total_count(), stream.len() as u64);
        let live_sum: u64 = s.windows().iter().map(|w| w.sum).sum();
        let tail_sum = s.tail().map_or(0, |t| t.sum);
        prop_assert_eq!(live_sum + tail_sum, stream.iter().map(|&(_, v)| v).sum::<u64>());
    }

    /// Splitting one window's sample stream in two and merging the halves
    /// — in either order — reproduces exactly the window that recording
    /// everything into one would have.
    #[test]
    fn window_merge_commutes_with_recording_order(
        stream in proptest::collection::vec((0u64..1_000, 0u64..5_000, any::<bool>()), 1..80),
        kind_sel in 0u8..3,
    ) {
        let kind = kind_of(kind_sel);
        let mut whole = Window::new(0, kind);
        let mut left = Window::new(0, kind);
        let mut right = Window::new(0, kind);
        for &(at, v, goes_left) in &stream {
            whole.record(at, v);
            if goes_left {
                left.record(at, v);
            } else {
                right.record(at, v);
            }
        }
        let mut lr = left.clone();
        lr.merge_from(&right);
        let mut rl = right.clone();
        rl.merge_from(&left);
        prop_assert_eq!(&lr, &whole);
        prop_assert_eq!(&rl, &whole);
    }
}
