//! Golden-file tests pinning the renderer output formats: the Prometheus
//! text exposition and the Chrome trace-event export.
//!
//! Any change to a renderer — header layout, bucket boundaries, label
//! ordering, float formatting, event ordering — shows up as a diff
//! against the files in `tests/golden/`. Regenerate with
//! `BLESS=1 cargo test -p here-telemetry --test golden` after verifying
//! the new output is intentional.

use here_telemetry::span::{SpanDraft, SpanRecorder, Track};
use here_telemetry::{chrome_trace, prometheus, MetricsRegistry};

/// A deterministic registry exercising every metric kind: plain counter,
/// gauge (integral and fractional), unlabelled histogram, and a labelled
/// histogram family with two variants.
fn fixture() -> MetricsRegistry {
    let mut registry = MetricsRegistry::new();
    let checkpoints = registry.counter("here_checkpoints_total", "Checkpoints completed");
    checkpoints.add(42);
    let period = registry.gauge("here_period_seconds", "Current checkpoint period");
    period.set(2.5);
    let deg = registry.gauge("here_degradation_ratio", "Measured degradation");
    deg.set(0.25);
    let pause = registry.histogram("here_pause_nanos", "Pause per checkpoint");
    for v in [1_000, 2_000, 4_000, 40_000_000, 55_000_000] {
        pause.observe(v);
    }
    let harvest = registry.histogram_with_label(
        "here_stage_nanos",
        "Per-stage duration",
        Some(("stage", "harvest")),
    );
    harvest.observe(10_000_000);
    harvest.observe(12_000_000);
    let translate = registry.histogram_with_label(
        "here_stage_nanos",
        "Per-stage duration",
        Some(("stage", "translate")),
    );
    translate.observe(3_000_000);
    registry
}

/// A deterministic two-epoch span forest exercising every exporter
/// feature: nested stage and lane children, wall-clock attrs, a
/// cross-host replica span (flow events), and a failover subtree.
fn span_fixture() -> Vec<here_telemetry::span::Span> {
    let mut rec = SpanRecorder::new();
    for (seq, start) in [(1u64, 0u64), (2, 2_000_000)] {
        let epoch = rec.push(
            SpanDraft::new("epoch", "epoch", Track::Primary, start)
                .lasting(1_000_000)
                .epoch(seq)
                .attr_u64("seq", seq),
        );
        let translate = rec.push(
            SpanDraft::new("translate", "stage", Track::Primary, start)
                .lasting(600_000)
                .child_of(epoch)
                .epoch(seq)
                .attr_u64("pages", 128)
                .attr_u64("bytes", 524_288),
        );
        for lane in 0..2u32 {
            rec.push(
                SpanDraft::new("encode_lane", "lane", Track::PrimaryLane(lane), start)
                    .lasting(600_000)
                    .child_of(translate)
                    .epoch(seq)
                    .wall(10_000 + u64::from(lane) * 1_500)
                    .attr_u64("lane", u64::from(lane)),
            );
        }
        rec.push(
            SpanDraft::new("transfer", "stage", Track::Primary, start + 600_000)
                .lasting(400_000)
                .child_of(epoch)
                .epoch(seq)
                .attr_u64("bytes", 524_288),
        );
        rec.push(
            SpanDraft::new("decode_restore", "wire", Track::Replica(0), start + 700_000)
                .lasting(200_000)
                .epoch(seq)
                .wall(55_000)
                .attr_u64("pages", 128),
        );
    }
    let failover = rec.push(
        SpanDraft::new("failover", "failover", Track::Controller, 4_000_000)
            .lasting(500_000)
            .attr_u64("packets_lost", 3),
    );
    rec.push(
        SpanDraft::new("detect", "failover", Track::Controller, 4_000_000)
            .lasting(300_000)
            .child_of(failover),
    );
    rec.push(
        SpanDraft::new(
            "switch_and_activate",
            "failover",
            Track::Controller,
            4_300_000,
        )
        .lasting(200_000)
        .child_of(failover)
        .attr_str("new_family", "kvm"),
    );
    rec.into_spans()
}

fn check_golden(rendered: &str, path: &str, what: &str) {
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, rendered).expect("can write the golden file");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing — run `BLESS=1 cargo test -p here-telemetry --test golden`");
    assert!(
        rendered == golden,
        "{what} drifted from the golden file.\n\
         If the change is intentional, regenerate with BLESS=1.\n\
         --- golden ---\n{golden}\n--- rendered ---\n{rendered}"
    );
}

#[test]
fn prometheus_exposition_matches_the_golden_file() {
    check_golden(
        &prometheus(&fixture().snapshot()),
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/prometheus.txt"),
        "Prometheus exposition",
    );
}

#[test]
fn chrome_trace_matches_the_golden_file() {
    check_golden(
        &chrome_trace(&span_fixture()),
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/chrome_trace.json"
        ),
        "Chrome trace export",
    );
}
