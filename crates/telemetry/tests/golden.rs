//! Golden-file test pinning the Prometheus text exposition format.
//!
//! Any change to the renderer — header layout, bucket boundaries, label
//! ordering, float formatting — shows up as a diff against
//! `tests/golden/prometheus.txt`. Regenerate with
//! `BLESS=1 cargo test -p here-telemetry --test golden` after verifying
//! the new output is intentional.

use here_telemetry::{prometheus, MetricsRegistry};

/// A deterministic registry exercising every metric kind: plain counter,
/// gauge (integral and fractional), unlabelled histogram, and a labelled
/// histogram family with two variants.
fn fixture() -> MetricsRegistry {
    let mut registry = MetricsRegistry::new();
    let checkpoints = registry.counter("here_checkpoints_total", "Checkpoints completed");
    checkpoints.add(42);
    let period = registry.gauge("here_period_seconds", "Current checkpoint period");
    period.set(2.5);
    let deg = registry.gauge("here_degradation_ratio", "Measured degradation");
    deg.set(0.25);
    let pause = registry.histogram("here_pause_nanos", "Pause per checkpoint");
    for v in [1_000, 2_000, 4_000, 40_000_000, 55_000_000] {
        pause.observe(v);
    }
    let harvest = registry.histogram_with_label(
        "here_stage_nanos",
        "Per-stage duration",
        Some(("stage", "harvest")),
    );
    harvest.observe(10_000_000);
    harvest.observe(12_000_000);
    let translate = registry.histogram_with_label(
        "here_stage_nanos",
        "Per-stage duration",
        Some(("stage", "translate")),
    );
    translate.observe(3_000_000);
    registry
}

#[test]
fn prometheus_exposition_matches_the_golden_file() {
    let rendered = prometheus(&fixture().snapshot());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/prometheus.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &rendered).expect("can write the golden file");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing — run `BLESS=1 cargo test -p here-telemetry --test golden`");
    assert!(
        rendered == golden,
        "Prometheus exposition drifted from the golden file.\n\
         If the change is intentional, regenerate with BLESS=1.\n\
         --- golden ---\n{golden}\n--- rendered ---\n{rendered}"
    );
}
