//! # here-telemetry — the always-on observability layer
//!
//! The paper's control loop hinges on quantities that are invisible until
//! a run ends: the pause `t = αN/P + C` (Eq. 4), the degradation
//! `D_T = t / (t + T)` (Eq. 1), the dirty-page rate, and the failover
//! downtime. This crate gives the replication stack a *live* surface for
//! all of them, cheap enough to leave on in production:
//!
//! - [`metrics`]: a registry of counters, gauges and log2-bucketed
//!   histograms. Metrics are registered once; hot paths update them
//!   through cloneable atomic handles with no allocation and no locking.
//!   Snapshots are plain data and merge across registries (e.g. one per
//!   encode lane).
//! - [`flight`]: a bounded ring buffer — the **flight recorder** — that
//!   always holds the most recent pipeline stage events, period-manager
//!   decisions, buffer-pool reclaim stats, per-encode-lane timings and
//!   failover timeline, dumpable as JSON on demand or on failure.
//! - [`slo`]: continuous evaluation of the measured degradation against
//!   the configured target `D` and period cap `T_max`, emitting
//!   structured breach events.
//! - [`span`]: causal spans — per-epoch trace trees linking the epoch
//!   root to its pipeline stages, per-lane encode work, and the
//!   replica-side apply across the simulated wire.
//! - [`chrome`]: Chrome trace-event JSON (`chrome://tracing` / Perfetto)
//!   and compact JSONL renderers for span records.
//! - [`export`]: Prometheus text exposition and a JSON document rendered
//!   from a registry snapshot.
//! - [`timeseries`]: fixed-width windowed series on virtual time —
//!   counter rates, last-write gauges, per-window histograms — keyed by
//!   metric + label, bit-deterministic for seeded runs.
//! - [`health`]: the per-replica health state machine
//!   (`Healthy → Lagging → Stale → Recovering`, with hysteresis) fed by
//!   ack lag, backlog depth and retry counts.
//! - [`alert`]: a deterministic alert engine evaluating declarative
//!   rules (SLO burn rate, stale replica, retry storm, quorum at risk,
//!   period oscillation, flight-recorder drops) each epoch into an
//!   ordered firing/resolved log.
//!
//! ## Example
//!
//! ```
//! use here_telemetry::metrics::MetricsRegistry;
//! use here_telemetry::export::prometheus;
//!
//! let mut registry = MetricsRegistry::new();
//! let checkpoints = registry.counter("here_checkpoints_total", "Checkpoints completed");
//! let pause = registry.histogram("here_pause_nanos", "VM-visible pause per checkpoint");
//! checkpoints.incr();
//! pause.observe(42_000_000);
//! let text = prometheus(&registry.snapshot());
//! assert!(text.contains("here_checkpoints_total 1"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alert;
pub mod chrome;
pub mod export;
pub mod flight;
pub mod health;
pub mod metrics;
pub mod slo;
pub mod span;
pub mod timeseries;

pub use alert::{AlertEngine, AlertEvent, AlertRules, AlertSample, AlertSeverity, AlertState};
pub use chrome::{chrome_trace, spans_jsonl};
pub use export::{json_escape, json_snapshot, prometheus};
pub use flight::{FlightEvent, FlightRecorder};
pub use health::{HealthObservation, HealthPolicy, HealthState, HealthTracker, HealthTransition};
pub use metrics::{
    CounterHandle, GaugeHandle, HistogramHandle, HistogramSnapshot, MetricSnapshot, MetricValue,
    MetricsRegistry, RegistrySnapshot,
};
pub use slo::{BreachKind, SloBreach, SloSummary, SloTracker};
pub use span::{
    AttrValue, NestingViolation, Span, SpanDraft, SpanId, SpanRecorder, TraceTree, Track, TreeError,
};
pub use timeseries::{SeriesKind, SeriesSet, Window, WindowedSeries};
