//! Deterministic alert engine.
//!
//! A fixed, declaratively-parameterised rule set is evaluated once per
//! committed epoch against an [`AlertSample`] — the epoch's degradation,
//! period, retry count, health states, and flight-recorder drop
//! counter. Rules keep just enough integer history (ring buffers of
//! recent epochs) to evaluate multi-window conditions, and every
//! firing/resolved edge is appended to an ordered [`AlertEvent`] log.
//!
//! Everything is integer arithmetic over virtual-time inputs, and rules
//! are evaluated in a fixed declaration order, so the same seeded run
//! produces a byte-identical alert log — the property `repro health`
//! gates in CI.
//!
//! The rules (names are stable API, used as span/flight labels):
//!
//! | rule | fires when |
//! |---|---|
//! | `slo_burn_rate` | mean `D_T` over the short *and* long window both exceed `burn_multiple_x × d_target` |
//! | `stale_replica` | any replica's health state is `Stale` |
//! | `retry_storm` | transfer retries over the retry window reach the storm threshold |
//! | `quorum_at_risk` | serviceable replicas have fallen to (or below) the quorum size |
//! | `period_oscillation` | the controller's period direction flips ≥ `oscillation_min_flips` times in the window |
//! | `flight_recorder_drops` | the flight ring dropped events in `drop_window_epochs` consecutive epochs |

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::export::json_escape;

/// Rule name for the multi-window SLO burn-rate alert.
pub const RULE_SLO_BURN_RATE: &str = "slo_burn_rate";
/// Rule name for the stale-replica alert.
pub const RULE_STALE_REPLICA: &str = "stale_replica";
/// Rule name for the retry-storm alert.
pub const RULE_RETRY_STORM: &str = "retry_storm";
/// Rule name for the quorum-at-risk alert.
pub const RULE_QUORUM_AT_RISK: &str = "quorum_at_risk";
/// Rule name for the period-oscillation alert.
pub const RULE_PERIOD_OSCILLATION: &str = "period_oscillation";
/// Rule name for the sustained flight-recorder-drop alert.
pub const RULE_FLIGHT_RECORDER_DROPS: &str = "flight_recorder_drops";

const RULE_COUNT: usize = 6;

/// How loud an alert is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertSeverity {
    /// Degraded but the replication contract still holds.
    Warning,
    /// The fault-tolerance contract itself is at risk.
    Critical,
}

impl AlertSeverity {
    /// Stable lower-case label for logs and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            AlertSeverity::Warning => "warning",
            AlertSeverity::Critical => "critical",
        }
    }
}

/// Which edge of an alert an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertState {
    /// The rule's condition just became true.
    Firing,
    /// The rule's condition just became false after firing.
    Resolved,
}

impl AlertState {
    /// Stable lower-case label for logs and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// One firing/resolved edge in the ordered alert log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertEvent {
    /// The rule that transitioned (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Severity of the rule.
    pub severity: AlertSeverity,
    /// Firing or resolved.
    pub state: AlertState,
    /// Epoch sequence number of the evaluation.
    pub epoch: u64,
    /// Virtual timestamp of the evaluation.
    pub at_nanos: u64,
    /// Human-readable condition summary (deterministic).
    pub detail: String,
}

impl AlertEvent {
    /// Renders the event as one JSON object (no trailing newline).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"state\":\"{}\",\"epoch\":{},\"at_nanos\":{},\"detail\":\"{}\"}}",
            self.rule,
            self.severity.label(),
            self.state.label(),
            self.epoch,
            self.at_nanos,
            json_escape(&self.detail),
        )
    }
}

/// Declarative rule thresholds. All integer; ratios are expressed in
/// parts-per-million (ppm) so evaluation is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertRules {
    /// SLO target for client-visible degradation `D_T`, in ppm.
    pub d_target_ppm: u64,
    /// Burn multiple: the mean `D_T` must exceed `burn_multiple_x ×
    /// d_target_ppm` in *both* burn windows to fire.
    pub burn_multiple_x: u64,
    /// Short burn window, in epochs.
    pub burn_short_epochs: usize,
    /// Long burn window, in epochs.
    pub burn_long_epochs: usize,
    /// Transfer retries within the retry window that count as a storm.
    pub retry_storm_threshold: u64,
    /// Retry-storm window, in epochs.
    pub retry_window_epochs: usize,
    /// Period-oscillation window, in epochs.
    pub oscillation_window_epochs: usize,
    /// Direction flips within the window that count as oscillation.
    pub oscillation_min_flips: u64,
    /// Consecutive epochs with fresh flight-recorder drops that fire
    /// the drop alert.
    pub drop_window_epochs: u64,
}

impl Default for AlertRules {
    fn default() -> Self {
        AlertRules {
            d_target_ppm: 50_000, // D_T ≤ 5% — the paper's headline target
            burn_multiple_x: 2,
            burn_short_epochs: 3,
            burn_long_epochs: 12,
            retry_storm_threshold: 6,
            retry_window_epochs: 4,
            oscillation_window_epochs: 8,
            oscillation_min_flips: 5,
            drop_window_epochs: 3,
        }
    }
}

/// One epoch's inputs to the engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertSample {
    /// Epoch sequence number.
    pub epoch: u64,
    /// Virtual timestamp of the evaluation.
    pub at_nanos: u64,
    /// Client-visible degradation `D_T` for the epoch, in ppm.
    pub degradation_ppm: u64,
    /// Controller period for the epoch, in nanoseconds.
    pub period_nanos: u64,
    /// Transfer retries charged to the epoch.
    pub retries: u64,
    /// Replicas currently judged stale, in index order.
    pub stale_replicas: Vec<u32>,
    /// Replicas whose health state can serve a promotion.
    pub serviceable: u32,
    /// Total replicas in the set.
    pub replicas: u32,
    /// Commit quorum size.
    pub quorum: u32,
    /// Cumulative flight-recorder drop counter.
    pub flight_dropped: u64,
}

/// Evaluates the rule set each epoch and keeps the ordered alert log.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    rules: AlertRules,
    firing: [bool; RULE_COUNT],
    degradation: VecDeque<u64>,
    retries: VecDeque<u64>,
    periods: VecDeque<u64>,
    prev_dropped: u64,
    drop_streak: u64,
    log: Vec<AlertEvent>,
}

impl AlertEngine {
    /// An engine with the given thresholds and an empty log.
    pub fn new(rules: AlertRules) -> Self {
        AlertEngine {
            rules,
            firing: [false; RULE_COUNT],
            degradation: VecDeque::new(),
            retries: VecDeque::new(),
            periods: VecDeque::new(),
            prev_dropped: 0,
            drop_streak: 0,
            log: Vec::new(),
        }
    }

    /// The thresholds the engine was built with.
    pub fn rules(&self) -> AlertRules {
        self.rules
    }

    /// Evaluates every rule against one epoch's sample, in declaration
    /// order, appending firing/resolved edges to the log. Returns the
    /// edges that fired this evaluation.
    pub fn evaluate(&mut self, sample: &AlertSample) -> Vec<AlertEvent> {
        push_capped(
            &mut self.degradation,
            sample.degradation_ppm,
            self.rules.burn_long_epochs,
        );
        push_capped(
            &mut self.retries,
            sample.retries,
            self.rules.retry_window_epochs,
        );
        push_capped(
            &mut self.periods,
            sample.period_nanos,
            self.rules.oscillation_window_epochs,
        );
        let drop_delta = sample.flight_dropped.saturating_sub(self.prev_dropped);
        self.prev_dropped = sample.flight_dropped;
        self.drop_streak = if drop_delta > 0 {
            self.drop_streak + 1
        } else {
            0
        };

        let burn_floor_ppm = self.rules.burn_multiple_x * self.rules.d_target_ppm;
        let short_sum: u64 = self
            .degradation
            .iter()
            .rev()
            .take(self.rules.burn_short_epochs)
            .sum();
        let short_n = self.degradation.len().min(self.rules.burn_short_epochs) as u64;
        let long_sum: u64 = self.degradation.iter().sum();
        // The long window always divides by its full width: epochs that
        // have not happened yet count as zero burn, so a single early
        // spike cannot satisfy both windows at once.
        let long_n = self.rules.burn_long_epochs as u64;
        // mean > floor  ⇔  sum > floor × n, exactly, in integers.
        let burning = short_sum > burn_floor_ppm * short_n && long_sum > burn_floor_ppm * long_n;

        let retry_sum: u64 = self.retries.iter().sum();
        let storming = retry_sum >= self.rules.retry_storm_threshold;

        let at_risk = sample.replicas > 1
            && sample.serviceable < sample.replicas
            && sample.serviceable <= sample.quorum;

        let mut flips = 0u64;
        let mut prev_dir = 0i8;
        for pair in self.periods.iter().zip(self.periods.iter().skip(1)) {
            let dir = match pair.1.cmp(pair.0) {
                std::cmp::Ordering::Greater => 1i8,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => continue,
            };
            if prev_dir != 0 && dir != prev_dir {
                flips += 1;
            }
            prev_dir = dir;
        }
        let oscillating = flips >= self.rules.oscillation_min_flips;

        let dropping = self.drop_streak >= self.rules.drop_window_epochs;

        let conditions: [(usize, &'static str, AlertSeverity, bool, String); RULE_COUNT] = [
            (
                0,
                RULE_SLO_BURN_RATE,
                AlertSeverity::Critical,
                burning,
                format!(
                    "short-window mean {} ppm, long-window mean {} ppm vs floor {} ppm",
                    short_sum / short_n.max(1),
                    long_sum / long_n.max(1),
                    burn_floor_ppm
                ),
            ),
            (
                1,
                RULE_STALE_REPLICA,
                AlertSeverity::Warning,
                !sample.stale_replicas.is_empty(),
                format!("stale replicas {:?}", sample.stale_replicas),
            ),
            (
                2,
                RULE_RETRY_STORM,
                AlertSeverity::Warning,
                storming,
                format!(
                    "{} retries in the last {} epochs",
                    retry_sum, self.rules.retry_window_epochs
                ),
            ),
            (
                3,
                RULE_QUORUM_AT_RISK,
                AlertSeverity::Critical,
                at_risk,
                format!(
                    "{} of {} replicas serviceable, quorum {}",
                    sample.serviceable, sample.replicas, sample.quorum
                ),
            ),
            (
                4,
                RULE_PERIOD_OSCILLATION,
                AlertSeverity::Warning,
                oscillating,
                format!(
                    "{} period direction flips in the last {} epochs",
                    flips, self.rules.oscillation_window_epochs
                ),
            ),
            (
                5,
                RULE_FLIGHT_RECORDER_DROPS,
                AlertSeverity::Warning,
                dropping,
                format!(
                    "flight recorder dropped events in {} consecutive epochs ({} total)",
                    self.drop_streak, sample.flight_dropped
                ),
            ),
        ];

        let mut edges = Vec::new();
        for (slot, rule, severity, want, detail) in conditions {
            if want == self.firing[slot] {
                continue;
            }
            self.firing[slot] = want;
            let event = AlertEvent {
                rule,
                severity,
                state: if want {
                    AlertState::Firing
                } else {
                    AlertState::Resolved
                },
                epoch: sample.epoch,
                at_nanos: sample.at_nanos,
                detail,
            };
            self.log.push(event.clone());
            edges.push(event);
        }
        edges
    }

    /// Rules currently firing, in declaration order.
    pub fn active(&self) -> Vec<&'static str> {
        const NAMES: [&str; RULE_COUNT] = [
            RULE_SLO_BURN_RATE,
            RULE_STALE_REPLICA,
            RULE_RETRY_STORM,
            RULE_QUORUM_AT_RISK,
            RULE_PERIOD_OSCILLATION,
            RULE_FLIGHT_RECORDER_DROPS,
        ];
        NAMES
            .iter()
            .zip(self.firing.iter())
            .filter(|(_, &f)| f)
            .map(|(&n, _)| n)
            .collect()
    }

    /// The full ordered alert log.
    pub fn log(&self) -> &[AlertEvent] {
        &self.log
    }

    /// Renders the log as JSONL, one event per line.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.log {
            out.push_str(&event.render_json());
            out.push('\n');
        }
        out
    }
}

fn push_capped(ring: &mut VecDeque<u64>, value: u64, cap: usize) {
    ring.push_back(value);
    while ring.len() > cap.max(1) {
        ring.pop_front();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_sample(epoch: u64) -> AlertSample {
        AlertSample {
            epoch,
            at_nanos: epoch * 2_000_000_000,
            degradation_ppm: 20_000,
            period_nanos: 2_000_000_000,
            retries: 0,
            stale_replicas: Vec::new(),
            serviceable: 3,
            replicas: 3,
            quorum: 2,
            flight_dropped: 0,
        }
    }

    #[test]
    fn quiet_run_fires_nothing() {
        let mut engine = AlertEngine::new(AlertRules::default());
        for epoch in 1..=50 {
            assert!(engine.evaluate(&quiet_sample(epoch)).is_empty());
        }
        assert!(engine.log().is_empty());
        assert!(engine.active().is_empty());
    }

    #[test]
    fn slo_burn_needs_both_windows_over_the_floor() {
        let mut engine = AlertEngine::new(AlertRules::default());
        // One hot epoch: short window spikes but the long window holds.
        let mut s = quiet_sample(1);
        s.degradation_ppm = 900_000;
        engine.evaluate(&s);
        assert!(engine.active().is_empty());
        // Sustained burn lifts both windows past 2 × 50000 ppm.
        let mut fired_at = None;
        for epoch in 2..=10 {
            let mut s = quiet_sample(epoch);
            s.degradation_ppm = 400_000;
            if !engine.evaluate(&s).is_empty() && fired_at.is_none() {
                fired_at = Some(epoch);
            }
        }
        assert_eq!(engine.active(), vec![RULE_SLO_BURN_RATE]);
        assert!(fired_at.is_some());
        // Cooling off resolves it once the short window clears.
        let mut resolved = false;
        for epoch in 11..=20 {
            let edges = engine.evaluate(&quiet_sample(epoch));
            if edges.iter().any(|e| e.state == AlertState::Resolved) {
                resolved = true;
            }
        }
        assert!(resolved);
        assert!(engine.active().is_empty());
    }

    #[test]
    fn stale_replica_and_quorum_fire_and_resolve_in_rule_order() {
        let mut engine = AlertEngine::new(AlertRules::default());
        let mut s = quiet_sample(3);
        s.stale_replicas = vec![2];
        s.serviceable = 2;
        let edges = engine.evaluate(&s);
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].rule, RULE_STALE_REPLICA);
        assert_eq!(edges[0].severity, AlertSeverity::Warning);
        assert_eq!(edges[1].rule, RULE_QUORUM_AT_RISK);
        assert_eq!(edges[1].severity, AlertSeverity::Critical);
        let edges = engine.evaluate(&quiet_sample(4));
        assert_eq!(edges.len(), 2);
        assert!(edges.iter().all(|e| e.state == AlertState::Resolved));
        assert_eq!(engine.log().len(), 4);
    }

    #[test]
    fn quorum_rule_ignores_single_replica_sets() {
        let mut engine = AlertEngine::new(AlertRules::default());
        let mut s = quiet_sample(1);
        s.replicas = 1;
        s.quorum = 1;
        s.serviceable = 1;
        assert!(engine.evaluate(&s).is_empty());
    }

    #[test]
    fn retry_storm_sums_over_the_window() {
        let mut engine = AlertEngine::new(AlertRules::default());
        for epoch in 1..=3 {
            let mut s = quiet_sample(epoch);
            s.retries = 2;
            engine.evaluate(&s);
        }
        assert_eq!(engine.active(), vec![RULE_RETRY_STORM]);
        // Quiet epochs age the window out and resolve the alert.
        for epoch in 4..=8 {
            engine.evaluate(&quiet_sample(epoch));
        }
        assert!(engine.active().is_empty());
    }

    #[test]
    fn period_oscillation_counts_direction_flips() {
        let mut engine = AlertEngine::new(AlertRules::default());
        for epoch in 1..=10 {
            let mut s = quiet_sample(epoch);
            s.period_nanos = if epoch % 2 == 0 {
                2_500_000_000
            } else {
                1_500_000_000
            };
            engine.evaluate(&s);
        }
        assert_eq!(engine.active(), vec![RULE_PERIOD_OSCILLATION]);
    }

    #[test]
    fn sustained_drops_fire_after_the_streak() {
        let mut engine = AlertEngine::new(AlertRules::default());
        let mut dropped = 0;
        for epoch in 1..=3 {
            let mut s = quiet_sample(epoch);
            dropped += 5;
            s.flight_dropped = dropped;
            engine.evaluate(&s);
        }
        assert_eq!(engine.active(), vec![RULE_FLIGHT_RECORDER_DROPS]);
        let mut s = quiet_sample(4);
        s.flight_dropped = dropped; // no fresh drops
        engine.evaluate(&s);
        assert!(engine.active().is_empty());
    }

    #[test]
    fn jsonl_log_is_ordered_and_escaped() {
        let mut engine = AlertEngine::new(AlertRules::default());
        let mut s = quiet_sample(2);
        s.stale_replicas = vec![1];
        engine.evaluate(&s);
        let jsonl = engine.render_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.starts_with(
            "{\"rule\":\"stale_replica\",\"severity\":\"warning\",\"state\":\"firing\",\"epoch\":2,"
        ));
    }
}
