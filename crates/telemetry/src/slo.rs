//! The SLO tracker: continuous evaluation of the degradation target.
//!
//! The paper's control objective is to hold the per-epoch degradation
//! `D_T = t / (t + T)` (Eq. 1) at a configured target `D` while keeping
//! the period under the cap `T_max`. [`SloTracker`] checks both bounds
//! after every checkpoint and turns violations into structured
//! [`SloBreach`] events, so a run (or a live deployment) can tell *when*
//! the dynamic period manager lost the target rather than just averaging
//! it away in the final report.

use serde::Serialize;

/// Which bound a checkpoint violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BreachKind {
    /// Measured `D_T` exceeded the degradation target (with tolerance).
    Degradation,
    /// The period the epoch actually ran with exceeded `T_max`.
    PeriodCap,
}

impl BreachKind {
    /// Stable label for exports.
    pub fn label(self) -> &'static str {
        match self {
            BreachKind::Degradation => "degradation",
            BreachKind::PeriodCap => "period_cap",
        }
    }
}

/// One structured breach event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloBreach {
    /// Checkpoint sequence number that breached.
    pub seq: u64,
    /// Virtual timestamp of the checkpoint (ns).
    pub at_nanos: u64,
    /// Which bound was violated.
    pub kind: BreachKind,
    /// The measured value (degradation ratio, or period in ns).
    pub measured: f64,
    /// The bound it was compared against.
    pub bound: f64,
}

/// Aggregate view of a tracker's history.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloSummary {
    /// Checkpoints evaluated.
    pub evaluated: u64,
    /// Checkpoints that met every bound.
    pub compliant: u64,
    /// Degradation breaches.
    pub degradation_breaches: u64,
    /// Period-cap breaches.
    pub period_cap_breaches: u64,
    /// `compliant / evaluated` (1.0 when nothing was evaluated).
    pub compliance_ratio: f64,
    /// Worst measured degradation seen.
    pub worst_degradation: f64,
}

/// Evaluates every checkpoint against the degradation target and the
/// period cap, retaining the breach events.
#[derive(Debug, Clone)]
pub struct SloTracker {
    d_target: f64,
    tolerance: f64,
    t_max_nanos: Option<u64>,
    evaluated: u64,
    compliant: u64,
    worst_degradation: f64,
    breaches: Vec<SloBreach>,
}

impl SloTracker {
    /// Relative headroom allowed over the target before a checkpoint
    /// counts as a breach. Algorithm 1 corrects *after* an overshoot is
    /// measured, so transient excursions to the target itself are
    /// expected; 10% separates "converging" from "lost the target".
    pub const DEFAULT_TOLERANCE: f64 = 0.10;

    /// A tracker holding `D_T <= d_target * (1 + tolerance)` and, when
    /// `t_max_nanos` is set, `T <= T_max`.
    pub fn new(d_target: f64, t_max_nanos: Option<u64>) -> Self {
        SloTracker {
            d_target,
            tolerance: Self::DEFAULT_TOLERANCE,
            t_max_nanos,
            evaluated: 0,
            compliant: 0,
            worst_degradation: 0.0,
            breaches: Vec::new(),
        }
    }

    /// Overrides the relative tolerance (0.0 = breach exactly at target).
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// The degradation target being held.
    pub fn d_target(&self) -> f64 {
        self.d_target
    }

    /// Evaluates one finished checkpoint epoch: `pause_nanos` is the
    /// measured pause `t`, `period_nanos` the period `T` the epoch ran
    /// with. Returns the breaches this checkpoint produced (also retained
    /// internally).
    pub fn observe(
        &mut self,
        seq: u64,
        at_nanos: u64,
        pause_nanos: u64,
        period_nanos: u64,
    ) -> Vec<SloBreach> {
        self.evaluated += 1;
        let mut new = Vec::new();
        let d_measured = if pause_nanos + period_nanos == 0 {
            0.0
        } else {
            pause_nanos as f64 / (pause_nanos + period_nanos) as f64
        };
        if d_measured > self.worst_degradation {
            self.worst_degradation = d_measured;
        }
        let d_bound = self.d_target * (1.0 + self.tolerance);
        if d_measured > d_bound {
            new.push(SloBreach {
                seq,
                at_nanos,
                kind: BreachKind::Degradation,
                measured: d_measured,
                bound: d_bound,
            });
        }
        if let Some(t_max) = self.t_max_nanos {
            if period_nanos > t_max {
                new.push(SloBreach {
                    seq,
                    at_nanos,
                    kind: BreachKind::PeriodCap,
                    measured: period_nanos as f64,
                    bound: t_max as f64,
                });
            }
        }
        if new.is_empty() {
            self.compliant += 1;
        }
        self.breaches.extend(new.iter().cloned());
        new
    }

    /// Every breach recorded so far, in order.
    pub fn breaches(&self) -> &[SloBreach] {
        &self.breaches
    }

    /// Aggregates the history.
    pub fn summary(&self) -> SloSummary {
        let count = |k: BreachKind| self.breaches.iter().filter(|b| b.kind == k).count() as u64;
        SloSummary {
            evaluated: self.evaluated,
            compliant: self.compliant,
            degradation_breaches: count(BreachKind::Degradation),
            period_cap_breaches: count(BreachKind::PeriodCap),
            compliance_ratio: if self.evaluated == 0 {
                1.0
            } else {
                self.compliant as f64 / self.evaluated as f64
            },
            worst_degradation: self.worst_degradation,
        }
    }

    /// Drops all history (bounds are kept). Used when a run discards its
    /// warmup phase.
    pub fn clear(&mut self) {
        self.evaluated = 0;
        self.compliant = 0;
        self.worst_degradation = 0.0;
        self.breaches.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn compliant_checkpoints_produce_no_breaches() {
        // t = 5ms, T = 95ms → D = 0.05 at a 0.10 target.
        let mut slo = SloTracker::new(0.10, Some(1_000 * MS));
        let breaches = slo.observe(1, 100 * MS, 5 * MS, 95 * MS);
        assert!(breaches.is_empty());
        let s = slo.summary();
        assert_eq!((s.evaluated, s.compliant), (1, 1));
        assert_eq!(s.compliance_ratio, 1.0);
        assert!((s.worst_degradation - 0.05).abs() < 1e-9);
    }

    #[test]
    fn degradation_breach_is_structured() {
        // t = 30ms, T = 70ms → D = 0.30 against a 0.10 target.
        let mut slo = SloTracker::new(0.10, None);
        let breaches = slo.observe(3, 200 * MS, 30 * MS, 70 * MS);
        assert_eq!(breaches.len(), 1);
        let b = &breaches[0];
        assert_eq!(b.kind, BreachKind::Degradation);
        assert_eq!(b.seq, 3);
        assert!((b.measured - 0.30).abs() < 1e-9);
        assert!((b.bound - 0.11).abs() < 1e-9);
        assert_eq!(slo.summary().degradation_breaches, 1);
        assert_eq!(slo.summary().compliant, 0);
    }

    #[test]
    fn period_cap_breach_detected_independently() {
        // Long period keeps degradation tiny but blows through T_max.
        let mut slo = SloTracker::new(0.10, Some(1_000 * MS));
        let breaches = slo.observe(2, 0, MS, 5_000 * MS);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].kind, BreachKind::PeriodCap);
        assert_eq!(breaches[0].measured, (5_000 * MS) as f64);
    }

    #[test]
    fn tolerance_allows_transient_excursions() {
        // D = 0.105 with a 0.10 target: inside the 10% tolerance band.
        let mut slo = SloTracker::new(0.10, None);
        assert!(slo.observe(1, 0, 105, 895).is_empty());
        // Zero tolerance makes the same observation a breach.
        let mut strict = SloTracker::new(0.10, None).with_tolerance(0.0);
        assert_eq!(strict.observe(1, 0, 105, 895).len(), 1);
    }

    #[test]
    fn clear_resets_history() {
        let mut slo = SloTracker::new(0.01, None);
        slo.observe(1, 0, 50, 50);
        assert!(!slo.breaches().is_empty());
        slo.clear();
        assert!(slo.breaches().is_empty());
        assert_eq!(slo.summary().evaluated, 0);
        assert_eq!(slo.summary().compliance_ratio, 1.0);
    }

    #[test]
    fn zero_duration_epoch_counts_as_zero_degradation() {
        let mut slo = SloTracker::new(0.10, None);
        assert!(slo.observe(1, 0, 0, 0).is_empty());
        assert_eq!(slo.summary().worst_degradation, 0.0);
    }
}
