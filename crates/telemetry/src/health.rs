//! Per-replica health state machine.
//!
//! The replication loop already *records* everything the paper's fault
//! model cares about — ack high-water marks in the commit ledger,
//! parked backlog pages, transfer retries — but nothing turns those raw
//! signals into an operator-facing judgement. A [`HealthTracker`] does:
//! each epoch it folds one [`HealthObservation`] per replica into a
//! four-state machine,
//!
//! ```text
//!            lag ≥ lagging_lag or backlog
//!   Healthy ────────────────────────────▶ Lagging
//!      ▲  ▲                                 │
//!      │  │ caught up (lag 0, no backlog)   │ lag ≥ stale_lag
//!      │  └─────────────────────────────────┤
//!      │                                    ▼
//!      │    recover_epochs clean epochs   Stale
//!      └──────────── Recovering ◀───────────┘
//!                        │    lag < stale_lag
//!                        └──▶ back to Stale if lag ≥ stale_lag again
//! ```
//!
//! with hysteresis in both directions: `Lagging` only clears once the
//! replica is fully caught up, and a formerly-stale replica must stay
//! clean for `recover_epochs` consecutive epochs before it counts as
//! `Healthy` again. Driven only by epoch sequence numbers and virtual
//! time, the trajectory is bit-deterministic for a seeded run.

use serde::{Deserialize, Serialize};

/// One replica's health judgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HealthState {
    /// Fully caught up: acked the latest epoch, no parked backlog.
    Healthy,
    /// Behind by a little, or carrying parked backlog pages.
    Lagging,
    /// Behind by at least the stale threshold — the failover planner
    /// should not promote this replica.
    Stale,
    /// Was stale, now catching up; must stay clean for the recovery
    /// window before counting as healthy again.
    Recovering,
}

impl HealthState {
    /// Stable lower-case label for logs and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Lagging => "lagging",
            HealthState::Stale => "stale",
            HealthState::Recovering => "recovering",
        }
    }

    /// True if the replica can serve a failover promotion: every state
    /// except [`HealthState::Stale`].
    pub fn serviceable(&self) -> bool {
        !matches!(self, HealthState::Stale)
    }
}

/// Thresholds for the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthPolicy {
    /// Epochs of ack lag at which a replica counts as lagging.
    pub lagging_lag: u64,
    /// Epochs of ack lag at which a replica counts as stale — align
    /// this with the topology's `stale_epoch_lag`.
    pub stale_lag: u64,
    /// Consecutive clean epochs a recovering replica needs before it is
    /// healthy again.
    pub recover_epochs: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            lagging_lag: 2,
            stale_lag: 8,
            recover_epochs: 2,
        }
    }
}

/// One epoch's raw signals for one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthObservation {
    /// 0-based replica index.
    pub replica: u32,
    /// Ack high-water mark from the commit ledger.
    pub ack_mark: u64,
    /// Epochs between the just-committed sequence and `ack_mark`.
    pub lag_epochs: u64,
    /// Pages parked in the replica's catch-up backlog.
    pub backlog_pages: u64,
    /// Transfer retries charged to this replica this epoch.
    pub retries: u64,
}

/// A state-machine edge: `replica` moved `from → to` at `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthTransition {
    /// 0-based replica index.
    pub replica: u32,
    /// Epoch sequence number of the observation that caused the edge.
    pub epoch: u64,
    /// Virtual timestamp of the observation.
    pub at_nanos: u64,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// The observed ack lag that drove the edge.
    pub lag_epochs: u64,
}

#[derive(Debug, Clone, Copy)]
struct ReplicaHealth {
    state: HealthState,
    clean_streak: u64,
}

impl ReplicaHealth {
    fn step(&mut self, policy: &HealthPolicy, obs: &HealthObservation) -> Option<HealthState> {
        let clean = obs.lag_epochs == 0 && obs.backlog_pages == 0;
        self.clean_streak = if clean { self.clean_streak + 1 } else { 0 };
        let next = match self.state {
            HealthState::Healthy | HealthState::Lagging => {
                if obs.lag_epochs >= policy.stale_lag {
                    HealthState::Stale
                } else if clean {
                    HealthState::Healthy
                } else if self.state == HealthState::Lagging
                    || obs.lag_epochs >= policy.lagging_lag
                    || obs.backlog_pages > 0
                {
                    HealthState::Lagging
                } else {
                    HealthState::Healthy
                }
            }
            HealthState::Stale => {
                if obs.lag_epochs >= policy.stale_lag {
                    HealthState::Stale
                } else if clean && self.clean_streak >= policy.recover_epochs {
                    HealthState::Healthy
                } else {
                    HealthState::Recovering
                }
            }
            HealthState::Recovering => {
                if obs.lag_epochs >= policy.stale_lag {
                    HealthState::Stale
                } else if clean && self.clean_streak >= policy.recover_epochs {
                    HealthState::Healthy
                } else {
                    HealthState::Recovering
                }
            }
        };
        let from = self.state;
        self.state = next;
        (from != next).then_some(from)
    }
}

/// Tracks the health state machine for every replica of a set.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    policy: HealthPolicy,
    replicas: Vec<ReplicaHealth>,
    transitions: Vec<HealthTransition>,
}

impl HealthTracker {
    /// A tracker for `replicas` replicas, all starting healthy.
    pub fn new(replicas: u32, policy: HealthPolicy) -> Self {
        HealthTracker {
            policy,
            replicas: vec![
                ReplicaHealth {
                    state: HealthState::Healthy,
                    clean_streak: 0,
                };
                replicas as usize
            ],
            transitions: Vec::new(),
        }
    }

    /// The policy the tracker was built with.
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Folds one epoch's observations into the machines and returns the
    /// transitions that fired, in replica order. Observations for
    /// unknown replica indices are ignored.
    pub fn observe(
        &mut self,
        epoch: u64,
        at_nanos: u64,
        observations: &[HealthObservation],
    ) -> Vec<HealthTransition> {
        let mut fired = Vec::new();
        for obs in observations {
            let Some(replica) = self.replicas.get_mut(obs.replica as usize) else {
                continue;
            };
            if let Some(from) = replica.step(&self.policy, obs) {
                let transition = HealthTransition {
                    replica: obs.replica,
                    epoch,
                    at_nanos,
                    from,
                    to: replica.state,
                    lag_epochs: obs.lag_epochs,
                };
                self.transitions.push(transition);
                fired.push(transition);
            }
        }
        fired
    }

    /// Current state of one replica.
    pub fn state(&self, replica: u32) -> Option<HealthState> {
        self.replicas.get(replica as usize).map(|r| r.state)
    }

    /// Current state of every replica, in index order.
    pub fn states(&self) -> Vec<HealthState> {
        self.replicas.iter().map(|r| r.state).collect()
    }

    /// Replicas currently [`HealthState::Stale`], in index order.
    pub fn stale_replicas(&self) -> Vec<u32> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.state == HealthState::Stale)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Replicas whose state can serve a failover promotion.
    pub fn serviceable(&self) -> u32 {
        self.replicas
            .iter()
            .filter(|r| r.state.serviceable())
            .count() as u32
    }

    /// Every transition fired so far, in firing order.
    pub fn transitions(&self) -> &[HealthTransition] {
        &self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(replica: u32, lag: u64, backlog: u64) -> HealthObservation {
        HealthObservation {
            replica,
            ack_mark: 0,
            lag_epochs: lag,
            backlog_pages: backlog,
            retries: 0,
        }
    }

    fn policy() -> HealthPolicy {
        HealthPolicy {
            lagging_lag: 2,
            stale_lag: 4,
            recover_epochs: 2,
        }
    }

    #[test]
    fn quiet_replica_stays_healthy_with_no_transitions() {
        let mut t = HealthTracker::new(2, policy());
        for epoch in 1..=20 {
            let fired = t.observe(epoch, epoch * 1_000, &[obs(0, 0, 0), obs(1, 0, 0)]);
            assert!(fired.is_empty());
        }
        assert_eq!(t.states(), vec![HealthState::Healthy; 2]);
        assert!(t.transitions().is_empty());
    }

    #[test]
    fn full_degradation_and_recovery_trajectory() {
        let mut t = HealthTracker::new(1, policy());
        // Lag grows: healthy → lagging at 2 → stale at 4.
        t.observe(1, 1, &[obs(0, 1, 0)]);
        assert_eq!(t.state(0), Some(HealthState::Healthy));
        t.observe(2, 2, &[obs(0, 2, 0)]);
        assert_eq!(t.state(0), Some(HealthState::Lagging));
        t.observe(3, 3, &[obs(0, 4, 0)]);
        assert_eq!(t.state(0), Some(HealthState::Stale));
        assert_eq!(t.stale_replicas(), vec![0]);
        assert_eq!(t.serviceable(), 0);
        // Lag shrinks below the threshold: recovering, not yet healthy.
        t.observe(4, 4, &[obs(0, 2, 0)]);
        assert_eq!(t.state(0), Some(HealthState::Recovering));
        // One clean epoch is not enough (recover_epochs = 2)...
        t.observe(5, 5, &[obs(0, 0, 0)]);
        assert_eq!(t.state(0), Some(HealthState::Recovering));
        // ...two are.
        t.observe(6, 6, &[obs(0, 0, 0)]);
        assert_eq!(t.state(0), Some(HealthState::Healthy));
        let edges: Vec<(HealthState, HealthState)> =
            t.transitions().iter().map(|tr| (tr.from, tr.to)).collect();
        assert_eq!(
            edges,
            vec![
                (HealthState::Healthy, HealthState::Lagging),
                (HealthState::Lagging, HealthState::Stale),
                (HealthState::Stale, HealthState::Recovering),
                (HealthState::Recovering, HealthState::Healthy),
            ]
        );
    }

    #[test]
    fn lagging_clears_only_when_fully_caught_up() {
        let mut t = HealthTracker::new(1, policy());
        t.observe(1, 1, &[obs(0, 2, 0)]);
        assert_eq!(t.state(0), Some(HealthState::Lagging));
        // Lag below the lagging threshold but non-zero: hysteresis holds.
        t.observe(2, 2, &[obs(0, 1, 0)]);
        assert_eq!(t.state(0), Some(HealthState::Lagging));
        t.observe(3, 3, &[obs(0, 0, 0)]);
        assert_eq!(t.state(0), Some(HealthState::Healthy));
    }

    #[test]
    fn backlog_alone_marks_a_replica_lagging() {
        let mut t = HealthTracker::new(1, policy());
        t.observe(1, 1, &[obs(0, 0, 64)]);
        assert_eq!(t.state(0), Some(HealthState::Lagging));
        t.observe(2, 2, &[obs(0, 0, 0)]);
        assert_eq!(t.state(0), Some(HealthState::Healthy));
    }

    #[test]
    fn relapse_during_recovery_goes_back_to_stale() {
        let mut t = HealthTracker::new(1, policy());
        t.observe(1, 1, &[obs(0, 4, 0)]);
        assert_eq!(t.state(0), Some(HealthState::Stale));
        t.observe(2, 2, &[obs(0, 1, 0)]);
        assert_eq!(t.state(0), Some(HealthState::Recovering));
        t.observe(3, 3, &[obs(0, 5, 0)]);
        assert_eq!(t.state(0), Some(HealthState::Stale));
    }

    #[test]
    fn same_observations_replay_identically() {
        let feed: Vec<Vec<HealthObservation>> = (1..=30)
            .map(|e| vec![obs(0, e % 7, 0), obs(1, (e * 3) % 11, e % 2 * 10)])
            .collect();
        let mut a = HealthTracker::new(2, policy());
        let mut b = HealthTracker::new(2, policy());
        for (i, observations) in feed.iter().enumerate() {
            let epoch = i as u64 + 1;
            a.observe(epoch, epoch * 500, observations);
            b.observe(epoch, epoch * 500, observations);
        }
        assert_eq!(a.transitions(), b.transitions());
        assert_eq!(a.states(), b.states());
    }
}
