//! Exporters: Prometheus text exposition and a JSON document, both
//! rendered by hand from a [`RegistrySnapshot`] (the vendored `serde` is
//! a no-op marker stand-in, so all real encoding in this workspace is
//! hand-rolled).

use std::fmt::Write as _;

use crate::metrics::{
    bucket_upper_bound, HistogramSnapshot, MetricValue, RegistrySnapshot, HISTOGRAM_BUCKETS,
};

/// Quantiles surfaced for every histogram in the JSON export.
pub const EXPORT_QUANTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a float the way the exports need it: integral values without a
/// trailing `.0` would collide with integer fields, so floats always keep
/// a decimal point (`2` → `2.0`), except non-finite values which render as
/// Prometheus-style `NaN`/`+Inf`/`-Inf`.
fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn series_name(name: &str, suffix: &str, label: &Option<(String, String)>) -> String {
    match label {
        None => format!("{name}{suffix}"),
        Some((k, v)) => format!("{name}{suffix}{{{k}=\"{v}\"}}"),
    }
}

fn bucket_series_name(name: &str, label: &Option<(String, String)>, le: &str) -> String {
    match label {
        None => format!("{name}_bucket{{le=\"{le}\"}}"),
        Some((k, v)) => format!("{name}_bucket{{{k}=\"{v}\",le=\"{le}\"}}"),
    }
}

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` headers per metric family,
/// cumulative `_bucket{le="..."}` series up to the histogram's highest
/// populated bucket plus `+Inf`, and `_sum` / `_count` series.
pub fn prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for metric in &snapshot.metrics {
        // Labelled variants of one family share a single header block.
        if last_family != Some(metric.name.as_str()) {
            let kind = match metric.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", metric.name, metric.help);
            let _ = writeln!(out, "# TYPE {} {}", metric.name, kind);
            last_family = Some(metric.name.as_str());
        }
        match &metric.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{} {v}", series_name(&metric.name, "", &metric.label));
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{} {}",
                    series_name(&metric.name, "", &metric.label),
                    render_f64(*v)
                );
            }
            MetricValue::Histogram(h) => {
                let highest = highest_populated_bucket(h);
                let mut cumulative = 0u64;
                for (b, &n) in h.buckets.iter().enumerate().take(highest + 1) {
                    cumulative += n;
                    let _ = writeln!(
                        out,
                        "{} {cumulative}",
                        bucket_series_name(&metric.name, &metric.label, &le_bound(b))
                    );
                }
                let _ = writeln!(
                    out,
                    "{} {}",
                    bucket_series_name(&metric.name, &metric.label, "+Inf"),
                    h.count
                );
                let _ = writeln!(
                    out,
                    "{} {}",
                    series_name(&metric.name, "_sum", &metric.label),
                    h.sum
                );
                let _ = writeln!(
                    out,
                    "{} {}",
                    series_name(&metric.name, "_count", &metric.label),
                    h.count
                );
            }
        }
    }
    out
}

/// Index of the highest non-empty bucket (0 for an empty histogram), so
/// the exposition stops emitting `le` series once they stop adding
/// information.
fn highest_populated_bucket(h: &HistogramSnapshot) -> usize {
    h.buckets
        .iter()
        .rposition(|&n| n > 0)
        .unwrap_or(0)
        .min(HISTOGRAM_BUCKETS - 1)
}

fn le_bound(bucket: usize) -> String {
    if bucket >= 64 {
        "+Inf".to_string()
    } else {
        bucket_upper_bound(bucket).to_string()
    }
}

/// Renders a snapshot as a JSON document: one entry per metric with its
/// kind, label, and value; histograms carry count/sum/min/max/mean and
/// the [`EXPORT_QUANTILES`].
pub fn json_snapshot(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::from("{\"metrics\":[");
    for (i, metric) in snapshot.metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":\"{}\"", json_escape(&metric.name));
        if let Some((k, v)) = &metric.label {
            let _ = write!(
                out,
                ",\"label\":{{\"{}\":\"{}\"}}",
                json_escape(k),
                json_escape(v)
            );
        }
        match &metric.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, ",\"kind\":\"counter\",\"value\":{v}}}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, ",\"kind\":\"gauge\",\"value\":{}}}", render_f64(*v));
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    ",\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}",
                    h.count,
                    h.sum,
                    if h.count == 0 { 0 } else { h.min },
                    h.max,
                    render_f64(h.mean().unwrap_or(0.0)),
                );
                for (label, q) in EXPORT_QUANTILES {
                    let _ = write!(
                        out,
                        ",\"{label}\":{}",
                        render_f64(h.quantile(q).unwrap_or(0.0))
                    );
                }
                out.push('}');
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter("here_checkpoints_total", "Checkpoints completed")
            .add(3);
        reg.gauge("here_period_seconds", "Current period").set(0.25);
        let h = reg.histogram("here_pause_nanos", "Pause per checkpoint");
        h.observe(1_000);
        h.observe(2_000);
        h.observe(500_000);
        // Per-replica families, as the health plane registers them.
        for (replica, lag) in [("0", 0.0), ("1", 3.0)] {
            reg.gauge_with_label(
                "here_replica_lag_epochs",
                "Ack lag per replica",
                Some(("replica", replica)),
            )
            .set(lag);
        }
        reg.counter_with_label(
            "here_replica_retries_total",
            "Transfer retries per replica",
            Some(("replica", "1")),
        )
        .add(2);
        reg
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = prometheus(&sample_registry().snapshot());
        assert!(text.contains("# HELP here_checkpoints_total Checkpoints completed\n"));
        assert!(text.contains("# TYPE here_checkpoints_total counter\n"));
        assert!(text.contains("here_checkpoints_total 3\n"));
        assert!(text.contains("# TYPE here_period_seconds gauge\n"));
        assert!(text.contains("here_period_seconds 0.25\n"));
        assert!(text.contains("# TYPE here_pause_nanos histogram\n"));
        // 1000 and 2000 land in buckets le=1023 and le=2047; 500000 in
        // le=524287. Cumulative counts must be monotone.
        assert!(text.contains("here_pause_nanos_bucket{le=\"1023\"} 1\n"));
        assert!(text.contains("here_pause_nanos_bucket{le=\"2047\"} 2\n"));
        assert!(text.contains("here_pause_nanos_bucket{le=\"524287\"} 3\n"));
        assert!(text.contains("here_pause_nanos_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("here_pause_nanos_sum 503000\n"));
        assert!(text.contains("here_pause_nanos_count 3\n"));
        // Exposition stops at the highest populated bucket.
        assert!(!text.contains("le=\"1048575\""));
        // Replica-labelled families: one header block, one series per
        // replica label.
        assert_eq!(
            text.matches("# TYPE here_replica_lag_epochs gauge").count(),
            1
        );
        assert!(text.contains("here_replica_lag_epochs{replica=\"0\"} 0.0\n"));
        assert!(text.contains("here_replica_lag_epochs{replica=\"1\"} 3.0\n"));
        assert!(text.contains("here_replica_retries_total{replica=\"1\"} 2\n"));
    }

    #[test]
    fn labelled_family_emits_one_header_block() {
        let mut reg = MetricsRegistry::new();
        reg.histogram_with_label("stage_nanos", "per-stage", Some(("stage", "harvest")))
            .observe(10);
        reg.histogram_with_label("stage_nanos", "per-stage", Some(("stage", "pause")))
            .observe(20);
        let text = prometheus(&reg.snapshot());
        assert_eq!(text.matches("# TYPE stage_nanos histogram").count(), 1);
        assert!(text.contains("stage_nanos_bucket{stage=\"harvest\",le=\"15\"} 1\n"));
        assert!(text.contains("stage_nanos_count{stage=\"pause\"} 1\n"));
    }

    #[test]
    fn json_snapshot_shape() {
        let json = json_snapshot(&sample_registry().snapshot());
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.contains(r#"{"name":"here_checkpoints_total","kind":"counter","value":3}"#));
        assert!(json.contains(r#""kind":"gauge","value":0.25"#));
        assert!(
            json.contains(r#""kind":"histogram","count":3,"sum":503000,"min":1000,"max":500000"#)
        );
        assert!(json.contains(r#""p50":"#));
        assert!(json.contains(r#""p999":"#));
        assert!(json.contains(
            r#"{"name":"here_replica_lag_epochs","label":{"replica":"1"},"kind":"gauge","value":3.0}"#
        ));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn render_f64_keeps_floats_distinguishable() {
        assert_eq!(render_f64(2.0), "2.0");
        assert_eq!(render_f64(0.25), "0.25");
        assert_eq!(render_f64(f64::NAN), "NaN");
        assert_eq!(render_f64(f64::INFINITY), "+Inf");
    }

    #[test]
    fn empty_registry_renders_empty_documents() {
        let snap = MetricsRegistry::new().snapshot();
        assert_eq!(prometheus(&snap), "");
        assert_eq!(json_snapshot(&snap), "{\"metrics\":[]}");
    }
}
