//! Chrome trace-event JSON and compact JSONL renderers for [`Span`]
//! records, hand-rolled like every exporter in this workspace.
//!
//! The Chrome document follows the trace-event format consumed by
//! `chrome://tracing` and Perfetto: one `"X"` (complete) event per span
//! with microsecond `ts`/`dur`, `"M"` metadata events naming the
//! process/thread rows derived from [`Track`], and `"s"`/`"f"` flow
//! events drawing the cross-host arrow from each epoch's primary
//! `transfer` span to the replica-side span that shares its epoch id.

use std::fmt::Write as _;

use crate::export::json_escape;
use crate::span::{attr_value_json, Span, Track};

/// Microseconds with nanosecond precision, as Chrome's `ts`/`dur` fields
/// accept fractional values.
fn micros(nanos: u64) -> String {
    let whole = nanos / 1_000;
    let frac = nanos % 1_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        format!("{whole}.{frac:03}")
    }
}

fn push_event_common(out: &mut String, span: &Span) {
    let _ = write!(
        out,
        "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{}",
        json_escape(span.name),
        json_escape(span.category),
        span.track.pid(),
        span.track.tid()
    );
}

fn push_args(out: &mut String, span: &Span) {
    out.push_str(",\"args\":{");
    let mut first = true;
    let mut push_sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
    };
    if let Some(epoch) = span.epoch {
        push_sep(out);
        let _ = write!(out, "\"epoch\":{epoch}");
    }
    if let Some(wall) = span.wall_nanos {
        push_sep(out);
        let _ = write!(out, "\"wall_nanos\":{wall}");
    }
    for (key, value) in &span.attrs {
        push_sep(out);
        let _ = write!(out, "\"{}\":{}", json_escape(key), attr_value_json(value));
    }
    out.push('}');
}

/// Renders spans as a Chrome trace-event JSON document.
pub fn chrome_trace(spans: &[Span]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
    };

    // Metadata rows: name each process once and each thread once, in
    // first-appearance order so the document is deterministic.
    let mut seen_pids: Vec<u64> = Vec::new();
    let mut seen_tids: Vec<(u64, u64)> = Vec::new();
    for span in spans {
        let track = span.track;
        if !seen_pids.contains(&track.pid()) {
            seen_pids.push(track.pid());
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                track.pid(),
                json_escape(track.process_name())
            );
        }
        if !seen_tids.contains(&(track.pid(), track.tid())) {
            seen_tids.push((track.pid(), track.tid()));
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                track.pid(),
                track.tid(),
                json_escape(&track.thread_name())
            );
        }
    }

    for span in spans {
        sep(&mut out);
        out.push('{');
        push_event_common(&mut out, span);
        let _ = write!(
            out,
            ",\"ph\":\"X\",\"ts\":{},\"dur\":{}",
            micros(span.start_nanos),
            micros(span.duration_nanos)
        );
        push_args(&mut out, span);
        out.push('}');
    }

    // Flow arrows across the simulated wire: transfer on the primary →
    // the replica-side span sharing the epoch id.
    for span in spans {
        if !matches!(span.track, Track::Replica(_)) {
            continue;
        }
        let Some(epoch) = span.epoch else { continue };
        let Some(source) = spans.iter().find(|s| {
            !matches!(s.track, Track::Replica(_)) && s.epoch == Some(epoch) && s.name == "transfer"
        }) else {
            continue;
        };
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"wire\",\"cat\":\"wire\",\"ph\":\"s\",\"id\":{epoch},\
             \"pid\":{},\"tid\":{},\"ts\":{}}}",
            source.track.pid(),
            source.track.tid(),
            micros(source.start_nanos)
        );
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"wire\",\"cat\":\"wire\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{epoch},\
             \"pid\":{},\"tid\":{},\"ts\":{}}}",
            span.track.pid(),
            span.track.tid(),
            micros(span.end_nanos())
        );
    }

    out.push_str("]}");
    out
}

/// Renders spans as compact JSONL: one self-contained JSON object per
/// line, in emission order, for line-oriented tooling.
pub fn spans_jsonl(spans: &[Span]) -> String {
    let mut out = String::new();
    for span in spans {
        out.push('{');
        let _ = write!(out, "\"id\":{}", span.id.get());
        match span.parent {
            Some(parent) => {
                let _ = write!(out, ",\"parent\":{}", parent.get());
            }
            None => out.push_str(",\"parent\":null"),
        }
        out.push(',');
        push_event_common(&mut out, span);
        match span.epoch {
            Some(epoch) => {
                let _ = write!(out, ",\"epoch\":{epoch}");
            }
            None => out.push_str(",\"epoch\":null"),
        }
        let _ = write!(
            out,
            ",\"start_nanos\":{},\"duration_nanos\":{}",
            span.start_nanos, span.duration_nanos
        );
        match span.wall_nanos {
            Some(wall) => {
                let _ = write!(out, ",\"wall_nanos\":{wall}");
            }
            None => out.push_str(",\"wall_nanos\":null"),
        }
        out.push_str(",\"attrs\":{");
        for (i, (key, value)) in span.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(key), attr_value_json(value));
        }
        out.push_str("}}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanDraft, SpanRecorder};

    fn fixture() -> Vec<Span> {
        let mut rec = SpanRecorder::new();
        let root = rec.open(SpanDraft::new("epoch", "epoch", Track::Primary, 1_000).epoch(1));
        let xfer = rec.push(
            SpanDraft::new("transfer", "stage", Track::Primary, 1_500)
                .lasting(750)
                .epoch(1)
                .child_of(root)
                .attr_u64("bytes", 4_096),
        );
        let _ = xfer;
        rec.push(
            SpanDraft::new("decode_restore", "wire", Track::Replica(0), 1_500)
                .lasting(750)
                .epoch(1)
                .wall(123),
        );
        rec.close(root, 3_000);
        rec.into_spans()
    }

    #[test]
    fn chrome_trace_has_events_metadata_and_flows() {
        let doc = chrome_trace(&fixture());
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(doc.ends_with("]}"));
        assert!(doc.contains("\"ph\":\"M\""));
        assert!(doc.contains("\"args\":{\"name\":\"primary\"}"));
        assert!(doc.contains("\"args\":{\"name\":\"replica\"}"));
        // transfer: 1500 ns = 1.5 µs
        assert!(doc.contains("\"ph\":\"X\",\"ts\":1.500,\"dur\":0.750"));
        assert!(doc.contains("\"ph\":\"s\",\"id\":1"));
        assert!(doc.contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":1"));
        assert!(doc.contains("\"wall_nanos\":123"));
        assert!(doc.contains("\"bytes\":4096"));
    }

    #[test]
    fn micros_renders_fractional_nanoseconds() {
        assert_eq!(micros(0), "0");
        assert_eq!(micros(1_000), "1");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(999), "0.999");
    }

    #[test]
    fn jsonl_one_object_per_line_with_nulls() {
        let lines = spans_jsonl(&fixture());
        let rows: Vec<&str> = lines.lines().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].contains("\"parent\":null"));
        assert!(rows[1].contains("\"parent\":0"));
        assert!(rows[2].contains("\"wall_nanos\":123"));
        for row in rows {
            assert!(row.starts_with('{') && row.ends_with('}'));
        }
    }

    #[test]
    fn replica_span_without_transfer_source_gets_no_flow() {
        let mut rec = SpanRecorder::new();
        rec.push(
            SpanDraft::new("decode_restore", "wire", Track::Replica(0), 10)
                .lasting(5)
                .epoch(42),
        );
        let doc = chrome_trace(rec.spans());
        assert!(!doc.contains("\"ph\":\"s\""));
        assert!(!doc.contains("\"ph\":\"f\""));
    }
}
