//! Causal spans: the building blocks of per-epoch trace trees.
//!
//! A [`Span`] is one named interval of work on one logical track (primary
//! VM, one of its encode lanes, the replica, or the failover controller),
//! with a parent link, an optional checkpoint-epoch tag, a virtual-time
//! interval, and an optional measured wall-clock duration from the real
//! `Instant` probes. Spans are recorded through a [`SpanRecorder`] and
//! assembled into a validated [`TraceTree`] for analysis; the
//! [`chrome`](crate::chrome) module renders the same records as Chrome
//! trace-event JSON.
//!
//! Replica-side spans are not children of the primary epoch root — they
//! run on a different simulated host — so the cross-host edge is carried
//! by the shared epoch id instead of a parent link. [`TraceTree`]
//! validation checks both kinds of edge: parent links must form a forest
//! whose children nest inside their parents, and every replica span's
//! epoch must resolve to a primary epoch root.

use serde::{Deserialize, Serialize};

use crate::export::json_escape;

/// Identifier of one recorded span, unique within its [`SpanRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw id value.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// The logical execution track a span belongs to. Tracks map onto Chrome
/// trace process/thread rows: the primary VM and its encode lanes share a
/// process, the replica is a second process, and the failover controller
/// a third.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Track {
    /// The primary host's checkpoint pipeline.
    Primary,
    /// One parallel encode lane on the primary (0-based lane index).
    PrimaryLane(u32),
    /// A replica host (decode/restore, post-failover execution), by
    /// 0-based replica index within the session's replica set.
    Replica(u32),
    /// The failover controller / fault-injection timeline.
    Controller,
}

impl Track {
    /// Chrome trace process id for this track. Replica 0 keeps the
    /// historical pid 2; additional replicas are laid out past the
    /// controller (pid `3 + index`) so every replica gets its own
    /// process row.
    pub fn pid(self) -> u64 {
        match self {
            Track::Primary | Track::PrimaryLane(_) => 1,
            Track::Replica(0) => 2,
            Track::Replica(index) => 3 + u64::from(index),
            Track::Controller => 3,
        }
    }

    /// Chrome trace thread id for this track.
    pub fn tid(self) -> u64 {
        match self {
            Track::Primary | Track::Replica(_) | Track::Controller => 0,
            Track::PrimaryLane(lane) => 1 + u64::from(lane),
        }
    }

    /// Human-readable process name for the trace viewer.
    pub fn process_name(self) -> &'static str {
        match self {
            Track::Primary | Track::PrimaryLane(_) => "primary",
            Track::Replica(_) => "replica",
            Track::Controller => "controller",
        }
    }

    /// Human-readable thread name for the trace viewer.
    pub fn thread_name(self) -> String {
        match self {
            Track::Primary => "pipeline".to_string(),
            Track::PrimaryLane(lane) => format!("encode lane {lane}"),
            Track::Replica(_) => "apply".to_string(),
            Track::Controller => "failover".to_string(),
        }
    }
}

/// A typed attribute value attached to a span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// Unsigned integer attribute (counts, byte sizes, sequence numbers).
    U64(u64),
    /// Floating-point attribute (ratios, model residuals).
    F64(f64),
    /// Static string attribute (labels, phase names).
    Str(&'static str),
}

/// One recorded interval of work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Unique id within the recording session.
    pub id: SpanId,
    /// Parent span, when this span nests inside another on the same host.
    pub parent: Option<SpanId>,
    /// What the span measures (stage label, `"epoch"`, `"encode_lane"`…).
    pub name: &'static str,
    /// Coarse grouping used by the analyzer and the Chrome `cat` field.
    pub category: &'static str,
    /// Which logical track the work ran on.
    pub track: Track,
    /// Checkpoint epoch (sequence number) this span belongs to, if any.
    /// Replica-side spans are linked to the primary's epoch root through
    /// this id rather than a parent link.
    pub epoch: Option<u64>,
    /// Virtual-time start, nanoseconds from the report origin.
    pub start_nanos: u64,
    /// Virtual-time duration in nanoseconds.
    pub duration_nanos: u64,
    /// Measured wall-clock duration from a real `Instant` probe, when the
    /// span wraps actually-executed work.
    pub wall_nanos: Option<u64>,
    /// Additional key/value attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// Virtual-time end of the span (saturating).
    pub fn end_nanos(&self) -> u64 {
        self.start_nanos.saturating_add(self.duration_nanos)
    }
}

/// A span under construction: everything but the id, which the recorder
/// assigns. Built with a small chaining API so emission sites stay
/// one-expression.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanDraft {
    /// See [`Span::name`].
    pub name: &'static str,
    /// See [`Span::category`].
    pub category: &'static str,
    /// See [`Span::track`].
    pub track: Track,
    /// See [`Span::parent`].
    pub parent: Option<SpanId>,
    /// See [`Span::epoch`].
    pub epoch: Option<u64>,
    /// See [`Span::start_nanos`].
    pub start_nanos: u64,
    /// See [`Span::duration_nanos`].
    pub duration_nanos: u64,
    /// See [`Span::wall_nanos`].
    pub wall_nanos: Option<u64>,
    /// See [`Span::attrs`].
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanDraft {
    /// Starts a draft with zero duration and no links or attributes.
    pub fn new(name: &'static str, category: &'static str, track: Track, start_nanos: u64) -> Self {
        SpanDraft {
            name,
            category,
            track,
            parent: None,
            epoch: None,
            start_nanos,
            duration_nanos: 0,
            wall_nanos: None,
            attrs: Vec::new(),
        }
    }

    /// Sets the virtual duration.
    pub fn lasting(mut self, duration_nanos: u64) -> Self {
        self.duration_nanos = duration_nanos;
        self
    }

    /// Links the span under a parent.
    pub fn child_of(mut self, parent: SpanId) -> Self {
        self.parent = Some(parent);
        self
    }

    /// Tags the span with a checkpoint epoch.
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Attaches a measured wall-clock duration.
    pub fn wall(mut self, wall_nanos: u64) -> Self {
        self.wall_nanos = Some(wall_nanos);
        self
    }

    /// Attaches an unsigned-integer attribute.
    pub fn attr_u64(mut self, key: &'static str, value: u64) -> Self {
        self.attrs.push((key, AttrValue::U64(value)));
        self
    }

    /// Attaches a floating-point attribute.
    pub fn attr_f64(mut self, key: &'static str, value: f64) -> Self {
        self.attrs.push((key, AttrValue::F64(value)));
        self
    }

    /// Attaches a static-string attribute.
    pub fn attr_str(mut self, key: &'static str, value: &'static str) -> Self {
        self.attrs.push((key, AttrValue::Str(value)));
        self
    }
}

/// Collects spans for one run. Ids are assigned sequentially; spans can
/// be pushed complete (duration known up front, the common case in the
/// virtual-time simulator) or opened and closed later (the epoch root,
/// whose extent is only known at `Resume`).
#[derive(Debug, Default)]
pub struct SpanRecorder {
    spans: Vec<Span>,
    next_id: u64,
}

impl SpanRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        SpanRecorder::default()
    }

    /// Records a complete span and returns its id.
    pub fn push(&mut self, draft: SpanDraft) -> SpanId {
        let id = SpanId(self.next_id);
        self.next_id += 1;
        self.spans.push(Span {
            id,
            parent: draft.parent,
            name: draft.name,
            category: draft.category,
            track: draft.track,
            epoch: draft.epoch,
            start_nanos: draft.start_nanos,
            duration_nanos: draft.duration_nanos,
            wall_nanos: draft.wall_nanos,
            attrs: draft.attrs,
        });
        id
    }

    /// Opens a span whose end is not yet known (recorded with zero
    /// duration until [`SpanRecorder::close`] is called).
    pub fn open(&mut self, draft: SpanDraft) -> SpanId {
        self.push(draft)
    }

    /// Closes a previously opened span at `end_nanos` (saturating if the
    /// end precedes the recorded start). Unknown ids are ignored.
    pub fn close(&mut self, id: SpanId, end_nanos: u64) {
        if let Some(span) = self.spans.iter_mut().find(|s| s.id == id) {
            span.duration_nanos = end_nanos.saturating_sub(span.start_nanos);
        }
    }

    /// The spans recorded so far, in emission order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Drops all recorded spans (used when a warmup phase resets the
    /// measurement window) without resetting id assignment.
    pub fn clear(&mut self) {
        self.spans.clear();
    }

    /// Consumes the recorder, yielding the spans.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }
}

/// Why a span slice could not be assembled into a [`TraceTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Two spans share an id.
    DuplicateId(SpanId),
    /// A span names a parent that is not in the slice.
    UnknownParent {
        /// The span with the dangling link.
        span: SpanId,
        /// The missing parent id.
        parent: SpanId,
    },
    /// Parent links form a cycle reachable from this span.
    Cycle(SpanId),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::DuplicateId(id) => write!(f, "duplicate span id {}", id.get()),
            TreeError::UnknownParent { span, parent } => {
                write!(
                    f,
                    "span {} links to unknown parent {}",
                    span.get(),
                    parent.get()
                )
            }
            TreeError::Cycle(id) => write!(f, "parent links cycle through span {}", id.get()),
        }
    }
}

/// A nesting violation: a child span whose virtual interval is not
/// contained in its parent's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestingViolation {
    /// The offending child.
    pub child: SpanId,
    /// Its parent.
    pub parent: SpanId,
}

/// A validated forest of spans indexed for traversal: id lookup,
/// children lists, roots, and per-epoch grouping.
#[derive(Debug, Clone)]
pub struct TraceTree {
    spans: Vec<Span>,
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
}

impl TraceTree {
    /// Builds the tree, rejecting duplicate ids, dangling parent links,
    /// and parent cycles.
    pub fn build(spans: &[Span]) -> Result<TraceTree, TreeError> {
        let mut index = std::collections::HashMap::with_capacity(spans.len());
        for (i, span) in spans.iter().enumerate() {
            if index.insert(span.id, i).is_some() {
                return Err(TreeError::DuplicateId(span.id));
            }
        }
        let mut children = vec![Vec::new(); spans.len()];
        let mut roots = Vec::new();
        for (i, span) in spans.iter().enumerate() {
            match span.parent {
                None => roots.push(i),
                Some(parent) => match index.get(&parent) {
                    Some(&p) => children[p].push(i),
                    None => {
                        return Err(TreeError::UnknownParent {
                            span: span.id,
                            parent,
                        })
                    }
                },
            }
        }
        // A parent chain longer than the span count must revisit a node.
        for span in spans {
            let mut cursor = span.parent;
            let mut steps = 0usize;
            while let Some(parent) = cursor {
                steps += 1;
                if steps > spans.len() {
                    return Err(TreeError::Cycle(span.id));
                }
                cursor = spans[index[&parent]].parent;
            }
        }
        Ok(TraceTree {
            spans: spans.to_vec(),
            children,
            roots,
        })
    }

    /// All spans, in the original emission order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans with no parent, in emission order.
    pub fn roots(&self) -> impl Iterator<Item = &Span> {
        self.roots.iter().map(move |&i| &self.spans[i])
    }

    /// Direct children of `id`, in emission order. Unknown ids yield an
    /// empty iterator.
    pub fn children_of(&self, id: SpanId) -> impl Iterator<Item = &Span> {
        let indices = self
            .spans
            .iter()
            .position(|s| s.id == id)
            .map(|i| self.children[i].as_slice())
            .unwrap_or(&[]);
        indices.iter().map(move |&i| &self.spans[i])
    }

    /// Every parent/child pair whose child interval escapes the parent's
    /// virtual interval. An empty result is the nesting invariant.
    pub fn nesting_violations(&self) -> Vec<NestingViolation> {
        let mut out = Vec::new();
        for (p, kids) in self.children.iter().enumerate() {
            let parent = &self.spans[p];
            for &c in kids {
                let child = &self.spans[c];
                if child.start_nanos < parent.start_nanos || child.end_nanos() > parent.end_nanos()
                {
                    out.push(NestingViolation {
                        child: child.id,
                        parent: parent.id,
                    });
                }
            }
        }
        out
    }

    /// Root spans of checkpoint epochs (category `"epoch"`), in order.
    pub fn epoch_roots(&self) -> impl Iterator<Item = &Span> {
        self.roots().filter(|s| s.category == "epoch")
    }

    /// Replica-track spans whose epoch id does not resolve to a primary
    /// epoch root — dangling cross-host links. An empty result is the
    /// link-resolution invariant.
    pub fn unresolved_links(&self) -> Vec<SpanId> {
        let epochs: std::collections::HashSet<u64> =
            self.epoch_roots().filter_map(|s| s.epoch).collect();
        self.spans
            .iter()
            .filter(|s| matches!(s.track, Track::Replica(_)))
            .filter(|s| match s.epoch {
                Some(e) => !epochs.contains(&e),
                None => true,
            })
            .map(|s| s.id)
            .collect()
    }
}

/// Renders a span attribute value as a JSON fragment. Non-finite floats
/// are rendered as quoted strings so the document stays valid JSON.
pub(crate) fn attr_value_json(value: &AttrValue) -> String {
    match value {
        AttrValue::U64(v) => v.to_string(),
        AttrValue::F64(v) if v.is_finite() => {
            if *v == v.trunc() && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        AttrValue::F64(v) => format!("\"{v}\""),
        AttrValue::Str(s) => format!("\"{}\"", json_escape(s)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draft(name: &'static str, start: u64, dur: u64) -> SpanDraft {
        SpanDraft::new(name, "stage", Track::Primary, start).lasting(dur)
    }

    #[test]
    fn recorder_assigns_sequential_ids_and_closes_open_spans() {
        let mut rec = SpanRecorder::new();
        let root = rec.open(SpanDraft::new("epoch", "epoch", Track::Primary, 100).epoch(1));
        let child = rec.push(draft("pause", 100, 40).child_of(root));
        assert_eq!(root.get(), 0);
        assert_eq!(child.get(), 1);
        rec.close(root, 200);
        assert_eq!(rec.spans()[0].duration_nanos, 100);
        assert_eq!(rec.spans()[1].parent, Some(root));
    }

    #[test]
    fn close_saturates_and_ignores_unknown_ids() {
        let mut rec = SpanRecorder::new();
        let id = rec.open(draft("x", 500, 0));
        rec.close(id, 400);
        assert_eq!(rec.spans()[0].duration_nanos, 0);
        rec.close(SpanId(99), 1_000); // no panic
    }

    #[test]
    fn tree_build_indexes_children_and_roots() {
        let mut rec = SpanRecorder::new();
        let root = rec.open(SpanDraft::new("epoch", "epoch", Track::Primary, 0).epoch(7));
        let a = rec.push(draft("pause", 0, 10).child_of(root).epoch(7));
        let _lane = rec.push(
            SpanDraft::new("encode_lane", "lane", Track::PrimaryLane(0), 2)
                .lasting(5)
                .child_of(a),
        );
        rec.close(root, 40);
        let tree = TraceTree::build(rec.spans()).expect("valid tree");
        assert_eq!(tree.roots().count(), 1);
        assert_eq!(tree.children_of(root).count(), 1);
        assert_eq!(tree.children_of(a).count(), 1);
        assert_eq!(tree.epoch_roots().next().unwrap().epoch, Some(7));
        assert!(tree.nesting_violations().is_empty());
    }

    #[test]
    fn tree_build_rejects_dangling_parent() {
        let mut rec = SpanRecorder::new();
        rec.push(draft("orphan", 0, 1).child_of(SpanId(42)));
        let err = TraceTree::build(rec.spans()).unwrap_err();
        assert!(matches!(err, TreeError::UnknownParent { .. }));
    }

    #[test]
    fn tree_build_rejects_duplicate_ids_and_cycles() {
        let span = Span {
            id: SpanId(0),
            parent: None,
            name: "a",
            category: "stage",
            track: Track::Primary,
            epoch: None,
            start_nanos: 0,
            duration_nanos: 1,
            wall_nanos: None,
            attrs: Vec::new(),
        };
        let dup = vec![span.clone(), span.clone()];
        assert!(matches!(
            TraceTree::build(&dup),
            Err(TreeError::DuplicateId(_))
        ));
        let mut a = span.clone();
        a.parent = Some(SpanId(1));
        let mut b = span;
        b.id = SpanId(1);
        b.parent = Some(SpanId(0));
        assert!(matches!(
            TraceTree::build(&[a, b]),
            Err(TreeError::Cycle(_))
        ));
    }

    #[test]
    fn nesting_violation_detected_when_child_escapes_parent() {
        let mut rec = SpanRecorder::new();
        let root = rec.push(draft("epoch", 100, 50));
        rec.push(draft("late", 140, 20).child_of(root));
        let tree = TraceTree::build(rec.spans()).expect("valid links");
        let violations = tree.nesting_violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].parent, root);
    }

    #[test]
    fn unresolved_links_flag_replica_spans_without_epoch_root() {
        let mut rec = SpanRecorder::new();
        let root = rec.open(SpanDraft::new("epoch", "epoch", Track::Primary, 0).epoch(3));
        rec.close(root, 100);
        rec.push(
            SpanDraft::new("decode_restore", "wire", Track::Replica(0), 50)
                .lasting(10)
                .epoch(3),
        );
        let dangling = rec.push(
            SpanDraft::new("decode_restore", "wire", Track::Replica(1), 60)
                .lasting(10)
                .epoch(9),
        );
        let tree = TraceTree::build(rec.spans()).unwrap();
        assert_eq!(tree.unresolved_links(), vec![dangling]);
    }

    #[test]
    fn attr_values_render_as_valid_json_fragments() {
        assert_eq!(attr_value_json(&AttrValue::U64(3)), "3");
        assert_eq!(attr_value_json(&AttrValue::F64(2.0)), "2.0");
        assert_eq!(attr_value_json(&AttrValue::F64(0.125)), "0.125");
        assert_eq!(attr_value_json(&AttrValue::F64(f64::NAN)), "\"NaN\"");
        assert_eq!(attr_value_json(&AttrValue::Str("a\"b")), "\"a\\\"b\"");
    }
}
