//! The metrics registry: counters, gauges, log2-bucketed histograms.
//!
//! Metrics are **registered once** (allocating their name, help text and
//! storage) and then updated from hot paths through cloneable handles
//! backed by atomics — an update is one `fetch_add`/`store`, never an
//! allocation or a lock. [`MetricsRegistry::snapshot`] freezes every
//! metric into plain data; snapshots are serialisable, comparable and
//! [mergeable](RegistrySnapshot::merge), so per-worker registries can be
//! folded into one exposition.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Number of histogram buckets: bucket `b` holds values `v` with
/// `bucket_index(v) == b`, i.e. `v == 0` in bucket 0 and
/// `2^(b-1) <= v < 2^b` in bucket `b` for `b >= 1`. Bucket 64 holds
/// everything from `2^63` up.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The log2 bucket a value lands in.
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `b` (the Prometheus `le` boundary).
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b if b >= 64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// Inclusive lower bound of bucket `b`.
fn bucket_lower_bound(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b => 1u64 << (b - 1),
    }
}

/// A monotonically increasing counter. Cloning shares the same cell.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a float that can move both ways. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle(Arc<AtomicU64>);

impl GaugeHandle {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared storage of one log2 histogram.
#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        HistogramCells {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log2-bucketed histogram of non-negative integer observations
/// (typically nanoseconds or page counts). Cloning shares the cells.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<HistogramCells>);

impl Default for HistogramHandle {
    fn default() -> Self {
        HistogramHandle(Arc::new(HistogramCells::new()))
    }
}

impl HistogramHandle {
    /// Records one observation: one bucket `fetch_add` plus the running
    /// count/sum/min/max — no allocation, no lock.
    pub fn observe(&self, value: u64) {
        let c = &self.0;
        c.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(value, Ordering::Relaxed);
        c.min.fetch_min(value, Ordering::Relaxed);
        c.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Freezes the histogram into plain data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.0;
        HistogramSnapshot {
            buckets: c
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: c.count.load(Ordering::Relaxed),
            sum: c.sum.load(Ordering::Relaxed),
            min: c.min.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram: per-bucket counts plus running aggregates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// One count per log2 bucket ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Arithmetic mean of the observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), estimated by linear interpolation
    /// inside the log2 bucket holding the nearest rank — accurate to the
    /// bucket (a factor of 2), which is what a live surface needs for
    /// p50/p90/p99/p999. Exact when all observations share a bucket edge
    /// is not guaranteed; the estimate is clamped to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.count == 0 {
            return None;
        }
        // Nearest rank, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cumulative + n >= rank {
                let lower = bucket_lower_bound(b) as f64;
                let upper = bucket_upper_bound(b) as f64;
                let into = (rank - cumulative) as f64 / n as f64;
                let est = lower + (upper - lower) * into;
                return Some(est.clamp(self.min as f64, self.max as f64));
            }
            cumulative += n;
        }
        Some(self.max as f64)
    }

    /// Folds `other` into `self`: buckets/count/sum add, min/max combine.
    /// The sum wraps on overflow, matching the live histogram's atomic
    /// `fetch_add` semantics — merging two snapshots equals observing both
    /// sample sets into one histogram, bit for bit.
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// What kind of metric a registration produced, holding its live storage.
#[derive(Debug, Clone)]
enum MetricCell {
    Counter(CounterHandle),
    Gauge(GaugeHandle),
    Histogram(HistogramHandle),
}

/// One registered metric.
#[derive(Debug, Clone)]
struct Metric {
    name: String,
    help: String,
    label: Option<(String, String)>,
    cell: MetricCell,
}

/// The registry: owns every metric's identity; hands out update handles.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn assert_unregistered(&self, name: &str, label: &Option<(String, String)>) {
        assert!(
            !self
                .metrics
                .iter()
                .any(|m| m.name == name && m.label == *label),
            "metric {name} (label {label:?}) registered twice"
        );
    }

    /// Registers a counter. Panics if `name` + label is already taken.
    pub fn counter(&mut self, name: &str, help: &str) -> CounterHandle {
        self.counter_with_label(name, help, None)
    }

    /// Registers a counter carrying one fixed label pair.
    pub fn counter_with_label(
        &mut self,
        name: &str,
        help: &str,
        label: Option<(&str, &str)>,
    ) -> CounterHandle {
        let label = label.map(|(k, v)| (k.to_string(), v.to_string()));
        self.assert_unregistered(name, &label);
        let handle = CounterHandle::default();
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            label,
            cell: MetricCell::Counter(handle.clone()),
        });
        handle
    }

    /// Registers a gauge. Panics if `name` + label is already taken.
    pub fn gauge(&mut self, name: &str, help: &str) -> GaugeHandle {
        self.gauge_with_label(name, help, None)
    }

    /// Registers a gauge carrying one fixed label pair (e.g.
    /// `replica="1"`), so one gauge family can cover every replica of a
    /// set.
    pub fn gauge_with_label(
        &mut self,
        name: &str,
        help: &str,
        label: Option<(&str, &str)>,
    ) -> GaugeHandle {
        let label = label.map(|(k, v)| (k.to_string(), v.to_string()));
        self.assert_unregistered(name, &label);
        let handle = GaugeHandle::default();
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            label,
            cell: MetricCell::Gauge(handle.clone()),
        });
        handle
    }

    /// Registers a histogram. Panics if `name` + label is already taken.
    pub fn histogram(&mut self, name: &str, help: &str) -> HistogramHandle {
        self.histogram_with_label(name, help, None)
    }

    /// Registers a histogram carrying one fixed label pair (e.g.
    /// `stage="harvest"`), so one metric family can cover the six pipeline
    /// stages.
    pub fn histogram_with_label(
        &mut self,
        name: &str,
        help: &str,
        label: Option<(&str, &str)>,
    ) -> HistogramHandle {
        let label = label.map(|(k, v)| (k.to_string(), v.to_string()));
        self.assert_unregistered(name, &label);
        let handle = HistogramHandle::default();
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            label,
            cell: MetricCell::Histogram(handle.clone()),
        });
        handle
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Freezes every metric, sorted by `(name, label)` so the exposition
    /// is deterministic regardless of registration order.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut metrics: Vec<MetricSnapshot> = self
            .metrics
            .iter()
            .map(|m| MetricSnapshot {
                name: m.name.clone(),
                help: m.help.clone(),
                label: m.label.clone(),
                value: match &m.cell {
                    MetricCell::Counter(h) => MetricValue::Counter(h.get()),
                    MetricCell::Gauge(h) => MetricValue::Gauge(h.get()),
                    MetricCell::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        metrics.sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
        RegistrySnapshot { metrics }
    }
}

/// One frozen metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSnapshot {
    /// Metric name (Prometheus conventions: `snake_case`, unit suffix).
    pub name: String,
    /// Help text for the exposition.
    pub help: String,
    /// Optional fixed label pair.
    pub label: Option<(String, String)>,
    /// The frozen value.
    pub value: MetricValue,
}

/// A frozen metric value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time float.
    Gauge(f64),
    /// Log2 histogram.
    Histogram(HistogramSnapshot),
}

/// A frozen registry: plain data, ready for export or merging.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Every metric, sorted by `(name, label)`.
    pub metrics: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// Looks up a metric by name (first label match wins).
    pub fn find(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Merges `other` into a new snapshot: counters add, histograms fold
    /// bucket-wise, gauges take `other`'s (most recent) value; metrics
    /// present in only one side pass through. Metrics are matched by
    /// `(name, label)`; a kind mismatch keeps `self`'s value.
    pub fn merge(&self, other: &RegistrySnapshot) -> RegistrySnapshot {
        let mut merged = self.metrics.clone();
        for theirs in &other.metrics {
            match merged
                .iter_mut()
                .find(|m| m.name == theirs.name && m.label == theirs.label)
            {
                None => merged.push(theirs.clone()),
                Some(mine) => match (&mut mine.value, &theirs.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = *b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge_from(b),
                    _ => {}
                },
            }
        }
        merged.sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
        RegistrySnapshot { metrics: merged }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(b)), b);
        }
    }

    #[test]
    fn counter_and_gauge_round_trip() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("ops_total", "ops");
        let g = reg.gauge("period_seconds", "period");
        c.add(3);
        c.incr();
        g.set(2.5);
        assert_eq!(c.get(), 4);
        assert_eq!(g.get(), 2.5);
        let snap = reg.snapshot();
        assert_eq!(
            snap.find("ops_total").unwrap().value,
            MetricValue::Counter(4)
        );
        assert_eq!(
            snap.find("period_seconds").unwrap().value,
            MetricValue::Gauge(2.5)
        );
    }

    #[test]
    fn histogram_quantiles_land_in_the_right_bucket() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("pause_nanos", "pause");
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
        let p50 = snap.quantile(0.5).unwrap();
        // True median 500 lives in bucket [256, 511]; the estimate must
        // land within that bucket.
        assert!((256.0..=511.0).contains(&p50), "p50 {p50}");
        let p999 = snap.quantile(0.999).unwrap();
        assert!((512.0..=1000.0).contains(&p999), "p999 {p999}");
        assert_eq!(snap.quantile(0.0).unwrap(), 1.0);
        assert_eq!(snap.quantile(1.0).unwrap(), 1000.0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let snap = HistogramSnapshot::empty();
        assert!(snap.quantile(0.5).is_none());
        assert!(snap.mean().is_none());
    }

    #[test]
    fn snapshots_merge_by_kind() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter("ops_total", "ops").add(2);
        b.counter("ops_total", "ops").add(5);
        a.gauge("g", "g").set(1.0);
        b.gauge("g", "g").set(9.0);
        let ha = a.histogram("h", "h");
        let hb = b.histogram("h", "h");
        ha.observe(10);
        hb.observe(1000);
        b.counter("only_b_total", "b").incr();
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(
            merged.find("ops_total").unwrap().value,
            MetricValue::Counter(7)
        );
        assert_eq!(merged.find("g").unwrap().value, MetricValue::Gauge(9.0));
        match &merged.find("h").unwrap().value {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum, 1010);
                assert_eq!((h.min, h.max), (10, 1000));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        assert_eq!(
            merged.find("only_b_total").unwrap().value,
            MetricValue::Counter(1)
        );
    }

    #[test]
    fn labelled_histograms_coexist_under_one_name() {
        let mut reg = MetricsRegistry::new();
        let h1 = reg.histogram_with_label("stage_nanos", "per-stage", Some(("stage", "pause")));
        let h2 = reg.histogram_with_label("stage_nanos", "per-stage", Some(("stage", "harvest")));
        h1.observe(5);
        h2.observe(7);
        let snap = reg.snapshot();
        assert_eq!(snap.metrics.len(), 2);
        // Sorted by (name, label): harvest before pause.
        assert_eq!(
            snap.metrics[0].label,
            Some(("stage".into(), "harvest".into()))
        );
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x_total", "x");
        reg.counter("x_total", "x");
    }

    #[test]
    fn handles_are_shared_across_clones_and_threads() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("t_total", "t");
        let h = reg.histogram("h_nanos", "h");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        c.incr();
                        h.observe(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 400);
        assert_eq!(h.count(), 400);
    }
}
