//! The flight recorder: a bounded ring of recent telemetry events.
//!
//! The recorder is always on. It keeps the last `capacity` events — stage
//! boundaries, period-manager decisions, buffer-pool reclaims, per-lane
//! encode timings, failover timeline marks — overwriting the oldest when
//! full, so after an incident the recent history is available as JSON
//! without having traced the whole run.

use crate::export::json_escape;
use serde::Serialize;

/// One recorded event. Every variant carries `at_nanos`, the virtual
/// simulation timestamp the event was recorded at (wall-clock values,
/// where present, live in dedicated fields).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum FlightEvent {
    /// A pipeline stage boundary was crossed.
    Stage {
        /// Checkpoint sequence number.
        seq: u64,
        /// Stage label (`pause`, `harvest`, ...).
        stage: &'static str,
        /// Virtual timestamp of the stage start (ns).
        at_nanos: u64,
        /// Virtual stage duration (ns).
        duration_nanos: u64,
        /// Wall-clock duration of the real work, when measured (ns).
        wall_nanos: Option<u64>,
        /// Dirty pages handled by the stage.
        pages: u64,
        /// Bytes handled by the stage.
        bytes: u64,
    },
    /// The dynamic period manager chose the next epoch length.
    PeriodDecision {
        /// Checkpoint sequence number the decision followed.
        seq: u64,
        /// Virtual timestamp (ns).
        at_nanos: u64,
        /// Dirty pages `N` that fed the pause prediction.
        dirty_pages: u64,
        /// Measured pause `t` for the finished epoch (ns).
        measured_pause_nanos: u64,
        /// Period the finished epoch ran with (ns).
        previous_period_nanos: u64,
        /// Period chosen for the next epoch (ns).
        chosen_period_nanos: u64,
        /// Degradation predicted for the next epoch.
        predicted_degradation: f64,
        /// What Algorithm 1 did (`fast_descent`, `walk_back`, ...).
        action: &'static str,
        /// What clamped the choice, if anything (`t_max`, `sigma_floor`).
        clamp: Option<&'static str>,
    },
    /// Buffer-pool reclaim statistics, sampled after a checkpoint.
    PoolReclaim {
        /// Virtual timestamp (ns).
        at_nanos: u64,
        /// Pool name (e.g. `encode`).
        pool: &'static str,
        /// Cumulative checkouts served from the pool.
        hits: u64,
        /// Cumulative checkouts that had to allocate.
        misses: u64,
        /// Buffers currently pooled.
        pooled: u64,
    },
    /// One encode lane finished its share of a checkpoint.
    EncodeLane {
        /// Checkpoint sequence number.
        seq: u64,
        /// Virtual timestamp (ns).
        at_nanos: u64,
        /// Lane index.
        lane: u64,
        /// Wall-clock time the lane spent encoding (ns).
        wall_nanos: u64,
    },
    /// The work-stealing encode pool's statistics for one checkpoint
    /// round: how the chunks spread across lanes.
    EncodePool {
        /// Virtual timestamp (ns).
        at_nanos: u64,
        /// Checkpoint sequence number.
        seq: u64,
        /// Encode tasks (chunks or shards) the round executed.
        tasks: u64,
        /// Tasks executed by a lane other than their home lane.
        steals: u64,
        /// Lane occupancy: busy time over `lanes × round wall`, percent.
        occupancy_pct: f64,
    },
    /// A mark on the failover timeline.
    Failover {
        /// Virtual timestamp (ns).
        at_nanos: u64,
        /// Timeline phase (`failed`, `detected`, `resumed`).
        phase: &'static str,
        /// Free-form detail (checkpoint resumed from, losses, ...).
        detail: String,
    },
    /// A checkpoint transfer attempt failed and is being retried after
    /// exponential backoff.
    Retry {
        /// Virtual timestamp (ns).
        at_nanos: u64,
        /// Checkpoint sequence number.
        seq: u64,
        /// 1-based failed-attempt count so far.
        attempt: u32,
        /// Why the attempt failed (`link_down`, `corrupt_frame`, ...).
        reason: &'static str,
        /// Backoff waited before the next attempt (ns).
        backoff_nanos: u64,
    },
    /// A fault was injected into (or observed on) a host.
    Fault {
        /// Virtual timestamp (ns).
        at_nanos: u64,
        /// Fault kind (`exploit`, `crash`, `hang`, `starvation`).
        fault: &'static str,
        /// Whether the fault took the host down outright.
        host_down: bool,
        /// Free-form detail (target host, exploit name, ...).
        detail: String,
    },
    /// A health-plane alert rule fired or resolved.
    Alert {
        /// Virtual timestamp (ns).
        at_nanos: u64,
        /// Epoch sequence number of the evaluation.
        seq: u64,
        /// Rule name (`stale_replica`, `slo_burn_rate`, ...).
        rule: &'static str,
        /// Severity label (`warning`, `critical`).
        severity: &'static str,
        /// Edge label (`firing`, `resolved`).
        state: &'static str,
        /// Deterministic condition summary.
        detail: String,
    },
    /// Live-migration progress (seed of the replica).
    Migration {
        /// Virtual timestamp (ns).
        at_nanos: u64,
        /// Pre-copy iteration number (0 = full copy, final = stop-and-copy).
        iteration: u64,
        /// Pages transferred in this iteration.
        pages: u64,
        /// Free-form phase label (`full_copy`, `pre_copy`, `stop_and_copy`).
        phase: &'static str,
    },
}

impl FlightEvent {
    /// Virtual timestamp the event carries.
    pub fn at_nanos(&self) -> u64 {
        match self {
            FlightEvent::Stage { at_nanos, .. }
            | FlightEvent::PeriodDecision { at_nanos, .. }
            | FlightEvent::PoolReclaim { at_nanos, .. }
            | FlightEvent::EncodeLane { at_nanos, .. }
            | FlightEvent::EncodePool { at_nanos, .. }
            | FlightEvent::Failover { at_nanos, .. }
            | FlightEvent::Retry { at_nanos, .. }
            | FlightEvent::Fault { at_nanos, .. }
            | FlightEvent::Alert { at_nanos, .. }
            | FlightEvent::Migration { at_nanos, .. } => *at_nanos,
        }
    }

    /// The variant's kind tag, as it appears in the JSON dump.
    pub fn kind(&self) -> &'static str {
        match self {
            FlightEvent::Stage { .. } => "stage",
            FlightEvent::PeriodDecision { .. } => "period_decision",
            FlightEvent::PoolReclaim { .. } => "pool_reclaim",
            FlightEvent::EncodeLane { .. } => "encode_lane",
            FlightEvent::EncodePool { .. } => "encode_pool",
            FlightEvent::Failover { .. } => "failover",
            FlightEvent::Retry { .. } => "retry",
            FlightEvent::Fault { .. } => "fault",
            FlightEvent::Alert { .. } => "alert",
            FlightEvent::Migration { .. } => "migration",
        }
    }

    fn render_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            FlightEvent::Stage {
                seq,
                stage,
                at_nanos,
                duration_nanos,
                wall_nanos,
                pages,
                bytes,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"stage","seq":{seq},"stage":"{stage}","at_nanos":{at_nanos},"duration_nanos":{duration_nanos},"wall_nanos":{},"pages":{pages},"bytes":{bytes}}}"#,
                    opt_u64(*wall_nanos),
                );
            }
            FlightEvent::PeriodDecision {
                seq,
                at_nanos,
                dirty_pages,
                measured_pause_nanos,
                previous_period_nanos,
                chosen_period_nanos,
                predicted_degradation,
                action,
                clamp,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"period_decision","seq":{seq},"at_nanos":{at_nanos},"dirty_pages":{dirty_pages},"measured_pause_nanos":{measured_pause_nanos},"previous_period_nanos":{previous_period_nanos},"chosen_period_nanos":{chosen_period_nanos},"predicted_degradation":{predicted_degradation},"action":"{action}","clamp":{}}}"#,
                    opt_str(*clamp),
                );
            }
            FlightEvent::PoolReclaim {
                at_nanos,
                pool,
                hits,
                misses,
                pooled,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"pool_reclaim","at_nanos":{at_nanos},"pool":"{pool}","hits":{hits},"misses":{misses},"pooled":{pooled}}}"#,
                );
            }
            FlightEvent::EncodeLane {
                seq,
                at_nanos,
                lane,
                wall_nanos,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"encode_lane","seq":{seq},"at_nanos":{at_nanos},"lane":{lane},"wall_nanos":{wall_nanos}}}"#,
                );
            }
            FlightEvent::EncodePool {
                at_nanos,
                seq,
                tasks,
                steals,
                occupancy_pct,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"encode_pool","at_nanos":{at_nanos},"seq":{seq},"tasks":{tasks},"steals":{steals},"occupancy_pct":{occupancy_pct:.1}}}"#,
                );
            }
            FlightEvent::Failover {
                at_nanos,
                phase,
                detail,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"failover","at_nanos":{at_nanos},"phase":"{phase}","detail":"{}"}}"#,
                    json_escape(detail),
                );
            }
            FlightEvent::Retry {
                at_nanos,
                seq,
                attempt,
                reason,
                backoff_nanos,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"retry","at_nanos":{at_nanos},"seq":{seq},"attempt":{attempt},"reason":"{reason}","backoff_nanos":{backoff_nanos}}}"#,
                );
            }
            FlightEvent::Fault {
                at_nanos,
                fault,
                host_down,
                detail,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"fault","at_nanos":{at_nanos},"fault":"{fault}","host_down":{host_down},"detail":"{}"}}"#,
                    json_escape(detail),
                );
            }
            FlightEvent::Alert {
                at_nanos,
                seq,
                rule,
                severity,
                state,
                detail,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"alert","at_nanos":{at_nanos},"seq":{seq},"rule":"{rule}","severity":"{severity}","state":"{state}","detail":"{}"}}"#,
                    json_escape(detail),
                );
            }
            FlightEvent::Migration {
                at_nanos,
                iteration,
                pages,
                phase,
            } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"migration","at_nanos":{at_nanos},"iteration":{iteration},"pages":{pages},"phase":"{phase}"}}"#,
                );
            }
        }
    }
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

fn opt_str(v: Option<&str>) -> String {
    match v {
        Some(v) => format!("\"{}\"", json_escape(v)),
        None => "null".to_string(),
    }
}

/// A bounded ring buffer of [`FlightEvent`]s. Recording is O(1); once
/// `capacity` events are held, each new event evicts the oldest.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: Vec<FlightEvent>,
    capacity: usize,
    /// Index the next event will be written at.
    next: usize,
    /// Events recorded over the recorder's lifetime.
    total: u64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be non-zero");
        FlightRecorder {
            ring: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            total: 0,
        }
    }

    /// Records one event, evicting the oldest when full.
    pub fn record(&mut self, event: FlightEvent) {
        if self.ring.len() < self.capacity {
            self.ring.push(event);
        } else {
            self.ring[self.next] = event;
        }
        self.next = (self.next + 1) % self.capacity;
        self.total += 1;
    }

    /// Maximum number of events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events recorded over the recorder's lifetime (retained + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.total - self.ring.len() as u64
    }

    /// Drops everything recorded so far (capacity is kept). Used when a
    /// run discards its warmup phase.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.next = 0;
        self.total = 0;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<&FlightEvent> {
        if self.ring.len() < self.capacity {
            self.ring.iter().collect()
        } else {
            self.ring[self.next..]
                .iter()
                .chain(self.ring[..self.next].iter())
                .collect()
        }
    }

    /// Dumps the retained events as a JSON document:
    /// `{"capacity":..,"total_recorded":..,"dropped":..,"events":[..]}`.
    pub fn dump_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"capacity\":{},\"total_recorded\":{},\"dropped\":{},\"events\":[",
            self.capacity,
            self.total,
            self.dropped()
        ));
        for (i, event) in self.events().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            event.render_json(&mut out);
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(i: u64) -> FlightEvent {
        FlightEvent::PoolReclaim {
            at_nanos: i,
            pool: "encode",
            hits: i,
            misses: 0,
            pooled: 0,
        }
    }

    #[test]
    fn retains_everything_until_full() {
        let mut rec = FlightRecorder::new(4);
        for i in 0..3 {
            rec.record(mark(i));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 0);
        let at: Vec<u64> = rec.events().iter().map(|e| e.at_nanos()).collect();
        assert_eq!(at, vec![0, 1, 2]);
    }

    #[test]
    fn wraps_and_keeps_newest_in_order() {
        let mut rec = FlightRecorder::new(4);
        for i in 0..10 {
            rec.record(mark(i));
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.total_recorded(), 10);
        assert_eq!(rec.dropped(), 6);
        let at: Vec<u64> = rec.events().iter().map(|e| e.at_nanos()).collect();
        assert_eq!(at, vec![6, 7, 8, 9]);
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut rec = FlightRecorder::new(2);
        rec.record(mark(0));
        rec.record(mark(1));
        rec.record(mark(2));
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
        rec.record(mark(7));
        assert_eq!(rec.events()[0].at_nanos(), 7);
    }

    #[test]
    fn dump_json_is_well_formed() {
        let mut rec = FlightRecorder::new(8);
        rec.record(FlightEvent::Stage {
            seq: 1,
            stage: "pause",
            at_nanos: 10,
            duration_nanos: 5,
            wall_nanos: Some(4200),
            pages: 64,
            bytes: 262_144,
        });
        rec.record(FlightEvent::PeriodDecision {
            seq: 1,
            at_nanos: 15,
            dirty_pages: 64,
            measured_pause_nanos: 5,
            previous_period_nanos: 100,
            chosen_period_nanos: 50,
            predicted_degradation: 0.09,
            action: "fast_descent",
            clamp: None,
        });
        rec.record(FlightEvent::Failover {
            at_nanos: 20,
            phase: "detected",
            detail: "heartbeat \"lost\"".to_string(),
        });
        rec.record(FlightEvent::Retry {
            at_nanos: 25,
            seq: 2,
            attempt: 1,
            reason: "link_down",
            backoff_nanos: 500_000,
        });
        rec.record(FlightEvent::Alert {
            at_nanos: 30,
            seq: 2,
            rule: "stale_replica",
            severity: "warning",
            state: "firing",
            detail: "stale replicas [2]".to_string(),
        });
        let json = rec.dump_json();
        assert!(json.starts_with("{\"capacity\":8,"));
        assert!(json.contains(r#""kind":"stage""#));
        assert!(json.contains(r#""kind":"retry","at_nanos":25,"seq":2,"attempt":1,"reason":"link_down","backoff_nanos":500000"#));
        assert!(json.contains(
            r#""kind":"alert","at_nanos":30,"seq":2,"rule":"stale_replica","severity":"warning","state":"firing","detail":"stale replicas [2]""#
        ));
        assert!(json.contains(r#""wall_nanos":4200"#));
        assert!(json.contains(r#""clamp":null"#));
        assert!(json.contains(r#"heartbeat \"lost\""#));
        assert!(json.ends_with("]}"));
    }
}
