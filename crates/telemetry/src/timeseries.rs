//! Virtual-time windowed series.
//!
//! End-of-run snapshots answer "what happened overall"; the health plane
//! needs "what happened *when*". A [`WindowedSeries`] buckets samples
//! into fixed-width windows of **virtual time** — the window index is
//! `at_nanos / width_nanos`, nothing reads a wall clock — so two runs of
//! the same seeded scenario produce bit-identical series.
//!
//! Three aggregation kinds cover the health plane's inputs:
//!
//! - [`SeriesKind::CounterRate`] — event counts per window; the exporter
//!   derives a rate by dividing by the window width.
//! - [`SeriesKind::GaugeLast`] — last-write-wins sampled values (period,
//!   degradation); merge resolves "last" by the `(at_nanos, value)`
//!   maximum so merging commutes with recording order.
//! - [`SeriesKind::Histogram`] — per-window log2 bucket counts
//!   (pause times), mergeable window-by-window.
//!
//! Every value is an integer chosen by the caller (nanoseconds, pages,
//! parts-per-million, …): integer arithmetic keeps aggregation exactly
//! associative, which is what makes window merges commute and the JSONL
//! rendering byte-stable.
//!
//! Windows rotate: a series keeps at most `retain` live windows and
//! folds anything older into a single *tail* aggregate, so a long run
//! has bounded memory while `total_count` still sees every sample ever
//! recorded (the "rotation never loses counts" property test pins
//! this).

use serde::{Deserialize, Serialize};

/// Number of log2 histogram buckets a [`SeriesKind::Histogram`] window
/// carries: bucket `i` counts values `v` with `64 - v.leading_zeros() == i`
/// (bucket 0 is `v == 0`).
pub const WINDOW_BUCKETS: usize = 65;

/// Default number of live windows a series retains before folding the
/// oldest into the tail aggregate.
pub const DEFAULT_RETAIN: usize = 512;

/// How samples aggregate within a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeriesKind {
    /// Event counts; rendered with a per-second rate over the window.
    CounterRate,
    /// Sampled values where the latest write wins; `last` is resolved by
    /// the `(at_nanos, value)` maximum so merges are order-independent.
    GaugeLast,
    /// Per-window log2 histogram of values.
    Histogram,
}

impl SeriesKind {
    /// Stable label used in the JSONL rendering.
    pub fn label(&self) -> &'static str {
        match self {
            SeriesKind::CounterRate => "counter_rate",
            SeriesKind::GaugeLast => "gauge_last",
            SeriesKind::Histogram => "histogram",
        }
    }
}

fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// One fixed-width window of aggregated samples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    /// Window index: `at_nanos / width_nanos` of every sample in it.
    pub index: u64,
    /// Samples recorded into the window.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` while empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Virtual timestamp of the winning `last` sample.
    pub last_at_nanos: u64,
    /// Last-write-wins value; ties on `last_at_nanos` resolve to the
    /// larger value so merging commutes with recording order.
    pub last: u64,
    /// Log2 bucket counts ([`WINDOW_BUCKETS`] entries); empty unless the
    /// series kind is [`SeriesKind::Histogram`].
    pub buckets: Vec<u64>,
}

impl Window {
    /// An empty window at `index` shaped for `kind` (histogram windows
    /// allocate their bucket array up front).
    pub fn new(index: u64, kind: SeriesKind) -> Self {
        Window {
            index,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            last_at_nanos: 0,
            last: 0,
            buckets: match kind {
                SeriesKind::Histogram => vec![0; WINDOW_BUCKETS],
                _ => Vec::new(),
            },
        }
    }

    /// Records one sample into the window's aggregates. The caller is
    /// responsible for routing the sample to the right window index.
    pub fn record(&mut self, at_nanos: u64, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if self.count == 1 || (at_nanos, value) >= (self.last_at_nanos, self.last) {
            self.last_at_nanos = at_nanos;
            self.last = value;
        }
        if !self.buckets.is_empty() {
            self.buckets[bucket_index(value)] += 1;
        }
    }

    /// Merges another window's aggregates into this one. Merging is
    /// commutative and associative, so splitting a sample stream across
    /// two windows of the same index and merging them yields exactly the
    /// window that recording everything into one would have.
    ///
    /// # Panics
    ///
    /// Panics if the window indices differ — merging across windows
    /// would silently misattribute time.
    pub fn merge_from(&mut self, other: &Window) {
        assert_eq!(self.index, other.index, "window merge across indices");
        self.merge_aggregates(other);
    }

    fn merge_aggregates(&mut self, other: &Window) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || (other.last_at_nanos, other.last) >= (self.last_at_nanos, self.last) {
            self.last_at_nanos = other.last_at_nanos;
            self.last = other.last;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.buckets.len() == other.buckets.len() {
            for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
                *mine += *theirs;
            }
        } else if self.buckets.is_empty() {
            self.buckets = other.buckets.clone();
        }
    }

    /// Events per second of virtual time for a window of `width_nanos`.
    pub fn rate_per_sec(&self, width_nanos: u64) -> f64 {
        if width_nanos == 0 {
            return 0.0;
        }
        self.count as f64 * 1e9 / width_nanos as f64
    }
}

/// One metric's windowed history: fixed-width virtual-time windows plus
/// a tail aggregate for rotated-out history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedSeries {
    metric: String,
    label: Option<(String, String)>,
    kind: SeriesKind,
    width_nanos: u64,
    retain: usize,
    windows: Vec<Window>,
    tail: Option<Window>,
}

impl WindowedSeries {
    /// A new series for `metric` (optionally labelled) with windows of
    /// `width_nanos` virtual nanoseconds, retaining [`DEFAULT_RETAIN`]
    /// live windows.
    pub fn new(
        metric: &str,
        label: Option<(&str, &str)>,
        kind: SeriesKind,
        width_nanos: u64,
    ) -> Self {
        Self::with_retain(metric, label, kind, width_nanos, DEFAULT_RETAIN)
    }

    /// Like [`WindowedSeries::new`] with an explicit live-window cap
    /// (minimum 1).
    pub fn with_retain(
        metric: &str,
        label: Option<(&str, &str)>,
        kind: SeriesKind,
        width_nanos: u64,
        retain: usize,
    ) -> Self {
        assert!(width_nanos > 0, "window width must be positive");
        WindowedSeries {
            metric: metric.to_string(),
            label: label.map(|(k, v)| (k.to_string(), v.to_string())),
            kind,
            width_nanos,
            retain: retain.max(1),
            windows: Vec::new(),
            tail: None,
        }
    }

    /// The metric name.
    pub fn metric(&self) -> &str {
        &self.metric
    }

    /// The `key="value"` label, if any.
    pub fn label(&self) -> Option<(&str, &str)> {
        self.label.as_ref().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// The aggregation kind.
    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    /// Window width in virtual nanoseconds.
    pub fn width_nanos(&self) -> u64 {
        self.width_nanos
    }

    /// Records one sample at virtual time `at_nanos`. Samples may arrive
    /// in any order; the same multiset of `(at_nanos, value)` samples
    /// always produces the same series.
    pub fn record(&mut self, at_nanos: u64, value: u64) {
        let index = at_nanos / self.width_nanos;
        let at = match self.windows.binary_search_by_key(&index, |w| w.index) {
            Ok(at) => at,
            Err(at) => {
                // A sample older than everything already folded into the
                // tail joins the tail directly: rotated history never
                // re-materialises, and no count is lost.
                if let Some(tail) = &mut self.tail {
                    if index <= tail.index {
                        let mut w = Window::new(index, self.kind);
                        w.record(at_nanos, value);
                        tail.merge_aggregates(&w);
                        return;
                    }
                }
                self.windows.insert(at, Window::new(index, self.kind));
                at
            }
        };
        self.windows[at].record(at_nanos, value);
        self.rotate();
    }

    fn rotate(&mut self) {
        while self.windows.len() > self.retain {
            let oldest = self.windows.remove(0);
            match &mut self.tail {
                Some(tail) => {
                    tail.merge_aggregates(&oldest);
                    tail.index = tail.index.max(oldest.index);
                }
                None => self.tail = Some(oldest),
            }
        }
    }

    /// The live windows, oldest first.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// The tail aggregate holding rotated-out history, if any has
    /// rotated. Its `index` is the newest window index folded in.
    pub fn tail(&self) -> Option<&Window> {
        self.tail.as_ref()
    }

    /// Total samples ever recorded, live windows plus tail. Rotation
    /// never changes this.
    pub fn total_count(&self) -> u64 {
        self.windows.iter().map(|w| w.count).sum::<u64>()
            + self.tail.as_ref().map_or(0, |t| t.count)
    }

    /// Appends one JSONL line per live window (plus one `"tail": true`
    /// line if history has rotated) to `out`.
    pub fn render_jsonl_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let label = match &self.label {
            Some((k, v)) => format!(
                ",\"label\":{{\"{}\":\"{}\"}}",
                crate::export::json_escape(k),
                crate::export::json_escape(v)
            ),
            None => String::new(),
        };
        let mut line = |w: &Window, tail: bool| {
            let _ = write!(
                out,
                "{{\"metric\":\"{}\"{label},\"kind\":\"{}\",\"window\":{},\"start_nanos\":{},\"width_nanos\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{}",
                crate::export::json_escape(&self.metric),
                self.kind.label(),
                w.index,
                w.index * self.width_nanos,
                self.width_nanos,
                w.count,
                w.sum,
                if w.count == 0 { 0 } else { w.min },
                w.max,
            );
            match self.kind {
                SeriesKind::CounterRate => {
                    let _ = write!(
                        out,
                        ",\"rate_per_sec\":{}",
                        w.rate_per_sec(self.width_nanos)
                    );
                }
                SeriesKind::GaugeLast => {
                    let _ = write!(
                        out,
                        ",\"last\":{},\"last_at_nanos\":{}",
                        w.last, w.last_at_nanos
                    );
                }
                SeriesKind::Histogram => {
                    let _ = out.write_str(",\"buckets\":[");
                    let mut first = true;
                    for (i, &n) in w.buckets.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        if !first {
                            let _ = out.write_str(",");
                        }
                        first = false;
                        let _ = write!(out, "[{i},{n}]");
                    }
                    let _ = out.write_str("]");
                }
            }
            if tail {
                let _ = out.write_str(",\"tail\":true");
            }
            let _ = out.write_str("}\n");
        };
        if let Some(t) = &self.tail {
            line(t, true);
        }
        for w in &self.windows {
            line(w, false);
        }
    }
}

/// A keyed set of [`WindowedSeries`], all sharing one window width —
/// the health plane's in-memory store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSet {
    width_nanos: u64,
    retain: usize,
    series: Vec<WindowedSeries>,
}

impl SeriesSet {
    /// A new set whose series use windows of `width_nanos` virtual
    /// nanoseconds.
    pub fn new(width_nanos: u64) -> Self {
        Self::with_retain(width_nanos, DEFAULT_RETAIN)
    }

    /// Like [`SeriesSet::new`] with an explicit per-series live-window
    /// cap.
    pub fn with_retain(width_nanos: u64, retain: usize) -> Self {
        assert!(width_nanos > 0, "window width must be positive");
        SeriesSet {
            width_nanos,
            retain,
            series: Vec::new(),
        }
    }

    /// Records one sample into the series keyed by `(metric, label)`,
    /// creating the series on first use.
    pub fn record(
        &mut self,
        metric: &str,
        label: Option<(&str, &str)>,
        kind: SeriesKind,
        at_nanos: u64,
        value: u64,
    ) {
        let at = self.series.iter().position(|s| {
            s.metric == metric && s.label.as_ref().map(|(k, v)| (k.as_str(), v.as_str())) == label
        });
        let series = match at {
            Some(at) => &mut self.series[at],
            None => {
                self.series.push(WindowedSeries::with_retain(
                    metric,
                    label,
                    kind,
                    self.width_nanos,
                    self.retain,
                ));
                self.series.last_mut().expect("just pushed")
            }
        };
        series.record(at_nanos, value);
    }

    /// The series keyed by `(metric, label)`, if any samples have been
    /// recorded into it.
    pub fn get(&self, metric: &str, label: Option<(&str, &str)>) -> Option<&WindowedSeries> {
        self.series.iter().find(|s| {
            s.metric == metric && s.label.as_ref().map(|(k, v)| (k.as_str(), v.as_str())) == label
        })
    }

    /// Number of distinct `(metric, label)` series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// All series, sorted by `(metric, label)`.
    pub fn series(&self) -> Vec<&WindowedSeries> {
        let mut all: Vec<&WindowedSeries> = self.series.iter().collect();
        all.sort_by(|a, b| (&a.metric, &a.label).cmp(&(&b.metric, &b.label)));
        all
    }

    /// Total windows across all series (live + tail), the cheap "how
    /// many points" summary benchmarks pin.
    pub fn total_windows(&self) -> usize {
        self.series
            .iter()
            .map(|s| s.windows.len() + usize::from(s.tail.is_some()))
            .sum()
    }

    /// Renders the whole set as JSONL: one line per window, series
    /// sorted by `(metric, label)`, windows oldest first — byte-stable
    /// for a given multiset of recorded samples.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for series in self.series() {
            series.render_jsonl_into(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_bucket_by_virtual_time() {
        let mut s = WindowedSeries::new("ticks", None, SeriesKind::CounterRate, 1_000);
        s.record(0, 1);
        s.record(999, 1);
        s.record(1_000, 1);
        s.record(2_500, 1);
        assert_eq!(s.windows().len(), 3);
        assert_eq!(s.windows()[0].index, 0);
        assert_eq!(s.windows()[0].count, 2);
        assert_eq!(s.windows()[1].index, 1);
        assert_eq!(s.windows()[2].index, 2);
        assert_eq!(s.total_count(), 4);
    }

    #[test]
    fn gauge_last_resolves_by_timestamp_then_value() {
        let mut a = WindowedSeries::new("g", None, SeriesKind::GaugeLast, 1_000);
        a.record(10, 5);
        a.record(20, 3);
        assert_eq!(a.windows()[0].last, 3);
        // Same samples, reversed order: identical series.
        let mut b = WindowedSeries::new("g", None, SeriesKind::GaugeLast, 1_000);
        b.record(20, 3);
        b.record(10, 5);
        assert_eq!(a, b);
        // Tie on the timestamp resolves to the larger value either way.
        let mut c = WindowedSeries::new("g", None, SeriesKind::GaugeLast, 1_000);
        c.record(20, 9);
        c.record(20, 3);
        assert_eq!(c.windows()[0].last, 9);
    }

    #[test]
    fn merge_matches_recording_everything_in_one_window() {
        let samples = [(5u64, 7u64), (900, 2), (12, 2), (400, 40)];
        let mut whole = Window::new(0, SeriesKind::Histogram);
        let mut left = Window::new(0, SeriesKind::Histogram);
        let mut right = Window::new(0, SeriesKind::Histogram);
        for (i, &(at, v)) in samples.iter().enumerate() {
            whole.record(at, v);
            if i % 2 == 0 {
                left.record(at, v);
            } else {
                right.record(at, v);
            }
        }
        let mut merged_lr = left.clone();
        merged_lr.merge_from(&right);
        let mut merged_rl = right.clone();
        merged_rl.merge_from(&left);
        assert_eq!(merged_lr, whole);
        assert_eq!(merged_rl, whole, "merge must commute");
    }

    #[test]
    fn rotation_folds_old_windows_into_the_tail() {
        let mut s = WindowedSeries::with_retain("r", None, SeriesKind::CounterRate, 100, 2);
        for w in 0..5u64 {
            s.record(w * 100, 1);
            s.record(w * 100 + 50, 1);
        }
        assert_eq!(s.windows().len(), 2);
        let tail = s.tail().expect("history rotated");
        assert_eq!(tail.count, 6);
        assert_eq!(s.total_count(), 10);
        // A late sample for rotated history lands in the tail, not a
        // resurrected window.
        s.record(10, 1);
        assert_eq!(s.windows().len(), 2);
        assert_eq!(s.total_count(), 11);
    }

    #[test]
    fn series_set_keys_by_metric_and_label() {
        let mut set = SeriesSet::new(1_000);
        set.record("lag", Some(("replica", "0")), SeriesKind::GaugeLast, 0, 1);
        set.record("lag", Some(("replica", "1")), SeriesKind::GaugeLast, 0, 2);
        set.record("lag", Some(("replica", "0")), SeriesKind::GaugeLast, 500, 3);
        set.record("pause", None, SeriesKind::Histogram, 0, 40);
        assert_eq!(set.len(), 3);
        let r0 = set.get("lag", Some(("replica", "0"))).unwrap();
        assert_eq!(r0.windows()[0].count, 2);
        assert!(set.get("lag", None).is_none());
    }

    #[test]
    fn jsonl_is_sorted_and_stable() {
        let mut set = SeriesSet::new(1_000);
        set.record("z_metric", None, SeriesKind::CounterRate, 0, 1);
        set.record(
            "a_metric",
            Some(("replica", "1")),
            SeriesKind::GaugeLast,
            0,
            7,
        );
        set.record(
            "a_metric",
            Some(("replica", "0")),
            SeriesKind::Histogram,
            1_500,
            3,
        );
        let out = set.render_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"a_metric\"") && lines[0].contains("\"replica\":\"0\""));
        assert!(lines[0].contains("\"buckets\":[[2,1]]"));
        assert!(lines[1].contains("\"replica\":\"1\"") && lines[1].contains("\"last\":7"));
        assert!(lines[2].starts_with("{\"metric\":\"z_metric\""));
        assert!(lines[2].contains("\"rate_per_sec\":1000"));
        assert_eq!(out, set.render_jsonl(), "rendering is pure");
    }
}
