//! The idle guest: background OS activity only.
//!
//! Figs. 6 (left), 7 (left) and 8 (a/c) measure migration and replication
//! of an *idle* VM. Idle is not zero: kernel timers, logging and page-cache
//! writeback keep dirtying a trickle of pages proportional to how much of
//! the OS is resident — which is why idle checkpoint transfer time still
//! grows with VM memory size in Fig. 8a.

use here_hypervisor::vm::Vm;
use here_hypervisor::{PageId, VcpuId};
use here_sim_core::rng::SimRng;
use here_sim_core::time::{SimDuration, SimTime};

use crate::traits::{Progress, Workload};

/// Idle dirtying rate: pages per second per GiB of guest memory.
pub const IDLE_PAGES_PER_SEC_PER_GIB: f64 = 20.0;

/// An idle guest OS.
///
/// # Examples
///
/// ```
/// use here_workloads::idle::IdleGuest;
/// use here_workloads::traits::Workload;
///
/// let idle = IdleGuest::new();
/// assert_eq!(idle.name(), "idle");
/// ```
#[derive(Debug, Clone, Default)]
pub struct IdleGuest {
    carry: f64,
}

impl IdleGuest {
    /// Creates an idle guest.
    pub fn new() -> Self {
        IdleGuest { carry: 0.0 }
    }
}

impl Workload for IdleGuest {
    fn name(&self) -> &str {
        "idle"
    }

    fn advance(
        &mut self,
        _now: SimTime,
        dt: SimDuration,
        vm: &mut Vm,
        rng: &mut SimRng,
    ) -> Progress {
        let gib = vm.memory().size().as_gib_f64();
        let want = IDLE_PAGES_PER_SEC_PER_GIB * gib * dt.as_secs_f64() + self.carry;
        let writes = want as u64;
        self.carry = want - writes as f64;
        let num_pages = vm.memory().num_pages();
        for _ in 0..writes {
            // Kernel structures cluster in the low fifth of memory.
            let frame = rng.below((num_pages / 5).max(1));
            vm.guest_write(PageId::new(frame), VcpuId::new(0))
                .expect("workload advances only while the VM runs");
        }
        Progress::ops_only(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_hypervisor::cpuid::CpuidPolicy;
    use here_hypervisor::host::Hypervisor;
    use here_hypervisor::vm::VmConfig;
    use here_hypervisor::XenHypervisor;
    use here_sim_core::rate::ByteSize;

    #[test]
    fn idle_dirtying_scales_with_memory_size() {
        let mut xen = XenHypervisor::new(ByteSize::from_gib(32));
        let mut counts = Vec::new();
        for gib in [1u64, 4] {
            let cfg = VmConfig::new("idle", ByteSize::from_gib(gib), 2)
                .unwrap()
                .with_cpuid(CpuidPolicy::xen_default());
            let id = xen.create_vm(cfg).unwrap();
            xen.shadow_op_enable_logdirty(id).unwrap();
            let vm = xen.vm_mut(id).unwrap();
            let mut idle = IdleGuest::new();
            let mut rng = SimRng::seed_from(3);
            idle.advance(SimTime::ZERO, SimDuration::from_secs(8), vm, &mut rng);
            counts.push(vm.dirty().bitmap().count());
        }
        // 4 GiB idles ~4x the dirty pages of 1 GiB (minus collisions).
        assert!(counts[1] > counts[0] * 3, "counts {counts:?}");
        assert!(
            counts[0] > 80 && counts[0] < 250,
            "1 GiB count {}",
            counts[0]
        );
    }
}
