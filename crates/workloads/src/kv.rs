//! An in-memory, LSM-flavoured key-value store — the RocksDB stand-in.
//!
//! YCSB in the paper runs against RocksDB inside the protected VM. What
//! replication observes of RocksDB is *where its writes land*: record
//! updates dirty data pages, every mutation appends to a write-ahead log,
//! and periodic memtable flushes rewrite a contiguous SSTable region. This
//! store reproduces exactly that page-level behaviour on the simulated
//! guest's memory, so YCSB's dirty-page pressure tracks the op mix the same
//! way RocksDB's would.

use serde::{Deserialize, Serialize};

use here_hypervisor::memory::PAGE_SIZE;
use here_hypervisor::vm::Vm;
use here_hypervisor::{PageId, VcpuId};

use crate::traits::write_sweep;

/// Size of one YCSB record: 10 fields × 100 bytes, rounded up.
pub const RECORD_BYTES: u64 = 1024;

/// Memory layout of the store within the guest's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvLayout {
    /// First frame of the record data region.
    pub data_base: u64,
    /// Frames reserved for record data.
    pub data_pages: u64,
    /// First frame of the write-ahead log ring.
    pub log_base: u64,
    /// Frames in the WAL ring.
    pub log_pages: u64,
    /// First frame of the memtable/SSTable flush region.
    pub memtable_base: u64,
    /// Frames in the flush region.
    pub memtable_pages: u64,
}

/// Cumulative operation counts (observability for tests and reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvStats {
    /// Point reads served.
    pub reads: u64,
    /// Updates applied.
    pub updates: u64,
    /// Inserts applied.
    pub inserts: u64,
    /// Scans served.
    pub scans: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
}

/// The store.
///
/// # Examples
///
/// ```
/// use here_workloads::kv::KvStore;
///
/// // A store sized for 10k records needs 10k/4 = 2500 data pages.
/// let store = KvStore::new(10_000).unwrap();
/// assert!(store.layout().data_pages >= 2500);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvStore {
    layout: KvLayout,
    record_count: u64,
    log_cursor_bytes: u64,
    memtable_entries: u64,
    memtable_capacity: u64,
    stats: KvStats,
    next_vcpu: u32,
}

/// Error building a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvLayoutError(pub String);

impl std::fmt::Display for KvLayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kv layout error: {}", self.0)
    }
}

impl std::error::Error for KvLayoutError {}

impl KvStore {
    /// Builds a store for `record_count` records, laid out from frame 0.
    ///
    /// # Errors
    ///
    /// Returns [`KvLayoutError`] if `record_count` is zero.
    pub fn new(record_count: u64) -> Result<Self, KvLayoutError> {
        if record_count == 0 {
            return Err(KvLayoutError("record count must be positive".into()));
        }
        let records_per_page = PAGE_SIZE / RECORD_BYTES;
        // Leave headroom for inserts (D/E grow the keyspace by up to 5 %).
        let data_pages = (record_count * 110 / 100).div_ceil(records_per_page).max(1);
        let log_pages = 4096;
        let memtable_capacity = 16 * 1024; // entries per flush
        let memtable_pages = memtable_capacity * RECORD_BYTES / PAGE_SIZE;
        let layout = KvLayout {
            data_base: 0,
            data_pages,
            log_base: data_pages,
            log_pages,
            memtable_base: data_pages + log_pages,
            memtable_pages,
        };
        Ok(KvStore {
            layout,
            record_count,
            log_cursor_bytes: 0,
            memtable_entries: 0,
            memtable_capacity,
            stats: KvStats::default(),
            next_vcpu: 0,
        })
    }

    /// The store's memory layout.
    pub fn layout(&self) -> KvLayout {
        self.layout
    }

    /// Total frames the store occupies; the VM must have at least this many.
    pub fn required_pages(&self) -> u64 {
        self.layout.memtable_base + self.layout.memtable_pages
    }

    /// Current number of records.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Cumulative operation statistics.
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    fn record_frame(&self, key: u64) -> PageId {
        let records_per_page = PAGE_SIZE / RECORD_BYTES;
        PageId::new(
            self.layout.data_base
                + (key % (self.layout.data_pages * records_per_page)) / records_per_page,
        )
    }

    fn pick_vcpu(&mut self, vm: &Vm) -> VcpuId {
        let v = VcpuId::new(self.next_vcpu % vm.config().vcpus);
        self.next_vcpu = self.next_vcpu.wrapping_add(1);
        v
    }

    fn append_log(&mut self, vm: &mut Vm, vcpu: VcpuId) {
        let before_page = self.log_cursor_bytes / PAGE_SIZE;
        self.log_cursor_bytes += RECORD_BYTES;
        let after_page = self.log_cursor_bytes / PAGE_SIZE;
        if after_page != before_page {
            let frame = self.layout.log_base + (before_page % self.layout.log_pages);
            vm.guest_write(PageId::new(frame), vcpu)
                .expect("kv store mutates only while the VM runs");
        }
    }

    fn bump_memtable(&mut self, vm: &mut Vm) {
        self.memtable_entries += 1;
        if self.memtable_entries >= self.memtable_capacity {
            self.memtable_entries = 0;
            self.stats.flushes += 1;
            // Flushing rewrites the whole SSTable region sequentially.
            write_sweep(
                vm,
                self.layout.memtable_base,
                self.layout.memtable_pages,
                0,
                self.layout.memtable_pages,
                vm.config().vcpus,
            );
        }
    }

    /// Point read: no pages are dirtied.
    pub fn read(&mut self, _vm: &mut Vm, _key: u64) {
        self.stats.reads += 1;
    }

    /// Update in place: dirties the record's data page, appends to the WAL,
    /// and contributes to the next memtable flush.
    pub fn update(&mut self, vm: &mut Vm, key: u64) {
        self.stats.updates += 1;
        let vcpu = self.pick_vcpu(vm);
        let frame = self.record_frame(key);
        vm.guest_write(frame, vcpu)
            .expect("kv store mutates only while the VM runs");
        self.append_log(vm, vcpu);
        self.bump_memtable(vm);
    }

    /// Insert: like an update, but also grows the keyspace.
    pub fn insert(&mut self, vm: &mut Vm) -> u64 {
        let key = self.record_count;
        self.record_count += 1;
        self.stats.inserts += 1;
        let vcpu = self.pick_vcpu(vm);
        let frame = self.record_frame(key);
        vm.guest_write(frame, vcpu)
            .expect("kv store mutates only while the VM runs");
        self.append_log(vm, vcpu);
        self.bump_memtable(vm);
        key
    }

    /// Range scan of `len` records starting at `key`: read-only.
    pub fn scan(&mut self, _vm: &mut Vm, _key: u64, _len: u64) {
        self.stats.scans += 1;
    }

    /// Read-modify-write: a read followed by an update of the same record.
    pub fn read_modify_write(&mut self, vm: &mut Vm, key: u64) {
        self.read(vm, key);
        self.update(vm, key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_hypervisor::cpuid::CpuidPolicy;
    use here_hypervisor::host::Hypervisor;
    use here_hypervisor::vm::VmConfig;
    use here_hypervisor::XenHypervisor;
    use here_sim_core::rate::ByteSize;

    fn setup(records: u64) -> (XenHypervisor, here_hypervisor::VmId, KvStore) {
        let store = KvStore::new(records).unwrap();
        let mem_mib = (store.required_pages() * PAGE_SIZE).div_ceil(1024 * 1024) + 1;
        let mut xen = XenHypervisor::new(ByteSize::from_gib(12));
        let cfg = VmConfig::new("kv", ByteSize::from_mib(mem_mib), 4)
            .unwrap()
            .with_cpuid(CpuidPolicy::xen_default());
        let id = xen.create_vm(cfg).unwrap();
        xen.shadow_op_enable_logdirty(id).unwrap();
        (xen, id, store)
    }

    #[test]
    fn rejects_empty_store() {
        assert!(KvStore::new(0).is_err());
    }

    #[test]
    fn reads_do_not_dirty_pages() {
        let (mut xen, id, mut store) = setup(1000);
        let vm = xen.vm_mut(id).unwrap();
        for k in 0..100 {
            store.read(vm, k);
            store.scan(vm, k, 50);
        }
        assert_eq!(vm.dirty().bitmap().count(), 0);
        assert_eq!(store.stats().reads, 100);
        assert_eq!(store.stats().scans, 100);
    }

    #[test]
    fn updates_dirty_data_and_wal_pages() {
        let (mut xen, id, mut store) = setup(1000);
        let vm = xen.vm_mut(id).unwrap();
        // 4 updates of the same record fill one WAL page (4 × 1 KiB).
        for _ in 0..4 {
            store.update(vm, 7);
        }
        let dirty = vm.dirty().bitmap().peek();
        let layout = store.layout();
        let data_dirty = dirty
            .iter()
            .filter(|p| p.frame() < layout.data_pages)
            .count();
        let log_dirty = dirty
            .iter()
            .filter(|p| (layout.log_base..layout.log_base + layout.log_pages).contains(&p.frame()))
            .count();
        assert_eq!(data_dirty, 1, "same record rewrites one data page");
        assert_eq!(log_dirty, 1, "4 KiB of WAL appended crosses one page");
    }

    #[test]
    fn memtable_flush_rewrites_the_sstable_region() {
        let (mut xen, id, mut store) = setup(1000);
        let layout = store.layout();
        let vm = xen.vm_mut(id).unwrap();
        let before = store.stats().flushes;
        for _ in 0..(16 * 1024) {
            store.update(vm, 3);
        }
        assert_eq!(store.stats().flushes, before + 1);
        let memtable_dirty = vm
            .dirty()
            .bitmap()
            .peek()
            .iter()
            .filter(|p| p.frame() >= layout.memtable_base)
            .count() as u64;
        assert_eq!(memtable_dirty, layout.memtable_pages);
    }

    #[test]
    fn inserts_grow_the_keyspace() {
        let (mut xen, id, mut store) = setup(100);
        let vm = xen.vm_mut(id).unwrap();
        let k1 = store.insert(vm);
        let k2 = store.insert(vm);
        assert_eq!(k1, 100);
        assert_eq!(k2, 101);
        assert_eq!(store.record_count(), 102);
    }

    #[test]
    fn rmw_counts_both_halves() {
        let (mut xen, id, mut store) = setup(100);
        let vm = xen.vm_mut(id).unwrap();
        store.read_modify_write(vm, 5);
        assert_eq!(store.stats().reads, 1);
        assert_eq!(store.stats().updates, 1);
    }

    #[test]
    fn distinct_keys_spread_across_data_pages() {
        let (mut xen, id, mut store) = setup(10_000);
        let vm = xen.vm_mut(id).unwrap();
        for k in (0..1000).step_by(8) {
            store.update(vm, k);
        }
        let layout = store.layout();
        let data_dirty = vm
            .dirty()
            .bitmap()
            .peek()
            .iter()
            .filter(|p| p.frame() < layout.data_pages)
            .count();
        // 125 keys stride-8 with 4 records/page = 125 distinct pages.
        assert!(data_dirty > 100, "got {data_dirty}");
    }
}
