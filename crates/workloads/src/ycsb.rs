//! The YCSB benchmark driver (workloads A–F) over the in-memory KV store.
//!
//! Mirrors the paper's configuration (§8.6): "1 million records and
//! 4 million operations" per run, with the six standard core workloads:
//!
//! | Workload | Mix | Distribution |
//! |---|---|---|
//! | A (update heavy) | 50 % read / 50 % update | scrambled Zipfian |
//! | B (read mostly) | 95 % read / 5 % update | scrambled Zipfian |
//! | C (read only) | 100 % read | scrambled Zipfian |
//! | D (read latest) | 95 % read / 5 % insert | latest |
//! | E (short ranges) | 95 % scan / 5 % insert | scrambled Zipfian |
//! | F (read-modify-write) | 50 % read / 50 % RMW | scrambled Zipfian |

use std::fmt;

use here_hypervisor::vm::Vm;
use here_sim_core::rng::SimRng;
use here_sim_core::time::{SimDuration, SimTime};

use crate::kv::KvStore;
use crate::traits::{write_sweep, Progress, Workload};
use crate::zipf::{KeyChooser, LatestChooser, ScrambledZipfianChooser};

/// The six core YCSB workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum YcsbMix {
    A,
    B,
    C,
    D,
    E,
    F,
}

/// All mixes, in paper order.
pub const ALL_MIXES: [YcsbMix; 6] = [
    YcsbMix::A,
    YcsbMix::B,
    YcsbMix::C,
    YcsbMix::D,
    YcsbMix::E,
    YcsbMix::F,
];

impl YcsbMix {
    /// Lowercase letter label.
    pub fn label(self) -> &'static str {
        match self {
            YcsbMix::A => "a",
            YcsbMix::B => "b",
            YcsbMix::C => "c",
            YcsbMix::D => "d",
            YcsbMix::E => "e",
            YcsbMix::F => "f",
        }
    }

    /// (read, update, insert, scan, rmw) proportions.
    fn proportions(self) -> [f64; 5] {
        match self {
            YcsbMix::A => [0.50, 0.50, 0.0, 0.0, 0.0],
            YcsbMix::B => [0.95, 0.05, 0.0, 0.0, 0.0],
            YcsbMix::C => [1.0, 0.0, 0.0, 0.0, 0.0],
            YcsbMix::D => [0.95, 0.0, 0.05, 0.0, 0.0],
            YcsbMix::E => [0.0, 0.0, 0.05, 0.95, 0.0],
            YcsbMix::F => [0.50, 0.0, 0.0, 0.0, 0.50],
        }
    }
}

impl fmt::Display for YcsbMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload {}", self.label().to_uppercase())
    }
}

/// Pages of client-heap churn per operation. The paper runs the *whole*
/// YCSB suite — Java client included — inside the protected VM (§8.6:
/// "YCSB benchmark suite running on a single VM"), so garbage-collector
/// churn over the client heap dominates the VM's dirty-page pressure. Each
/// operation allocates result/request objects that the collector later
/// rewrites.
pub const GC_PAGES_PER_OP: u64 = 8;

/// Client heap pages per database record (≈ 3 GiB of heap for the paper's
/// 1 M-record runs).
pub const HEAP_PAGES_PER_RECORD: f64 = 0.786;

/// Per-operation CPU service times (per vCPU), calibrated so that the
/// baseline (no replication) throughputs land in the paper's Fig. 11 range
/// (~42 kops/s for Workload A on 4 vCPUs).
mod service_us {
    pub const READ: f64 = 70.0;
    pub const UPDATE: f64 = 110.0;
    pub const INSERT: f64 = 120.0;
    pub const SCAN: f64 = 400.0;
    pub const RMW: f64 = 180.0;
}

/// Configuration of one YCSB run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YcsbSpec {
    /// Which core workload.
    pub mix: YcsbMix,
    /// Records loaded before the run.
    pub records: u64,
    /// Operations the run executes.
    pub operations: u64,
}

impl YcsbSpec {
    /// The paper's configuration: 1 M records, 4 M operations.
    pub fn paper(mix: YcsbMix) -> Self {
        YcsbSpec {
            mix,
            records: 1_000_000,
            operations: 4_000_000,
        }
    }

    /// A scaled-down configuration that preserves the replication
    /// dynamics: the client heap stays large enough that the dynamic
    /// manager's equilibrium period sits comfortably above its adjustment
    /// step, as at paper scale.
    pub fn small(mix: YcsbMix) -> Self {
        YcsbSpec {
            mix,
            records: 300_000,
            operations: 1_500_000,
        }
    }

    /// Mean CPU service time per operation of this mix, in microseconds.
    pub fn mean_service_us(&self) -> f64 {
        let [r, u, i, s, f] = self.mix.proportions();
        r * service_us::READ
            + u * service_us::UPDATE
            + i * service_us::INSERT
            + s * service_us::SCAN
            + f * service_us::RMW
    }

    /// The throughput an unreplicated VM with `vcpus` vCPUs sustains, in
    /// operations per second.
    pub fn baseline_ops_per_sec(&self, vcpus: u32) -> f64 {
        vcpus as f64 * 1e6 / self.mean_service_us()
    }
}

/// The YCSB driver.
///
/// # Examples
///
/// ```
/// use here_workloads::ycsb::{Ycsb, YcsbMix, YcsbSpec};
/// use here_workloads::traits::Workload;
///
/// let driver = Ycsb::new(YcsbSpec::small(YcsbMix::A)).unwrap();
/// assert_eq!(driver.name(), "ycsb-a");
/// ```
#[derive(Debug)]
pub struct Ycsb {
    name: String,
    spec: YcsbSpec,
    store: KvStore,
    chooser: Box<dyn KeyChooser>,
    completed: u64,
    cpu_credit_us: f64,
    heap_base: u64,
    heap_pages: u64,
    gc_cursor: u64,
}

impl Ycsb {
    /// Creates a driver for `spec`.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::kv::KvLayoutError`] if the record count is
    /// invalid.
    pub fn new(spec: YcsbSpec) -> Result<Self, crate::kv::KvLayoutError> {
        let store = KvStore::new(spec.records)?;
        let chooser: Box<dyn KeyChooser> = match spec.mix {
            YcsbMix::D => Box::new(LatestChooser::new(spec.records)),
            _ => Box::new(ScrambledZipfianChooser::new(spec.records)),
        };
        let heap_base = store.required_pages();
        let heap_pages = ((spec.records as f64 * HEAP_PAGES_PER_RECORD) as u64).max(64);
        Ok(Ycsb {
            name: format!("ycsb-{}", spec.mix.label()),
            spec,
            store,
            chooser,
            completed: 0,
            cpu_credit_us: 0.0,
            heap_base,
            heap_pages,
            gc_cursor: 0,
        })
    }

    /// The run configuration.
    pub fn spec(&self) -> YcsbSpec {
        self.spec
    }

    /// Operations completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// The backing store (for layout/statistics inspection).
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Guest pages the store *plus the in-VM client heap* need; callers
    /// size the VM accordingly.
    pub fn required_pages(&self) -> u64 {
        self.heap_base + self.heap_pages
    }

    /// Client heap pages churned by the garbage collector.
    pub fn heap_pages(&self) -> u64 {
        self.heap_pages
    }

    fn run_one_op(&mut self, vm: &mut Vm, rng: &mut SimRng) -> f64 {
        let [r, u, i, s, _f] = self.spec.mix.proportions();
        let dice = rng.unit_f64();
        let key = self.chooser.next_key(rng);
        if dice < r {
            self.store.read(vm, key);
            service_us::READ
        } else if dice < r + u {
            self.store.update(vm, key);
            service_us::UPDATE
        } else if dice < r + u + i {
            self.store.insert(vm);
            self.chooser.grow(self.store.record_count());
            service_us::INSERT
        } else if dice < r + u + i + s {
            let len = rng.range_inclusive(1, 100);
            self.store.scan(vm, key, len);
            service_us::SCAN
        } else {
            self.store.read_modify_write(vm, key);
            service_us::RMW
        }
    }
}

impl Workload for Ycsb {
    fn name(&self) -> &str {
        &self.name
    }

    fn advance(
        &mut self,
        _now: SimTime,
        dt: SimDuration,
        vm: &mut Vm,
        rng: &mut SimRng,
    ) -> Progress {
        self.cpu_credit_us += dt.as_secs_f64() * 1e6 * vm.config().vcpus as f64;
        let mut done_this_slice = 0u64;
        while self.cpu_credit_us > 0.0 && self.completed < self.spec.operations {
            let cost = self.run_one_op(vm, rng);
            self.cpu_credit_us -= cost;
            self.completed += 1;
            done_this_slice += 1;
        }
        // The in-VM client's garbage collector churns the heap in
        // proportion to the operations served.
        if done_this_slice > 0 {
            self.gc_cursor = write_sweep(
                vm,
                self.heap_base,
                self.heap_pages,
                self.gc_cursor,
                done_this_slice * GC_PAGES_PER_OP,
                vm.config().vcpus,
            );
        }
        Progress::ops_only(done_this_slice as f64)
    }

    fn is_done(&self) -> bool {
        self.completed >= self.spec.operations
    }

    fn reset(&mut self) {
        self.completed = 0;
        self.cpu_credit_us = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_hypervisor::cpuid::CpuidPolicy;
    use here_hypervisor::host::Hypervisor;
    use here_hypervisor::memory::PAGE_SIZE;
    use here_hypervisor::vm::VmConfig;
    use here_hypervisor::XenHypervisor;
    use here_sim_core::rate::ByteSize;

    fn setup(spec: YcsbSpec) -> (XenHypervisor, here_hypervisor::VmId, Ycsb) {
        let driver = Ycsb::new(spec).unwrap();
        let mem_mib = (driver.required_pages() * PAGE_SIZE).div_ceil(1024 * 1024) + 4;
        let mut xen = XenHypervisor::new(ByteSize::from_gib(12));
        let cfg = VmConfig::new("ycsb", ByteSize::from_mib(mem_mib), 4)
            .unwrap()
            .with_cpuid(CpuidPolicy::xen_default());
        let id = xen.create_vm(cfg).unwrap();
        xen.shadow_op_enable_logdirty(id).unwrap();
        (xen, id, driver)
    }

    #[test]
    fn baseline_throughput_matches_calibration() {
        let a = YcsbSpec::paper(YcsbMix::A);
        let tput = a.baseline_ops_per_sec(4);
        // 4 vCPUs / 90 us mean service = ~44.4 kops/s (paper: 42.8 kops/s).
        assert!((40_000.0..50_000.0).contains(&tput), "got {tput}");
        // E is dominated by scans and much slower.
        let e = YcsbSpec::paper(YcsbMix::E).baseline_ops_per_sec(4);
        assert!(e < 12_000.0, "got {e}");
    }

    #[test]
    fn driver_completes_the_configured_operations() {
        let (mut xen, id, mut driver) = setup(YcsbSpec {
            mix: YcsbMix::A,
            records: 1000,
            operations: 2000,
        });
        let mut rng = SimRng::seed_from(11);
        let vm = xen.vm_mut(id).unwrap();
        let mut total = 0.0;
        let mut guard = 0;
        while !driver.is_done() {
            total += driver
                .advance(SimTime::ZERO, SimDuration::from_millis(10), vm, &mut rng)
                .ops;
            guard += 1;
            assert!(guard < 10_000, "driver failed to converge");
        }
        assert_eq!(total as u64, 2000);
        assert_eq!(driver.completed(), 2000);
        // A is 50 % updates: the store must have seen roughly half.
        let updates = driver.store().stats().updates;
        assert!((800..1200).contains(&updates), "updates {updates}");
    }

    #[test]
    fn read_only_mix_dirties_only_the_client_heap() {
        let (mut xen, id, mut driver) = setup(YcsbSpec {
            mix: YcsbMix::C,
            records: 1000,
            operations: 1000,
        });
        let heap_base = driver.store().required_pages();
        let mut rng = SimRng::seed_from(11);
        let vm = xen.vm_mut(id).unwrap();
        while !driver.is_done() {
            driver.advance(SimTime::ZERO, SimDuration::from_millis(50), vm, &mut rng);
        }
        let dirty = vm.dirty().bitmap().peek();
        assert!(!dirty.is_empty(), "GC churn must dirty the client heap");
        assert!(
            dirty.iter().all(|p| p.frame() >= heap_base),
            "reads must not dirty the store region"
        );
    }

    #[test]
    fn update_heavy_mix_dirties_many_pages() {
        let (mut xen, id, mut driver) = setup(YcsbSpec {
            mix: YcsbMix::A,
            records: 10_000,
            operations: 5_000,
        });
        let mut rng = SimRng::seed_from(11);
        let vm = xen.vm_mut(id).unwrap();
        while !driver.is_done() {
            driver.advance(SimTime::ZERO, SimDuration::from_millis(50), vm, &mut rng);
        }
        assert!(vm.dirty().bitmap().count() > 100);
    }

    #[test]
    fn insert_mixes_grow_the_store() {
        let (mut xen, id, mut driver) = setup(YcsbSpec {
            mix: YcsbMix::D,
            records: 1000,
            operations: 2000,
        });
        let mut rng = SimRng::seed_from(11);
        let vm = xen.vm_mut(id).unwrap();
        while !driver.is_done() {
            driver.advance(SimTime::ZERO, SimDuration::from_millis(50), vm, &mut rng);
        }
        // ~5 % of 2000 ops are inserts.
        let grown = driver.store().record_count() - 1000;
        assert!((50..150).contains(&grown), "grown {grown}");
    }

    #[test]
    fn throughput_scales_with_cpu_time() {
        let (mut xen, id, mut driver) = setup(YcsbSpec {
            mix: YcsbMix::B,
            records: 1000,
            operations: u64::MAX,
        });
        let mut rng = SimRng::seed_from(11);
        let vm = xen.vm_mut(id).unwrap();
        let one = driver
            .advance(SimTime::ZERO, SimDuration::from_millis(100), vm, &mut rng)
            .ops;
        let two = driver
            .advance(SimTime::ZERO, SimDuration::from_millis(200), vm, &mut rng)
            .ops;
        let ratio = two / one;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }
}
