//! Sockperf-like network latency workload (under-load mode).
//!
//! The paper's Fig. 17 runs Sockperf "under-load", where the VM replies to
//! a stream of incoming packets from a remote server, with three payload
//! configurations: 64 B ("load a"), 1400 B ("load b") and 8900 B ("load c").
//! Under asynchronous state replication each reply sits in the outgoing
//! I/O buffer until the next checkpoint commits, which is why replicated
//! latency is dominated by checkpoint frequency rather than payload size.

use here_hypervisor::vm::Vm;
use here_hypervisor::{PageId, VcpuId};
use here_sim_core::rate::ByteSize;
use here_sim_core::rng::SimRng;
use here_sim_core::time::{SimDuration, SimTime};

use crate::traits::{Emission, Progress, Workload};

/// The three payload configurations of Fig. 17.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SockperfLoad {
    /// 64-byte packets.
    A,
    /// 1400-byte packets.
    B,
    /// 8900-byte (jumbo) packets.
    C,
}

/// All loads, in paper order.
pub const ALL_LOADS: [SockperfLoad; 3] = [SockperfLoad::A, SockperfLoad::B, SockperfLoad::C];

impl SockperfLoad {
    /// The payload size of this load.
    pub fn payload(self) -> ByteSize {
        match self {
            SockperfLoad::A => ByteSize::from_bytes(64),
            SockperfLoad::B => ByteSize::from_bytes(1400),
            SockperfLoad::C => ByteSize::from_bytes(8900),
        }
    }

    /// Lowercase label ("load a").
    pub fn label(self) -> &'static str {
        match self {
            SockperfLoad::A => "a",
            SockperfLoad::B => "b",
            SockperfLoad::C => "c",
        }
    }
}

/// Default request rate of the under-load stream (messages per second).
pub const DEFAULT_RATE: f64 = 500.0;

/// Guest-side service time to turn a request into a reply.
pub const SERVICE_TIME: SimDuration = SimDuration::from_micros(12);

/// The Sockperf responder running inside the protected VM.
///
/// # Examples
///
/// ```
/// use here_workloads::sockperf::{Sockperf, SockperfLoad};
/// use here_workloads::traits::Workload;
///
/// let s = Sockperf::new(SockperfLoad::B);
/// assert_eq!(s.name(), "sockperf-b");
/// ```
#[derive(Debug, Clone)]
pub struct Sockperf {
    name: String,
    load: SockperfLoad,
    rate: f64,
    phase: f64,
    replies: u64,
}

impl Sockperf {
    /// A responder for `load` at the default request rate.
    pub fn new(load: SockperfLoad) -> Self {
        Sockperf {
            name: format!("sockperf-{}", load.label()),
            load,
            rate: DEFAULT_RATE,
            // `phase` is the in-slice offset of the next *reply*; the first
            // request arrives at t = 0 and its reply is ready one service
            // time later.
            phase: SERVICE_TIME.as_secs_f64(),
            replies: 0,
        }
    }

    /// Overrides the request rate (messages per second).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn with_rate(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "request rate must be positive");
        self.rate = rate;
        self
    }

    /// The configured load.
    pub fn load(&self) -> SockperfLoad {
        self.load
    }

    /// Replies emitted so far.
    pub fn replies(&self) -> u64 {
        self.replies
    }
}

impl Workload for Sockperf {
    fn name(&self) -> &str {
        &self.name
    }

    fn advance(
        &mut self,
        _now: SimTime,
        dt: SimDuration,
        vm: &mut Vm,
        _rng: &mut SimRng,
    ) -> Progress {
        // Replies are emitted with deterministic spacing 1/rate (requests
        // arrive at that rate and each is answered one service time later);
        // `phase` carries the offset of the next reply across slices so no
        // reply is ever lost at a boundary.
        let spacing = 1.0 / self.rate;
        let secs = dt.as_secs_f64();
        let mut emissions = Vec::new();
        let mut t = self.phase;
        while t < secs {
            emissions.push(Emission {
                offset: SimDuration::from_secs_f64(t),
                size: self.load.payload(),
            });
            // Socket buffers dirty a page now and then; network-bound
            // workloads have a tiny dirty footprint.
            if self.replies.is_multiple_of(64) {
                vm.guest_write(PageId::new(self.replies / 64 % 16), VcpuId::new(0))
                    .expect("workload advances only while the VM runs");
            }
            self.replies += 1;
            t += spacing;
        }
        self.phase = t - secs;
        let ops = emissions.len() as f64;
        Progress { ops, emissions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_hypervisor::cpuid::CpuidPolicy;
    use here_hypervisor::host::Hypervisor;
    use here_hypervisor::vm::VmConfig;
    use here_hypervisor::XenHypervisor;

    fn setup() -> (XenHypervisor, here_hypervisor::VmId) {
        let mut xen = XenHypervisor::new(ByteSize::from_gib(12));
        let cfg = VmConfig::new("sp", ByteSize::from_mib(4), 2)
            .unwrap()
            .with_cpuid(CpuidPolicy::xen_default());
        let id = xen.create_vm(cfg).unwrap();
        (xen, id)
    }

    #[test]
    fn payload_sizes_match_the_paper() {
        assert_eq!(SockperfLoad::A.payload(), ByteSize::from_bytes(64));
        assert_eq!(SockperfLoad::B.payload(), ByteSize::from_bytes(1400));
        assert_eq!(SockperfLoad::C.payload(), ByteSize::from_bytes(8900));
    }

    #[test]
    fn replies_arrive_at_the_request_rate() {
        let (mut xen, id) = setup();
        let mut s = Sockperf::new(SockperfLoad::A).with_rate(1000.0);
        let mut rng = SimRng::seed_from(1);
        let vm = xen.vm_mut(id).unwrap();
        let p = s.advance(SimTime::ZERO, SimDuration::from_secs(1), vm, &mut rng);
        assert!((995.0..=1001.0).contains(&p.ops), "got {}", p.ops);
        assert_eq!(p.emissions.len(), p.ops as usize);
    }

    #[test]
    fn emission_offsets_are_within_the_slice_and_ordered() {
        let (mut xen, id) = setup();
        let mut s = Sockperf::new(SockperfLoad::C).with_rate(100.0);
        let mut rng = SimRng::seed_from(1);
        let vm = xen.vm_mut(id).unwrap();
        let dt = SimDuration::from_millis(500);
        let p = s.advance(SimTime::ZERO, dt, vm, &mut rng);
        let mut prev = SimDuration::ZERO;
        for e in &p.emissions {
            assert!(e.offset < dt);
            assert!(e.offset >= prev);
            prev = e.offset;
            assert_eq!(e.size, ByteSize::from_bytes(8900));
        }
    }

    #[test]
    fn rate_carries_across_slice_boundaries() {
        let (mut xen, id) = setup();
        let mut s = Sockperf::new(SockperfLoad::B).with_rate(7.0);
        let mut rng = SimRng::seed_from(1);
        let vm = xen.vm_mut(id).unwrap();
        let mut total = 0.0;
        for _ in 0..100 {
            total += s
                .advance(SimTime::ZERO, SimDuration::from_millis(100), vm, &mut rng)
                .ops;
        }
        // 10 s at 7 msg/s = 70 replies (± boundary effects).
        assert!((68.0..=72.0).contains(&total), "got {total}");
    }
}
