//! # here-workloads — guest applications for the HERE evaluation
//!
//! Implementations of every workload the paper's evaluation (§8) runs
//! inside the protected VM:
//!
//! - [`memstress`]: the write-intensive memory microbenchmark (Figs. 5–9);
//! - [`ycsb`] over [`kv`]: the YCSB database suite, workloads A–F, against
//!   an in-memory LSM-flavoured store standing in for RocksDB
//!   (Figs. 10–13);
//! - [`spec`]: SPEC CPU 2006-like kernels — gcc, cactuBSSN, namd, lbm
//!   (Figs. 14–16);
//! - [`sockperf`]: the network latency responder (Fig. 17);
//! - [`phased`]: time-varying loads for the dynamic period manager
//!   (Fig. 9);
//! - [`zipf`]: YCSB's request-distribution generators.
//!
//! All workloads implement [`traits::Workload`]: they are advanced over
//! virtual-time slices, mutate guest memory through the VM's normal write
//! path (so dirty tracking observes them exactly as it would a real guest),
//! and report application-level progress.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod idle;
pub mod kv;
pub mod memstress;
pub mod phased;
pub mod sockperf;
pub mod spec;
pub mod traits;
pub mod ycsb;
pub mod zipf;

pub use idle::IdleGuest;
pub use memstress::MemStress;
pub use phased::PhasedMemStress;
pub use sockperf::Sockperf;
pub use spec::SpecKernel;
pub use traits::{Progress, Workload};
pub use ycsb::{Ycsb, YcsbMix, YcsbSpec};
