//! SPEC CPU 2006-like compute kernels.
//!
//! The paper selects four SPEC CPU 2006 benchmarks (§8.6): **gcc**
//! (compiler: pointer-chasing over IR graphs), **cactuBSSN** (numerical
//! relativity: 3-D stencil sweeps), **namd** (molecular dynamics: particle
//! force arrays), and **lbm** (lattice-Boltzmann: whole-array streaming).
//! What replication sees of each is its *memory footprint*, its *dirty
//! rate*, and its *access pattern* (sequential sweep vs. random scatter);
//! the kernels here reproduce those profiles, with throughput reported as a
//! SPEC-style rate (ops/sec).

use here_hypervisor::vm::Vm;
use here_hypervisor::{PageId, VcpuId};
use here_sim_core::rng::SimRng;
use here_sim_core::time::{SimDuration, SimTime};

use crate::traits::{write_sweep, Progress, Workload};

/// The four benchmarks the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SpecBenchmark {
    Gcc,
    CactuBssn,
    Namd,
    Lbm,
}

/// All benchmarks, in paper order.
pub const ALL_BENCHMARKS: [SpecBenchmark; 4] = [
    SpecBenchmark::Gcc,
    SpecBenchmark::CactuBssn,
    SpecBenchmark::Namd,
    SpecBenchmark::Lbm,
];

/// The static profile of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecProfile {
    /// Short name.
    pub name: &'static str,
    /// Resident working set in MiB.
    pub footprint_mib: u64,
    /// Baseline rate in operations per second on the unreplicated VM.
    pub baseline_rate: f64,
    /// Pages dirtied per second of guest execution.
    pub dirty_pages_per_sec: u64,
    /// Fraction of dirtying that is random scatter (vs. sequential sweep).
    pub random_fraction: f64,
}

impl SpecBenchmark {
    /// The benchmark's profile.
    pub fn profile(self) -> SpecProfile {
        match self {
            // Footprints are the *aggregate* of the SPECrate-style copies
            // the paper's "Rate (Ops/Sec)" metric implies (multiple copies
            // of each benchmark run concurrently on the 4-vCPU VM).
            SpecBenchmark::Gcc => SpecProfile {
                name: "gcc",
                footprint_mib: 1800,
                baseline_rate: 2.2,
                dirty_pages_per_sec: 180_000,
                random_fraction: 0.70,
            },
            SpecBenchmark::CactuBssn => SpecProfile {
                name: "cactuBSSN",
                footprint_mib: 1400,
                baseline_rate: 1.4,
                dirty_pages_per_sec: 600_000,
                random_fraction: 0.10,
            },
            SpecBenchmark::Namd => SpecProfile {
                name: "namd",
                footprint_mib: 1000,
                baseline_rate: 5.6,
                dirty_pages_per_sec: 240_000,
                random_fraction: 0.35,
            },
            SpecBenchmark::Lbm => SpecProfile {
                name: "lbm",
                footprint_mib: 1700,
                baseline_rate: 3.1,
                dirty_pages_per_sec: 1_000_000,
                random_fraction: 0.05,
            },
        }
    }

    /// Short name.
    pub fn name(self) -> &'static str {
        self.profile().name
    }
}

/// A running SPEC-like kernel.
///
/// # Examples
///
/// ```
/// use here_workloads::spec::{SpecBenchmark, SpecKernel};
/// use here_workloads::traits::Workload;
///
/// let k = SpecKernel::new(SpecBenchmark::Lbm);
/// assert_eq!(k.name(), "lbm");
/// ```
#[derive(Debug, Clone)]
pub struct SpecKernel {
    benchmark: SpecBenchmark,
    profile: SpecProfile,
    cursor: u64,
    write_carry: f64,
}

impl SpecKernel {
    /// Creates a kernel for `benchmark`.
    pub fn new(benchmark: SpecBenchmark) -> Self {
        SpecKernel {
            benchmark,
            profile: benchmark.profile(),
            cursor: 0,
            write_carry: 0.0,
        }
    }

    /// Which benchmark this is.
    pub fn benchmark(&self) -> SpecBenchmark {
        self.benchmark
    }

    /// The profile in effect.
    pub fn profile(&self) -> SpecProfile {
        self.profile
    }

    fn footprint_pages(&self, vm: &Vm) -> u64 {
        let want = self.profile.footprint_mib * 1024 * 1024 / here_hypervisor::PAGE_SIZE;
        want.min(vm.memory().num_pages()).max(1)
    }
}

impl Workload for SpecKernel {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn advance(
        &mut self,
        _now: SimTime,
        dt: SimDuration,
        vm: &mut Vm,
        rng: &mut SimRng,
    ) -> Progress {
        let secs = dt.as_secs_f64();
        let want = self.profile.dirty_pages_per_sec as f64 * secs + self.write_carry;
        let writes = want as u64;
        self.write_carry = want - writes as f64;

        let pages = self.footprint_pages(vm);
        let vcpus = vm.config().vcpus;
        let random_writes = ((writes as f64 * self.profile.random_fraction) as u64).min(pages * 2);
        let seq_writes = writes.saturating_sub(random_writes);
        if seq_writes > 0 {
            self.cursor = write_sweep(vm, 0, pages, self.cursor, seq_writes, vcpus);
        }
        for i in 0..random_writes {
            let frame = rng.below(pages);
            let vcpu = VcpuId::new((i % vcpus as u64) as u32);
            vm.guest_write(PageId::new(frame), vcpu)
                .expect("workload advances only while the VM runs");
        }
        Progress::ops_only(self.profile.baseline_rate * secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_hypervisor::cpuid::CpuidPolicy;
    use here_hypervisor::host::Hypervisor;
    use here_hypervisor::vm::VmConfig;
    use here_hypervisor::XenHypervisor;
    use here_sim_core::rate::ByteSize;

    fn setup() -> (XenHypervisor, here_hypervisor::VmId) {
        let mut xen = XenHypervisor::new(ByteSize::from_gib(12));
        let cfg = VmConfig::new("spec", ByteSize::from_mib(64), 4)
            .unwrap()
            .with_cpuid(CpuidPolicy::xen_default());
        let id = xen.create_vm(cfg).unwrap();
        xen.shadow_op_enable_logdirty(id).unwrap();
        (xen, id)
    }

    #[test]
    fn profiles_are_distinct_and_sane() {
        let mut names = std::collections::HashSet::new();
        for b in ALL_BENCHMARKS {
            let p = b.profile();
            assert!(names.insert(p.name));
            assert!(p.baseline_rate > 0.0);
            assert!((0.0..=1.0).contains(&p.random_fraction));
        }
        // lbm dirties fastest; gcc is the most random.
        assert!(
            SpecBenchmark::Lbm.profile().dirty_pages_per_sec
                > SpecBenchmark::Gcc.profile().dirty_pages_per_sec
        );
        assert!(
            SpecBenchmark::Gcc.profile().random_fraction
                > SpecBenchmark::CactuBssn.profile().random_fraction
        );
    }

    #[test]
    fn ops_accrue_at_the_baseline_rate() {
        let (mut xen, id) = setup();
        let mut k = SpecKernel::new(SpecBenchmark::Namd);
        let mut rng = SimRng::seed_from(1);
        let vm = xen.vm_mut(id).unwrap();
        let p = k.advance(SimTime::ZERO, SimDuration::from_secs(10), vm, &mut rng);
        assert!((p.ops - 56.0).abs() < 0.01);
    }

    #[test]
    fn footprint_is_clamped_to_vm_memory() {
        let (mut xen, id) = setup();
        // VM has 64 MiB = 16384 pages; lbm wants far more.
        let mut k = SpecKernel::new(SpecBenchmark::Lbm);
        let mut rng = SimRng::seed_from(1);
        let vm = xen.vm_mut(id).unwrap();
        k.advance(SimTime::ZERO, SimDuration::from_secs(2), vm, &mut rng);
        assert!(vm.dirty().bitmap().count() <= vm.memory().num_pages());
        assert!(
            vm.dirty().bitmap().count() > 10_000,
            "lbm should dirty most of the VM"
        );
    }

    #[test]
    fn sequential_kernels_produce_contiguous_dirty_runs() {
        let (mut xen, id) = setup();
        let mut k = SpecKernel::new(SpecBenchmark::CactuBssn);
        let mut rng = SimRng::seed_from(1);
        let vm = xen.vm_mut(id).unwrap();
        // A slice that covers ~1/4 of the footprint sweep.
        k.advance(SimTime::ZERO, SimDuration::from_millis(25), vm, &mut rng);
        let dirty = vm.dirty().bitmap().peek();
        assert!(!dirty.is_empty());
        // Mostly sequential: >= 80 % of dirty frames have a dirty successor
        // or predecessor.
        let set: std::collections::HashSet<u64> = dirty.iter().map(|p| p.frame()).collect();
        let adjacent = dirty
            .iter()
            .filter(|p| {
                set.contains(&(p.frame() + 1))
                    || p.frame().checked_sub(1).is_some_and(|f| set.contains(&f))
            })
            .count();
        assert!(adjacent as f64 / dirty.len() as f64 > 0.8);
    }
}
