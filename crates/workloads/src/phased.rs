//! Time-varying workloads for the dynamic-period experiments.
//!
//! Fig. 9 drives the memory microbenchmark through load phases — "20 % of
//! the memory at first, increasing to 80 % afterwards and falling back to
//! 5 % at the end" — and watches the checkpoint period manager adapt.

use here_hypervisor::vm::Vm;
use here_sim_core::rng::SimRng;
use here_sim_core::time::{SimDuration, SimTime};

use crate::memstress::MemStress;
use crate::traits::{Progress, Workload};

/// One phase of a phased memory load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// When the phase begins.
    pub at: SimTime,
    /// Memory percentage the microbenchmark uses from `at` onwards.
    pub percent: u8,
}

/// The paper's Fig. 9 load schedule: 20 % → 80 % (t = 20 s) → 5 %
/// (t = 125 s).
pub fn fig9_schedule() -> Vec<Phase> {
    vec![
        Phase {
            at: SimTime::ZERO,
            percent: 20,
        },
        Phase {
            at: SimTime::from_secs(20),
            percent: 80,
        },
        Phase {
            at: SimTime::from_secs(125),
            percent: 5,
        },
    ]
}

/// A memory microbenchmark whose working-set percentage follows a schedule.
///
/// # Examples
///
/// ```
/// use here_workloads::phased::{fig9_schedule, PhasedMemStress};
/// use here_workloads::traits::Workload;
///
/// let w = PhasedMemStress::new(fig9_schedule()).unwrap();
/// assert_eq!(w.name(), "phased-memstress");
/// ```
#[derive(Debug, Clone)]
pub struct PhasedMemStress {
    inner: MemStress,
    phases: Vec<Phase>,
    applied: usize,
    last_now: SimTime,
}

/// Error building a phased workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseError(pub String);

impl std::fmt::Display for PhaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "phase schedule error: {}", self.0)
    }
}

impl std::error::Error for PhaseError {}

impl PhasedMemStress {
    /// Creates a phased microbenchmark following `phases`.
    ///
    /// # Errors
    ///
    /// Returns [`PhaseError`] if the schedule is empty, does not start at
    /// time zero, or is not strictly increasing in time.
    pub fn new(phases: Vec<Phase>) -> Result<Self, PhaseError> {
        if phases.is_empty() {
            return Err(PhaseError("schedule must have at least one phase".into()));
        }
        if phases[0].at != SimTime::ZERO {
            return Err(PhaseError("first phase must start at time zero".into()));
        }
        if phases.windows(2).any(|w| w[1].at <= w[0].at) {
            return Err(PhaseError("phase times must be strictly increasing".into()));
        }
        let inner = MemStress::with_percent(phases[0].percent);
        Ok(PhasedMemStress {
            inner,
            phases,
            applied: 1,
            last_now: SimTime::ZERO,
        })
    }

    /// The load percentage in effect at instant `now`.
    pub fn percent_at(&self, now: SimTime) -> u8 {
        self.phases
            .iter()
            .rev()
            .find(|p| p.at <= now)
            .map(|p| p.percent)
            .unwrap_or(self.phases[0].percent)
    }

    /// Overrides the inner write rate (pages per second).
    pub fn with_rate(mut self, pages_per_sec: u64) -> Self {
        self.inner = self.inner.with_rate(pages_per_sec);
        self
    }
}

impl Workload for PhasedMemStress {
    fn name(&self) -> &str {
        "phased-memstress"
    }

    fn advance(
        &mut self,
        now: SimTime,
        dt: SimDuration,
        vm: &mut Vm,
        rng: &mut SimRng,
    ) -> Progress {
        if now < self.last_now {
            // The engine rebased the workload clock (end of a warmup):
            // replay the schedule from the top.
            self.applied = 0;
            self.inner.set_percent(self.phases[0].percent);
        }
        self.last_now = now;
        while self.applied < self.phases.len() && self.phases[self.applied].at <= now {
            self.inner.set_percent(self.phases[self.applied].percent);
            self.applied += 1;
        }
        self.inner.advance(now, dt, vm, rng)
    }

    fn reset(&mut self) {
        self.applied = 1;
        self.last_now = SimTime::ZERO;
        self.inner.set_percent(self.phases[0].percent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_hypervisor::cpuid::CpuidPolicy;
    use here_hypervisor::host::Hypervisor;
    use here_hypervisor::vm::VmConfig;
    use here_hypervisor::XenHypervisor;
    use here_sim_core::rate::ByteSize;

    #[test]
    fn schedule_validation() {
        assert!(PhasedMemStress::new(vec![]).is_err());
        assert!(PhasedMemStress::new(vec![Phase {
            at: SimTime::from_secs(1),
            percent: 10,
        }])
        .is_err());
        assert!(PhasedMemStress::new(vec![
            Phase {
                at: SimTime::ZERO,
                percent: 10
            },
            Phase {
                at: SimTime::ZERO,
                percent: 20
            },
        ])
        .is_err());
        assert!(PhasedMemStress::new(fig9_schedule()).is_ok());
    }

    #[test]
    fn percent_at_follows_the_schedule() {
        let w = PhasedMemStress::new(fig9_schedule()).unwrap();
        assert_eq!(w.percent_at(SimTime::from_secs(0)), 20);
        assert_eq!(w.percent_at(SimTime::from_secs(19)), 20);
        assert_eq!(w.percent_at(SimTime::from_secs(20)), 80);
        assert_eq!(w.percent_at(SimTime::from_secs(124)), 80);
        assert_eq!(w.percent_at(SimTime::from_secs(300)), 5);
    }

    #[test]
    fn phase_transitions_change_the_dirty_set_size() {
        let mut xen = XenHypervisor::new(ByteSize::from_gib(12));
        let cfg = VmConfig::new("p", ByteSize::from_mib(8), 2)
            .unwrap()
            .with_cpuid(CpuidPolicy::xen_default());
        let id = xen.create_vm(cfg).unwrap();
        xen.shadow_op_enable_logdirty(id).unwrap();
        let mut w = PhasedMemStress::new(vec![
            Phase {
                at: SimTime::ZERO,
                percent: 10,
            },
            Phase {
                at: SimTime::from_secs(10),
                percent: 80,
            },
        ])
        .unwrap()
        .with_rate(10_000_000);
        let mut rng = SimRng::seed_from(1);
        let vm = xen.vm_mut(id).unwrap();
        w.advance(SimTime::ZERO, SimDuration::from_secs(1), vm, &mut rng);
        let small = vm.dirty_mut().bitmap_mut().drain().len();
        w.advance(
            SimTime::from_secs(11),
            SimDuration::from_secs(1),
            vm,
            &mut rng,
        );
        let large = vm.dirty_mut().bitmap_mut().drain().len();
        assert!(large > small * 4, "small={small} large={large}");
    }
}
