//! YCSB request-distribution generators.
//!
//! Ports of the generators the YCSB client uses to pick which record each
//! operation targets: uniform, Zipfian (the Gray et al. "quick" algorithm
//! with θ = 0.99), scrambled Zipfian (decorrelates popularity from key
//! order), and latest (Workload D's "read the newest records" bias).

use here_sim_core::rng::SimRng;

/// YCSB's default Zipfian constant.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// Chooses record indices in `[0, n)`.
pub trait KeyChooser: std::fmt::Debug {
    /// Draws the next record index.
    fn next_key(&mut self, rng: &mut SimRng) -> u64;

    /// Informs the generator that the keyspace grew (inserts).
    fn grow(&mut self, new_n: u64);
}

/// Uniform selection over the keyspace.
#[derive(Debug, Clone)]
pub struct UniformChooser {
    n: u64,
}

impl UniformChooser {
    /// Uniform over `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "keyspace must be non-empty");
        UniformChooser { n }
    }
}

impl KeyChooser for UniformChooser {
    fn next_key(&mut self, rng: &mut SimRng) -> u64 {
        rng.below(self.n)
    }

    fn grow(&mut self, new_n: u64) {
        self.n = self.n.max(new_n);
    }
}

/// Zipfian selection (Gray et al.): item 0 is the most popular.
#[derive(Debug, Clone)]
pub struct ZipfianChooser {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl ZipfianChooser {
    /// Zipfian over `[0, n)` with the YCSB default constant.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        Self::with_theta(n, ZIPFIAN_CONSTANT)
    }

    /// Zipfian with an explicit constant `theta` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is outside `(0, 1)`.
    pub fn with_theta(n: u64, theta: f64) -> Self {
        assert!(n > 0, "keyspace must be non-empty");
        assert!(
            (0.0..1.0).contains(&theta) && theta > 0.0,
            "theta must be in (0,1)"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        ZipfianChooser {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Extends ζ(n) incrementally to `new_n` — YCSB's inserts grow the
    /// keyspace one record at a time, and recomputing the harmonic sum
    /// from scratch would be quadratic over a run.
    fn extend_zeta(&mut self, new_n: u64) {
        for i in (self.n + 1)..=new_n {
            self.zetan += 1.0 / (i as f64).powf(self.theta);
        }
        self.n = new_n;
        self.eta = (1.0 - (2.0 / self.n as f64).powf(1.0 - self.theta))
            / (1.0 - self.zeta2theta / self.zetan);
    }
}

impl KeyChooser for ZipfianChooser {
    fn next_key(&mut self, rng: &mut SimRng) -> u64 {
        let u = rng.unit_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }

    fn grow(&mut self, new_n: u64) {
        if new_n > self.n {
            self.extend_zeta(new_n);
        }
    }
}

/// Scrambled Zipfian: Zipfian popularity spread over the keyspace by
/// hashing, so hot records are not adjacent (YCSB's default for A/B/C/F).
#[derive(Debug, Clone)]
pub struct ScrambledZipfianChooser {
    inner: ZipfianChooser,
    n: u64,
}

impl ScrambledZipfianChooser {
    /// Scrambled Zipfian over `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        ScrambledZipfianChooser {
            inner: ZipfianChooser::new(n),
            n,
        }
    }
}

impl KeyChooser for ScrambledZipfianChooser {
    fn next_key(&mut self, rng: &mut SimRng) -> u64 {
        let raw = self.inner.next_key(rng);
        fnv_hash64(raw) % self.n
    }

    fn grow(&mut self, new_n: u64) {
        if new_n > self.n {
            self.n = new_n;
            self.inner.grow(new_n);
        }
    }
}

/// Latest-biased selection: Zipfian over recency, so the most recently
/// inserted records are the most popular (YCSB Workload D).
#[derive(Debug, Clone)]
pub struct LatestChooser {
    inner: ZipfianChooser,
    n: u64,
}

impl LatestChooser {
    /// Latest-biased over `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        LatestChooser {
            inner: ZipfianChooser::new(n),
            n,
        }
    }
}

impl KeyChooser for LatestChooser {
    fn next_key(&mut self, rng: &mut SimRng) -> u64 {
        let back = self.inner.next_key(rng);
        self.n - 1 - back.min(self.n - 1)
    }

    fn grow(&mut self, new_n: u64) {
        if new_n > self.n {
            self.n = new_n;
            self.inner.grow(new_n);
        }
    }
}

fn fnv_hash64(mut v: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for _ in 0..8 {
        h ^= v & 0xff;
        h = h.wrapping_mul(0x0100_0000_01b3);
        v >>= 8;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(chooser: &mut dyn KeyChooser, n: usize, draws: usize) -> Vec<u64> {
        let mut rng = SimRng::seed_from(7);
        let mut h = vec![0u64; n];
        for _ in 0..draws {
            h[chooser.next_key(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let mut c = UniformChooser::new(10);
        let h = histogram(&mut c, 10, 100_000);
        for &count in &h {
            assert!((8_000..12_000).contains(&count), "bucket count {count}");
        }
    }

    #[test]
    fn zipfian_front_loads_popularity() {
        let mut c = ZipfianChooser::new(1000);
        let h = histogram(&mut c, 1000, 100_000);
        // Item 0 should dwarf item 500.
        assert!(
            h[0] > 20 * h[500].max(1),
            "h[0]={}, h[500]={}",
            h[0],
            h[500]
        );
        // And the head should account for a large share of all draws.
        let head: u64 = h[..10].iter().sum();
        assert!(head > 30_000, "head share {head}");
    }

    #[test]
    fn zipfian_keys_stay_in_range() {
        let mut c = ZipfianChooser::new(50);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..10_000 {
            assert!(c.next_key(&mut rng) < 50);
        }
    }

    #[test]
    fn scrambled_zipfian_spreads_the_hot_set() {
        let mut c = ScrambledZipfianChooser::new(1000);
        let h = histogram(&mut c, 1000, 100_000);
        // Still skewed: some key is very hot...
        let max = *h.iter().max().unwrap();
        assert!(max > 10_000);
        // ...but the hottest key is no longer key 0 deterministically
        // adjacent to key 1 (the top two keys are far apart).
        let mut idx: Vec<usize> = (0..1000).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(h[i]));
        assert!(idx[0].abs_diff(idx[1]) > 1);
    }

    #[test]
    fn latest_favours_the_newest_records() {
        let mut c = LatestChooser::new(1000);
        let h = histogram(&mut c, 1000, 100_000);
        assert!(h[999] > 20 * h[400].max(1));
    }

    #[test]
    fn growth_extends_the_keyspace() {
        let mut c = LatestChooser::new(10);
        c.grow(100);
        let mut rng = SimRng::seed_from(5);
        let any_high = (0..1000).any(|_| c.next_key(&mut rng) > 9);
        assert!(any_high);
    }
}
