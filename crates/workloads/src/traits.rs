//! The workload abstraction: guest applications that dirty memory, complete
//! operations, and emit network traffic.
//!
//! A [`Workload`] is advanced over slices of *virtual* time while its VM is
//! running; it mutates guest memory through the VM's normal write path (so
//! dirty-page tracking sees exactly what a real guest would produce),
//! reports application-level progress (the paper's throughput metrics), and
//! emits outgoing packets (which replication buffers until commit).

use std::fmt;

use here_hypervisor::vm::Vm;
use here_sim_core::rate::ByteSize;
use here_sim_core::rng::SimRng;
use here_sim_core::time::{SimDuration, SimTime};

/// An outgoing packet emitted during an advance slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Emission {
    /// Offset of the emission within the slice.
    pub offset: SimDuration,
    /// Payload size.
    pub size: ByteSize,
}

/// Progress made by a workload over one advance slice.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Progress {
    /// Application operations completed (fractional: slices rarely align
    /// with operation boundaries).
    pub ops: f64,
    /// Outgoing packets emitted during the slice, in time order.
    pub emissions: Vec<Emission>,
}

impl Progress {
    /// Progress with `ops` operations and no emissions.
    pub fn ops_only(ops: f64) -> Self {
        Progress {
            ops,
            emissions: Vec::new(),
        }
    }

    /// Merges another slice's progress into this one.
    pub fn merge(&mut self, other: Progress) {
        self.ops += other.ops;
        self.emissions.extend(other.emissions);
    }
}

/// A guest application driven in virtual time.
///
/// # Contract
///
/// The replication engine only calls [`Workload::advance`] while the VM is
/// [`Running`](here_hypervisor::vm::RunState::Running); implementations may
/// therefore treat guest-write failures as bugs.
pub trait Workload: fmt::Debug {
    /// Short name for reports ("memstress-30", "ycsb-a", ...).
    fn name(&self) -> &str;

    /// Runs the workload for `dt` of virtual time starting at `now`,
    /// applying page writes to `vm` and returning progress.
    fn advance(&mut self, now: SimTime, dt: SimDuration, vm: &mut Vm, rng: &mut SimRng)
        -> Progress;

    /// `true` once the workload has completed a bounded run (e.g. YCSB's
    /// 4 M operations). Unbounded workloads always return `false`.
    fn is_done(&self) -> bool {
        false
    }

    /// Restarts the workload from its initial state, keeping warmed caches
    /// (stores stay loaded, phase schedules replay). The engine calls this
    /// when a warmup phase ends so measurement starts on a fresh run.
    fn reset(&mut self) {}
}

/// Writes `count` pages sequentially starting at `start` (wrapping within
/// `[base, base + len)`), attributing writes round-robin across vCPUs.
/// Returns the next cursor position. The engine-facing workloads use this
/// for sweep-style dirtying (memstress, lbm, stencil kernels).
///
/// The number of *distinct* pages marked is capped at `len` — extra laps
/// would re-dirty the same pages without changing the dirty set, so they
/// are skipped for speed, which keeps replica consistency intact (the final
/// page versions are what get transferred).
///
/// # Panics
///
/// Panics if `len` is zero or the region exceeds the VM's address space.
pub fn write_sweep(vm: &mut Vm, base: u64, len: u64, start: u64, count: u64, vcpus: u32) -> u64 {
    assert!(len > 0, "sweep region must be non-empty");
    let effective = count.min(len);
    for cursor in start..start + effective {
        let frame = base + (cursor % len);
        let vcpu = here_hypervisor::VcpuId::new(((cursor / 64) % vcpus as u64) as u32);
        vm.guest_write(here_hypervisor::PageId::new(frame), vcpu)
            .expect("workload advances only while the VM runs");
    }
    (start + count) % len
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_hypervisor::cpuid::CpuidPolicy;
    use here_hypervisor::host::Hypervisor;
    use here_hypervisor::vm::VmConfig;
    use here_hypervisor::XenHypervisor;

    fn test_vm() -> (XenHypervisor, here_hypervisor::VmId) {
        let mut xen = XenHypervisor::new(ByteSize::from_gib(12));
        let cfg = VmConfig::new("w", ByteSize::from_mib(1), 4)
            .unwrap()
            .with_cpuid(CpuidPolicy::xen_default());
        let id = xen.create_vm(cfg).unwrap();
        (xen, id)
    }

    #[test]
    fn progress_merge_accumulates() {
        let mut a = Progress::ops_only(2.5);
        a.merge(Progress {
            ops: 1.5,
            emissions: vec![Emission {
                offset: SimDuration::from_millis(1),
                size: ByteSize::from_bytes(64),
            }],
        });
        assert_eq!(a.ops, 4.0);
        assert_eq!(a.emissions.len(), 1);
    }

    #[test]
    fn sweep_wraps_and_caps_distinct_pages() {
        let (mut xen, id) = test_vm();
        xen.shadow_op_enable_logdirty(id).unwrap();
        let vm = xen.vm_mut(id).unwrap();
        // Region of 16 pages; write 40 pages worth: all 16 distinct frames
        // dirty, cursor ends at (0 + 40) % 16 = 8.
        let next = write_sweep(vm, 4, 16, 0, 40, 4);
        assert_eq!(next, 8);
        assert_eq!(vm.dirty().bitmap().count(), 16);
        // All dirty frames are within the region.
        assert!(vm
            .dirty()
            .bitmap()
            .peek()
            .iter()
            .all(|p| (4..20).contains(&p.frame())));
    }

    #[test]
    fn sweep_attributes_writes_across_vcpus() {
        let (mut xen, id) = test_vm();
        xen.shadow_op_enable_logdirty(id).unwrap();
        let vm = xen.vm_mut(id).unwrap();
        write_sweep(vm, 0, 256, 0, 256, 4);
        let used: Vec<usize> = (0..4)
            .filter(|&i| !vm.dirty().ring(i).unwrap().is_empty())
            .collect();
        assert_eq!(used.len(), 4, "all four vCPUs should have logged writes");
    }
}
