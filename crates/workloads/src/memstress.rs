//! The paper's memory microbenchmark: a write-intensive sweep over a
//! configurable percentage of guest memory.
//!
//! "We implemented a benchmark that performs random memory operations to
//! artificially load the migration process" (§8.3); its single knob is the
//! fraction of guest memory it keeps rewriting. It drives Figs. 5, 6
//! (right), 7, 8 and 9.

use here_hypervisor::vm::Vm;
use here_sim_core::rng::SimRng;
use here_sim_core::time::{SimDuration, SimTime};

use crate::traits::{write_sweep, Progress, Workload};

/// Default write throughput of the microbenchmark: distinct pages dirtied
/// per second of guest execution. Calibrated so the working set is fully
/// re-dirtied within each checkpoint period of the Fig. 8/9 configurations
/// (checkpoint transfer then scales with memory size, as measured).
/// Migration experiments (Fig. 6) override this with a lower rate — see
/// the harness — because live migration only converges when the distinct
/// dirty rate stays below the copy rate.
pub const DEFAULT_PAGES_PER_SEC: u64 = 600_000;

/// The write-intensive memory microbenchmark.
///
/// # Examples
///
/// ```
/// use here_workloads::memstress::MemStress;
/// use here_workloads::traits::Workload;
///
/// let w = MemStress::with_percent(30);
/// assert_eq!(w.name(), "memstress-30");
/// ```
#[derive(Debug, Clone)]
pub struct MemStress {
    name: String,
    percent: u8,
    pages_per_sec: u64,
    cursor: u64,
    carry: f64,
}

impl MemStress {
    /// A microbenchmark writing over `percent` of guest memory at the
    /// default rate.
    ///
    /// # Panics
    ///
    /// Panics if `percent` is 0 or greater than 100.
    pub fn with_percent(percent: u8) -> Self {
        assert!(
            (1..=100).contains(&percent),
            "memory load percent must be in 1..=100, got {percent}"
        );
        MemStress {
            name: format!("memstress-{percent}"),
            percent,
            pages_per_sec: DEFAULT_PAGES_PER_SEC,
            cursor: 0,
            carry: 0.0,
        }
    }

    /// Overrides the write rate (pages per second).
    ///
    /// # Panics
    ///
    /// Panics if `pages_per_sec` is zero.
    pub fn with_rate(mut self, pages_per_sec: u64) -> Self {
        assert!(pages_per_sec > 0, "write rate must be positive");
        self.pages_per_sec = pages_per_sec;
        self
    }

    /// The configured memory percentage.
    pub fn percent(&self) -> u8 {
        self.percent
    }

    /// Changes the memory percentage mid-run (used by the phased workload
    /// of Fig. 9).
    ///
    /// # Panics
    ///
    /// Panics if `percent` is 0 or greater than 100.
    pub fn set_percent(&mut self, percent: u8) {
        assert!(
            (1..=100).contains(&percent),
            "memory load percent must be in 1..=100, got {percent}"
        );
        self.percent = percent;
        self.name = format!("memstress-{percent}");
        self.cursor = 0;
    }

    fn working_set_pages(&self, vm: &Vm) -> u64 {
        (vm.memory().num_pages() * self.percent as u64 / 100).max(1)
    }
}

impl Workload for MemStress {
    fn name(&self) -> &str {
        &self.name
    }

    fn advance(
        &mut self,
        _now: SimTime,
        dt: SimDuration,
        vm: &mut Vm,
        _rng: &mut SimRng,
    ) -> Progress {
        let want = self.pages_per_sec as f64 * dt.as_secs_f64() + self.carry;
        let writes = want as u64;
        self.carry = want - writes as f64;
        if writes == 0 {
            return Progress::ops_only(0.0);
        }
        let len = self.working_set_pages(vm);
        self.cursor = write_sweep(vm, 0, len, self.cursor, writes, vm.config().vcpus);
        // One "operation" of the microbenchmark is one page write.
        Progress::ops_only(writes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use here_hypervisor::cpuid::CpuidPolicy;
    use here_hypervisor::host::Hypervisor;
    use here_hypervisor::vm::VmConfig;
    use here_hypervisor::XenHypervisor;
    use here_sim_core::rate::ByteSize;

    fn setup(mem_mib: u64) -> (XenHypervisor, here_hypervisor::VmId) {
        let mut xen = XenHypervisor::new(ByteSize::from_gib(12));
        let cfg = VmConfig::new("m", ByteSize::from_mib(mem_mib), 4)
            .unwrap()
            .with_cpuid(CpuidPolicy::xen_default());
        let id = xen.create_vm(cfg).unwrap();
        xen.shadow_op_enable_logdirty(id).unwrap();
        (xen, id)
    }

    #[test]
    #[should_panic(expected = "percent must be in")]
    fn zero_percent_is_rejected() {
        MemStress::with_percent(0);
    }

    #[test]
    fn dirty_set_is_bounded_by_working_set() {
        let (mut xen, id) = setup(8); // 2048 pages
        let mut w = MemStress::with_percent(25).with_rate(1_000_000);
        let mut rng = SimRng::seed_from(1);
        let vm = xen.vm_mut(id).unwrap();
        // A long slice writes far more than the 512-page working set.
        let p = w.advance(SimTime::ZERO, SimDuration::from_secs(1), vm, &mut rng);
        assert!(p.ops >= 999_999.0);
        assert_eq!(vm.dirty().bitmap().count(), 512);
    }

    #[test]
    fn small_slices_accumulate_fractional_writes() {
        let (mut xen, id) = setup(8);
        let mut w = MemStress::with_percent(50).with_rate(1000);
        let mut rng = SimRng::seed_from(1);
        let vm = xen.vm_mut(id).unwrap();
        let mut total = 0.0;
        for _ in 0..100 {
            // 100 slices of 100 us = 10 ms total at 1000 pages/s = 10 pages.
            total += w
                .advance(SimTime::ZERO, SimDuration::from_micros(100), vm, &mut rng)
                .ops;
        }
        assert!((total - 10.0).abs() <= 1.0, "got {total}");
    }

    #[test]
    fn set_percent_grows_the_sweep_region() {
        let (mut xen, id) = setup(8);
        let mut w = MemStress::with_percent(10).with_rate(10_000_000);
        let mut rng = SimRng::seed_from(1);
        let vm = xen.vm_mut(id).unwrap();
        w.advance(SimTime::ZERO, SimDuration::from_secs(1), vm, &mut rng);
        let small = vm.dirty().bitmap().count();
        w.set_percent(80);
        w.advance(SimTime::ZERO, SimDuration::from_secs(1), vm, &mut rng);
        let large = vm.dirty().bitmap().count();
        assert!(large > small * 4, "small={small}, large={large}");
        assert_eq!(w.name(), "memstress-80");
    }

    #[test]
    fn never_done() {
        let w = MemStress::with_percent(10);
        assert!(!w.is_done());
    }
}
