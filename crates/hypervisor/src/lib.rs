//! # here-hypervisor — simulated Xen and KVM hosts
//!
//! The hypervisor substrate of the HERE reproduction. Real HERE patches Xen
//! 4.12 and kvmtool; this crate provides faithful *simulations* of the
//! control-plane surfaces those patches touch, deliberately keeping the two
//! hypervisors' state formats incompatible so that the state translator
//! ([`here-vmstate`]) and device switcher have real work to do:
//!
//! - [`memory`]: sparse versioned guest memory with deterministic page
//!   materialisation;
//! - [`dirty`]: the global log-dirty bitmap and per-vCPU PML rings (§7.2);
//! - [`vcpu`]: architecture truth plus the incompatible Xen/KVM vCPU state
//!   formats;
//! - [`cpuid`]: feature policies and cross-hypervisor masking (§7.4);
//! - [`devices`]: Xen PV vs. virtio device models and the in-guest
//!   device-switch agent (§5.2, §7.3);
//! - [`xen`], [`kvm`]: the two simulated hosts behind the common
//!   [`host::Hypervisor`] trait;
//! - [`fault`]: crash/hang/starvation host states for exploit injection.
//!
//! [`here-vmstate`]: ../here_vmstate/index.html
//!
//! ## Example
//!
//! ```
//! use here_hypervisor::host::Hypervisor;
//! use here_hypervisor::kvm::KvmHypervisor;
//! use here_hypervisor::xen::XenHypervisor;
//! use here_hypervisor::vm::VmConfig;
//! use here_sim_core::rate::ByteSize;
//!
//! # fn main() -> Result<(), here_hypervisor::error::HvError> {
//! let mut primary = XenHypervisor::new(ByteSize::from_gib(192));
//! let mut secondary = KvmHypervisor::new(ByteSize::from_gib(192));
//! let cfg = VmConfig::new("protected", ByteSize::from_mib(64), 4)?;
//! let vm = primary.create_vm(cfg.clone())?;
//! let replica = secondary.create_shell(cfg)?;
//! assert_ne!(primary.kind(), secondary.kind());
//! # let _ = (vm, replica);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arch;
pub mod cpuid;
pub mod devices;
pub mod dirty;
pub mod error;
pub mod fault;
pub mod host;
pub mod kind;
pub mod kvm;
pub mod memory;
pub mod vcpu;
pub mod vm;
pub mod xen;

pub use error::{HvError, HvResult};
pub use host::Hypervisor;
pub use kind::HypervisorKind;
pub use kvm::KvmHypervisor;
pub use memory::{PageId, PAGE_SIZE};
pub use vcpu::VcpuId;
pub use vm::{VmConfig, VmId};
pub use xen::XenHypervisor;
