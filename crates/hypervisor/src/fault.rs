//! Host fault states induced by DoS exploits or accidents.
//!
//! The paper's vulnerability study (§8.2, Table 5) classifies the
//! post-attack outcome of DoS-only vulnerabilities into three categories —
//! crash, hang, and resource starvation — and argues HERE is applicable to
//! all of them because each eventually manifests as a missed heartbeat (or
//! is turned into a crash by an attack detector). This module models those
//! outcomes on a simulated host.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How a successful DoS manifests on its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DosOutcome {
    /// The target crashes and is completely shut down.
    Crash,
    /// The target stops responding to all requests.
    Hang,
    /// The target malfunctions so as to starve certain resources; it still
    /// responds, but degraded.
    Starvation,
}

impl DosOutcome {
    /// Every outcome category of the §8.2 study, in declaration order —
    /// for fault-injection sweeps and matrix tests.
    pub const ALL: [DosOutcome; 3] = [DosOutcome::Crash, DosOutcome::Hang, DosOutcome::Starvation];
}

impl fmt::Display for DosOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DosOutcome::Crash => write!(f, "crash"),
            DosOutcome::Hang => write!(f, "hang"),
            DosOutcome::Starvation => write!(f, "starvation"),
        }
    }
}

/// The health of a simulated hypervisor host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HostHealth {
    /// Operating normally.
    #[default]
    Healthy,
    /// Crashed: no requests are serviced, heartbeats stop immediately.
    Crashed,
    /// Hung: no requests are serviced, heartbeats stop immediately (from
    /// the observer's perspective, indistinguishable from a crash).
    Hung,
    /// Starved: requests are serviced but the host is unable to sustain its
    /// management duties; heartbeats become unreliable.
    Starved,
}

impl HostHealth {
    /// `true` if the host can service control-plane requests at all.
    pub fn can_service(self) -> bool {
        matches!(self, HostHealth::Healthy | HostHealth::Starved)
    }

    /// `true` if the host still emits heartbeats reliably.
    pub fn heartbeats_reliable(self) -> bool {
        matches!(self, HostHealth::Healthy)
    }

    /// The health state a given DoS outcome induces.
    pub fn from_outcome(outcome: DosOutcome) -> Self {
        match outcome {
            DosOutcome::Crash => HostHealth::Crashed,
            DosOutcome::Hang => HostHealth::Hung,
            DosOutcome::Starvation => HostHealth::Starved,
        }
    }

    /// Short lowercase label for error messages.
    pub fn label(self) -> &'static str {
        match self {
            HostHealth::Healthy => "healthy",
            HostHealth::Crashed => "crashed",
            HostHealth::Hung => "hung",
            HostHealth::Starved => "starved",
        }
    }
}

impl fmt::Display for HostHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_to_health_mapping() {
        assert_eq!(
            HostHealth::from_outcome(DosOutcome::Crash),
            HostHealth::Crashed
        );
        assert_eq!(HostHealth::from_outcome(DosOutcome::Hang), HostHealth::Hung);
        assert_eq!(
            HostHealth::from_outcome(DosOutcome::Starvation),
            HostHealth::Starved
        );
    }

    #[test]
    fn all_covers_every_outcome_once() {
        assert_eq!(DosOutcome::ALL.len(), 3);
        for (i, a) in DosOutcome::ALL.iter().enumerate() {
            for b in &DosOutcome::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn service_and_heartbeat_semantics() {
        assert!(HostHealth::Healthy.can_service());
        assert!(HostHealth::Healthy.heartbeats_reliable());
        assert!(!HostHealth::Crashed.can_service());
        assert!(!HostHealth::Hung.can_service());
        // A starved host limps along but its heartbeats are unreliable,
        // which is what lets the failure detector eventually fire.
        assert!(HostHealth::Starved.can_service());
        assert!(!HostHealth::Starved.heartbeats_reliable());
    }
}
